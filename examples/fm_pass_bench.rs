//! Measures the FM selection-structure rewrite: the same seeded
//! bipartition runs under the incremental `GainBuckets` ladder (the
//! default) and the retained `LazyHeap` baseline, timed per strategy
//! across a small circuit suite.
//!
//! ```text
//! cargo run --release --example fm_pass_bench [reps]
//! ```
//!
//! This is the source of the README "Performance" numbers; re-run it
//! on your own hardware. Besides the table, the run is archived as
//! `BENCH_fm.json` in the current directory — a metrics snapshot with
//! per-size wall times for both strategies and the per-pass averages
//! (`pass_ms_*` gauges, the series `scripts/perf_gate.sh` regresses
//! against).
//!
//! After the strategy table, a single flat `GainBuckets` run times the
//! 100k-gate Rent-rule synthetic (`rent100k_*` fields) — the circuit
//! the CSR hot path is sized for. The `LazyHeap` baseline is omitted
//! there: it is a minutes-not-seconds detour that the small-size
//! speedup column already characterizes.
//!
//! Both strategies must finish every run with `gain_repairs == 0`
//! (the incremental updates are exact); the example asserts it.

use netpart::prelude::*;
use netpart::report::{f2, Table};
use std::time::Instant;

const SIZES: &[usize] = &[800, 1500, 3000];

/// Gate count and Rent exponent of the large-circuit leg. The recipe
/// (dff fraction, p, generator seed) matches `multilevel_bench`, so
/// `rent100k_ms` is directly comparable to that archive's
/// `flat_ms_100000` series across engine revisions.
const RENT_GATES: usize = 100_000;
const RENT_P: f64 = 0.65;

fn circuit(gates: usize) -> Result<Hypergraph, Box<dyn std::error::Error>> {
    let nl = generate(
        &GeneratorConfig::new(gates)
            .with_dff(gates / 10)
            .with_seed(42),
    );
    Ok(map(&nl, &MapperConfig::xc3000())?.to_hypergraph(&nl))
}

fn time_strategy(
    hg: &Hypergraph,
    strategy: SelectionStrategy,
    reps: usize,
) -> (f64, usize, usize) {
    let cfg = BipartitionConfig::equal(hg, 0.1)
        .with_seed(1)
        .with_replication(ReplicationMode::functional(0))
        .with_selection(strategy);
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = netpart::core::bipartition(hg, &cfg);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            r.gain_repairs, 0,
            "{strategy:?}: incremental gains diverged from realized deltas"
        );
        assert!(r.balanced, "{strategy:?}: unbalanced result");
        best_ms = best_ms.min(ms);
        last = Some(r);
    }
    let r = last.expect("reps >= 1");
    (best_ms, r.cut, r.passes)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let reps: usize = args.next().map_or(Ok(3), |a| a.parse())?;

    let mut t = Table::new(
        "FM pass selection: heap baseline vs incremental gain buckets",
        &[
            "gates", "CLBs", "heap (ms)", "buckets (ms)", "speedup", "cut h/b", "passes h/b",
        ],
    );
    let mut snap = MetricsSnapshot::new();
    snap.set_meta("bench", "fm_pass_bench");
    snap.set_meta("seed", "1");
    snap.set_meta("reps", reps.to_string());

    for &gates in SIZES {
        let hg = circuit(gates)?;
        let clbs = hg.stats().clbs;
        let (heap_ms, heap_cut, heap_passes) = time_strategy(&hg, SelectionStrategy::LazyHeap, reps);
        let (bkt_ms, bkt_cut, bkt_passes) = time_strategy(&hg, SelectionStrategy::GainBuckets, reps);
        snap.set_timing(&format!("heap_ms_{gates}"), heap_ms as u64);
        snap.set_timing(&format!("buckets_ms_{gates}"), bkt_ms as u64);
        snap.set_gauge(&format!("cut_buckets_{gates}"), bkt_cut as f64);
        snap.set_gauge(&format!("cut_heap_{gates}"), heap_cut as f64);
        snap.set_gauge(&format!("speedup_{gates}"), heap_ms / bkt_ms);
        snap.set_gauge(&format!("pass_ms_heap_{gates}"), heap_ms / heap_passes as f64);
        snap.set_gauge(&format!("pass_ms_buckets_{gates}"), bkt_ms / bkt_passes as f64);
        t.row([
            gates.to_string(),
            clbs.to_string(),
            f2(heap_ms),
            f2(bkt_ms),
            format!("{}x", f2(heap_ms / bkt_ms)),
            format!("{heap_cut}/{bkt_cut}"),
            format!("{heap_passes}/{bkt_passes}"),
        ]);
    }
    println!("{t}");
    println!("(both strategies: gain_repairs == 0 on every run)");

    // Large-circuit leg: flat FM over the 100k-gate Rent synthetic,
    // single rep (the pass count is high enough that best-of-reps adds
    // nothing but wall time), replication off to match the flat series
    // in `BENCH_multilevel.json`.
    let nl = generate(
        &GeneratorConfig::new(RENT_GATES)
            .with_dff(RENT_GATES / 20)
            .with_rent(RENT_P)
            .with_seed(42),
    );
    let hg = map(&nl, &MapperConfig::xc3000())?.to_hypergraph(&nl);
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(1)
        .with_replication(ReplicationMode::None);
    let t0 = Instant::now();
    let r = netpart::core::bipartition(&hg, &cfg);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(r.gain_repairs, 0, "rent100k: incremental gains diverged");
    assert!(r.balanced, "rent100k: unbalanced result");
    let pass_ms = ms / r.passes as f64;
    println!();
    println!(
        "rent synthetic, {} gates ({} CLBs, p = {RENT_P}): cut {} in {} passes, \
         {} ms total, {} ms/pass",
        RENT_GATES,
        hg.stats().clbs,
        r.cut,
        r.passes,
        f2(ms),
        f2(pass_ms),
    );
    snap.set_timing("rent100k_ms", ms as u64);
    snap.set_gauge("rent100k_pass_ms", pass_ms);
    snap.set_gauge("rent100k_cut", r.cut as f64);
    snap.set_gauge("rent100k_passes", r.passes as f64);

    std::fs::write("BENCH_fm.json", snap.to_json())?;
    println!("archived to BENCH_fm.json");
    Ok(())
}
