//! The paper's second experiment on one benchmark: k-way partitioning
//! into the heterogeneous XC3000 library, minimizing total device cost
//! (eq. 1) and interconnect (eq. 2), with and without functional
//! replication.
//!
//! Run with
//! `cargo run --release --example kway_cost_min [circuit] [candidates]`
//! (default `s5378:scaled`, 6 candidates; drop `:scaled` for full size).

use netpart::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s5378:scaled".into());
    let candidates: usize = args.next().map(|r| r.parse()).transpose()?.unwrap_or(6);

    let (name, scaled) = match circuit.strip_suffix(":scaled") {
        Some(base) => (base.to_string(), true),
        None => (circuit, false),
    };
    let nl = if scaled {
        bench_suite::build_scaled(&name, 4)
    } else {
        bench_suite::build(&name)
    }
    .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
    let hg = map(&nl, &MapperConfig::xc3000())?.to_hypergraph(&nl);
    let s = hg.stats();
    println!(
        "{name}{}: {} CLBs, {} IOBs\n",
        if scaled { " (scaled)" } else { "" },
        s.clbs,
        s.iobs
    );

    let library = DeviceLibrary::xc3000();
    for (label, mode) in [
        ("without replication ([3] baseline)", ReplicationMode::None),
        (
            "functional replication, T = 1",
            ReplicationMode::functional(1),
        ),
    ] {
        let cfg = KWayConfig::new(library.clone())
            .with_candidates(candidates)
            .with_seed(99)
            .with_max_passes(8)
            .with_replication(mode);
        print!("{label}: ");
        match kway_partition(&hg, &cfg) {
            Ok(r) => {
                let hist = r.evaluation.device_histogram(library.len());
                let devices: Vec<String> = hist
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(i, &n)| format!("{}×{}", n, library.device(i).name()))
                    .collect();
                println!(
                    "k = {}, cost = {}, devices = [{}]",
                    r.devices.len(),
                    r.evaluation.total_cost,
                    devices.join(", ")
                );
                println!(
                    "  avg CLB utilization {:.0}%, avg IOB utilization {:.0}%, {} cells replicated",
                    100.0 * r.evaluation.avg_clb_util,
                    100.0 * r.evaluation.avg_iob_util,
                    r.placement.replicated_cell_count()
                );
                for part in &r.evaluation.parts {
                    println!(
                        "    part {}: {:8} {:4} CLBs ({:3.0}%), {:3} IOBs ({:3.0}%)",
                        part.part,
                        library.device(part.device).name(),
                        part.clbs,
                        100.0 * part.clb_util,
                        part.terminals,
                        100.0 * part.iob_util
                    );
                }
            }
            Err(e) => println!("{e}"),
        }
        println!();
    }
    Ok(())
}
