//! Quickstart: synthesize a circuit, map it to XC3000 CLBs, bipartition
//! it with functional replication, and evaluate the result.
//!
//! Run with `cargo run --release --example quickstart`.

use netpart::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic 500-gate sequential circuit (see `bench_suite` for
    //    the paper's nine benchmarks).
    let nl = generate(
        &GeneratorConfig::new(500)
            .with_dff(32)
            .with_clustering(0.7)
            .with_seed(42),
    );
    println!(
        "netlist: {} gates, {} PIs, {} POs, {} DFFs",
        nl.n_gates(),
        nl.primary_inputs().len(),
        nl.primary_outputs().len(),
        nl.n_dffs()
    );

    // 2. Technology-map into 5-input, 2-output CLBs.
    let mapped = map(&nl, &MapperConfig::xc3000())?;
    let hg = mapped.to_hypergraph(&nl);
    let stats = hg.stats();
    println!(
        "mapped: {} CLBs, {} IOBs, {} nets, {} pins",
        stats.clbs, stats.iobs, stats.nets, stats.pins
    );

    // 3. Bipartition into two equal halves — first plain FM, then with
    //    the paper's functional replication (threshold T = 0).
    let base = BipartitionConfig::equal(&hg, 0.1).with_seed(1);
    let plain = bipartition(&hg, &base);
    let repl = bipartition(
        &hg,
        &base
            .clone()
            .with_replication(ReplicationMode::functional(0)),
    );
    println!("plain FM min-cut: {} nets", plain.cut);
    println!(
        "with functional replication: {} nets ({} cells replicated, {:.1}% cut reduction)",
        repl.cut,
        repl.replicated_cells,
        100.0 * (1.0 - repl.cut as f64 / plain.cut.max(1) as f64)
    );

    // 4. Evaluate each half on the cheapest feasible XC3000 device.
    let placement = repl.placement.expect("functional mode exports a placement");
    let library = DeviceLibrary::xc3000();
    match assign_devices(&hg, &placement, &library) {
        Some(eval) => {
            for part in &eval.parts {
                let dev = library.device(part.device);
                println!(
                    "part {}: {} ({} CLBs @ {:.0}% util, {} IOBs @ {:.0}% util)",
                    part.part,
                    dev.name(),
                    part.clbs,
                    100.0 * part.clb_util,
                    part.terminals,
                    100.0 * part.iob_util
                );
            }
            println!(
                "total device cost: {} (avg IOB utilization {:.0}%)",
                eval.total_cost,
                100.0 * eval.avg_iob_util
            );
        }
        None => println!("halves exceed the largest device — use the k-way partitioner"),
    }
    Ok(())
}
