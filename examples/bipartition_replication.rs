//! The paper's first experiment (Table III) on one benchmark: equal-halves
//! min-cut with relaxed terminals, FM vs FM + functional replication vs
//! traditional replication, over several randomized runs.
//!
//! Run with
//! `cargo run --release --example bipartition_replication [circuit] [runs]`
//! (default: `s5378`, 10 runs; pass `--scaled` as circuit suffix for a
//! 1/8-size quick run, e.g. `s9234:scaled`).

use netpart::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s5378".into());
    let runs: usize = args.next().map(|r| r.parse()).transpose()?.unwrap_or(10);

    let (name, scaled) = match circuit.strip_suffix(":scaled") {
        Some(base) => (base.to_string(), true),
        None => (circuit, false),
    };
    let nl = if scaled {
        bench_suite::build_scaled(&name, 8)
    } else {
        bench_suite::build(&name)
    }
    .ok_or_else(|| format!("unknown benchmark {name:?}"))?;

    let hg = map(&nl, &MapperConfig::xc3000())?.to_hypergraph(&nl);
    let s = hg.stats();
    println!("{name}: {} CLBs, {} IOBs, {} nets", s.clbs, s.iobs, s.nets);

    let base = BipartitionConfig::equal(&hg, 0.1).with_seed(7);
    let plain = run_many(&hg, &base, runs)?;
    println!(
        "F-M min-cut:            best {:4}  avg {:7.1}",
        plain.best_cut(),
        plain.avg_cut()
    );

    let func = run_many(
        &hg,
        &base
            .clone()
            .with_replication(ReplicationMode::functional(0)),
        runs,
    )?;
    println!(
        "+ functional repl (T=0): best {:4}  avg {:7.1}  ({:.1} cells replicated on avg)",
        func.best_cut(),
        func.avg_cut(),
        func.avg_replicated()
    );

    let trad = run_many(
        &hg,
        &base.clone().with_replication(ReplicationMode::Traditional),
        runs,
    )?;
    println!(
        "+ traditional repl:      best {:4}  avg {:7.1}  ({:.1} cells replicated on avg)",
        trad.best_cut(),
        trad.avg_cut(),
        trad.avg_replicated()
    );

    println!(
        "\nfunctional replication cut reduction: best {:.1}%, avg {:.1}%",
        100.0 * (1.0 - func.best_cut() as f64 / plain.best_cut().max(1) as f64),
        100.0 * (1.0 - func.avg_cut() / plain.avg_cut().max(1.0)),
    );

    // Threshold sweep: T limits which cells may replicate (eq. 6).
    println!("\nthreshold sweep (avg cut over {runs} runs):");
    for t in [0u32, 1, 2, 3, 5] {
        let r = run_many(
            &hg,
            &base
                .clone()
                .with_replication(ReplicationMode::functional(t)),
            runs,
        )?;
        println!(
            "  T = {t}: avg cut {:7.1}, avg replicated cells {:5.1}",
            r.avg_cut(),
            r.avg_replicated()
        );
    }
    Ok(())
}
