//! Measures the multilevel V-cycle against flat FM on large Rent-rule
//! synthetics: same circuit, same seed, same balance window — once
//! through plain `bipartition`, once through `ml_bipartition`.
//!
//! ```text
//! cargo run --release --example multilevel_bench [gates ...]
//! ```
//!
//! Default sizes: 20000 and 100000 gates. This is the source of the
//! README "Scaling to large circuits" numbers; re-run it on your own
//! hardware. Besides the table, the run is archived as
//! `BENCH_multilevel.json` in the current directory — a metrics
//! snapshot with per-size wall times, cuts and the V-cycle depth.
//!
//! Every multilevel result is serialized as a [`SolutionCertificate`]
//! and re-checked by the independent verifier; the example asserts the
//! report is clean, so the speedup numbers are only ever quoted for
//! solutions that survive independent audit.

use netpart::prelude::*;
use netpart::report::{f2, Table};
use std::time::Instant;

/// The Rent exponent of the generated suite: the classic "random
/// logic" regime (Landman–Russo measured 0.57–0.75 there), hard enough
/// that the boundary does not collapse to a trivial cut.
const RENT_P: f64 = 0.65;

fn circuit(gates: usize) -> Result<Hypergraph, Box<dyn std::error::Error>> {
    let nl = generate(
        &GeneratorConfig::new(gates)
            .with_dff(gates / 20)
            .with_rent(RENT_P)
            .with_seed(42),
    );
    Ok(map(&nl, &MapperConfig::xc3000())?.to_hypergraph(&nl))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse())
        .collect::<Result<_, _>>()?;
    let sizes: Vec<usize> = if args.is_empty() {
        vec![20_000, 100_000]
    } else {
        args
    };

    // Replication off: the XC3000 ψ distribution guards most logic
    // cells, which (correctly) stalls ψ-guarded coarsening — replicated
    // partitioning of 100k-cell circuits is a different experiment.
    let ml = MultilevelConfig::new();
    let mut t = Table::new(
        "Multilevel V-cycle vs flat FM (Rent-rule synthetics, p = 0.65)",
        &[
            "gates", "CLBs", "flat (ms)", "ml (ms)", "speedup", "cut flat/ml", "levels",
        ],
    );
    let mut snap = MetricsSnapshot::new();
    snap.set_meta("bench", "multilevel_bench");
    snap.set_meta("seed", "1");
    snap.set_meta("rent_p", RENT_P.to_string());

    for &gates in &sizes {
        let hg = circuit(gates)?;
        let clbs = hg.stats().clbs;
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(1)
            .with_replication(ReplicationMode::None);

        let t0 = Instant::now();
        let flat = netpart::core::bipartition(&hg, &cfg);
        let flat_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(flat.balanced, "flat run unbalanced at {gates} gates");

        let levels = build_chain(&hg, &ml, cfg.replication, cfg.seed).len();
        let t0 = Instant::now();
        let multi = ml_bipartition(&hg, &cfg, &ml);
        let ml_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(multi.balanced, "multilevel run unbalanced at {gates} gates");

        // Certify → verify: the speedup claim only counts for solutions
        // the independent oracle accepts.
        let cert = multi
            .certificate(&hg, cfg.seed)
            .expect("multilevel exports a placement");
        let report = verify(&hg, &cert);
        assert!(report.is_clean(), "verifier rejected: {report:?}");

        snap.set_timing(&format!("flat_ms_{gates}"), flat_ms as u64);
        snap.set_timing(&format!("ml_ms_{gates}"), ml_ms as u64);
        snap.set_gauge(&format!("cut_flat_{gates}"), flat.cut as f64);
        snap.set_gauge(&format!("cut_ml_{gates}"), multi.cut as f64);
        snap.set_gauge(&format!("speedup_{gates}"), flat_ms / ml_ms);
        snap.set_gauge(&format!("levels_{gates}"), levels as f64);
        t.row([
            gates.to_string(),
            clbs.to_string(),
            f2(flat_ms),
            f2(ml_ms),
            format!("{}x", f2(flat_ms / ml_ms)),
            format!("{}/{}", flat.cut, multi.cut),
            levels.to_string(),
        ]);
    }
    println!("{t}");
    println!("(every multilevel solution re-verified by the independent oracle)");

    std::fs::write("BENCH_multilevel.json", snap.to_json())?;
    println!("archived to BENCH_multilevel.json");
    Ok(())
}
