//! Explore the XC3000 device library and its feasibility windows.
//!
//! Run with `cargo run --example device_explorer [clbs] [iobs]` to see
//! which devices a partition of the given size fits (defaults: 120 CLBs,
//! 60 IOBs).

use netpart::prelude::*;
use netpart::report::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let clbs: u64 = args.next().map(|v| v.parse()).transpose()?.unwrap_or(120);
    let iobs: u64 = args.next().map(|v| v.parse()).transpose()?.unwrap_or(60);

    let lib = DeviceLibrary::xc3000();
    let mut t = Table::new(
        "XC3000 library (paper Table I)",
        &[
            "Device",
            "CLBs",
            "IOBs",
            "Price",
            "Feasible window",
            "Fits?",
        ],
    );
    for d in &lib {
        t.row([
            d.name().to_string(),
            d.clbs().to_string(),
            d.iobs().to_string(),
            d.price().to_string(),
            format!("{}..{}", d.min_clbs(), d.max_clbs()),
            if d.fits(clbs, iobs) { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{t}");

    println!("query: {clbs} CLBs, {iobs} IOBs");
    match lib.cheapest_fitting(clbs, iobs) {
        Some(d) => println!(
            "cheapest feasible device: {} (price {}, CLB util {:.0}%, IOB util {:.0}%)",
            d.name(),
            d.price(),
            100.0 * d.clb_utilization(clbs),
            100.0 * d.iob_utilization(iobs)
        ),
        None => println!("no single device fits — partitioning required"),
    }
    println!(
        "optimistic cost lower bound for {clbs} CLBs: {:.0}",
        lib.cost_lower_bound(clbs)
    );
    Ok(())
}
