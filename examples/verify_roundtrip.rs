//! Certificate round trip: partition a circuit k-way, export a
//! [`SolutionCertificate`], serialize it through the line protocol, and
//! have the independent verifier re-derive every claim from scratch.
//!
//! Run with `cargo run --release --example verify_roundtrip`.
//!
//! The point of the exercise: the verifier (crates/verify) shares no
//! gain, cut or occupancy code with the optimizer, so a clean report is
//! independent evidence that the engine's incremental bookkeeping and
//! the data-model evaluators agree with first principles.

use netpart::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic circuit, mapped to XC3000 CLBs.
    let nl = generate(
        &GeneratorConfig::new(900)
            .with_dff(60)
            .with_clustering(0.7)
            .with_seed(7),
    );
    let mapped = map(&nl, &MapperConfig::xc3000())?;
    let hg = mapped.to_hypergraph(&nl);

    // 2. Cost-driven k-way partitioning with functional replication.
    let cfg = KWayConfig::new(DeviceLibrary::xc3000())
        .with_candidates(3)
        .with_seed(7)
        .with_replication(ReplicationMode::functional(1));
    let res = kway_partition(&hg, &cfg)?;
    println!(
        "k = {}, $_k = {}, k̄ = {:.4}",
        res.placement.n_parts(),
        res.evaluation.total_cost,
        res.evaluation.avg_iob_util
    );

    // 3. Export the solution as a certificate and push it through the
    //    text protocol, exactly as `--certify-out` would.
    let cert = res.certificate(&hg, &cfg.library, cfg.seed);
    let text = cert.to_text();
    println!("certificate: {} lines", text.lines().count());
    let parsed = SolutionCertificate::parse(&text)?;

    // 4. Independent re-verification.
    let report = verify(&hg, &parsed);
    println!("{report}");
    if !report.is_clean() {
        return Err("verifier rejected an honest certificate".into());
    }

    // 5. Tamper with one claim; the verifier must notice.
    let mut forged = parsed;
    forged.claims.total_cost = forged.claims.total_cost.map(|c| c.saturating_sub(1));
    let report = verify(&hg, &forged);
    println!("after understating $_k by 1: {report}");
    if report.is_clean() {
        return Err("verifier accepted a forged cost claim".into());
    }
    Ok(())
}
