//! Measures the portfolio engine's wall-clock scaling: the same
//! multi-start FM portfolio at `--jobs` 1, 2 and 4, printed as a table.
//! The determinism contract means every row computes the identical best
//! solution — only the wall time may differ.
//!
//! ```text
//! cargo run --release --example portfolio_speedup [gates] [starts]
//! ```
//!
//! This is the source of the README's speedup numbers; re-run it on
//! your own hardware (the numbers scale with physical cores).
//!
//! Besides the table, the run is archived as `BENCH_portfolio.json` in
//! the current directory — a metrics snapshot (seed, jobs, wall-ms per
//! jobs level, best cut, and the paper metrics `$_k`/`k̄` from a small
//! k-way portfolio on the same circuit).

use netpart::prelude::*;
use netpart::report::{f2, Table};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let gates: usize = args.next().map_or(Ok(2000), |a| a.parse())?;
    let starts: usize = args.next().map_or(Ok(20), |a| a.parse())?;

    let nl = generate(
        &GeneratorConfig::new(gates)
            .with_dff(gates / 10)
            .with_seed(42),
    );
    let hg = map(&nl, &MapperConfig::xc3000())?.to_hypergraph(&nl);
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(1)
        .with_replication(ReplicationMode::functional(0));
    println!(
        "portfolio: {starts} starts on {} CLBs ({} threads available)\n",
        hg.stats().clbs,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );

    let mut t = Table::new(
        "Portfolio speedup (identical best solution per row)",
        &["jobs", "best cut", "wall (ms)", "speedup"],
    );
    let mut snap = MetricsSnapshot::new();
    snap.set_meta("bench", "portfolio_speedup");
    snap.set_meta("gates", gates.to_string());
    snap.set_meta("starts", starts.to_string());
    snap.set_meta("seed", "1");
    let mut base_ms = None;
    let mut prints = Vec::new();
    for jobs in [1usize, 2, 4] {
        let t0 = Instant::now();
        let r = portfolio_bipartition(&hg, &cfg, starts, jobs)?;
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let base = *base_ms.get_or_insert(ms);
        prints.push(r.fingerprint(&hg));
        snap.set_timing(&format!("wall_ms_jobs{jobs}"), ms as u64);
        snap.set_gauge("best_cut", r.best_cut() as f64);
        t.row([
            jobs.to_string(),
            r.best_cut().to_string(),
            f2(ms),
            format!("{}x", f2(base / ms)),
        ]);
    }
    assert!(
        prints.windows(2).all(|w| w[0] == w[1]),
        "determinism violated: fingerprints differ across jobs levels"
    );
    println!("{t}");
    println!("(fingerprint {:#018x} at every jobs level)", prints[0]);

    // Paper metrics for the archive: route a small k-way portfolio
    // through a MetricsRecorder so the $_k / k̄ gauges and the device
    // histogram land in the same snapshot.
    use netpart::engine::portfolio_kway_traced;
    use netpart::obs::Recorder;
    use std::sync::Arc;
    let metrics = Arc::new(MetricsRecorder::new());
    let kcfg = KWayConfig::new(DeviceLibrary::xc3000())
        .with_candidates(4)
        .with_seed(1)
        .with_replication(ReplicationMode::functional(0));
    let t0 = Instant::now();
    let recorder: Arc<dyn Recorder> = Arc::clone(&metrics) as Arc<dyn Recorder>;
    let k = portfolio_kway_traced(&hg, &kcfg, 3, 4, &recorder)?;
    let kway_snap = metrics.snapshot();
    for (key, v) in &kway_snap.gauges {
        snap.set_gauge(key, *v);
    }
    for (key, bins) in &kway_snap.hists {
        snap.merge_hist(key, bins);
    }
    snap.set_timing("wall_ms_kway", t0.elapsed().as_millis() as u64);
    println!(
        "k-way on the same circuit: $_k = {}, k̄ = {:.2}, k = {}",
        k.result.evaluation.total_cost,
        k.result.evaluation.avg_iob_util,
        k.result.evaluation.k()
    );

    std::fs::write("BENCH_portfolio.json", snap.to_json())?;
    println!("archived to BENCH_portfolio.json");
    Ok(())
}
