//! Fault-injection and robustness harness.
//!
//! The contract under test: for any malformed input, infeasible library,
//! run budget, or injected mid-run fault, the driver returns either a
//! typed [`PartitionError`] or a usable degraded solution — it never
//! panics. Every engine call here is wrapped in `catch_unwind` so a
//! panic shows up as a test failure naming the kill point, not as a
//! generic abort.

use netpart::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn data_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

/// A small mapped circuit: big enough for FM to run several passes,
/// small enough that sweeping dozens of kill points stays fast.
fn small_hg(seed: u64) -> Hypergraph {
    let nl = generate(
        &GeneratorConfig::new(400)
            .with_dff(20)
            .with_seed(seed)
            .with_clustering(0.75),
    );
    map(&nl, &MapperConfig::xc3000())
        .expect("generated netlists map")
        .to_hypergraph(&nl)
}

/// Runs `f` and fails the test with `ctx` if it panics.
fn no_panic<T>(ctx: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(_) => panic!("engine panicked at kill point: {ctx}"),
    }
}

// ---------------------------------------------------------------------
// Malformed-input corpus
// ---------------------------------------------------------------------

/// Every `bad_*.blif` in the corpus parses to a line-numbered typed
/// error; every `good_*.blif` parses cleanly. Neither panics.
#[test]
fn blif_corpus_yields_typed_errors_not_panics() {
    let mut bad = 0;
    let mut good = 0;
    for entry in std::fs::read_dir(data_dir()).expect("tests/data exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("blif") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("corpus file reads");
        let parsed = no_panic(&name, || parse_blif(&text));
        if name == "bad_empty_model.blif" {
            // Deliberately bad at the *partitioning* stage, not parse:
            // structurally valid BLIF with zero gates. The CLI-level
            // exit-2 behaviour is pinned in tests/cli_exit_codes.rs.
            bad += 1;
            let nl = parsed.unwrap_or_else(|e| panic!("{name} should parse: {e}"));
            assert_eq!(nl.n_gates(), 0, "{name} is meant to be empty");
        } else if name.starts_with("bad_") {
            bad += 1;
            assert!(parsed.is_err(), "{name} should not parse");
        } else {
            good += 1;
            let nl = parsed.unwrap_or_else(|e| panic!("{name} should parse: {e}"));
            nl.validate().expect("good corpus files validate");
        }
    }
    assert!(bad >= 7, "corpus lost its bad files ({bad})");
    assert!(good >= 1, "corpus lost its good control ({good})");
}

/// Malformed BLIF errors carry a 1-based source line so users can find
/// the offending directive.
#[test]
fn blif_corpus_errors_are_line_numbered() {
    for name in [
        "bad_unknown_directive.blif",
        "bad_duplicate_signal.blif",
        "bad_dangling_output.blif",
        "bad_stray_cover_row.blif",
        "bad_truncated_latch.blif",
        "bad_double_driver.blif",
        "bad_empty_names.blif",
        "bad_crlf_stray_cover.blif",
        "bad_truncated_names.blif",
    ] {
        let text = std::fs::read_to_string(data_dir().join(name)).expect("corpus file reads");
        let err = parse_blif(&text).expect_err("malformed corpus file");
        let msg = err.to_string();
        assert!(
            msg.starts_with("line "),
            "{name}: error {msg:?} lacks a line number"
        );
    }
}

// ---------------------------------------------------------------------
// Fault sweeps: bipartition / run_many
// ---------------------------------------------------------------------

/// Killing FM after N moves, for N swept across pass boundaries and the
/// wall-check stride, always yields a valid (possibly degraded) result.
#[test]
fn bipartition_move_kill_sweep_never_panics() {
    let hg = small_hg(11);
    for kill in [1u64, 2, 7, 63, 64, 65, 128, 500, 5_000, 1_000_000] {
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(3)
            .with_replication(ReplicationMode::functional(0))
            .with_fault(FaultPlan::none().kill_after_moves(kill));
        let res = no_panic(&format!("kill_after_moves={kill}"), || {
            bipartition(&hg, &cfg)
        });
        // The result must be internally consistent no matter where the
        // fault hit: exported placement matches the reported cut/areas.
        if let Some(p) = &res.placement {
            p.validate(&hg).expect("placement invariants under fault");
            assert_eq!(p.cut_size(&hg), res.cut, "kill={kill}");
            assert_eq!(p.part_areas(&hg), res.areas.to_vec(), "kill={kill}");
        }
        if kill <= 64 {
            assert_eq!(res.stop, StopReason::FaultInjected, "kill={kill}");
        }
    }
}

/// Killing FM after N completed passes behaves the same way.
#[test]
fn bipartition_pass_kill_sweep_never_panics() {
    let hg = small_hg(13);
    for kill in [1u64, 2, 3, 10, 100] {
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(5)
            .with_fault(FaultPlan::none().kill_after_passes(kill));
        let res = no_panic(&format!("kill_after_passes={kill}"), || {
            bipartition(&hg, &cfg)
        });
        assert!(
            matches!(
                res.stop,
                StopReason::FaultInjected | StopReason::Converged | StopReason::PassLimit
            ),
            "kill={kill}: stop {:?}",
            res.stop
        );
    }
}

/// Multi-start runs under faults and budgets: a typed error or a
/// best-so-far stats object, never a panic, and the first start always
/// completes when any start does.
#[test]
fn run_many_fault_and_budget_sweep() {
    let hg = small_hg(17);
    let base = BipartitionConfig::equal(&hg, 0.1).with_seed(7);
    let scenarios: Vec<(String, BipartitionConfig)> = vec![
        (
            "fault: moves=1".into(),
            base.clone()
                .with_fault(FaultPlan::none().kill_after_moves(1)),
        ),
        (
            "fault: moves=200".into(),
            base.clone()
                .with_fault(FaultPlan::none().kill_after_moves(200)),
        ),
        (
            "fault: passes=1".into(),
            base.clone()
                .with_fault(FaultPlan::none().kill_after_passes(1)),
        ),
        (
            "budget: wall=0ms".into(),
            base.clone().with_budget(Budget::wall_ms(0)),
        ),
        (
            "budget: wall=5ms".into(),
            base.clone().with_budget(Budget::wall_ms(5)),
        ),
        (
            "budget: moves=1".into(),
            base.clone().with_budget(Budget::none().with_max_moves(1)),
        ),
        (
            "budget: moves=129".into(),
            base.clone().with_budget(Budget::none().with_max_moves(129)),
        ),
    ];
    for (ctx, cfg) in scenarios {
        let out = no_panic(&ctx, || run_many(&hg, &cfg, 6));
        match out {
            Ok(stats) => {
                assert!(!stats.results.is_empty(), "{ctx}: empty stats");
                assert!(
                    stats.degradation.completed <= stats.degradation.requested,
                    "{ctx}"
                );
                // best() indexes a real entry even under degradation.
                let _ = stats.best();
            }
            Err(e) => assert!(
                matches!(
                    e,
                    PartitionError::BudgetExhausted { .. }
                        | PartitionError::InfeasibleLibrary { .. }
                ),
                "{ctx}: unexpected error kind {e}"
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Fault sweeps: k-way
// ---------------------------------------------------------------------

/// K-way under injected faults at every checkpoint kind: a feasible
/// degraded result or a typed error, never a panic.
#[test]
fn kway_fault_sweep_never_panics() {
    let hg = small_hg(19);
    let lib = DeviceLibrary::xc3000();
    let plans = [
        ("attempts=1", FaultPlan::none().kill_after_attempts(1)),
        ("attempts=2", FaultPlan::none().kill_after_attempts(2)),
        ("attempts=5", FaultPlan::none().kill_after_attempts(5)),
        ("moves=1", FaultPlan::none().kill_after_moves(1)),
        ("moves=1000", FaultPlan::none().kill_after_moves(1000)),
        ("passes=2", FaultPlan::none().kill_after_passes(2)),
    ];
    for (ctx, plan) in plans {
        let cfg = KWayConfig::new(lib.clone())
            .with_candidates(3)
            .with_seed(23)
            .with_max_passes(4)
            .with_fault(plan);
        match no_panic(ctx, || kway_partition(&hg, &cfg)) {
            Ok(res) => {
                res.placement
                    .validate(&hg)
                    .unwrap_or_else(|e| panic!("{ctx}: degraded placement invalid: {e:?}"));
                assert!(
                    res.degradation.fault_injected || !res.degradation.is_degraded(),
                    "{ctx}: fault hit but degradation silent"
                );
            }
            Err(PartitionError::BudgetExhausted { budget, .. }) => {
                assert_eq!(budget, "injected fault", "{ctx}");
            }
            Err(e) => panic!("{ctx}: unexpected error kind {e}"),
        }
    }
}

/// K-way under wall and move budgets: degraded-but-usable or typed
/// BudgetExhausted.
#[test]
fn kway_budget_sweep_never_panics() {
    let hg = small_hg(29);
    let lib = DeviceLibrary::xc3000();
    let budgets = [
        ("wall=0ms", Budget::wall_ms(0)),
        ("wall=10ms", Budget::wall_ms(10)),
        ("moves=1", Budget::none().with_max_moves(1)),
        ("moves=2000", Budget::none().with_max_moves(2000)),
    ];
    for (ctx, budget) in budgets {
        let cfg = KWayConfig::new(lib.clone())
            .with_candidates(3)
            .with_seed(31)
            .with_max_passes(4)
            .with_budget(budget);
        match no_panic(ctx, || kway_partition(&hg, &cfg)) {
            Ok(res) => {
                res.placement
                    .validate(&hg)
                    .unwrap_or_else(|e| panic!("{ctx}: degraded placement invalid: {e:?}"));
            }
            Err(PartitionError::BudgetExhausted { .. }) => {}
            Err(e) => panic!("{ctx}: unexpected error kind {e}"),
        }
    }
}

// ---------------------------------------------------------------------
// Infeasible and degenerate libraries
// ---------------------------------------------------------------------

/// Zero-capacity devices and empty libraries are typed construction
/// errors, not panics.
#[test]
fn degenerate_devices_are_typed_errors() {
    assert!(Device::try_new("Z", 0, 10, 1, 0.0, 1.0).is_err());
    assert!(Device::try_new("Z", 10, 0, 1, 0.0, 1.0).is_err());
    assert!(Device::try_new("Z", 10, 10, 1, 0.9, 0.5).is_err());
    assert!(Device::try_new("Z", 10, 10, 1, -0.1, 0.5).is_err());
    assert!(DeviceLibrary::try_new(vec![]).is_err());
}

/// A library whose only device can host zero CLBs is statically
/// infeasible for any non-empty circuit: typed error, zero attempts.
#[test]
fn zero_usable_capacity_library_is_statically_infeasible() {
    let hg = small_hg(37);
    let lib = DeviceLibrary::new(vec![Device::new("NIL", 16, 16, 1, 0.0, 0.0)]);
    let cfg = KWayConfig::new(lib).with_seed(1);
    match no_panic("zero-capacity library", || kway_partition(&hg, &cfg)) {
        Err(PartitionError::InfeasibleLibrary { attempts, .. }) => assert_eq!(attempts, 0),
        Err(e) => panic!("expected static InfeasibleLibrary, got error {e}"),
        Ok(_) => panic!("expected static InfeasibleLibrary, got a partition"),
    }
}

/// A library with far too few terminals per device forces the escalation
/// ladder to climb and ultimately report a typed error (or rescue a
/// degraded solution) — never panic, even though every carve fails.
#[test]
fn terminal_starved_library_escalates_to_typed_error() {
    let hg = small_hg(41);
    // One IOB per device: no real part can terminate on it.
    let lib = DeviceLibrary::new(vec![Device::new("T1", 256, 1, 1, 0.0, 1.0)]);
    let cfg = KWayConfig::new(lib)
        .with_seed(2)
        .with_candidates(1)
        .with_max_attempts(2)
        .with_max_passes(2);
    match no_panic("terminal-starved library", || kway_partition(&hg, &cfg)) {
        Err(PartitionError::InfeasibleLibrary { attempts, .. }) => {
            assert!(attempts > 0, "the ladder should have tried carving")
        }
        Err(PartitionError::BudgetExhausted { .. }) => {}
        Ok(res) => assert!(
            res.degradation.is_degraded(),
            "an impossible library cannot yield an undegraded result"
        ),
        Err(e) => panic!("unexpected error kind {e}"),
    }
}

// ---------------------------------------------------------------------
// Acceptance: wall budget on a Table-III-sized netlist
// ---------------------------------------------------------------------

/// A 50 ms wall budget on a Table-III benchmark returns promptly —
/// within one mandatory first start plus twice the budget — and still
/// carries at least one completed start.
#[test]
fn wall_budget_on_table_iii_netlist_returns_promptly() {
    let nl = bench_suite::build("s5378").expect("bench suite has s5378");
    let hg = map(&nl, &MapperConfig::xc3000())
        .expect("benchmarks map")
        .to_hypergraph(&nl);
    let base = BipartitionConfig::equal(&hg, 0.1).with_seed(9);

    // Calibrate: one unbudgeted start, timed. The budgeted run below is
    // allowed that long (its first start always completes) plus 2×budget.
    let t0 = std::time::Instant::now();
    let one = run_many(&hg, &base, 1).expect("single start succeeds");
    let one_start = t0.elapsed();
    assert_eq!(one.degradation.completed, 1);

    const BUDGET_MS: u64 = 50;
    let budgeted = base.clone().with_budget(Budget::wall_ms(BUDGET_MS));
    let t1 = std::time::Instant::now();
    let stats = run_many(&hg, &budgeted, 20).expect("budgeted run keeps its first start");
    let elapsed = t1.elapsed();

    assert!(stats.degradation.completed >= 1, "first start is mandatory");
    assert!(!stats.results.is_empty());
    let limit = one_start + std::time::Duration::from_millis(2 * BUDGET_MS) * 2;
    assert!(
        elapsed <= limit,
        "budgeted run took {elapsed:?}, limit {limit:?} (one start: {one_start:?})"
    );
    if stats.degradation.budget_exhausted {
        assert!(
            stats.degradation.completed < 20,
            "exhausted budget but claims all starts"
        );
    }
}
