//! End-to-end pipeline tests: generator → BLIF round-trip → technology
//! mapping → hypergraph → bipartitioning → k-way partitioning.

use netpart::prelude::*;

fn mapped(gates: usize, dffs: usize, seed: u64) -> (Netlist, Hypergraph) {
    let nl = generate(
        &GeneratorConfig::new(gates)
            .with_dff(dffs)
            .with_seed(seed)
            .with_clustering(0.75),
    );
    let hg = map(&nl, &MapperConfig::xc3000())
        .expect("generated netlists map")
        .to_hypergraph(&nl);
    (nl, hg)
}

#[test]
fn full_pipeline_bipartition() {
    let (nl, hg) = mapped(600, 40, 11);

    // The netlist survives a BLIF round trip.
    let text = write_blif(&nl);
    let back = parse_blif(&text).expect("own output parses");
    assert_eq!(back.n_gates(), nl.n_gates());
    assert_eq!(back.n_dffs(), nl.n_dffs());

    // Hypergraph stats are consistent with the netlist interface.
    let s = hg.stats();
    assert_eq!(
        s.iobs as usize,
        nl.primary_inputs().len() + nl.primary_outputs().len()
    );
    assert_eq!(s.dffs as usize, nl.n_dffs());

    // Bipartition with replication: placement invariants hold and the
    // engine's cut matches the placement's.
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(3)
        .with_replication(ReplicationMode::functional(0));
    let res = bipartition(&hg, &cfg);
    assert!(res.balanced);
    let p = res.placement.expect("functional placements export");
    p.validate(&hg).expect("placement invariants");
    assert_eq!(p.cut_size(&hg), res.cut);
    let areas = p.part_areas(&hg);
    assert_eq!(areas, res.areas.to_vec());
}

#[test]
fn full_pipeline_kway() {
    let (_, hg) = mapped(900, 60, 5);
    let lib = DeviceLibrary::xc3000();
    let cfg = KWayConfig::new(lib.clone())
        .with_candidates(3)
        .with_seed(17)
        .with_max_passes(8)
        .with_replication(ReplicationMode::functional(1));
    let res = kway_partition(&hg, &cfg).expect("feasible partition exists");
    res.placement.validate(&hg).expect("placement invariants");
    assert!(res.evaluation.feasible);
    // Device histogram and per-part evaluation agree.
    let hist = res.evaluation.device_histogram(lib.len());
    assert_eq!(hist.iter().sum::<usize>(), res.evaluation.k());
    // Re-evaluate from scratch: identical objective values.
    let again = evaluate(&hg, &res.placement, &lib, &res.devices);
    assert_eq!(again.total_cost, res.evaluation.total_cost);
    assert_eq!(again.avg_iob_util, res.evaluation.avg_iob_util);
}

#[test]
fn replication_never_worse_across_seeds() {
    let (_, hg) = mapped(500, 30, 23);
    for seed in 0..5 {
        let base = BipartitionConfig::equal(&hg, 0.1).with_seed(seed);
        let plain = bipartition(&hg, &base);
        let repl = bipartition(
            &hg,
            &base
                .clone()
                .with_replication(ReplicationMode::functional(0)),
        );
        assert!(
            repl.cut <= plain.cut,
            "seed {seed}: replication worsened the cut ({} vs {})",
            repl.cut,
            plain.cut
        );
    }
}

#[test]
fn threshold_restricts_replication() {
    let (_, hg) = mapped(500, 30, 29);
    let base = BipartitionConfig::equal(&hg, 0.1).with_seed(4);
    // A very high threshold admits almost no cells, so the result should
    // replicate no more cells than T = 0 does.
    let t0 = bipartition(
        &hg,
        &base
            .clone()
            .with_replication(ReplicationMode::functional(0)),
    );
    let t99 = bipartition(
        &hg,
        &base
            .clone()
            .with_replication(ReplicationMode::functional(99)),
    );
    assert!(t99.replicated_cells <= t0.replicated_cells);
}

#[test]
fn wide_gate_netlists_map_after_decomposition() {
    let mut nl = Netlist::new("wide");
    let ins: Vec<_> = (0..12)
        .map(|i| nl.add_primary_input(format!("i{i}")).unwrap())
        .collect();
    let y = nl.add_signal("y").unwrap();
    nl.add_gate("big", GateKind::And, ins, y).unwrap();
    nl.add_primary_output(y).unwrap();
    // Direct mapping fails on the 12-input gate…
    assert!(map(&nl, &MapperConfig::xc3000()).is_err());
    // …but succeeds after decomposition.
    let narrow = decompose_wide_gates(&nl, 5);
    let hg = map(&narrow, &MapperConfig::xc3000())
        .unwrap()
        .to_hypergraph(&narrow);
    assert!(hg.stats().clbs >= 2);
}
