//! Golden-snapshot tests: the experiment drivers must regenerate the
//! blessed CSVs under `results/` byte-for-byte.
//!
//! The goldens are produced by the pinned deterministic protocol (see
//! EXPERIMENTS.md): `cargo run --release --bin tables -- all` with no
//! flags. Wall-clock columns print `-` under [`Timing::Deterministic`],
//! so every cell is a pure function of the algorithm and the fixed
//! seeds — any diff here is a real behavioral change in the generator,
//! the mapper, or the partitioner, not noise.
//!
//! **Bless procedure** after an intentional change: rerun
//! `cargo run --release --bin tables -- all`, eyeball the diff under
//! `results/`, and commit it together with the change that caused it.
//!
//! The cheap exhibits (Tables I–II, Figure 3) run in the default test
//! pass; the partitioning exhibits (Table III at 20 runs × 9 full-scale
//! circuits, Tables IV–VII) take minutes and are `#[ignore]`d — CI's
//! release step (`cargo test --release -- --ignored`) covers them.

use netpart::experiments::{
    board_matrix, figure3, suite, table1, table2, table3, tables_4_to_7, Timing,
};

const BLESS_HINT: &str =
    "golden CSV drifted — if intentional, re-bless with `cargo run --release --bin tables -- all`";

fn golden(name: &str) -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()))
}

#[test]
fn table1_matches_golden() {
    assert_eq!(table1().to_csv(), golden("table1.csv"), "{BLESS_HINT}");
}

#[test]
fn table2_and_figure3_match_golden() {
    // Full-scale suite: these two exhibits need no partitioning runs,
    // so the suite build dominates and one build serves both.
    let s = suite(1, &[]);
    assert_eq!(table2(&s).to_csv(), golden("table2.csv"), "{BLESS_HINT}");
    assert_eq!(figure3(&s).to_csv(), golden("figure3.csv"), "{BLESS_HINT}");
}

/// Header contract: the first CSV line of every golden is the driver's
/// current column-header row. Runs in the cheap default pass (the
/// drivers are invoked on an *empty* suite, so no partitioning happens)
/// and catches column renames/reorders/additions that the `#[ignore]`d
/// full-protocol tests would only flag minutes into a release run.
#[test]
fn golden_csv_headers_match_the_drivers() {
    let header = |csv: String, name: &str| -> String {
        csv.lines()
            .next()
            .unwrap_or_else(|| panic!("{name} produced an empty CSV"))
            .to_string()
    };
    let expect = |csv: String, golden_name: &str| {
        let want = header(golden(golden_name), golden_name);
        let got = header(csv, golden_name);
        assert_eq!(got, want, "header drift in {golden_name} — {BLESS_HINT}");
    };
    expect(table1().to_csv(), "table1.csv");
    expect(table2(&[]).to_csv(), "table2.csv");
    expect(figure3(&[]).to_csv(), "figure3.csv");
    expect(
        table3(&[], 20, Timing::Deterministic).expect("empty suite").0.to_csv(),
        "table3.csv",
    );
    let (t4, t5, t6, t7, _) =
        tables_4_to_7(&[], 3, 2024, Timing::Deterministic).expect("empty suite");
    expect(t4.to_csv(), "table4.csv");
    expect(t5.to_csv(), "table5.csv");
    expect(t6.to_csv(), "table6.csv");
    expect(t7.to_csv(), "table7.csv");
    expect(
        board_matrix(&[], 3, 2024).expect("empty suite").0.to_csv(),
        "board_matrix.csv",
    );
}

#[test]
#[ignore = "full Table III protocol (20 runs x 9 full-scale circuits, ~2 min in release)"]
fn table3_matches_golden() {
    let s = suite(1, &[]);
    let (t, _) = table3(&s, 20, Timing::Deterministic).expect("suite circuits are satisfiable");
    assert_eq!(t.to_csv(), golden("table3.csv"), "{BLESS_HINT}");
}

#[test]
#[ignore = "full Tables IV-VII protocol (scale 6, 3 candidates, 5 thresholds x 9 circuits)"]
fn tables_4_to_7_match_golden() {
    let s = suite(6, &[]);
    let (t4, t5, t6, t7, _) =
        tables_4_to_7(&s, 3, 2024, Timing::Deterministic).expect("all records present");
    assert_eq!(t4.to_csv(), golden("table4.csv"), "{BLESS_HINT}");
    assert_eq!(t5.to_csv(), golden("table5.csv"), "{BLESS_HINT}");
    assert_eq!(t6.to_csv(), golden("table6.csv"), "{BLESS_HINT}");
    assert_eq!(t7.to_csv(), golden("table7.csv"), "{BLESS_HINT}");
}

#[test]
#[ignore = "full board-matrix protocol (scale 6, one bipartition + one k-way per circuit)"]
fn board_matrix_matches_golden() {
    let s = suite(6, &[]);
    let (t, _) = board_matrix(&s, 3, 2024).expect("suite circuits are satisfiable");
    assert_eq!(t.to_csv(), golden("board_matrix.csv"), "{BLESS_HINT}");
}
