//! End-to-end certificate round trips: every solution the optimizer
//! family produces must serialize to a certificate that the independent
//! verifier re-derives and accepts — and tampering with any claim must
//! be caught.

use netpart::prelude::*;
use netpart::verify::gen;

fn bipartition_cert(gates: usize, seed: u64, mode: ReplicationMode) -> (Hypergraph, String) {
    let hg = gen::mapped(gates, gates / 10, seed);
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(seed)
        .with_replication(mode);
    let stats = run_many(&hg, &cfg, 4).expect("suite circuit partitions");
    let cert = stats
        .certificate(&hg, &cfg)
        .expect("winning run exports a placement");
    (hg, cert.to_text())
}

#[test]
fn bipartition_certificate_round_trips_clean() {
    let (hg, text) = bipartition_cert(300, 11, ReplicationMode::None);
    let cert = SolutionCertificate::parse(&text).expect("own output parses");
    let report = verify(&hg, &cert);
    assert!(report.is_clean(), "honest certificate rejected: {report}");
    // The verifier's from-scratch cut equals the claimed cut set size.
    assert_eq!(report.recomputed().cut, cert.claims.cut_nets.len());
}

#[test]
fn replicated_bipartition_certificate_round_trips_clean() {
    // Functional replication exercises the output-mask legality and the
    // §II floating-input rule in the verifier.
    let (hg, text) = bipartition_cert(400, 13, ReplicationMode::functional(0));
    let cert = SolutionCertificate::parse(&text).expect("own output parses");
    let report = verify(&hg, &cert);
    assert!(report.is_clean(), "honest certificate rejected: {report}");
}

#[test]
fn kway_certificate_round_trips_clean_and_bit_exact() {
    let hg = gen::mapped(900, 80, 17);
    let cfg = KWayConfig::new(DeviceLibrary::xc3000())
        .with_candidates(3)
        .with_seed(17)
        .with_max_passes(8)
        .with_replication(ReplicationMode::functional(1));
    let res = kway_partition(&hg, &cfg).expect("feasible on XC3000");
    let cert = res.certificate(&hg, &cfg.library, cfg.seed);
    let text = cert.to_text();
    let parsed = SolutionCertificate::parse(&text).expect("own output parses");
    assert_eq!(parsed.to_text(), text, "serialization is a fixpoint");
    let report = verify(&hg, &parsed);
    assert!(report.is_clean(), "honest certificate rejected: {report}");
    // The independent recomputation reproduces the paper metrics
    // bit-for-bit, not just approximately.
    assert_eq!(report.recomputed().total_cost, Some(res.evaluation.total_cost));
    assert_eq!(
        report.recomputed().kbar.map(f64::to_bits),
        Some(res.evaluation.avg_iob_util.to_bits())
    );
    assert_eq!(report.recomputed().feasible, Some(true));
}

#[test]
fn engine_portfolio_certificates_round_trip_clean() {
    let hg = gen::mapped(500, 40, 23);
    let bcfg = BipartitionConfig::equal(&hg, 0.1).with_seed(23);
    let pres = portfolio_bipartition(&hg, &bcfg, 6, 2).expect("portfolio completes");
    let cert = pres
        .certificate(&hg, &bcfg)
        .expect("winner exports a placement");
    let report = verify(&hg, &SolutionCertificate::parse(&cert.to_text()).expect("parses"));
    assert!(report.is_clean(), "portfolio certificate rejected: {report}");

    let kcfg = KWayConfig::new(DeviceLibrary::xc3000())
        .with_candidates(2)
        .with_seed(23)
        .with_max_passes(8);
    let kres = portfolio_kway(&hg, &kcfg, 3, 2).expect("portfolio completes");
    let kcert = kres.certificate(&hg, &kcfg);
    let report = verify(&hg, &SolutionCertificate::parse(&kcert.to_text()).expect("parses"));
    assert!(report.is_clean(), "k-way portfolio certificate rejected: {report}");
}

#[test]
fn tampered_cost_claim_is_caught() {
    let hg = gen::mapped(600, 50, 31);
    let cfg = KWayConfig::new(DeviceLibrary::xc3000())
        .with_candidates(2)
        .with_seed(31)
        .with_max_passes(8);
    let res = kway_partition(&hg, &cfg).expect("feasible");
    let mut cert = res.certificate(&hg, &cfg.library, cfg.seed);
    let honest = cert.claims.total_cost.expect("k-way claims a cost");
    cert.claims.total_cost = Some(honest + 1);
    let report = verify(&hg, &cert);
    assert!(
        report.violations().iter().any(|v| v.code() == "cost-mismatch"),
        "inflated cost not flagged: {report}"
    );
}

#[test]
fn tampered_cut_claim_is_caught() {
    let (hg, text) = bipartition_cert(300, 37, ReplicationMode::None);
    let mut cert = SolutionCertificate::parse(&text).expect("parses");
    // Claim one extra cut net that the placement does not actually cut.
    let uncut = (0..cert.n_nets as u32)
        .find(|n| cert.claims.cut_nets.binary_search(n).is_err())
        .expect("some net is uncut");
    cert.claims.cut_nets.push(uncut);
    cert.claims.cut_nets.sort_unstable();
    let report = verify(&hg, &cert);
    assert!(
        report.violations().iter().any(|v| v.code() == "cut-net-not-cut"),
        "phantom cut claim not flagged: {report}"
    );
}

#[test]
fn wrong_circuit_is_a_mismatch_not_a_crash() {
    let (_, text) = bipartition_cert(300, 41, ReplicationMode::None);
    let cert = SolutionCertificate::parse(&text).expect("parses");
    let other = gen::mapped(280, 20, 99);
    let report = verify(&other, &cert);
    assert!(!report.is_clean());
    assert!(
        report
            .violations()
            .iter()
            .all(|v| v.code() == "circuit-mismatch"),
        "identity mismatch should short-circuit: {report}"
    );
}

#[test]
fn moved_cell_invalidates_claims() {
    let (hg, text) = bipartition_cert(300, 43, ReplicationMode::None);
    let mut cert = SolutionCertificate::parse(&text).expect("parses");
    // Flip one interior cell to the other side without updating any
    // claim: areas, terminals and the cut set all go stale at once.
    let entry = cert
        .cells
        .iter_mut()
        .find(|(id, copies)| {
            copies.len() == 1 && !hg.cell(CellId(*id)).is_terminal()
        })
        .expect("an unreplicated interior cell exists");
    entry.1[0].part ^= 1;
    let report = verify(&hg, &cert);
    assert!(!report.is_clean(), "stale claims accepted");
    assert!(
        report
            .violations()
            .iter()
            .any(|v| v.code() == "part-clb-mismatch"),
        "stale areas not flagged: {report}"
    );
}
