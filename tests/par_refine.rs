//! Jobs-invariance of the deterministic intra-run parallel refiner:
//! `--jobs N` must be byte-identical to `--jobs 1` — refined side
//! vectors, outcome telemetry and serialized certificates — because
//! proposal regions are fixed independently of the worker count and
//! commits replay in fixed region order. Pinned over the differential
//! seed matrix, on both flat-portfolio and multilevel-initialized
//! solutions.

use netpart::core::{par_refine_sides, BipartitionConfig, EngineState};
use netpart::engine::Engine;
use netpart::multilevel::MultilevelConfig;
use netpart::obs::NoopRecorder;
use netpart::verify::gen;

/// The pinned differential seed matrix (see `tests/differential.rs`).
const SEEDS: [u64; 3] = [11, 29, 47];

const JOBS: [usize; 3] = [1, 2, 8];

#[test]
fn refined_sides_and_outcomes_are_jobs_invariant() {
    for seed in SEEDS {
        let hg = gen::mapped(400, 35, seed);
        let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(seed);
        let base = netpart::core::bipartition(&hg, &cfg);
        assert!(base.balanced);
        let pl = base.placement.as_ref().expect("replication-free");
        let sides0: Vec<u8> = hg
            .cell_ids()
            .map(|c| pl.part_of(c).expect("single copy").0 as u8)
            .collect();
        let mut first: Option<(Vec<u8>, netpart::core::ParRefineOutcome)> = None;
        for jobs in JOBS {
            let mut sides = sides0.clone();
            let out = par_refine_sides(&hg, &cfg, &mut sides, jobs, 32, &NoopRecorder);
            assert!(out.cut_after <= out.cut_before, "refiner worsened the cut");
            assert!(
                cfg.balanced(EngineState::new(&hg, &sides).areas()),
                "refiner left the area window at seed {seed}"
            );
            match &first {
                None => first = Some((sides, out)),
                Some((s1, o1)) => {
                    assert_eq!(s1, &sides, "sides diverged at jobs {jobs}, seed {seed}");
                    assert_eq!(o1, &out, "outcome diverged at jobs {jobs}, seed {seed}");
                }
            }
        }
    }
}

/// End-to-end through the engine facade: portfolio → `par_refine` →
/// certificate, compared byte-for-byte across jobs levels.
fn engine_cert(hg: &netpart::hypergraph::Hypergraph, seed: u64, jobs: usize, ml: bool) -> String {
    let cfg = BipartitionConfig::equal(hg, 0.1).with_seed(seed);
    let mut engine = Engine::new(jobs);
    if ml {
        engine = engine.with_multilevel(Some(
            MultilevelConfig::new().with_min_cells(48).with_max_levels(8),
        ));
    }
    let (stats, _) = engine.bipartition_many(hg, &cfg, 6).expect("portfolio runs");
    let mut best = stats.best().clone();
    let out = engine
        .par_refine(hg, &cfg, &mut best)
        .expect("replication-free winner refines");
    assert!(out.cut_after <= out.cut_before);
    assert!(best.balanced, "refined winner left the window");
    best.certificate(hg, cfg.seed.wrapping_add(stats.best_start() as u64))
        .expect("refined winner exports a placement")
        .to_text()
}

#[test]
fn engine_par_refine_certificates_are_jobs_invariant_flat() {
    for seed in SEEDS {
        let hg = gen::mapped(400, 35, seed);
        let reference = engine_cert(&hg, seed, 1, false);
        for jobs in [2usize, 8] {
            assert_eq!(
                reference,
                engine_cert(&hg, seed, jobs, false),
                "flat certificate diverged at jobs {jobs}, seed {seed}"
            );
        }
    }
}

#[test]
fn engine_par_refine_certificates_are_jobs_invariant_multilevel() {
    for seed in SEEDS {
        let hg = gen::mapped(700, 50, seed);
        let reference = engine_cert(&hg, seed, 1, true);
        for jobs in [2usize, 8] {
            assert_eq!(
                reference,
                engine_cert(&hg, seed, jobs, true),
                "multilevel certificate diverged at jobs {jobs}, seed {seed}"
            );
        }
    }
}
