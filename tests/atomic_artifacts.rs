//! Atomicity of every CLI output artifact: `--trace-out`,
//! `--metrics-out` and `--certify-out` are written to a temp file and
//! published by a single rename at the end of the run. Killing the
//! process at any earlier moment must leave the *final* path either
//! absent or complete and valid — a reader polling for the artifact
//! can never observe a half-written file.

use std::path::{Path, PathBuf};
use std::process::Command;

fn netpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netpart"))
}

fn tdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("netpart-atomic-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

fn synth(dir: &Path, cells: &str, seed: &str) -> PathBuf {
    let blif = dir.join("input.blif");
    let out = netpart()
        .args(["synth", cells, blif.to_str().unwrap(), "--seed", seed])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    blif
}

/// If the artifact exists it must be complete: non-empty, every trace
/// line a JSON object, metrics/cert with their expected trailers.
fn assert_absent_or_complete(path: &Path, kind: &str) {
    if !path.exists() {
        return;
    }
    let text = std::fs::read_to_string(path).expect("artifact readable");
    assert!(!text.is_empty(), "{kind}: empty published artifact");
    assert!(
        text.ends_with('\n'),
        "{kind}: published artifact lacks final newline (torn?)"
    );
    match kind {
        "trace" => {
            for (i, line) in text.lines().enumerate() {
                assert!(
                    line.starts_with('{') && line.ends_with('}'),
                    "trace line {} is not a JSON object: {line}",
                    i + 1
                );
            }
        }
        "metrics" => assert!(
            text.starts_with("{\n") && text.ends_with("}\n") && text.contains("\"meta\""),
            "metrics snapshot malformed (truncated JSON?):\n{text}"
        ),
        "cert" => {
            // A published certificate must pass the independent oracle.
            let out = netpart()
                .args(["verify", path.to_str().unwrap()])
                .output()
                .expect("binary runs");
            assert_eq!(
                out.status.code(),
                Some(0),
                "published certificate invalid: {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        _ => unreachable!(),
    }
}

/// SIGKILL the partitioner at staggered moments mid-run; at every
/// kill point the three artifact paths are absent or complete.
#[cfg(unix)]
#[test]
fn killed_mid_run_never_publishes_partial_artifacts() {
    let dir = tdir("kill");
    // Big enough that the run takes hundreds of milliseconds.
    let blif = synth(&dir, "4000", "3");
    for (i, delay_ms) in [5u64, 25, 60, 120].iter().enumerate() {
        let trace = dir.join(format!("t{i}.jsonl"));
        let metrics = dir.join(format!("m{i}.txt"));
        let cert = dir.join(format!("c{i}.cert"));
        let mut child = netpart()
            .args([
                "kway",
                blif.to_str().unwrap(),
                "--candidates",
                "4",
                "--tasks",
                "2",
                "--trace-out",
                trace.to_str().unwrap(),
                "--metrics-out",
                metrics.to_str().unwrap(),
                "--certify-out",
                cert.to_str().unwrap(),
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("partitioner starts");
        std::thread::sleep(std::time::Duration::from_millis(*delay_ms));
        let _ = Command::new("kill")
            .args(["-9", &child.id().to_string()])
            .status();
        let _ = child.wait();
        assert_absent_or_complete(&trace, "trace");
        assert_absent_or_complete(&metrics, "metrics");
        assert_absent_or_complete(&cert, "cert");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The happy path publishes all three artifacts, valid and complete
/// (so the "absent" arm above cannot be hiding a never-writes bug).
#[test]
fn completed_run_publishes_all_artifacts() {
    let dir = tdir("complete");
    let blif = synth(&dir, "120", "7");
    let trace = dir.join("t.jsonl");
    let metrics = dir.join("m.txt");
    let cert = dir.join("c.cert");
    let out = netpart()
        .args([
            "kway",
            blif.to_str().unwrap(),
            "--candidates",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--certify-out",
            cert.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "kway failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for (path, kind) in [(&trace, "trace"), (&metrics, "metrics"), (&cert, "cert")] {
        assert!(path.exists(), "{kind} artifact missing after success");
        assert_absent_or_complete(path, kind);
    }
    // No stray temp files left behind by the atomic writers.
    let strays: Vec<_> = std::fs::read_dir(&dir)
        .expect("dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(strays.is_empty(), "stray temp files: {strays:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
