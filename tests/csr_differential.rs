//! Differential proof that the CSR-arena engine state
//! ([`EngineState`]) is semantically identical to the pointer-chasing
//! baseline it replaced ([`RefEngineState`], kept verbatim for one PR
//! as `netpart::core::baseline`).
//!
//! The two implementations share no traversal code: the baseline
//! sort+dedups incident nets per call and rescans whole pin lists,
//! while the CSR state walks flat index ranges over packed counters.
//! Driving both through identical randomized move scripts — every move
//! kind the pass loop can elect, including replication and
//! unreplication — and comparing every observable (hypothetical gains,
//! area deltas, realized gains, cut, areas, spanning count, per-net
//! occupancy and cut flags) therefore catches any accounting drift the
//! flat layout could have introduced.

use netpart::core::baseline::RefEngineState;
use netpart::core::{CellState, EngineState};
use netpart::hypergraph::{CellId, Hypergraph};
use netpart::verify::gen;

/// The pinned differential seed matrix (see `tests/differential.rs`).
const SEEDS: [u64; 3] = [11, 29, 47];

/// Moves scripted per circuit. Large enough to visit replication and
/// unreplication states repeatedly on every suite circuit.
const STEPS: usize = 400;

/// A self-contained SplitMix64 so the move script depends on nothing
/// but this file.
struct Script(u64);

impl Script {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Which replication states the script may elect.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    None,
    Traditional,
    Functional,
}

/// Every state the pass loop could put `c` into under `mode`, minus
/// the current one. Functional masks are non-empty proper subsets of
/// the cell's outputs; terminals never replicate.
fn candidates(hg: &Hypergraph, c: CellId, cur: CellState, mode: Mode) -> Vec<CellState> {
    let mut out = vec![
        CellState::Single { side: 0 },
        CellState::Single { side: 1 },
    ];
    let cell = hg.cell(c);
    if !cell.is_terminal() {
        match mode {
            Mode::Traditional => {
                out.push(CellState::Traditional { orig_side: 0 });
                out.push(CellState::Traditional { orig_side: 1 });
            }
            Mode::Functional if cell.m_outputs() >= 2 => {
                for mask in [1u32, (1 << (cell.m_outputs() - 1))] {
                    out.push(CellState::Functional {
                        orig_side: 0,
                        replica_mask: mask,
                    });
                    out.push(CellState::Functional {
                        orig_side: 1,
                        replica_mask: mask,
                    });
                }
            }
            _ => {}
        }
    }
    out.retain(|&s| s != cur);
    out
}

/// Compares every per-net observable of the two states.
fn assert_nets_equal(hg: &Hypergraph, csr: &EngineState<'_>, base: &RefEngineState<'_>) {
    for nt in hg.net_ids() {
        assert_eq!(
            csr.net_side_occupancy(nt),
            base.net_side_occupancy(nt),
            "occupancy diverged on net {}",
            hg.net(nt).name()
        );
        assert_eq!(
            csr.is_cut(nt),
            base.is_cut(nt),
            "cut flag diverged on net {}",
            hg.net(nt).name()
        );
    }
}

fn drive(seed: u64, mode: Mode) {
    let hg = gen::mapped(350, 30, seed);
    let n = hg.n_cells();
    let mut script = Script(seed ^ 0x6373_725f_6469_6666); // "csr_diff"
    let sides: Vec<u8> = (0..n).map(|_| (script.next() & 1) as u8).collect();
    let tw = [1i64, 2]; // asymmetric, so pad-cost gains are exercised
    let mut csr = EngineState::new_weighted(&hg, &sides, tw);
    let mut base = RefEngineState::new_weighted(&hg, &sides, tw);

    assert_eq!(csr.cut(), base.cut(), "initial cut");
    assert_eq!(csr.areas(), base.areas(), "initial areas");
    assert_eq!(csr.spanning_nets(), base.spanning_nets());
    assert_nets_equal(&hg, &csr, &base);

    for step in 0..STEPS {
        let c = CellId(script.below(n) as u32);
        let cur = csr.cell_state(c);
        assert_eq!(cur, base.cell_state(c), "state diverged at step {step}");
        let cands = candidates(&hg, c, cur, mode);
        for &cand in &cands {
            assert_eq!(
                csr.peek_gain(c, cand),
                base.peek_gain(c, cand),
                "peek_gain diverged at step {step}, cell {c:?}, cand {cand:?}"
            );
            assert_eq!(csr.area_delta(c, cand), base.area_delta(c, cand));
        }
        if cands.is_empty() {
            continue;
        }
        let pick = cands[script.below(cands.len())];
        let realized = csr.set_state(c, pick);
        assert_eq!(
            realized,
            base.set_state(c, pick),
            "realized gain diverged at step {step}, cell {c:?}, move {pick:?}"
        );
        assert_eq!(csr.cut(), base.cut(), "cut diverged at step {step}");
        assert_eq!(csr.areas(), base.areas(), "areas diverged at step {step}");
        assert_eq!(csr.spanning_nets(), base.spanning_nets());
        assert_eq!(csr.replicated_cells(), base.replicated_cells());
    }

    // Full end-of-script audit: every net, the CSR state's own
    // rebuild-and-compare validator, and the mirror constructor.
    assert_nets_equal(&hg, &csr, &base);
    assert!(csr.validate(), "CSR state failed self-validation");
    let mirror = RefEngineState::mirror_of(&csr);
    assert_eq!(mirror.cut(), csr.cut());
    assert_eq!(mirror.areas(), csr.areas());
    assert_eq!(mirror.replicated_cells(), csr.replicated_cells());
}

#[test]
fn csr_state_matches_baseline_without_replication() {
    for seed in SEEDS {
        drive(seed, Mode::None);
    }
}

#[test]
fn csr_state_matches_baseline_under_traditional_replication() {
    for seed in SEEDS {
        drive(seed, Mode::Traditional);
    }
}

#[test]
fn csr_state_matches_baseline_under_functional_replication() {
    for seed in SEEDS {
        drive(seed, Mode::Functional);
    }
}
