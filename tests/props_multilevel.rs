//! Property tests on the multilevel coarsening invariants: weight
//! conservation, pin-projection totality, single-pin-net elimination,
//! and cut/area exactness of projection — checked end to end through
//! the independent verifier.

//!
//! Gated behind the `proptest-tests` feature: `proptest` is a registry
//! dependency and the default build must stay hermetic (see Cargo.toml).
#![cfg(feature = "proptest-tests")]
use netpart::multilevel::cut_of_sides;
use netpart::prelude::*;
use netpart::verify::gen;
use proptest::prelude::*;

/// A configuration that coarsens the suite's small circuits for real.
fn engaged_ml() -> MultilevelConfig {
    MultilevelConfig::new()
        .with_min_cells(48)
        .with_max_levels(8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every level of every chain conserves total cell weight, never
    /// keeps a net spanning fewer than two clusters, and maps each
    /// coarse net's endpoint set to exactly the projected fine endpoint
    /// set (no pin appears from nowhere, none is lost).
    #[test]
    fn coarsening_invariants(
        gates in 300usize..900,
        dffs in 0usize..60,
        seed in 0u64..5_000,
    ) {
        let hg = gen::mapped(gates, dffs, seed);
        let chain = build_chain(&hg, &engaged_ml(), ReplicationMode::None, seed);
        let mut fine: &Hypergraph = &hg;
        for level in &chain {
            prop_assert_eq!(level.hg.total_area(), fine.total_area());
            prop_assert!(level.hg.n_cells() < fine.n_cells());
            // Survival: kept nets span ≥ 2 clusters; the map covers
            // exactly the kept set.
            let kept = level.net_map.iter().flatten().count();
            prop_assert_eq!(kept, level.hg.n_nets());
            for net in level.hg.nets() {
                let mut cells: Vec<u32> = net.endpoints().map(|e| e.cell.0).collect();
                cells.sort_unstable();
                cells.dedup();
                prop_assert!(cells.len() >= 2, "single-cluster net survived");
            }
            // Pin projection totality: a coarse net's endpoint set is
            // exactly the image of its fine net's endpoints.
            for (f, mapped) in level.net_map.iter().enumerate() {
                let Some(cn) = mapped else { continue };
                let mut projected: Vec<u32> = fine
                    .net(netpart::hypergraph::NetId(f as u32))
                    .endpoints()
                    .map(|e| level.cell_map[e.cell.0 as usize])
                    .collect();
                projected.sort_unstable();
                projected.dedup();
                let mut coarse: Vec<u32> = level
                    .hg
                    .net(netpart::hypergraph::NetId(*cn))
                    .endpoints()
                    .map(|e| e.cell.0)
                    .collect();
                coarse.sort_unstable();
                coarse.dedup();
                prop_assert_eq!(projected, coarse, "pin image mismatch on fine net {}", f);
            }
            fine = &level.hg;
        }
    }

    /// Projection is cut-exact: any coarse side assignment projects to
    /// a fine assignment with the identical cut at every level.
    #[test]
    fn projection_preserves_cut_accounting(
        gates in 300usize..800,
        seed in 0u64..5_000,
        side_seed in 0u64..1_000,
    ) {
        let hg = gen::mapped(gates, 30, seed);
        let chain = build_chain(&hg, &engaged_ml(), ReplicationMode::None, seed);
        let mut fine: &Hypergraph = &hg;
        // A self-contained splitmix-style side generator keeps this
        // test independent of the workspace RNG's stream layout.
        let mut state = side_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next_side = move || -> u8 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 1) as u8
        };
        for level in &chain {
            let coarse_sides: Vec<u8> =
                (0..level.hg.n_cells()).map(|_| next_side()).collect();
            let fine_sides = level.project_sides(&coarse_sides);
            prop_assert_eq!(
                cut_of_sides(&level.hg, &coarse_sides),
                cut_of_sides(fine, &fine_sides)
            );
            fine = &level.hg;
        }
    }

    /// End to end: every multilevel result exports a certificate the
    /// independent verifier accepts, and its reported cut and areas are
    /// the placement's.
    #[test]
    fn ml_results_verify_cleanly(seed in 0u64..2_000) {
        let hg = gen::mapped(600, 40, seed);
        let cfg = BipartitionConfig::equal(&hg, 0.15)
            .with_seed(seed)
            .with_replication(ReplicationMode::functional(0));
        let res = ml_bipartition(&hg, &cfg, &engaged_ml());
        prop_assert!(res.balanced);
        let p = res.placement.as_ref().expect("functional mode exports");
        prop_assert_eq!(p.cut_size(&hg), res.cut);
        prop_assert_eq!(p.part_areas(&hg), res.areas.to_vec());
        let cert = res.certificate(&hg, cfg.seed).expect("exports");
        let report = verify(&hg, &cert);
        prop_assert!(report.is_clean(), "verifier rejected: {report:?}");
    }
}
