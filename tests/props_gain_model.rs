//! Property tests: the paper's closed-form gain model (§III, eqs. 7–11)
//! must agree exactly with the engine's cut-delta computation, on random
//! mapped circuits and random placements.
//!
//! Gated behind the `proptest-tests` feature: `proptest` is a registry
//! dependency and the default build must stay hermetic (see Cargo.toml).
#![cfg(feature = "proptest-tests")]

use netpart::core::gain::{
    best_functional_gain, extract_vectors, functional_gain, single_move_gain, traditional_gain,
};
use netpart::core::{CellState, EngineState};
use netpart::prelude::*;
use netpart::verify::gen::mapped_with_sides;
use proptest::prelude::*;

/// True iff every pin of the cell is on a distinct net (the vector
/// model's implicit assumption).
fn distinct_nets(hg: &Hypergraph, c: CellId) -> bool {
    let cell = hg.cell(c);
    let mut nets: Vec<NetId> = cell.incident_nets().collect();
    nets.sort_unstable();
    nets.windows(2).all(|w| w[0] != w[1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq. 7 (single move) equals the engine's exact delta for every cell.
    #[test]
    fn eq7_matches_engine(seed in 0u64..1000, side_seed in 1u64..1000) {
        let (hg, sides) = mapped_with_sides(120, 8, seed, side_seed);
        let engine = EngineState::new(&hg, &sides);
        for c in hg.cell_ids() {
            if !distinct_nets(&hg, c) {
                continue;
            }
            let v = extract_vectors(&engine, c).expect("single cells have vectors");
            let side = sides[c.0 as usize];
            let formula = single_move_gain(&v);
            let exact = engine.peek_gain(c, CellState::Single { side: 1 - side });
            prop_assert_eq!(formula, exact, "cell {:?}", c);
        }
    }

    /// Eq. 8 (traditional replication) equals the engine's exact delta.
    #[test]
    fn eq8_matches_engine(seed in 0u64..1000, side_seed in 1u64..1000) {
        let (hg, sides) = mapped_with_sides(120, 8, seed, side_seed);
        let engine = EngineState::new(&hg, &sides);
        for c in hg.cell_ids() {
            if hg.cell(c).is_terminal() || !distinct_nets(&hg, c) {
                continue;
            }
            let v = extract_vectors(&engine, c).expect("single cells have vectors");
            let side = sides[c.0 as usize];
            let formula = traditional_gain(&v);
            let exact = engine.peek_gain(c, CellState::Traditional { orig_side: side });
            prop_assert_eq!(formula, exact, "cell {:?}", c);
        }
    }

    /// Eqs. 9–11 (functional replication) equal the engine's exact delta
    /// for every replica-output choice.
    #[test]
    fn eq9_to_11_match_engine(seed in 0u64..1000, side_seed in 1u64..1000) {
        let (hg, sides) = mapped_with_sides(120, 8, seed, side_seed);
        let engine = EngineState::new(&hg, &sides);
        for c in hg.cell_ids() {
            let cell = hg.cell(c);
            if cell.is_terminal() || cell.m_outputs() < 2 || !distinct_nets(&hg, c) {
                continue;
            }
            let v = extract_vectors(&engine, c).expect("single cells have vectors");
            let side = sides[c.0 as usize];
            let mut best_engine = i64::MIN;
            for o in 0..cell.m_outputs() {
                let formula = functional_gain(cell.adjacency(), &v, o);
                let exact = engine.peek_gain(
                    c,
                    CellState::Functional {
                        orig_side: side,
                        replica_mask: 1 << o,
                    },
                );
                prop_assert_eq!(formula, exact, "cell {:?} output {}", c, o);
                best_engine = best_engine.max(exact);
            }
            let (_, g) = best_functional_gain(cell.adjacency(), &v).expect("m >= 2");
            prop_assert_eq!(g, best_engine, "eq. 11 takes the max (cell {:?})", c);
        }
    }

    /// Applying any single state change realizes exactly the peeked gain,
    /// and incremental bookkeeping matches a from-scratch rebuild.
    #[test]
    fn realized_gain_matches_peek(seed in 0u64..500, side_seed in 1u64..500, pick in 0usize..64) {
        let (hg, sides) = mapped_with_sides(80, 6, seed, side_seed);
        let mut engine = EngineState::new(&hg, &sides);
        let logic: Vec<CellId> = hg
            .cell_ids()
            .filter(|&c| !hg.cell(c).is_terminal() && hg.cell(c).m_outputs() >= 2)
            .collect();
        prop_assume!(!logic.is_empty());
        let c = logic[pick % logic.len()];
        let side = sides[c.0 as usize];
        for st in [
            CellState::Single { side: 1 - side },
            CellState::Functional { orig_side: side, replica_mask: 1 },
            CellState::Traditional { orig_side: side },
        ] {
            let peek = engine.peek_gain(c, st);
            let before = engine.cut();
            let realized = engine.set_state(c, st);
            prop_assert_eq!(peek, realized);
            prop_assert_eq!(engine.cut() as i64, before as i64 - realized);
            prop_assert!(engine.validate(), "incremental state diverged");
            engine.set_state(c, CellState::Single { side });
            prop_assert!(engine.validate());
            prop_assert_eq!(engine.cut(), before);
        }
    }

    /// Across full FM passes — not just single probes — every applied
    /// move's realized cut delta equals the gain the selection structure
    /// predicted, in all three replication modes and for both selection
    /// strategies. `gain_repairs` counts exactly the applications whose
    /// realized delta diverged from the selection-time prediction, so a
    /// clean run means the incremental bucket updates never went stale.
    #[test]
    fn full_passes_never_go_stale(seed in 0u64..500, side_seed in 1u64..500) {
        let (hg, _) = mapped_with_sides(140, 10, seed, side_seed);
        for mode in [
            ReplicationMode::None,
            ReplicationMode::Traditional,
            ReplicationMode::functional(0),
        ] {
            for strategy in [SelectionStrategy::GainBuckets, SelectionStrategy::LazyHeap] {
                let cfg = BipartitionConfig::equal(&hg, 0.1)
                    .with_seed(side_seed)
                    .with_replication(mode)
                    .with_selection(strategy);
                let res = bipartition(&hg, &cfg);
                prop_assert_eq!(
                    res.gain_repairs, 0,
                    "{:?}/{:?}: {} applied moves diverged from predicted gain",
                    mode, strategy, res.gain_repairs
                );
                prop_assert!(res.balanced, "{:?}/{:?}: unbalanced", mode, strategy);
                if let Some(p) = &res.placement {
                    prop_assert_eq!(
                        p.cut_size(&hg), res.cut,
                        "{:?}/{:?}: reported cut disagrees with placement", mode, strategy
                    );
                }
            }
        }
    }
}
