//! Differential harness for the multilevel V-cycle through the engine:
//!
//! * **disabled multilevel ≡ flat** — an engine with
//!   `MultilevelConfig::disabled()` (or a `min_cells` floor the circuit
//!   never reaches) produces *certificate-identical* solutions to the
//!   flat engine, byte for byte, over the pinned seed matrix. This is
//!   the degenerate-identity contract that gives paper-suite parity by
//!   construction.
//! * **jobs 1 ≡ jobs 8 with multilevel enabled** — the V-cycle rides
//!   inside each portfolio start, so the engine's determinism contract
//!   must survive it unchanged, including when coarsening actually
//!   engages (a low `min_cells` floor forces real V-cycles here).

use netpart::engine::{bipartition_key, with_multilevel_key, ContentHash};
use netpart::prelude::*;
use netpart::verify::gen;

/// The pinned differential seed matrix (kept in lockstep with
/// `tests/differential.rs` and DESIGN.md §10).
const SEEDS: [u64; 3] = [11, 29, 47];

/// A configuration that makes the suite's small circuits coarsen for
/// real instead of falling through the `min_cells` floor.
fn engaged_ml() -> MultilevelConfig {
    MultilevelConfig::new()
        .with_min_cells(48)
        .with_max_levels(8)
}

fn engine_cert(
    hg: &Hypergraph,
    cfg: &BipartitionConfig,
    runs: usize,
    jobs: usize,
    ml: Option<MultilevelConfig>,
) -> String {
    let engine = Engine::new(jobs).with_multilevel(ml);
    let (res, _) = engine
        .bipartition_many(hg, cfg, runs)
        .expect("portfolio completes");
    res.certificate(hg, cfg)
        .expect("winner exports a placement")
        .to_text()
}

#[test]
fn disabled_multilevel_engine_is_flat_identical() {
    for seed in SEEDS {
        let hg = gen::mapped(350, 30, seed);
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(seed)
            .with_replication(ReplicationMode::functional(0));
        let flat = engine_cert(&hg, &cfg, 4, 1, None);
        for ml in [
            MultilevelConfig::disabled(),
            MultilevelConfig::new().with_min_cells(1_000_000),
        ] {
            let multi = engine_cert(&hg, &cfg, 4, 1, Some(ml));
            assert_eq!(flat, multi, "flat/multilevel diverged at seed {seed}");
        }
    }
}

#[test]
fn multilevel_bipartition_portfolio_is_jobs_invariant() {
    for seed in SEEDS {
        let hg = gen::mapped(400, 35, seed);
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(seed)
            .with_replication(ReplicationMode::functional(0));
        let texts: Vec<String> = [1, 8]
            .iter()
            .map(|&jobs| engine_cert(&hg, &cfg, 6, jobs, Some(engaged_ml())))
            .collect();
        assert_eq!(
            texts[0], texts[1],
            "multilevel jobs 1 vs 8 diverged at seed {seed}"
        );
    }
}

#[test]
fn multilevel_kway_portfolio_is_jobs_invariant() {
    for seed in SEEDS {
        let hg = gen::mapped(700, 60, seed);
        let cfg = KWayConfig::new(DeviceLibrary::xc3000())
            .with_candidates(2)
            .with_seed(seed)
            .with_max_passes(8);
        let texts: Vec<String> = [1, 8]
            .iter()
            .map(|&jobs| {
                let engine = Engine::new(jobs).with_multilevel(Some(engaged_ml()));
                let (res, _) = engine.kway(&hg, &cfg, 3).expect("portfolio completes");
                res.certificate(&hg, &cfg).to_text()
            })
            .collect();
        assert_eq!(
            texts[0], texts[1],
            "multilevel k-way jobs 1 vs 8 diverged at seed {seed}"
        );
    }
}

#[test]
fn multilevel_cache_keys_never_collide_with_flat() {
    let hg = gen::mapped(200, 20, 11);
    let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(11);
    let flat = bipartition_key(&hg, &cfg, 5);
    // A disabled request keys exactly like flat (it *is* flat), and an
    // enabled one never collides — nor do two enabled requests with
    // different knobs.
    assert_eq!(flat, with_multilevel_key(flat, None));
    let a = with_multilevel_key(flat, Some(&MultilevelConfig::new()));
    let b = with_multilevel_key(flat, Some(&engaged_ml()));
    assert_ne!(flat, a);
    assert_ne!(flat, b);
    assert_ne!(a, b);
    assert_ne!(
        MultilevelConfig::new().content_hash(),
        engaged_ml().content_hash()
    );
}
