//! The CLI face of the observability contract: `--trace-out` produces a
//! JSONL trace whose deterministic skeleton (after
//! [`netpart::obs::strip_timing`]) is byte-identical across `--jobs`
//! levels for a fixed seed; `--metrics-out` writes a snapshot whose
//! deterministic sections agree across jobs levels; and without `-v`
//! the flags keep stderr free of event noise.

use netpart::obs::strip_timing;
use std::path::PathBuf;
use std::process::Command;

fn netpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netpart"))
}

fn tmp() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netpart-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn synth(dir: &std::path::Path, gates: &str, seed: &str) -> PathBuf {
    let blif = dir.join(format!("synth-{gates}-{seed}.blif"));
    let out = netpart()
        .args([
            "synth",
            gates,
            blif.to_str().expect("utf8 path"),
            "--dff",
            "20",
            "--seed",
            seed,
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "synth failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    blif
}

/// Runs one traced command; returns (trace text, metrics text, stderr).
fn traced_run(
    dir: &std::path::Path,
    blif: &std::path::Path,
    sub: &str,
    jobs: &str,
) -> (String, String, String) {
    let trace = dir.join(format!("{sub}-{jobs}.jsonl"));
    let metrics = dir.join(format!("{sub}-{jobs}.json"));
    let mut cmd = netpart();
    cmd.args([sub, blif.to_str().expect("utf8 path"), "--seed", "5"]);
    match sub {
        "bipartition" => {
            cmd.args(["--runs", "5"]);
        }
        _ => {
            cmd.args(["--candidates", "4", "--tasks", "3"]);
        }
    }
    cmd.args([
        "--jobs",
        jobs,
        "--trace-out",
        trace.to_str().expect("utf8 path"),
        "--metrics-out",
        metrics.to_str().expect("utf8 path"),
    ]);
    let out = cmd.output().expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{sub} --jobs {jobs} stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        std::fs::read_to_string(&trace).expect("trace file written"),
        std::fs::read_to_string(&metrics).expect("metrics file written"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Drops the scheduling-dependent parts of a metrics snapshot: the
/// `meta.jobs` line and everything from the `timing` section on (the
/// section is last in the file by construction).
fn deterministic_metrics(metrics: &str) -> String {
    metrics
        .lines()
        .take_while(|l| !l.contains("\"timing\": {"))
        .filter(|l| !l.contains("\"jobs\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn bipartition_trace_skeleton_is_identical_across_jobs_levels() {
    let dir = tmp();
    let blif = synth(&dir, "350", "7");
    let (t1, m1, _) = traced_run(&dir, &blif, "bipartition", "1");
    let (t8, m8, _) = traced_run(&dir, &blif, "bipartition", "8");
    assert_ne!(t1, "", "trace must not be empty");
    assert_eq!(
        strip_timing(&t1),
        strip_timing(&t8),
        "stripped bipartition traces diverged between --jobs 1 and 8"
    );
    assert_eq!(
        deterministic_metrics(&m1),
        deterministic_metrics(&m8),
        "deterministic metrics sections diverged"
    );
    // The raw traces DO carry timing: the strip is load-bearing.
    assert!(t1.contains("\"timing\""), "expected timing fields in: {t1}");
}

#[test]
fn kway_trace_skeleton_is_identical_across_jobs_levels() {
    let dir = tmp();
    let blif = synth(&dir, "500", "9");
    let (t1, m1, _) = traced_run(&dir, &blif, "kway", "1");
    let (t8, m8, _) = traced_run(&dir, &blif, "kway", "8");
    let (s1, s8) = (strip_timing(&t1), strip_timing(&t8));
    assert_eq!(
        s1, s8,
        "stripped kway traces diverged between --jobs 1 and 8"
    );
    // The trace tells the paper's story: portfolio framing and the
    // paper-metric gauges at incumbent improvements.
    for needle in [
        "\"scope\":\"portfolio\",\"event\":\"begin\"",
        "\"scope\":\"portfolio\",\"event\":\"task\"",
        "\"scope\":\"paper\",\"event\":\"cost_k\"",
        "\"scope\":\"paper\",\"event\":\"kbar\"",
        "\"scope\":\"paper\",\"event\":\"d_psi\"",
    ] {
        assert!(s1.contains(needle), "missing {needle} in stripped trace");
    }
    assert_eq!(
        deterministic_metrics(&m1),
        deterministic_metrics(&m8),
        "deterministic metrics sections diverged"
    );
}

#[test]
fn metrics_snapshot_carries_paper_gauges_and_meta() {
    let dir = tmp();
    let blif = synth(&dir, "500", "11");
    let (_, metrics, _) = traced_run(&dir, &blif, "kway", "2");
    for needle in [
        "\"cmd\": \"kway\"",
        "\"seed\": \"5\"",
        "\"tasks\": \"3\"",
        "\"paper.cost_k\"",
        "\"paper.kbar\"",
        "\"paper.devices\"",
        "\"wall_ms\"",
    ] {
        assert!(
            needle.is_empty() || metrics.contains(needle),
            "missing {needle} in:\n{metrics}"
        );
    }
}

#[test]
fn trace_flags_keep_stderr_quiet_without_verbose() {
    // Without -v the only stderr lines are the existing portfolio/cache
    // notes — no structured-event spam.
    let dir = tmp();
    let blif = synth(&dir, "350", "13");
    let (_, _, stderr) = traced_run(&dir, &blif, "bipartition", "2");
    assert!(
        !stderr.contains("fm.pass") && !stderr.contains("portfolio.begin"),
        "structured events leaked to stderr without -v: {stderr}"
    );
}

#[test]
fn verbose_flag_prints_events_and_metrics_table() {
    let dir = tmp();
    let blif = synth(&dir, "350", "17");
    let out = netpart()
        .args([
            "bipartition",
            blif.to_str().expect("utf8 path"),
            "--runs",
            "3",
            "--seed",
            "5",
            "-v",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("portfolio.begin"),
        "expected Info events on stderr with -v: {stderr}"
    );
    assert!(
        stderr.contains("run metrics"),
        "expected the metrics table with -v: {stderr}"
    );
    // Trace-level per-pass events render as `fm.pass seed=…`; the
    // metrics table's `fm.passes` counter row must not be mistaken for
    // one.
    assert!(
        !stderr.contains("fm.pass "),
        "-v must not show Trace-level events: {stderr}"
    );
}
