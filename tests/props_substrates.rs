//! Property tests on the substrates: netlist generation, BLIF round
//! trips, decomposition, mapping invariants and placements.

//!
//! Gated behind the `proptest-tests` feature: `proptest` is a registry
//! dependency and the default build must stay hermetic (see Cargo.toml).
#![cfg(feature = "proptest-tests")]
use netpart::hypergraph::{CellCopy, Pin};
use netpart::prelude::*;
use netpart::techmap::Unit;
use netpart::verify::gen::gen_netlist;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated netlists always validate and honour their counts.
    #[test]
    fn generator_respects_config(
        gates in 20usize..300,
        dffs in 0usize..40,
        clustering in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let nl = gen_netlist(gates, dffs, clustering, seed);
        prop_assert!(nl.validate().is_ok());
        prop_assert_eq!(nl.n_dffs(), dffs);
        prop_assert_eq!(nl.n_gates(), gates + dffs);
    }

    /// BLIF write → parse preserves structure, and a second round trip is
    /// a fixpoint.
    #[test]
    fn blif_roundtrip(gates in 20usize..200, dffs in 0usize..20, seed in 0u64..10_000) {
        let nl = gen_netlist(gates, dffs, 0.6, seed);
        let text = write_blif(&nl);
        let back = parse_blif(&text).expect("own output parses");
        prop_assert_eq!(back.n_gates(), nl.n_gates());
        prop_assert_eq!(back.n_dffs(), nl.n_dffs());
        prop_assert_eq!(back.primary_inputs().len(), nl.primary_inputs().len());
        prop_assert_eq!(back.primary_outputs().len(), nl.primary_outputs().len());
        prop_assert_eq!(write_blif(&back), text);
    }

    /// Decomposition leaves narrow gates alone and always produces a
    /// mappable netlist with the same interface.
    #[test]
    fn decompose_is_mappable(k in 2usize..5, seed in 0u64..10_000) {
        let nl = gen_netlist(100, 10, 0.5, seed);
        let out = decompose_wide_gates(&nl, k);
        prop_assert!(out.validate().is_ok());
        prop_assert!(out.gates().iter().all(|g| g.kind.is_dff() || g.inputs.len() <= k));
        prop_assert_eq!(out.primary_inputs().len(), nl.primary_inputs().len());
        prop_assert_eq!(out.primary_outputs().len(), nl.primary_outputs().len());
        prop_assert_eq!(out.n_dffs(), nl.n_dffs());
        let cfg = MapperConfig {
            max_inputs: k,
            ..MapperConfig::xc3000()
        };
        prop_assert!(map(&out, &cfg).is_ok());
    }

    /// Mapping covers every DFF exactly once and every CLB respects the
    /// XC3000 constraints; the emitted hypergraph is consistent.
    #[test]
    fn mapping_invariants(gates in 50usize..300, dffs in 0usize..40, seed in 0u64..10_000) {
        let nl = gen_netlist(gates, dffs, 0.7, seed);
        let cfg = MapperConfig::xc3000();
        let m = map(&nl, &cfg).expect("generated netlists map");
        let mut total_dffs = 0usize;
        for clb in &m.clbs {
            prop_assert!(clb.units.len() <= cfg.max_outputs);
            let mut inputs: Vec<_> = clb
                .units
                .iter()
                .flat_map(|u| m.unit_support(&nl, u))
                .collect();
            inputs.sort_unstable();
            inputs.dedup();
            prop_assert!(inputs.len() <= cfg.max_inputs);
            let dffs_here: usize = clb.units.iter().map(|u| m.unit_dffs(u)).sum();
            prop_assert!(dffs_here <= cfg.max_dffs);
            total_dffs += dffs_here;
            let ext = clb
                .units
                .iter()
                .filter(|u| matches!(u, Unit::ExtReg { .. }))
                .count();
            prop_assert!(ext <= 1);
        }
        prop_assert_eq!(total_dffs, nl.n_dffs());

        let hg = m.to_hypergraph(&nl);
        let s = hg.stats();
        prop_assert_eq!(s.clbs as usize, m.n_clbs());
        prop_assert_eq!(s.dffs as usize, nl.n_dffs());
        prop_assert_eq!(
            s.iobs as usize,
            nl.primary_inputs().len() + nl.primary_outputs().len()
        );
    }

    /// Placement invariants: replication splits outputs exactly once,
    /// floats only inputs no kept output needs, and unreplication is an
    /// exact inverse for cut metrics.
    #[test]
    fn placement_replication_roundtrip(seed in 0u64..10_000, pick in 0usize..32) {
        let nl = gen_netlist(120, 10, 0.6, seed);
        let hg = map(&nl, &MapperConfig::xc3000())
            .expect("maps")
            .to_hypergraph(&nl);
        let mut p = Placement::new_uniform(&hg, 2, PartId(0));
        let two_out: Vec<CellId> = hg
            .cell_ids()
            .filter(|&c| hg.cell(c).m_outputs() == 2 && !hg.cell(c).is_terminal())
            .collect();
        prop_assume!(!two_out.is_empty());
        let c = two_out[pick % two_out.len()];
        let before_cut = p.cut_size(&hg);
        let before_terms = p.part_terminal_counts(&hg);

        p.replicate(&hg, c, PartId(1), 0b10).expect("valid split");
        p.validate(&hg).expect("invariants hold under replication");
        // Exactly the adjacency-implied pins are connected on each copy.
        let adj = hg.cell(c).adjacency();
        for j in 0..hg.cell(c).n_inputs() {
            let on_orig = p.pin_connected(&hg, c, 0, Pin::Input(j as u16));
            let on_repl = p.pin_connected(&hg, c, 1, Pin::Input(j as u16));
            let global = adj.is_global_input(j);
            prop_assert_eq!(on_orig, global || adj.depends(0, j));
            prop_assert_eq!(on_repl, global || adj.depends(1, j));
        }

        p.unreplicate(c, PartId(0)).expect("merge back");
        p.validate(&hg).expect("invariants hold after unreplication");
        prop_assert_eq!(p.cut_size(&hg), before_cut);
        prop_assert_eq!(p.part_terminal_counts(&hg), before_terms);
        prop_assert_eq!(p.copies(c), &[CellCopy { part: PartId(0), outputs: 0b11 }]);
    }

    /// Bipartition results always satisfy: reported cut equals the
    /// placement's cut; areas match; balance honours the config.
    #[test]
    fn bipartition_postconditions(seed in 0u64..2_000) {
        let nl = gen_netlist(150, 12, 0.7, seed);
        let hg = map(&nl, &MapperConfig::xc3000())
            .expect("maps")
            .to_hypergraph(&nl);
        let cfg = BipartitionConfig::equal(&hg, 0.15)
            .with_seed(seed)
            .with_replication(ReplicationMode::functional(0));
        let res = bipartition(&hg, &cfg);
        prop_assert!(res.balanced);
        let p = res.placement.expect("functional mode exports");
        p.validate(&hg).expect("placement invariants");
        prop_assert_eq!(p.cut_size(&hg), res.cut);
        prop_assert_eq!(p.part_areas(&hg), res.areas.to_vec());
        prop_assert_eq!(p.replicated_cell_count(), res.replicated_cells);
    }
}
