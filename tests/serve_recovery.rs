//! Subprocess-level service recovery: the same guarantees the
//! in-process matrix (`crates/serve/tests/recovery_matrix.rs`) proves,
//! but through the real binary with real process death — an injected
//! `abort()` at a journal transition, and an honest external `SIGKILL`
//! mid-run. Also pins the exit-code contract for backpressure
//! (exit 7 on a full queue).

use std::path::{Path, PathBuf};
use std::process::Command;

fn netpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netpart"))
}

fn tdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("netpart-srvtest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("temp dir");
    d
}

/// Synthesizes a small netlist into `dir/input.blif`.
fn synth(dir: &Path) -> PathBuf {
    let blif = dir.join("input.blif");
    let out = netpart()
        .args(["synth", "60", blif.to_str().unwrap(), "--seed", "5"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "synth failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    blif
}

fn submit(spool: &Path, blif: &Path, id: &str) {
    let out = netpart()
        .args([
            "submit",
            spool.to_str().unwrap(),
            blif.to_str().unwrap(),
            "--id",
            id,
            "--cmd",
            "kway",
            "--seed",
            "2",
            "--candidates",
            "2",
            "--tasks",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "submit {id} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn serve_drain(spool: &Path, extra: &[&str]) -> std::process::Output {
    let mut args = vec!["serve", spool.to_str().unwrap(), "--drain"];
    args.extend_from_slice(extra);
    netpart().args(&args).output().expect("binary runs")
}

fn verify_result(spool: &Path, id: &str) {
    let cert = spool.join("results").join(format!("{id}.cert"));
    assert!(cert.exists(), "no certificate for {id}");
    let out = netpart()
        .args(["verify", cert.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "certificate for {id} rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// `--fault-crash-at start` aborts the process mid-job (the observable
/// equivalent of `kill -9` between the `start` record and the result);
/// a fault-free restart recovers, re-runs and certifies the job.
#[test]
fn injected_abort_then_restart_recovers() {
    let spool = tdir("abort");
    let blif = synth(&spool);
    submit(&spool, &blif, "j1");

    let out = serve_drain(&spool, &["--fault-crash-at", "start"]);
    assert!(
        !out.status.success(),
        "server must die at the injected crash point"
    );
    // `queue` must show the interruption without repairing anything.
    let out = netpart()
        .args(["queue", spool.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(
        table.contains("j1") && table.contains("interrupted"),
        "queue does not show the interrupted job:\n{table}"
    );

    let out = serve_drain(&spool, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "recovery run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("recovery: 1 interrupted job(s) re-run"),
        "no recovery note:\n{stderr}"
    );
    verify_result(&spool, "j1");
    let _ = std::fs::remove_dir_all(&spool);
}

/// A real `SIGKILL` delivered mid-run: no injection, no cooperation.
/// The restarted server must settle every submitted job with verified
/// certificates, exactly once each.
#[cfg(unix)]
#[test]
fn sigkill_mid_run_then_restart_settles_all_jobs() {
    let spool = tdir("sigkill");
    let blif = synth(&spool);
    for id in ["k1", "k2", "k3"] {
        submit(&spool, &blif, id);
    }

    // Run *without* --drain so the server lingers; give the batch a
    // moment to be mid-flight, then SIGKILL.
    let mut child = netpart()
        .args(["serve", spool.to_str().unwrap(), "--poll-ms", "10"])
        .spawn()
        .expect("server starts");
    std::thread::sleep(std::time::Duration::from_millis(150));
    let kill = Command::new("kill")
        .args(["-9", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success(), "kill -9 failed");
    let status = child.wait().expect("reap");
    assert!(!status.success(), "SIGKILLed server cannot exit cleanly");

    let out = serve_drain(&spool, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "post-SIGKILL recovery failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for id in ["k1", "k2", "k3"] {
        verify_result(&spool, id);
    }
    // The journal must hold exactly one done per job.
    let wal = std::fs::read_to_string(spool.join("journal.wal")).expect("journal");
    for id in ["k1", "k2", "k3"] {
        let dones = wal
            .lines()
            .filter(|l| l.contains(" done ") && l.contains(&format!(" {id} ")))
            .count();
        assert_eq!(dones, 1, "{id} must complete exactly once:\n{wal}");
    }
    let _ = std::fs::remove_dir_all(&spool);
}

/// Submissions beyond `--max-queue` exit 7 and leave the spool
/// untouched.
#[test]
fn queue_full_submission_exits_seven()  {
    let spool = tdir("full");
    let blif = synth(&spool);
    submit(&spool, &blif, "q1");

    let out = netpart()
        .args([
            "submit",
            spool.to_str().unwrap(),
            blif.to_str().unwrap(),
            "--id",
            "q2",
            "--max-queue",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(7), "queue-full must exit 7");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("queue full"), "cause missing: {err}");
    assert!(
        !spool.join("jobs/q2.job").exists(),
        "refused submission leaked files"
    );
    let _ = std::fs::remove_dir_all(&spool);
}

/// Torn-write and disk-full injection through the real binary: the
/// first durable write is damaged, the process dies (torn) or the
/// job fails and retries (disk-full artifact paths) — and a restart
/// always converges to a verified result.
#[test]
fn injected_torn_and_disk_full_recover_via_cli() {
    for (flag, n) in [("--fault-torn-write", "1"), ("--fault-disk-full", "4")] {
        let spool = tdir(&format!("inj{}", n));
        let blif = synth(&spool);
        submit(&spool, &blif, "j1");
        // Faulted run: may die (torn crash) or complete degraded
        // (disk-full on an artifact journals a failure and retries).
        let _ = serve_drain(&spool, &[flag, n]);
        let out = serve_drain(&spool, &[]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{flag} {n}: recovery failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        verify_result(&spool, "j1");
        let _ = std::fs::remove_dir_all(&spool);
    }
}
