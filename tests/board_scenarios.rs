//! End-to-end multi-FPGA board scenarios through the CLI: partition →
//! route over a builtin board → certify → `netpart verify`.
//!
//! Each scenario synthesizes a circuit sized so the partitioner's part
//! count fits the board's site count (the part→site mapping is the
//! identity), then checks the whole loop: the topology objective line
//! prints, the certificate embeds the board section, and the
//! independent verifier re-derives routing feasibility, hops and
//! congestion from scratch and accepts. Also pinned here: certificate
//! byte-identity across `--jobs` levels under `--board`, and the exit-2
//! contract when a placement occupies more parts than the board has
//! sites.

use std::path::PathBuf;
use std::process::Command;

fn netpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netpart"))
}

/// A per-test temp dir (removed on drop) with a synthesized circuit.
struct Lab {
    dir: PathBuf,
}

impl Lab {
    fn new(tag: &str, gates: u32) -> Lab {
        let dir = std::env::temp_dir().join(format!(
            "netpart-board-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let lab = Lab { dir };
        let out = netpart()
            .args([
                "synth",
                &gates.to_string(),
                lab.blif().to_str().unwrap(),
                "--seed",
                "3",
            ])
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "synth failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        lab
    }

    fn blif(&self) -> PathBuf {
        self.dir.join("circuit.blif")
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Lab {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn run(args: &[&str]) -> (Option<i32>, String, String) {
    let out = netpart().args(args).output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The full loop for one builtin board: partition, route, certify,
/// verify. `cmd` selects bipartition (2-site boards) or kway.
fn scenario(tag: &str, gates: u32, board: &str, cmd: &str) {
    let lab = Lab::new(tag, gates);
    let cert = lab.path("scenario.cert");
    let (code, stdout, stderr) = run(&[
        cmd,
        lab.blif().to_str().unwrap(),
        "--seed",
        "11",
        "--board",
        board,
        "--certify-out",
        cert.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{cmd} failed: {stderr}");
    assert!(
        stdout.contains(&format!("board {board}: routed ")),
        "no topology objective line: {stdout}"
    );
    let text = std::fs::read_to_string(&cert).expect("certificate written");
    assert!(
        text.lines().any(|l| l.starts_with("board ")),
        "certificate lacks the board section:\n{text}"
    );
    assert!(
        text.lines().any(|l| l.starts_with("claim hops ")),
        "certificate lacks the hops claim:\n{text}"
    );
    let (code, stdout, stderr) = run(&["verify", cert.to_str().unwrap()]);
    assert_eq!(code, Some(0), "verify rejected {board}: {stderr}");
    assert!(
        stdout.contains("hops = ") && stdout.contains("congestion = "),
        "verdict lacks the re-derived routing terms: {stdout}"
    );
}

#[test]
fn direct2_scenario_partitions_routes_and_verifies() {
    scenario("direct2", 800, "direct2", "bipartition");
}

#[test]
fn mesh2x2_scenario_partitions_routes_and_verifies() {
    scenario("mesh2x2", 1000, "mesh2x2", "kway");
}

#[test]
fn star8_scenario_partitions_routes_and_verifies() {
    scenario("star8", 1400, "star8", "kway");
}

#[test]
fn certificates_are_byte_identical_across_jobs_levels_under_board() {
    // --tasks pins the portfolio width so the reduction is
    // jobs-invariant; the board section (routes, hops, congestion) must
    // then be byte-identical too, because routing is a pure function of
    // the winning placement.
    let lab = Lab::new("jobs", 1000);
    let mut certs = Vec::new();
    for jobs in ["1", "8"] {
        let cert = lab.path(&format!("jobs{jobs}.cert"));
        let (code, _, stderr) = run(&[
            "kway",
            lab.blif().to_str().unwrap(),
            "--seed",
            "11",
            "--tasks",
            "4",
            "--jobs",
            jobs,
            "--board",
            "mesh2x2",
            "--certify-out",
            cert.to_str().unwrap(),
        ]);
        assert_eq!(code, Some(0), "jobs {jobs} failed: {stderr}");
        certs.push(std::fs::read(&cert).expect("certificate written"));
    }
    assert_eq!(
        certs[0], certs[1],
        "certificate bytes diverge between --jobs 1 and --jobs 8"
    );
}

#[test]
fn more_parts_than_sites_exits_two() {
    // 1400 gates k-way partitions into 3 parts; the 2-site direct link
    // cannot host them under the identity part→site mapping.
    let lab = Lab::new("overflow", 1400);
    let (code, _, stderr) = run(&[
        "kway",
        lab.blif().to_str().unwrap(),
        "--seed",
        "11",
        "--board",
        "direct2",
    ]);
    assert_eq!(code, Some(2), "expected invalid-input exit: {stderr}");
    assert!(
        stderr.contains("device sites"),
        "stderr lacks the site-count cause: {stderr}"
    );
}

#[test]
fn board_events_land_in_the_trace() {
    let lab = Lab::new("trace", 800);
    let trace = lab.path("run.jsonl");
    let (code, _, stderr) = run(&[
        "bipartition",
        lab.blif().to_str().unwrap(),
        "--seed",
        "11",
        "--board",
        "direct2",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    let text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(
        text.contains("\"scope\":\"board\""),
        "no board.* events in the trace"
    );
    assert!(
        text.contains("\"event\":\"routed\""),
        "no board.routed event"
    );
}
