//! The CLI face of the engine's determinism contract: for a fixed seed,
//! `--jobs N` prints byte-identical stdout to `--jobs 1` (worker
//! statistics go to stderr precisely so this holds), and the
//! portfolio paths never change the exit-code contract.

use std::path::PathBuf;
use std::process::Command;

fn netpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netpart"))
}

fn synth(dir: &std::path::Path, gates: &str, seed: &str) -> PathBuf {
    std::fs::create_dir_all(dir).expect("temp dir");
    let blif = dir.join(format!("synth-{gates}-{seed}.blif"));
    let out = netpart()
        .args([
            "synth",
            gates,
            blif.to_str().expect("utf8 path"),
            "--seed",
            seed,
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "synth failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    blif
}

fn tmp() -> PathBuf {
    std::env::temp_dir().join(format!("netpart-cli-jobs-{}", std::process::id()))
}

#[test]
fn bipartition_stdout_is_identical_across_jobs_levels() {
    let blif = synth(&tmp(), "300", "7");
    let run = |jobs: &str| {
        let out = netpart()
            .args([
                "bipartition",
                blif.to_str().expect("utf8 path"),
                "--runs",
                "6",
                "--seed",
                "5",
                "--jobs",
                jobs,
            ])
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "jobs={jobs} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let reference = run("1");
    assert_eq!(run("2"), reference, "--jobs 2 diverged from --jobs 1");
    assert_eq!(run("8"), reference, "--jobs 8 diverged from --jobs 1");
}

#[test]
fn kway_stdout_is_identical_across_jobs_levels_for_fixed_tasks() {
    let blif = synth(&tmp(), "400", "9");
    let run = |jobs: &str| {
        let out = netpart()
            .args([
                "kway",
                blif.to_str().expect("utf8 path"),
                "--candidates",
                "4",
                "--seed",
                "2",
                "--tasks",
                "3",
                "--jobs",
                jobs,
            ])
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "jobs={jobs} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let reference = run("1");
    assert_eq!(run("2"), reference, "--jobs 2 diverged from --jobs 1");
    assert_eq!(run("4"), reference, "--jobs 4 diverged from --jobs 1");
}

#[test]
fn observability_flags_leave_stdout_identical_across_jobs_levels() {
    // --trace-out / --metrics-out route the run through the engine even
    // at --jobs 1, and must not disturb the stdout contract: with the
    // flags, stdout stays byte-identical across jobs levels AND equal
    // to the flag-free run (trace and metrics go to files, events to
    // stderr only under -v).
    let dir = tmp();
    let blif = synth(&dir, "300", "7");
    let run = |jobs: &str, observed: bool| {
        let mut cmd = netpart();
        cmd.args([
            "bipartition",
            blif.to_str().expect("utf8 path"),
            "--runs",
            "6",
            "--seed",
            "5",
            "--jobs",
            jobs,
        ]);
        if observed {
            let trace = dir.join(format!("obs-{jobs}.jsonl"));
            let metrics = dir.join(format!("obs-{jobs}.json"));
            cmd.args([
                "--trace-out",
                trace.to_str().expect("utf8 path"),
                "--metrics-out",
                metrics.to_str().expect("utf8 path"),
            ]);
        }
        let out = cmd.output().expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "jobs={jobs} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let bare = run("1", false);
    let observed = run("1", true);
    assert_eq!(
        observed, bare,
        "--trace-out/--metrics-out changed stdout at --jobs 1"
    );
    assert_eq!(run("2", true), bare, "observed --jobs 2 diverged");
    assert_eq!(run("8", true), bare, "observed --jobs 8 diverged");
}

#[test]
fn budgeted_portfolio_bipartition_still_exits_zero() {
    // A zero wall budget leaves only the guaranteed first start — a
    // degraded result (note on stderr), never a failure.
    let blif = synth(&tmp(), "300", "11");
    let out = netpart()
        .args([
            "bipartition",
            blif.to_str().expect("utf8 path"),
            "--runs",
            "8",
            "--budget-ms",
            "0",
            "--jobs",
            "4",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("note:"),
        "expected a degradation note, got: {err}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 runs:"), "stdout: {stdout}");
}

#[test]
fn cache_flag_reports_stats_on_stderr() {
    let blif = synth(&tmp(), "200", "13");
    let out = netpart()
        .args([
            "bipartition",
            blif.to_str().expect("utf8 path"),
            "--runs",
            "3",
            "--cache",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cache:"), "expected cache stats, got: {err}");
}
