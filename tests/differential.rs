//! Differential harness: independent implementations that claim to
//! compute the same thing must produce *certificate-identical*
//! solutions — compared byte-for-byte through the serialized
//! [`SolutionCertificate`], so every claim (placement, masks, cut set,
//! areas, terminals, metrics) is covered at once.
//!
//! Two equivalences, each over the fixed seed matrix [`SEEDS`] (the
//! seeds CI pins; see DESIGN.md §10):
//!
//! * **GainBuckets ≡ LazyHeap** — the incremental gain-bucket ladder
//!   and the lazy-heap baseline select identical move sequences
//!   (LIFO + lowest-cell-id tie order), so the winning solutions match.
//! * **jobs 1 ≡ jobs 8** — the parallel portfolio engine's determinism
//!   contract: thread count never changes the winning solution.

use netpart::prelude::*;
use netpart::verify::gen;

/// The pinned differential seed matrix. Changing these invalidates the
/// cross-references in DESIGN.md §10 — update both together.
const SEEDS: [u64; 3] = [11, 29, 47];

fn cert_text(hg: &Hypergraph, cfg: &BipartitionConfig, runs: usize) -> String {
    run_many(hg, cfg, runs)
        .expect("suite circuit partitions")
        .certificate(hg, cfg)
        .expect("winner exports a placement")
        .to_text()
}

#[test]
fn gain_buckets_and_lazy_heap_are_certificate_identical() {
    for seed in SEEDS {
        for mode in [ReplicationMode::None, ReplicationMode::functional(0)] {
            let hg = gen::mapped(350, 30, seed);
            let base = BipartitionConfig::equal(&hg, 0.1)
                .with_seed(seed)
                .with_replication(mode);
            let buckets = cert_text(
                &hg,
                &base.clone().with_selection(SelectionStrategy::GainBuckets),
                3,
            );
            let heap = cert_text(
                &hg,
                &base.clone().with_selection(SelectionStrategy::LazyHeap),
                3,
            );
            assert_eq!(
                buckets, heap,
                "strategies diverged at seed {seed} with {mode:?}"
            );
        }
    }
}

#[test]
fn bipartition_portfolio_is_jobs_invariant() {
    for seed in SEEDS {
        let hg = gen::mapped(400, 35, seed);
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(seed)
            .with_replication(ReplicationMode::functional(0));
        let texts: Vec<String> = [1, 8]
            .iter()
            .map(|&jobs| {
                portfolio_bipartition(&hg, &cfg, 6, jobs)
                    .expect("portfolio completes")
                    .certificate(&hg, &cfg)
                    .expect("winner exports a placement")
                    .to_text()
            })
            .collect();
        assert_eq!(texts[0], texts[1], "jobs 1 vs 8 diverged at seed {seed}");
    }
}

#[test]
fn kway_portfolio_is_jobs_invariant() {
    for seed in SEEDS {
        let hg = gen::mapped(700, 60, seed);
        let cfg = KWayConfig::new(DeviceLibrary::xc3000())
            .with_candidates(2)
            .with_seed(seed)
            .with_max_passes(8)
            .with_replication(ReplicationMode::functional(1));
        let texts: Vec<String> = [1, 8]
            .iter()
            .map(|&jobs| {
                portfolio_kway(&hg, &cfg, 3, jobs)
                    .expect("portfolio completes")
                    .certificate(&hg, &cfg)
                    .to_text()
            })
            .collect();
        assert_eq!(texts[0], texts[1], "jobs 1 vs 8 diverged at seed {seed}");
    }
}

#[test]
fn sequential_harness_matches_single_job_portfolio() {
    // The engine wraps `run_start`; for any seed the sequential harness
    // and a one-worker portfolio must elect the same winner.
    for seed in SEEDS {
        let hg = gen::mapped(300, 25, seed);
        let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(seed);
        let seq = cert_text(&hg, &cfg, 5);
        let par = portfolio_bipartition(&hg, &cfg, 5, 1)
            .expect("portfolio completes")
            .certificate(&hg, &cfg)
            .expect("winner exports a placement")
            .to_text();
        assert_eq!(seq, par, "sequential vs portfolio diverged at seed {seed}");
    }
}
