//! Randomized property suite for the board-topology subsystem.
//!
//! Hand-rolled generators over `netpart-rng` (the hermetic build has no
//! `proptest` registry crate; see the `proptest-tests` feature note in
//! `Cargo.toml`) — every case is a pure function of its seed, so a
//! failure report is a two-integer reproducer. The cheap sweeps run in
//! the default pass; the `#[ignore]`d deep sweeps ride CI's release
//! `--ignored` step.
//!
//! Properties:
//!
//! * every route is a connected, duplicate-free channel set spanning
//!   the demand's sites, and loads/hops re-derive exactly;
//! * a board whose channels all have capacity ≥ the demand count is
//!   capacity-legal (congestion 0);
//! * congestion is monotone in channel capacity and routes are
//!   byte-identical under capacity changes (the router is
//!   capacity-oblivious by contract);
//! * the board digest is invariant under site renaming and channel
//!   reordering, and sensitive to capacity changes.

use netpart::prelude::*;
use netpart_rng::Rng;

/// Builds a random connected board: a random spanning tree plus a few
/// extra channels, with random capacities/hops/widths.
fn random_board(rng: &mut Rng, max_capacity: u32) -> Board {
    let n_sites = 2 + rng.gen_range(0..7);
    let sites: Vec<String> = (0..n_sites).map(|i| format!("s{i}")).collect();
    let mut text = String::from("board random\n");
    for s in &sites {
        text.push_str(&format!("site {s}\n"));
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for b in 1..n_sites {
        // Spanning tree: each site links to a random earlier one.
        edges.push((rng.gen_range(0..b), b));
    }
    for _ in 0..rng.gen_range(0..n_sites) {
        let a = rng.gen_range(0..n_sites);
        let b = rng.gen_range(0..n_sites);
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    for (a, b) in edges {
        let capacity = 1 + rng.gen_range(0..max_capacity as usize);
        let hop = 1 + rng.gen_range(0..5);
        let width = 1 + rng.gen_range(0..4);
        text.push_str(&format!(
            "channel {} {} capacity={capacity} hop={hop} width={width}\n",
            sites[a], sites[b]
        ));
    }
    text.push_str("end board\n");
    parse_board(&text).expect("generated boards are well-formed")
}

/// Random cut-net demands: each net touches 2..=n_sites distinct sites.
fn random_demands(rng: &mut Rng, board: &Board, max_nets: usize) -> Vec<NetDemand> {
    let n = rng.gen_range(1..max_nets + 1);
    (0..n as u32)
        .map(|net| {
            let k = 2 + rng.gen_range(0..board.n_sites() - 1);
            let mut sites: Vec<u32> = (0..board.n_sites() as u32).collect();
            rng.shuffle(&mut sites);
            sites.truncate(k);
            sites.sort_unstable();
            NetDemand { net, sites }
        })
        .collect()
}

/// Path-halving union-find `find`.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

/// Asserts a routing's internal consistency against its board and
/// demands: channel ids valid and duplicate-free per route, every
/// demand's sites connected by its route, loads and hops re-derived.
fn assert_routing_valid(board: &Board, demands: &[NetDemand], routing: &Routing) {
    assert_eq!(routing.routes.len(), demands.len());
    let mut loads = vec![0u32; board.n_channels()];
    let mut hops = 0u64;
    for (route, demand) in routing.routes.iter().zip(demands) {
        assert_eq!(route.net, demand.net);
        let mut seen = vec![false; board.n_channels()];
        let mut parent: Vec<u32> = (0..board.n_sites() as u32).collect();
        for &c in &route.channels {
            let ch = board.channels()[c as usize];
            assert!(!seen[c as usize], "duplicate channel {c} in net {}", route.net);
            seen[c as usize] = true;
            loads[c as usize] += 1;
            hops += u64::from(ch.hop);
            let (ra, rb) = (find(&mut parent, ch.a), find(&mut parent, ch.b));
            parent[ra as usize] = rb;
        }
        let root = find(&mut parent, demand.sites[0]);
        for &s in &demand.sites[1..] {
            assert_eq!(
                find(&mut parent, s),
                root,
                "net {} leaves site {s} disconnected",
                route.net
            );
        }
    }
    assert_eq!(routing.loads, loads, "load bookkeeping drifted");
    assert_eq!(routing.hops, hops, "hop bookkeeping drifted");
}

fn sweep_route_validity(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let mut rng = Rng::seed_from_u64(seed);
        let board = random_board(&mut rng, 8);
        let demands = random_demands(&mut rng, &board, 24);
        let routing = route_nets(&board, &demands).expect("in-range demands route");
        assert_routing_valid(&board, &demands, &routing);
    }
}

#[test]
fn routes_are_valid_spanning_channel_sets() {
    sweep_route_validity(0..40);
}

#[test]
#[ignore = "deep sweep (400 random boards)"]
fn routes_are_valid_spanning_channel_sets_deep() {
    sweep_route_validity(40..440);
}

fn sweep_generous_capacity(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let mut rng = Rng::seed_from_u64(seed);
        // Every channel's capacity (≥ 64) exceeds the demand count
        // (≤ 24), so no channel can overflow.
        let board = {
            let b = random_board(&mut rng, 1);
            let text = b
                .to_text()
                .lines()
                .map(|l| l.replace("capacity=1", "capacity=64"))
                .collect::<Vec<_>>()
                .join("\n");
            parse_board(&text).expect("capacity rewrite keeps the board well-formed")
        };
        let demands = random_demands(&mut rng, &board, 24);
        let routing = route_nets(&board, &demands).expect("routes");
        let objective = TopologyObjective::evaluate(&board, &routing);
        assert!(objective.capacity_legal(), "seed {seed}: {objective}");
        assert_eq!(objective.congestion, 0);
        assert!(objective.max_channel_util <= 1.0);
    }
}

#[test]
fn generous_boards_are_capacity_legal() {
    sweep_generous_capacity(0..40);
}

#[test]
#[ignore = "deep sweep (400 random boards)"]
fn generous_boards_are_capacity_legal_deep() {
    sweep_generous_capacity(40..440);
}

/// Rebuilds `board` with one channel's capacity replaced.
fn with_capacity(board: &Board, channel: usize, capacity: u32) -> Board {
    let mut n_channel_lines = 0usize;
    let text = board
        .to_text()
        .lines()
        .map(|line| {
            if line.starts_with("channel ") {
                let this = n_channel_lines;
                n_channel_lines += 1;
                if this == channel {
                    let cap = board.channels()[channel].capacity;
                    return line.replace(
                        &format!("capacity={cap}"),
                        &format!("capacity={capacity}"),
                    );
                }
            }
            line.to_string()
        })
        .collect::<Vec<_>>()
        .join("\n");
    parse_board(&text).expect("capacity rewrite keeps the board well-formed")
}

fn sweep_capacity_monotonicity(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let mut rng = Rng::seed_from_u64(seed);
        let board = random_board(&mut rng, 4);
        let demands = random_demands(&mut rng, &board, 24);
        let routing = route_nets(&board, &demands).expect("routes");
        let base = TopologyObjective::evaluate(&board, &routing);
        let channel = rng.gen_range(0..board.n_channels());
        let cap = board.channels()[channel].capacity;
        for delta in [1u32, 8, 64] {
            let raised = with_capacity(&board, channel, cap + delta);
            let r2 = route_nets(&raised, &demands).expect("routes");
            // The router is capacity-oblivious: routes (and therefore
            // hops and loads) are byte-identical, so congestion is
            // *exactly* monotone nonincreasing in any capacity raise.
            assert_eq!(r2.routes, routing.routes, "seed {seed}: routes moved");
            assert_eq!(r2.loads, routing.loads);
            let obj = TopologyObjective::evaluate(&raised, &r2);
            assert!(
                obj.congestion <= base.congestion,
                "seed {seed}: capacity +{delta} raised congestion {} -> {}",
                base.congestion,
                obj.congestion
            );
        }
        if cap > 1 {
            let lowered = with_capacity(&board, channel, cap - 1);
            let r3 = route_nets(&lowered, &demands).expect("routes");
            assert_eq!(r3.routes, routing.routes);
            let obj = TopologyObjective::evaluate(&lowered, &r3);
            assert!(obj.congestion >= base.congestion, "seed {seed}");
        }
    }
}

#[test]
fn congestion_is_monotone_in_channel_capacity() {
    sweep_capacity_monotonicity(0..40);
}

#[test]
#[ignore = "deep sweep (400 random boards)"]
fn congestion_is_monotone_in_channel_capacity_deep() {
    sweep_capacity_monotonicity(40..440);
}

fn sweep_digest_invariance(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let mut rng = Rng::seed_from_u64(seed);
        let board = random_board(&mut rng, 8);
        // Rename every site and shuffle the channel lines; the digest
        // keys channels by normalized endpoint indices, so neither
        // transformation may change it.
        let mut site_lines = Vec::new();
        let mut channel_lines = Vec::new();
        let renamed_text = board
            .to_text()
            .lines()
            .map(|l| {
                let mut l = l.to_string();
                for i in (0..board.n_sites()).rev() {
                    l = l.replace(&format!("s{i}"), &format!("renamed_{i}"));
                }
                l
            })
            .collect::<Vec<String>>();
        for l in &renamed_text {
            if l.starts_with("site ") {
                site_lines.push(l.clone());
            } else if l.starts_with("channel ") {
                channel_lines.push(l.clone());
            }
        }
        rng.shuffle(&mut channel_lines);
        let shuffled = format!(
            "board renamed\n{}\n{}\nend board\n",
            site_lines.join("\n"),
            channel_lines.join("\n")
        );
        let twin = parse_board(&shuffled).expect("renamed board parses");
        assert_eq!(board.digest(), twin.digest(), "seed {seed}");
        // ... and it is sensitive to a capacity change.
        let channel = rng.gen_range(0..board.n_channels());
        let bumped = with_capacity(&board, channel, board.channels()[channel].capacity + 1);
        assert_ne!(board.digest(), bumped.digest(), "seed {seed}");
    }
}

#[test]
fn digest_is_invariant_under_renaming_and_reordering() {
    sweep_digest_invariance(0..40);
}

#[test]
#[ignore = "deep sweep (400 random boards)"]
fn digest_is_invariant_under_renaming_and_reordering_deep() {
    sweep_digest_invariance(40..440);
}
