//! The CLI's exit-code contract: 0 for success (including degraded
//! results), 1 for I/O/parse failures, 2 for usage errors. Codes 3–5
//! (infeasible / budget / internal) come from `PartitionError` and are
//! exercised at the library layer in `tests/fault_injection.rs`; the
//! built-in XC3000 library makes them hard to trigger from the CLI on
//! small inputs.

use std::path::PathBuf;
use std::process::Command;

fn netpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netpart"))
}

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

#[test]
fn stats_on_good_blif_exits_zero() {
    let out = netpart()
        .args(["stats", data("good_tiny.blif").to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn parse_failure_exits_one_with_line_number() {
    let out = netpart()
        .args([
            "stats",
            data("bad_unknown_directive.blif").to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line "), "stderr lacks a line number: {err}");
}

#[test]
fn missing_file_exits_one() {
    let out = netpart()
        .args(["stats", "/nonexistent/nope.blif"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn unknown_flag_exits_two() {
    let out = netpart()
        .args(["stats", data("good_tiny.blif").to_str().unwrap(), "--bogus"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn budgeted_bipartition_is_degraded_but_exits_zero() {
    // Synthesize a circuit, then partition it under a tight wall budget:
    // the run may be degraded (note on stderr) but still exits 0.
    let dir = std::env::temp_dir().join(format!("netpart-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let blif = dir.join("synth.blif");
    let out = netpart()
        .args(["synth", "500", blif.to_str().unwrap(), "--seed", "3"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "synth failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = netpart()
        .args([
            "bipartition",
            blif.to_str().unwrap(),
            "--runs",
            "8",
            "--budget-ms",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "degraded runs still succeed; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("best cut"), "no summary printed: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
