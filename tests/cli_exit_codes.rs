//! The CLI's exit-code contract: 0 for success (including degraded
//! results), 1 for I/O/parse failures, 2 for usage errors, 6 for a
//! certificate that `netpart verify` rejects — malformed or with
//! claims the independent re-evaluation contradicts. Codes 3–5
//! (infeasible / budget / internal) come from `PartitionError` and are
//! exercised at the library layer in `tests/fault_injection.rs`; the
//! built-in XC3000 library makes them hard to trigger from the CLI on
//! small inputs.
//!
//! The malformed-BLIF corpus includes hostile encodings: CRLF line
//! endings (line numbers must not drift), a structurally valid but
//! empty `.model` (parses, then partitions as invalid input, exit 2)
//! and a file truncated mid-token (line-numbered parse error, exit 1).
//! Exit 7 (queue backpressure) is exercised in `tests/serve_recovery.rs`.
//!
//! The malformed-certificate corpus under `tests/data/` derives from
//! `cert_small_ok.cert` (a real k-way run on `verify_small.blif`, seed
//! 7) by hand mutation: each `cert_*.cert` neighbour breaks exactly one
//! rule the original obeys.
//!
//! The malformed-`.board` corpus (`board_*.board`) exercises the board
//! parser's line-numbered error contract through `--board`: each file
//! breaks exactly one grammar or validity rule, and the reported line
//! must be the physical 1-based line that introduced the problem — also
//! under CRLF endings.

use std::path::PathBuf;
use std::process::Command;

fn netpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netpart"))
}

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

#[test]
fn stats_on_good_blif_exits_zero() {
    let out = netpart()
        .args(["stats", data("good_tiny.blif").to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn parse_failure_exits_one_with_line_number() {
    let out = netpart()
        .args([
            "stats",
            data("bad_unknown_directive.blif").to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line "), "stderr lacks a line number: {err}");
}

#[test]
fn missing_file_exits_one() {
    let out = netpart()
        .args(["stats", "/nonexistent/nope.blif"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn crlf_blif_keeps_exact_line_numbers() {
    // The whole file uses \r\n line endings; the stray cover row sits
    // on physical line 6 and the reported line number must not drift.
    let out = netpart()
        .args(["stats", data("bad_crlf_stray_cover.blif").to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 6"), "wrong line under CRLF: {err}");
    assert!(
        err.contains("cover row outside .names"),
        "wrong cause: {err}"
    );
}

#[test]
fn empty_model_parses_but_partitions_as_invalid_input() {
    // `.model` + `.end` with nothing in between is structurally valid
    // BLIF (stats accepts it), but partitioning an empty hypergraph is
    // invalid input: exit 2, not a crash and not exit 1.
    let path = data("bad_empty_model.blif");
    let out = netpart()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "empty model still parses");
    for cmd in ["bipartition", "kway"] {
        let out = netpart()
            .args([cmd, path.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{cmd} on empty model");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("empty hypergraph"), "{cmd}: {err}");
    }
}

#[test]
fn truncated_mid_token_blif_exits_one_with_line_number() {
    // The file ends inside the `.names` token list, with no trailing
    // newline: the parser must still report a line-numbered error for
    // the dangling gate rather than accept or panic.
    let out = netpart()
        .args(["stats", data("bad_truncated_names.blif").to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 6"), "no line number: {err}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = netpart()
        .args(["stats", data("good_tiny.blif").to_str().unwrap(), "--bogus"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

/// Runs `bipartition` on the good netlist with a corpus `.board` file,
/// returning `(exit_code, stderr)`. Board loading happens after the
/// (tiny) solve, so the exit code isolates the board error path.
fn bipartition_with_board(board: &str) -> (Option<i32>, String) {
    let out = netpart()
        .args([
            "bipartition",
            data("good_tiny.blif").to_str().unwrap(),
            "--board",
            data(board).to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn duplicate_board_site_exits_one_with_its_line() {
    let (code, err) = bipartition_with_board("board_dup_site.board");
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("line 5"), "wrong line: {err}");
    assert!(err.contains("duplicate site `a`"), "wrong cause: {err}");
}

#[test]
fn phantom_channel_endpoint_exits_one_with_its_line() {
    let (code, err) = bipartition_with_board("board_phantom_channel.board");
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("line 5"), "wrong line: {err}");
    assert!(
        err.contains("channel endpoint `ghost` is not a declared site"),
        "wrong cause: {err}"
    );
}

#[test]
fn zero_capacity_channel_exits_one_with_its_line() {
    let (code, err) = bipartition_with_board("board_zero_capacity.board");
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("line 5"), "wrong line: {err}");
    assert!(
        err.contains("capacity must be positive"),
        "wrong cause: {err}"
    );
}

#[test]
fn truncated_board_exits_one_pinned_to_the_last_line() {
    let (code, err) = bipartition_with_board("board_truncated.board");
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("line 4"), "wrong line: {err}");
    assert!(err.contains("truncated"), "wrong cause: {err}");
}

#[test]
fn crlf_board_keeps_exact_line_numbers() {
    // The whole file uses \r\n endings; the zero-hop channel sits on
    // physical line 5 and the reported number must not drift.
    let (code, err) = bipartition_with_board("board_crlf.board");
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("line 5"), "wrong line under CRLF: {err}");
    assert!(err.contains("hop must be positive"), "wrong cause: {err}");
}

#[test]
fn missing_board_file_exits_one() {
    let out = netpart()
        .args([
            "bipartition",
            data("good_tiny.blif").to_str().unwrap(),
            "--board",
            "/nonexistent/nope.board",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read board"), "{err}");
}

#[test]
fn budgeted_bipartition_is_degraded_but_exits_zero() {
    // Synthesize a circuit, then partition it under a tight wall budget:
    // the run may be degraded (note on stderr) but still exits 0.
    let dir = std::env::temp_dir().join(format!("netpart-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let blif = dir.join("synth.blif");
    let out = netpart()
        .args(["synth", "500", blif.to_str().unwrap(), "--seed", "3"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "synth failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = netpart()
        .args([
            "bipartition",
            blif.to_str().unwrap(),
            "--runs",
            "8",
            "--budget-ms",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "degraded runs still succeed; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("best cut"), "no summary printed: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs `netpart verify` on a corpus certificate with the netlist
/// override pinned, returning `(exit_code, stderr)`.
fn verify_cert(name: &str) -> (Option<i32>, String) {
    let out = netpart()
        .args([
            "verify",
            data(name).to_str().unwrap(),
            "--netlist",
            data("verify_small.blif").to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn honest_certificate_verifies_with_exit_zero() {
    let (code, err) = verify_cert("cert_small_ok.cert");
    assert_eq!(code, Some(0), "honest certificate rejected: {err}");
}

#[test]
fn truncated_certificate_exits_six() {
    let (code, err) = verify_cert("cert_truncated.cert");
    assert_eq!(code, Some(6));
    assert!(err.contains("truncated"), "stderr lacks the cause: {err}");
}

#[test]
fn duplicate_cell_certificate_exits_six() {
    let (code, err) = verify_cert("cert_duplicate_cell.cert");
    assert_eq!(code, Some(6));
    assert!(err.contains("duplicate-cell"), "stderr lacks the code: {err}");
}

#[test]
fn phantom_net_certificate_exits_six() {
    let (code, err) = verify_cert("cert_phantom_net.cert");
    assert_eq!(code, Some(6));
    assert!(err.contains("phantom-net"), "stderr lacks the code: {err}");
}

#[test]
fn infeasible_device_id_certificate_exits_six() {
    let (code, err) = verify_cert("cert_bad_device.cert");
    assert_eq!(code, Some(6));
    assert!(
        err.contains("device-out-of-range"),
        "stderr lacks the code: {err}"
    );
}

#[test]
fn certify_then_verify_round_trips_through_the_cli() {
    // The full loop a user runs: partition with --certify-out, then feed
    // the certificate straight back through `netpart verify`.
    let dir = std::env::temp_dir().join(format!("netpart-cert-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cert = dir.join("roundtrip.cert");
    let out = netpart()
        .args([
            "kway",
            data("verify_small.blif").to_str().unwrap(),
            "--seed",
            "9",
            "--candidates",
            "2",
            "--certify-out",
            cert.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "kway failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = netpart()
        .args(["verify", cert.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "fresh certificate rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("certificate OK"), "no verdict: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
