//! Differential harness for the resource-vector generalization.
//!
//! [`Device`] historically stored the paper's 5-tuple `(c, t, d, l, u)`
//! as two scalars; it now stores a named [`ResourceVec`]. The contract
//! of that refactor is *observable identity*: every accessor, the
//! feasibility window, the library's device selection, the evaluator's
//! cost/utilization figures and the certificate bytes must be exactly
//! what the scalar implementation produced.
//!
//! `RefDevice` below is a from-scratch reimplementation of the original
//! scalar arithmetic (kept deliberately independent of `netpart_fpga`).
//! The harness drives both implementations over seeded random inputs at
//! the pinned seeds 11, 29 and 47 and demands equality — any divergence
//! is a behavioral regression of the port, not noise.

use netpart::prelude::*;
use netpart_rng::Rng;

const SEEDS: [u64; 3] = [11, 29, 47];

/// The pre-ResourceVec device: scalar fields, the paper's arithmetic,
/// transcribed from the original implementation.
struct RefDevice {
    clbs: u32,
    iobs: u32,
    price: u64,
    min_util: f64,
    max_util: f64,
}

impl RefDevice {
    fn min_clbs(&self) -> u64 {
        (self.min_util * f64::from(self.clbs)).ceil() as u64
    }

    fn max_clbs(&self) -> u64 {
        (self.max_util * f64::from(self.clbs)).floor() as u64
    }

    fn fits(&self, clbs: u64, terminals: u64) -> bool {
        clbs >= self.min_clbs() && clbs <= self.max_clbs() && terminals <= u64::from(self.iobs)
    }

    fn cost_per_clb(&self) -> f64 {
        self.price as f64 / f64::from(self.clbs)
    }

    fn display(&self, name: &str) -> String {
        format!(
            "{} (c={}, t={}, d={}, l={:.2}, u={:.2})",
            name, self.clbs, self.iobs, self.price, self.min_util, self.max_util
        )
    }
}

fn random_pair(rng: &mut Rng) -> (Device, RefDevice) {
    let clbs = 1 + rng.gen_range(0..512) as u32;
    let iobs = 1 + rng.gen_range(0..256) as u32;
    let price = 1 + rng.gen_range(0..10_000) as u64;
    let a = rng.gen_f64();
    let b = rng.gen_f64();
    let (min_util, max_util) = (a.min(b), a.max(b));
    (
        Device::new("R", clbs, iobs, price, min_util, max_util),
        RefDevice {
            clbs,
            iobs,
            price,
            min_util,
            max_util,
        },
    )
}

#[test]
fn device_arithmetic_matches_the_scalar_reference() {
    for seed in SEEDS {
        let mut rng = Rng::seed_from_u64(seed);
        for case in 0..200 {
            let (dev, reference) = random_pair(&mut rng);
            assert_eq!(dev.clbs(), reference.clbs, "seed {seed} case {case}");
            assert_eq!(dev.iobs(), reference.iobs);
            assert_eq!(dev.min_clbs(), reference.min_clbs(), "seed {seed} case {case}");
            assert_eq!(dev.max_clbs(), reference.max_clbs(), "seed {seed} case {case}");
            assert_eq!(
                dev.cost_per_clb().to_bits(),
                reference.cost_per_clb().to_bits(),
                "seed {seed} case {case}: cost_per_clb drifted"
            );
            assert_eq!(dev.to_string(), reference.display("R"), "seed {seed} case {case}");
            for _ in 0..20 {
                let clbs = rng.gen_range(0..768) as u64;
                let terminals = rng.gen_range(0..384) as u64;
                assert_eq!(
                    dev.fits(clbs, terminals),
                    reference.fits(clbs, terminals),
                    "seed {seed} case {case}: fits({clbs}, {terminals}) diverged"
                );
            }
        }
    }
}

#[test]
fn library_selection_matches_the_scalar_reference() {
    let lib = DeviceLibrary::xc3000();
    let reference: Vec<RefDevice> = lib
        .iter()
        .map(|d| RefDevice {
            clbs: d.clbs(),
            iobs: d.iobs(),
            price: d.price(),
            min_util: d.min_util(),
            max_util: d.max_util(),
        })
        .collect();
    for seed in SEEDS {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..500 {
            let clbs = rng.gen_range(0..400) as u64;
            let terminals = rng.gen_range(0..200) as u64;
            // min_by_key keeps the first minimum, so the reference scan
            // reproduces the library's tie-breaking exactly.
            let want = reference
                .iter()
                .enumerate()
                .filter(|(_, d)| d.fits(clbs, terminals))
                .min_by_key(|(_, d)| d.price)
                .map(|(i, _)| i);
            let got = lib
                .cheapest_fitting(clbs, terminals)
                .and_then(|d| lib.index_of(d.name()));
            assert_eq!(got, want, "cheapest_fitting({clbs}, {terminals}) diverged");
        }
    }
}

/// End-to-end identity: k-way partitioning + evaluation + certificate
/// serialization at the pinned seeds. The certificate text is a total
/// function of the solution, so byte-equality of two in-process runs
/// plus the scalar-reference device checks above pin the whole chain;
/// the `#[ignore]`d golden-table suite covers the archived CSVs.
#[test]
fn kway_certificates_are_stable_across_runs_at_the_pinned_seeds() {
    let nl = generate(&GeneratorConfig::new(700).with_seed(5));
    let hg = map(&nl, &MapperConfig::xc3000())
        .expect("maps")
        .to_hypergraph(&nl);
    let lib = DeviceLibrary::xc3000();
    for seed in SEEDS {
        let cfg = KWayConfig::new(lib.clone())
            .with_candidates(4)
            .with_seed(seed)
            .with_max_passes(8)
            .with_replication(ReplicationMode::functional(1));
        let a = kway_partition(&hg, &cfg).expect("partitions");
        let b = kway_partition(&hg, &cfg).expect("partitions");
        assert_eq!(
            a.evaluation.total_cost, b.evaluation.total_cost,
            "seed {seed}: cost unstable"
        );
        assert_eq!(
            a.evaluation.avg_iob_util.to_bits(),
            b.evaluation.avg_iob_util.to_bits(),
            "seed {seed}: k̄ unstable"
        );
        let cert_a = a.certificate(&hg, &lib, seed).to_text();
        let cert_b = b.certificate(&hg, &lib, seed).to_text();
        assert_eq!(cert_a, cert_b, "seed {seed}: certificate bytes unstable");
        // The evaluation the certificate claims must be reproduced by
        // re-running the evaluator on the exported placement.
        let re = evaluate(&hg, &a.placement, &lib, &a.devices);
        assert_eq!(re.total_cost, a.evaluation.total_cost, "seed {seed}");
    }
}
