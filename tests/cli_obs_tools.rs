//! The operational-telemetry CLI surface: `netpart trace
//! <summarize|validate|diff>` over `--trace-out` documents,
//! `--profile-out` span profiles, and the service's `metrics.prom`
//! exposition rendered by `netpart serve-status`.

use netpart::obs::{parse_json, parse_prometheus};
use std::path::PathBuf;
use std::process::Command;

fn netpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netpart"))
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netpart-obs-tools-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "command failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn synth(dir: &std::path::Path, gates: &str, seed: &str) -> PathBuf {
    let blif = dir.join(format!("synth-{gates}-{seed}.blif"));
    run_ok(netpart().args(["synth", gates, blif.to_str().expect("utf8"), "--seed", seed]));
    blif
}

/// Runs a traced command and returns the trace path.
fn traced(dir: &std::path::Path, blif: &std::path::Path, extra: &[&str], tag: &str) -> PathBuf {
    let trace = dir.join(format!("{tag}.jsonl"));
    let mut cmd = netpart();
    cmd.args([
        "bipartition",
        blif.to_str().expect("utf8"),
        "--runs",
        "3",
        "--seed",
        "5",
        "--trace-out",
        trace.to_str().expect("utf8"),
    ]);
    cmd.args(extra);
    run_ok(&mut cmd);
    trace
}

#[test]
fn trace_validate_accepts_flat_and_multilevel_traces() {
    let dir = tmp("validate");
    let blif = synth(&dir, "400", "7");
    for (extra, tag) in [(&[][..], "flat"), (&["--multilevel"][..], "ml")] {
        let trace = traced(&dir, &blif, extra, tag);
        let (stdout, _) = run_ok(netpart().args(["trace", "validate", trace.to_str().expect("utf8")]));
        assert!(stdout.starts_with("ok:"), "unexpected validate output: {stdout}");
    }
}

#[test]
fn trace_validate_rejects_schema_violations_with_exit_2() {
    let dir = tmp("reject");
    // Key order violated: `event` before `scope`.
    let bad = dir.join("bad.jsonl");
    std::fs::write(
        &bad,
        "{\"event\":\"begin\",\"scope\":\"portfolio\",\"level\":\"info\",\"fields\":{}}\n",
    )
    .expect("write");
    let out = netpart()
        .args(["trace", "validate", bad.to_str().expect("utf8")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "schema violations must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "violation not located: {stderr}");
}

#[test]
fn trace_diff_is_clean_across_jobs_and_flags_real_divergence() {
    let dir = tmp("diff");
    let blif = synth(&dir, "400", "9");
    let t1 = traced(&dir, &blif, &["--jobs", "1"], "j1");
    let t8 = traced(&dir, &blif, &["--jobs", "8"], "j8");
    let (stdout, _) = run_ok(netpart().args([
        "trace",
        "diff",
        t1.to_str().expect("utf8"),
        t8.to_str().expect("utf8"),
    ]));
    assert!(stdout.contains("identical after timing strip"), "got: {stdout}");
    // A different seed is a real divergence: exit 1 and a located line.
    let other = traced(&dir, &blif, &["--jobs", "1", "--epsilon", "0.3"], "eps");
    let out = netpart()
        .args([
            "trace",
            "diff",
            t1.to_str().expect("utf8"),
            other.to_str().expect("utf8"),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "divergence must exit 1");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("diverge at"),
        "divergence not located"
    );
}

#[test]
fn trace_summarize_renders_event_and_span_tables() {
    let dir = tmp("summarize");
    let blif = synth(&dir, "400", "11");
    let trace = traced(&dir, &blif, &[], "sum");
    let (stdout, _) = run_ok(netpart().args(["trace", "summarize", trace.to_str().expect("utf8")]));
    for needle in ["events", "fm.pass", "spans", "fm/pass", "engine/bipartition"] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
}

#[test]
fn profile_out_writes_a_self_time_tree_that_covers_the_run() {
    let dir = tmp("profile");
    let blif = synth(&dir, "400", "13");
    let profile = dir.join("profile.json");
    let (_, stderr) = run_ok(netpart().args([
        "bipartition",
        blif.to_str().expect("utf8"),
        "--runs",
        "3",
        "--seed",
        "5",
        "--multilevel",
        "--max-levels",
        "2",
        "--profile-out",
        profile.to_str().expect("utf8"),
        "-v",
    ]));
    assert!(stderr.contains("span profile"), "no profile table with -v: {stderr}");
    let text = std::fs::read_to_string(&profile).expect("profile written");
    let json = parse_json(&text).expect("profile is valid JSON");
    let total = json.get("total_wall_us").and_then(|v| v.as_u64()).expect("total");
    let covered = json.get("covered_us").and_then(|v| v.as_u64()).expect("covered");
    assert!(covered <= total + total / 100, "covered {covered} overshoots wall {total}");
    assert!(
        covered * 2 >= total,
        "instrumented spans cover under half the wall window: {covered}/{total}"
    );
    // The tree names the hot phases.
    for needle in ["engine/bipartition", "fm/pass"] {
        assert!(text.contains(needle), "missing {needle} in profile:\n{text}");
    }
}

#[test]
fn serve_exposes_prometheus_metrics_and_serve_status_renders_them() {
    let dir = tmp("serve");
    let blif = synth(&dir, "400", "17");
    let spool = dir.join("spool");
    run_ok(netpart().args([
        "submit",
        spool.to_str().expect("utf8"),
        blif.to_str().expect("utf8"),
        "--cmd",
        "bipartition",
        "--runs",
        "2",
    ]));
    let trace = dir.join("serve.jsonl");
    run_ok(netpart().args([
        "serve",
        spool.to_str().expect("utf8"),
        "--drain",
        "--trace-out",
        trace.to_str().expect("utf8"),
    ]));
    // The serve trace passes native schema validation.
    run_ok(netpart().args(["trace", "validate", trace.to_str().expect("utf8")]));
    // metrics.prom parses and carries the service counters.
    let prom_text = std::fs::read_to_string(spool.join("metrics.prom")).expect("metrics.prom");
    let prom = parse_prometheus(&prom_text).expect("exposition parses");
    assert_eq!(prom.value("netpart_serve_done_total"), Some(1.0), "in:\n{prom_text}");
    assert_eq!(prom.value("netpart_serve_queue_depth"), Some(0.0), "drained queue");
    assert_eq!(prom.value("netpart_serve_latency_ms_count"), Some(1.0));
    assert!(prom.histograms().contains(&"netpart_serve_latency_ms".to_string()));
    // serve-status renders the same numbers as a table.
    let (stdout, _) = run_ok(netpart().args(["serve-status", spool.to_str().expect("utf8")]));
    for needle in ["netpart_serve_done_total", "netpart_serve_latency_ms", "p50", "p99"] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
}

#[test]
fn serve_status_without_a_spool_fails_cleanly() {
    let dir = tmp("nospool");
    let out = netpart()
        .args(["serve-status", dir.join("missing").to_str().expect("utf8")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("has the server run"),
        "unhelpful error"
    );
}

#[test]
fn serve_status_on_a_fresh_spool_reports_no_snapshots_and_exits_zero() {
    // A spool directory that exists but has no metrics.prom yet — the
    // server just hasn't completed a round — is a normal state, not an
    // I/O error.
    let dir = tmp("freshspool");
    let spool = dir.join("spool");
    std::fs::create_dir_all(&spool).expect("spool dir");
    let (stdout, _) = run_ok(netpart().args(["serve-status", spool.to_str().expect("utf8")]));
    assert!(
        stdout.contains("no metrics snapshots yet"),
        "unfriendly fresh-spool message:\n{stdout}"
    );
}
