#!/bin/sh
# Strip the scheduling-dependent parts of a netpart JSONL run trace,
# leaving the deterministic skeleton: for a fixed seed the output is
# byte-identical at every --jobs level.
#
#   usage: scripts/strip_timing.sh trace.jsonl > trace.stripped.jsonl
#
# Two rules, mirroring netpart_obs::strip_timing:
#   1. drop whole lines in the reserved "timing" scope (worker claims,
#      per-worker summaries — pure scheduling timeline);
#   2. on every other line, remove the trailing "timing" sub-object
#      (wall-clock measurements ride last on the line by construction).
set -eu
awk '!/"scope":"timing"/ { sub(/,"timing":\{.*\}\}$/, "}"); print }' "${1:?usage: strip_timing.sh trace.jsonl}"
