#!/usr/bin/env bash
# Strip the scheduling-dependent parts of a netpart JSONL run trace,
# leaving the deterministic skeleton: for a fixed seed the output is
# byte-identical at every --jobs level.
#
#   usage: scripts/strip_timing.sh trace.jsonl > trace.stripped.jsonl
#
# Two rules, mirroring netpart_obs::strip_timing:
#   1. drop whole lines in the reserved "timing" scope (worker claims,
#      per-worker summaries — pure scheduling timeline);
#   2. on every other line, remove the trailing "timing" sub-object
#      (wall-clock measurements ride last on the line by construction).
#
# Portability: POSIX awk only — no sed, whose -i/-E flags differ between
# BSD (macOS) and GNU; awk's sub() with a POSIX ERE behaves the same on
# both. bash (via env, not a hardcoded path) is required for pipefail so
# a failing awk is not masked when this script feeds a pipeline.
set -euo pipefail

if [[ $# -ne 1 ]]; then
  echo "usage: $0 trace.jsonl > trace.stripped.jsonl" >&2
  exit 2
fi

if [[ ! -f "$1" ]]; then
  echo "error: no such trace file: $1" >&2
  echo "usage: $0 trace.jsonl > trace.stripped.jsonl" >&2
  exit 2
fi

awk '!/"scope":"timing"/ { sub(/,"timing":\{.*\}\}$/, "}"); print }' "$1"
