#!/usr/bin/env bash
# Per-pass FM throughput regression gate.
#
#   usage: scripts/perf_gate.sh [reps]
#
# Snapshots the archived BENCH_fm.json baseline, re-runs
# examples/fm_pass_bench (which rewrites the archive in place), and
# compares every per-pass millisecond series — any gauge whose name
# contains `pass_ms` — new vs old. The series list is discovered from
# the snapshots themselves, not hardcoded, and an unmatched series in
# either direction is a hard failure: a baseline series the fresh run
# no longer reports means a bench was dropped or renamed and part of
# the hot path is silently ungated, and a fresh series the baseline
# lacks has no reference to regress against (re-seed deliberately by
# running the bench and committing the archive). Any matched series
# more than 15% slower fails the gate; every failure restores the old
# baseline so a re-run compares against the same reference, and a pass
# leaves the fresh numbers archived as the next baseline.
#
# The keys are per-pass averages, not whole-run wall times, so a
# change in pass count from algorithmic work does not masquerade as a
# throughput change. The 15% tolerance absorbs shared-runner noise;
# real regressions from structure changes (the CSR arenas bought 2-7x)
# clear it by an order of magnitude.
#
# Portability: bash + POSIX awk only, like scripts/strip_timing.sh —
# no jq (not in the hermetic toolchain image), no GNU-only sed flags.
set -euo pipefail

cd "$(dirname "$0")/.."

REPS="${1:-2}"
BASELINE=BENCH_fm.json
TOLERANCE=1.15

if [[ ! -s "$BASELINE" ]]; then
  echo "error: no archived baseline at $BASELINE (run the bench once to seed it)" >&2
  exit 2
fi

# field <file> <key>: the numeric value of `"key": <number>` in a flat
# metrics-snapshot JSON file (keys are unique per file by construction).
# Prints nothing when the key is absent.
field() {
  awk -v key="\"$2\":" '
    index($0, key) {
      v = substr($0, index($0, key) + length(key))
      gsub(/[ ,]/, "", v)
      print v
      exit
    }' "$1"
}

# series <file>: every per-pass millisecond series in a snapshot,
# sorted — any `"…pass_ms…":` gauge key.
series() {
  awk '
    {
      s = $0
      while (match(s, /"[A-Za-z0-9_]*pass_ms[A-Za-z0-9_]*"[ ]*:/)) {
        k = substr(s, RSTART + 1)
        print substr(k, 1, index(k, "\"") - 1)
        s = substr(s, RSTART + RLENGTH)
      }
    }' "$1" | sort -u
}

old=$(mktemp)
trap 'rm -f "$old"' EXIT
cp "$BASELINE" "$old"

cargo run --release --example fm_pass_bench -- "$REPS"

mapfile -t old_keys < <(series "$old")
mapfile -t new_keys < <(series "$BASELINE")

status=0
if [[ ${#new_keys[@]} -eq 0 ]]; then
  echo "error: fresh bench run reported no pass_ms series" >&2
  status=1
fi
# Unmatched series in either direction are fatal, not seeded over.
only_old=$(comm -23 <(printf '%s\n' "${old_keys[@]-}") <(printf '%s\n' "${new_keys[@]-}"))
only_new=$(comm -13 <(printf '%s\n' "${old_keys[@]-}") <(printf '%s\n' "${new_keys[@]-}"))
if [[ -n "$only_old" ]]; then
  echo "error: baseline series missing from the fresh run (dropped or renamed bench?):" >&2
  printf '  %s\n' $only_old >&2
  status=1
fi
if [[ -n "$only_new" ]]; then
  echo "error: fresh series absent from the baseline (seed it deliberately and commit):" >&2
  printf '  %s\n' $only_new >&2
  status=1
fi

for key in "${new_keys[@]-}"; do
  [[ -n "$key" ]] || continue
  o=$(field "$old" "$key")
  n=$(field "$BASELINE" "$key")
  # Unmatched keys are already fatal above; compare only the matched.
  [[ -n "$o" && -n "$n" ]] || continue
  if awk -v n="$n" -v o="$o" -v t="$TOLERANCE" 'BEGIN { exit !(n <= o * t) }'; then
    awk -v k="$key" -v n="$n" -v o="$o" \
      'BEGIN { printf "ok: %-24s %10.3f ms/pass (baseline %10.3f)\n", k, n, o }'
  else
    awk -v k="$key" -v n="$n" -v o="$o" -v t="$TOLERANCE" \
      'BEGIN { printf "REGRESSION: %s %.3f ms/pass vs baseline %.3f (> %d%% tolerance)\n", \
               k, n, o, (t - 1) * 100 + 0.5 }' >&2
    status=1
  fi
done

if [[ "$status" -ne 0 ]]; then
  cp "$old" "$BASELINE"
  echo "perf gate FAILED; baseline left unchanged" >&2
  exit 1
fi
echo "perf gate passed; new baseline archived to $BASELINE"
