#!/usr/bin/env bash
# Per-pass FM throughput regression gate.
#
#   usage: scripts/perf_gate.sh [reps]
#
# Snapshots the archived BENCH_fm.json baseline, re-runs
# examples/fm_pass_bench (which rewrites the archive in place), and
# compares the per-pass millisecond series — the small-suite
# `pass_ms_buckets_*` gauges and the 100k-gate Rent synthetic's
# `rent100k_pass_ms` — new vs old. Any series more than 15% slower
# fails the gate and restores the old baseline so a re-run compares
# against the same reference; a pass leaves the fresh numbers archived
# as the next baseline.
#
# The keys are per-pass averages, not whole-run wall times, so a
# change in pass count from algorithmic work does not masquerade as a
# throughput change. The 15% tolerance absorbs shared-runner noise;
# real regressions from structure changes (the CSR arenas bought 2-7x)
# clear it by an order of magnitude.
#
# Portability: bash + POSIX awk only, like scripts/strip_timing.sh —
# no jq (not in the hermetic toolchain image), no GNU-only sed flags.
set -euo pipefail

cd "$(dirname "$0")/.."

REPS="${1:-2}"
BASELINE=BENCH_fm.json
TOLERANCE=1.15
KEYS=(pass_ms_buckets_800 pass_ms_buckets_1500 pass_ms_buckets_3000 rent100k_pass_ms)

if [[ ! -s "$BASELINE" ]]; then
  echo "error: no archived baseline at $BASELINE (run the bench once to seed it)" >&2
  exit 2
fi

# field <file> <key>: the numeric value of `"key": <number>` in a flat
# metrics-snapshot JSON file (keys are unique per file by construction).
# Prints nothing when the key is absent.
field() {
  awk -v key="\"$2\":" '
    index($0, key) {
      v = substr($0, index($0, key) + length(key))
      gsub(/[ ,]/, "", v)
      print v
      exit
    }' "$1"
}

old=$(mktemp)
trap 'rm -f "$old"' EXIT
cp "$BASELINE" "$old"

cargo run --release --example fm_pass_bench -- "$REPS"

status=0
for key in "${KEYS[@]}"; do
  o=$(field "$old" "$key")
  n=$(field "$BASELINE" "$key")
  if [[ -z "$n" ]]; then
    echo "error: fresh bench run did not report $key" >&2
    status=1
    continue
  fi
  if [[ -z "$o" ]]; then
    # A baseline from before this series existed: nothing to regress
    # against; the fresh archive seeds it for the next run.
    echo "note: baseline lacks $key; seeding it from this run"
    continue
  fi
  if awk -v n="$n" -v o="$o" -v t="$TOLERANCE" 'BEGIN { exit !(n <= o * t) }'; then
    awk -v k="$key" -v n="$n" -v o="$o" \
      'BEGIN { printf "ok: %-24s %10.3f ms/pass (baseline %10.3f)\n", k, n, o }'
  else
    awk -v k="$key" -v n="$n" -v o="$o" -v t="$TOLERANCE" \
      'BEGIN { printf "REGRESSION: %s %.3f ms/pass vs baseline %.3f (> %d%% tolerance)\n", \
               k, n, o, (t - 1) * 100 + 0.5 }' >&2
    status=1
  fi
done

if [[ "$status" -ne 0 ]]; then
  cp "$old" "$BASELINE"
  echo "perf gate FAILED; baseline left unchanged" >&2
  exit 1
fi
echo "perf gate passed; new baseline archived to $BASELINE"
