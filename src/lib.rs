//! `netpart` — multi-way netlist partitioning into heterogeneous FPGAs
//! with functional replication.
//!
//! A Rust reproduction of Kužnar–Brglez–Zajc, *"Multi-way Netlist
//! Partitioning into Heterogeneous FPGAs and Minimization of Total Device
//! Cost and Interconnect"* (DAC 1994). This facade crate re-exports the
//! workspace libraries:
//!
//! * [`hypergraph`] — pin-level circuit hypergraph, adjacency matrices,
//!   replication-aware placements;
//! * [`netlist`] — gate-level netlists, BLIF-subset I/O, synthetic
//!   benchmark generation;
//! * [`techmap`] — XC3000-style technology mapping (5-input LUT cones,
//!   2-output CLB packing);
//! * [`fpga`] — the heterogeneous device library and the paper's cost
//!   (eq. 1) and interconnect (eq. 2) objectives;
//! * [`board`] — the board-topology model (device sites wired by
//!   capacity/hop channels), the `.board` file format, the
//!   deterministic channel router over cut nets and the
//!   topology-aware objective terms;
//! * [`core`] — FM bipartitioning with functional replication and the
//!   cost-driven k-way partitioner;
//! * [`engine`] — the deterministic parallel portfolio engine
//!   (multi-threaded multi-start with a shared incumbent and result
//!   cache);
//! * [`multilevel`] — the multilevel V-cycle (ψ-guarded heavy-edge
//!   coarsening, coarse partitioning, projection + FM refinement) that
//!   scales the flat engine to 100k+-cell circuits;
//! * [`obs`] — the structured observability layer (deterministic JSONL
//!   run traces, paper-metric gauges, metrics snapshots);
//! * [`report`] — experiment tables;
//! * [`verify`] — the independent solution-certificate verifier (an
//!   oracle that re-derives every claim from scratch, sharing no code
//!   with the optimizer's bookkeeping);
//! * [`serve`] — the durable partitioning service: a crash-safe
//!   spool-directory job queue with a checksummed write-ahead journal,
//!   deterministic retry/backoff, poison-job quarantine and a verified
//!   disk-backed result cache.
//!
//! The [`experiments`] module regenerates the paper's tables and
//! figures (Tables I–VII, Figure 3) from the in-repo benchmark suite.
//!
//! # Examples
//!
//! Partition a synthetic circuit into two halves with functional
//! replication and evaluate it on the XC3000 library:
//!
//! ```
//! use netpart::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = generate(&GeneratorConfig::new(300).with_seed(7));
//! let hg = map(&nl, &MapperConfig::xc3000())?.to_hypergraph(&nl);
//!
//! let cfg = BipartitionConfig::equal(&hg, 0.1)
//!     .with_replication(ReplicationMode::functional(0));
//! let result = bipartition(&hg, &cfg);
//! assert!(result.balanced);
//!
//! let placement = result.placement.expect("functional mode exports");
//! assert_eq!(placement.cut_size(&hg), result.cut);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use netpart_board as board;
pub use netpart_core as core;
pub use netpart_engine as engine;
pub use netpart_fpga as fpga;
pub use netpart_hypergraph as hypergraph;
pub use netpart_multilevel as multilevel;
pub use netpart_netlist as netlist;
pub use netpart_obs as obs;
pub use netpart_report as report;
pub use netpart_serve as serve;
pub use netpart_techmap as techmap;
pub use netpart_verify as verify;

pub mod experiments;

/// The most common items, importable in one line.
pub mod prelude {
    pub use netpart_board::{
        board_claim, demands as board_demands, parse as parse_board, route_nets, Board,
        BoardError, NetDemand, Route, Routing, TopologyObjective,
    };
    pub use netpart_core::{
        bipartition, kway_partition, run_many, BipartitionConfig, Budget, Degradation, FaultPlan,
        KWayConfig, PartitionError, Relaxation, ReplicationMode, SelectionStrategy, StopReason,
    };
    pub use netpart_engine::{
        portfolio_bipartition, portfolio_kway, ContentHash, Engine, KWayPortfolioResult,
        PortfolioResult,
    };
    pub use netpart_fpga::{assign_devices, evaluate, Device, DeviceLibrary, ResourceVec};
    pub use netpart_hypergraph::{
        AdjacencyMatrix, CellId, CellKind, Hypergraph, HypergraphBuilder, NetId, PartId, Placement,
    };
    pub use netpart_multilevel::{
        build_chain, ml_bipartition, ml_kway_partition, MultilevelConfig,
    };
    pub use netpart_netlist::{
        bench_suite, generate, parse_blif, write_blif, GateKind, GeneratorConfig, Netlist,
    };
    pub use netpart_obs::{
        strip_timing, Event, JsonlRecorder, Level, MetricsRecorder, MetricsSnapshot, Recorder, Tee,
    };
    pub use netpart_serve::{
        submit_job, JobCmd, JobSpec, ServeConfig, ServeReport, Server, SubmitOutcome,
    };
    pub use netpart_techmap::{decompose_wide_gates, map, MapperConfig};
    pub use netpart_verify::{
        verify, verify_text, BoardClaim, SolutionCertificate, VerifyReport, Violation,
    };
}
