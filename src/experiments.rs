//! The paper's experiments (§IV), one driver per exhibit.
//!
//! Relocated into the hermetic root package (from the registry-dependent
//! bench crate) so the golden-snapshot tests can regenerate every
//! archived CSV offline. Timing columns are controlled by [`Timing`]:
//! the golden protocol runs [`Timing::Deterministic`], which prints `-`
//! in every wall-clock cell so regenerated tables are byte-stable.

use netpart_board::{demands, route_nets, Board, TopologyObjective};
use netpart_core::{
    kway_partition, run_many, BipartitionConfig, KWayConfig, PartitionError, ReplicationMode,
};
use netpart_fpga::DeviceLibrary;
use netpart_hypergraph::Hypergraph;
use netpart_netlist::bench_suite;
use netpart_report::{f1, f2, pct, Table};
use netpart_techmap::{map, MapperConfig};
use std::fmt;
use std::time::Instant;

/// Whether experiment drivers measure wall-clock time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Timing {
    /// Measure wall time and print CPU columns (non-reproducible —
    /// byte-identical regeneration is impossible in this mode).
    Wall,
    /// Skip timing; CPU columns print `-`. The golden-snapshot
    /// protocol (see `tests/golden_tables.rs`).
    #[default]
    Deterministic,
}

/// A typed failure of an experiment driver. Every way a driver can go
/// wrong — an unknown circuit name, a mapping failure, an infeasible
/// partitioning run — is represented here instead of panicking, so the
/// `tables` binary (and any other harness) can report the failure and
/// exit cleanly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExperimentError {
    /// A requested benchmark name is not in the suite.
    UnknownCircuit {
        /// The offending name.
        name: String,
        /// The valid names, comma-separated.
        expected: String,
    },
    /// Technology mapping failed for a circuit.
    MappingFailed {
        /// The circuit being mapped.
        name: String,
        /// The mapper's message.
        reason: String,
    },
    /// A partitioning run inside an experiment failed.
    PartitionFailed {
        /// The circuit being partitioned.
        name: String,
        /// The underlying typed error.
        source: PartitionError,
    },
    /// An experiment's bookkeeping lost a record it just produced
    /// (an internal invariant violation, reported instead of unwrapped).
    MissingRecord {
        /// The circuit whose record is missing.
        name: String,
        /// The replication threshold of the missing record.
        threshold: Option<u32>,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnknownCircuit { name, expected } => {
                write!(f, "unknown benchmark {name:?} (expected one of: {expected})")
            }
            ExperimentError::MappingFailed { name, reason } => {
                write!(f, "technology mapping failed for {name}: {reason}")
            }
            ExperimentError::PartitionFailed { name, source } => {
                write!(f, "partitioning {name} failed: {source}")
            }
            ExperimentError::MissingRecord { name, threshold } => write!(
                f,
                "internal: no record for circuit {name} at threshold {threshold:?}"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::PartitionFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Builds and technology-maps the benchmark suite.
///
/// `scale_down > 1` shrinks every circuit by that factor (for quick runs
/// and benches); `names` restricts the suite (empty = all nine).
///
/// # Errors
///
/// [`ExperimentError::UnknownCircuit`] for a name outside the suite,
/// [`ExperimentError::MappingFailed`] if technology mapping rejects a
/// circuit (the generated suite always maps, but scaled variants are
/// checked rather than assumed).
pub fn try_suite(
    scale_down: usize,
    names: &[&str],
) -> Result<Vec<(String, Hypergraph)>, ExperimentError> {
    let selected: Vec<&str> = if names.is_empty() {
        bench_suite::names().collect()
    } else {
        names.to_vec()
    };
    selected
        .iter()
        .map(|name| {
            let nl = if scale_down <= 1 {
                bench_suite::build(name)
            } else {
                bench_suite::build_scaled(name, scale_down)
            }
            .ok_or_else(|| ExperimentError::UnknownCircuit {
                name: (*name).to_string(),
                expected: bench_suite::names().collect::<Vec<_>>().join(", "),
            })?;
            let mapped =
                map(&nl, &MapperConfig::xc3000()).map_err(|e| ExperimentError::MappingFailed {
                    name: (*name).to_string(),
                    reason: e.to_string(),
                })?;
            Ok(((*name).to_string(), mapped.to_hypergraph(&nl)))
        })
        .collect()
}

/// Builds and technology-maps the benchmark suite.
///
/// # Panics
///
/// Panics if a requested name is unknown; see [`try_suite`] for the
/// fallible form.
pub fn suite(scale_down: usize, names: &[&str]) -> Vec<(String, Hypergraph)> {
    match try_suite(scale_down, names) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    }
}

/// Table I: the XC3000 device library.
pub fn table1() -> Table {
    let lib = DeviceLibrary::xc3000();
    let mut t = Table::new(
        "Table I — XC3000 device library subset",
        &["Device", "c_i (CLB)", "t_i (IOB)", "d_i (N$)", "l_i", "u_i", "d_i/c_i"],
    );
    for d in &lib {
        t.row([
            d.name().to_string(),
            d.clbs().to_string(),
            d.iobs().to_string(),
            d.price().to_string(),
            f2(d.min_util()),
            f2(d.max_util()),
            f2(d.cost_per_clb()),
        ]);
    }
    t
}

/// Table II: benchmark circuit characteristics after XC3000 mapping.
pub fn table2(suite: &[(String, Hypergraph)]) -> Table {
    let mut t = Table::new(
        "Table II — benchmark circuit characteristics (synthetic stand-ins)",
        &["Circuit", "#CLBs", "#IOBs", "#DFF", "#NETs", "#PINs"],
    );
    for (name, hg) in suite {
        let s = hg.stats();
        t.row([
            name.clone(),
            s.clbs.to_string(),
            s.iobs.to_string(),
            s.dffs.to_string(),
            s.nets.to_string(),
            s.pins.to_string(),
        ]);
    }
    t
}

/// Figure 3: distribution of cells over replication potential `ψ`
/// (percent of interior cells; `0*` is the paper's bucket for
/// multi-output cells with `ψ = 0`).
pub fn figure3(suite: &[(String, Hypergraph)]) -> Table {
    let mut t = Table::new(
        "Figure 3 — cell distribution vs replication potential ψ (% of cells)",
        &["Circuit", "ψ=0 (1-out)", "ψ=0* (multi)", "ψ=1", "ψ=2", "ψ=3", "ψ=4", "ψ≥5"],
    );
    for (name, hg) in suite {
        let mut buckets = [0usize; 7];
        let mut total = 0usize;
        for c in hg.cells() {
            if c.is_terminal() {
                continue;
            }
            total += 1;
            let psi = c.replication_potential();
            let idx = match (psi, c.m_outputs()) {
                (0, 0 | 1) => 0,
                (0, _) => 1,
                (1, _) => 2,
                (2, _) => 3,
                (3, _) => 4,
                (4, _) => 5,
                _ => 6,
            };
            buckets[idx] += 1;
        }
        let mut row = vec![name.clone()];
        row.extend(
            buckets
                .iter()
                .map(|&b| pct(b as f64 / total.max(1) as f64)),
        );
        t.row(row);
    }
    t
}

/// One circuit's Table III measurements.
#[derive(Clone, Debug)]
pub struct Table3Record {
    /// Circuit name.
    pub name: String,
    /// Best cut over the plain FM runs.
    pub plain_best: usize,
    /// Mean cut over the plain FM runs.
    pub plain_avg: f64,
    /// Best cut with functional replication.
    pub repl_best: usize,
    /// Mean cut with functional replication.
    pub repl_avg: f64,
    /// Mean replicated-cell count with functional replication.
    pub repl_cells: f64,
    /// Wall-clock for the plain runs (0 under [`Timing::Deterministic`]).
    pub plain_secs: f64,
    /// Wall-clock for the replication runs (0 under
    /// [`Timing::Deterministic`]).
    pub repl_secs: f64,
}

impl Table3Record {
    /// Relative best-cut reduction.
    pub fn best_reduction(&self) -> f64 {
        1.0 - self.repl_best as f64 / self.plain_best.max(1) as f64
    }

    /// Relative average-cut reduction.
    pub fn avg_reduction(&self) -> f64 {
        1.0 - self.repl_avg / self.plain_avg.max(1.0)
    }
}

/// Runs the Table III experiment on one circuit: `runs` equal-halves
/// bipartitions (±10 % area, terminals relaxed) with and without
/// functional replication at `T = 0`.
///
/// # Errors
///
/// [`ExperimentError::PartitionFailed`] if either run set fails — the
/// equal-halves bounds are satisfiable for every suite circuit, but a
/// caller-supplied hypergraph gets a typed error, not a panic.
pub fn table3_record(
    name: &str,
    hg: &Hypergraph,
    runs: usize,
    timing: Timing,
) -> Result<Table3Record, ExperimentError> {
    let fail = |source: PartitionError| ExperimentError::PartitionFailed {
        name: name.to_string(),
        source,
    };
    let clock = |t0: Instant| match timing {
        Timing::Wall => t0.elapsed().as_secs_f64(),
        Timing::Deterministic => 0.0,
    };
    let base = BipartitionConfig::equal(hg, 0.1).with_seed(1000);
    let t0 = Instant::now();
    let plain = run_many(hg, &base, runs).map_err(fail)?;
    let plain_secs = clock(t0);
    let t0 = Instant::now();
    let repl = run_many(
        hg,
        &base.clone().with_replication(ReplicationMode::functional(0)),
        runs,
    )
    .map_err(fail)?;
    let repl_secs = clock(t0);
    Ok(Table3Record {
        name: name.to_string(),
        plain_best: plain.best_cut(),
        plain_avg: plain.avg_cut(),
        repl_best: repl.best_cut(),
        repl_avg: repl.avg_cut(),
        repl_cells: repl.avg_replicated(),
        plain_secs,
        repl_secs,
    })
}

/// Table III: best/average cut of FM min-cut vs FM + functional
/// replication over `runs` randomized bipartitions per circuit.
///
/// Under [`Timing::Deterministic`] the CPU-overhead column prints `-`
/// and the table is a pure function of `(suite, runs)`.
///
/// # Errors
///
/// Propagates the first [`ExperimentError`] from
/// [`table3_record`].
pub fn table3(
    suite: &[(String, Hypergraph)],
    runs: usize,
    timing: Timing,
) -> Result<(Table, Vec<Table3Record>), ExperimentError> {
    let mut t = Table::new(
        format!("Table III — cutset size over {runs} runs (equal halves, T = 0)"),
        &[
            "Circuit", "FM best", "FM avg", "FR best", "FR avg", "Best red %", "Avg red %",
            "Repl cells", "CPU ovh %",
        ],
    );
    let cpu = |r: &Table3Record| match timing {
        Timing::Wall => pct(r.repl_secs / r.plain_secs.max(1e-9) - 1.0),
        Timing::Deterministic => "-".into(),
    };
    let mut records = Vec::new();
    for (name, hg) in suite {
        let r = table3_record(name, hg, runs, timing)?;
        t.row([
            r.name.clone(),
            r.plain_best.to_string(),
            f1(r.plain_avg),
            r.repl_best.to_string(),
            f1(r.repl_avg),
            pct(r.best_reduction()),
            pct(r.avg_reduction()),
            f1(r.repl_cells),
            cpu(&r),
        ]);
        records.push(r);
    }
    finish_table3(&mut t, &records, timing);
    Ok((t, records))
}

fn finish_table3(t: &mut Table, records: &[Table3Record], timing: Timing) {
    if !records.is_empty() {
        let m = |f: &dyn Fn(&Table3Record) -> f64| {
            records.iter().map(f).sum::<f64>() / records.len() as f64
        };
        let cpu = match timing {
            Timing::Wall => pct(m(&|r| r.repl_secs / r.plain_secs.max(1e-9) - 1.0)),
            Timing::Deterministic => "-".into(),
        };
        t.row([
            "Avg.".into(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            pct(m(&|r| r.best_reduction())),
            pct(m(&|r| r.avg_reduction())),
            String::new(),
            cpu,
        ]);
    }
}

/// One circuit × one threshold of the k-way experiment.
#[derive(Clone, Debug)]
pub struct KWayRecord {
    /// Circuit name.
    pub name: String,
    /// Threshold `T` (`None` = no replication, the paper's "\[3\]" column).
    pub threshold: Option<u32>,
    /// Fraction of interior cells replicated.
    pub replicated_frac: f64,
    /// Total device cost (eq. 1).
    pub cost: u64,
    /// Average CLB utilization.
    pub clb_util: f64,
    /// Average IOB utilization (eq. 2).
    pub iob_util: f64,
    /// Devices used.
    pub k: usize,
    /// Wall-clock seconds for this run (0 under
    /// [`Timing::Deterministic`]).
    pub secs: f64,
    /// Whether a feasible partition was found.
    pub feasible: bool,
}

/// Runs the k-way cost experiment for one circuit across thresholds.
///
/// `thresholds` entries of `None` run without replication (the "\[3\]"
/// baseline); `Some(t)` runs functional replication at `T = t`.
pub fn kway_experiment(
    name: &str,
    hg: &Hypergraph,
    thresholds: &[Option<u32>],
    candidates: usize,
    seed: u64,
    timing: Timing,
) -> Vec<KWayRecord> {
    let logic_cells = hg.cells().iter().filter(|c| !c.is_terminal()).count();
    thresholds
        .iter()
        .map(|&th| {
            let mode = match th {
                None => ReplicationMode::None,
                Some(t) => ReplicationMode::functional(t),
            };
            let cfg = KWayConfig::new(DeviceLibrary::xc3000())
                .with_candidates(candidates)
                .with_seed(seed)
                .with_max_passes(8)
                .with_replication(mode);
            let t0 = Instant::now();
            let out = kway_partition(hg, &cfg);
            let secs = match timing {
                Timing::Wall => t0.elapsed().as_secs_f64(),
                Timing::Deterministic => 0.0,
            };
            match out {
                Ok(r) => KWayRecord {
                    name: name.to_string(),
                    threshold: th,
                    replicated_frac: r.placement.replicated_cell_count() as f64
                        / logic_cells.max(1) as f64,
                    cost: r.evaluation.total_cost,
                    clb_util: r.evaluation.avg_clb_util,
                    iob_util: r.evaluation.avg_iob_util,
                    k: r.devices.len(),
                    secs,
                    feasible: true,
                },
                Err(_) => KWayRecord {
                    name: name.to_string(),
                    threshold: th,
                    replicated_frac: f64::NAN,
                    cost: 0,
                    clb_util: f64::NAN,
                    iob_util: f64::NAN,
                    k: 0,
                    secs,
                    feasible: false,
                },
            }
        })
        .collect()
}

fn fmt_or_dash(feasible: bool, s: String) -> String {
    if feasible {
        s
    } else {
        "-".into()
    }
}

/// Tables IV–VII from one set of k-way runs per circuit: replicated-cell
/// percentage and CPU (IV), average CLB utilization (V), total device
/// cost (VI) and average IOB utilization (VII), each for the
/// no-replication baseline and `T = 0, 1, 2, 3`.
///
/// Under [`Timing::Deterministic`] the two CPU columns of Table IV
/// print `-` and all four tables are pure functions of
/// `(suite, candidates, seed)`.
///
/// # Errors
///
/// [`ExperimentError::MissingRecord`] if the experiment bookkeeping
/// lost a `(circuit, threshold)` record — an internal invariant
/// reported as a typed error rather than unwrapped.
pub fn tables_4_to_7(
    suite: &[(String, Hypergraph)],
    candidates: usize,
    seed: u64,
    timing: Timing,
) -> Result<(Table, Table, Table, Table, Vec<KWayRecord>), ExperimentError> {
    let thresholds = [None, Some(0), Some(1), Some(2), Some(3)];
    let mut all = Vec::new();
    for (name, hg) in suite {
        all.extend(kway_experiment(name, hg, &thresholds, candidates, seed, timing));
    }
    let by = |name: &str, th: Option<u32>| -> Result<&KWayRecord, ExperimentError> {
        all.iter()
            .find(|r| r.name == name && r.threshold == th)
            .ok_or_else(|| ExperimentError::MissingRecord {
                name: name.to_string(),
                threshold: th,
            })
    };
    let cpu = |r: &KWayRecord| match timing {
        Timing::Wall => f1(r.secs),
        Timing::Deterministic => "-".into(),
    };

    let mut t4 = Table::new(
        format!("Table IV — replicated cells (%) and CPU cost ({candidates} feasible partitions)"),
        &["Circuit", "T=0 %", "T=1 %", "T=2 %", "T=3 %", "CPU T=3 (s)", "CPU [3] (s)"],
    );
    let mut t5 = Table::new(
        "Table V — average CLB utilization (%) after partitioning",
        &["Circuit", "[3]", "T=1", "Incr.", "T=2", "Incr.", "T=3", "Incr."],
    );
    let mut t6 = Table::new(
        "Table VI — total device cost after partitioning",
        &["Circuit", "[3]", "T=1", "Red. %", "T=2", "Red. %", "T=3", "Red. %"],
    );
    let mut t7 = Table::new(
        "Table VII — average IOB utilization (%) after partitioning",
        &["Circuit", "[3]", "T=1", "Red. %", "T=2", "Red. %", "T=3", "Red. %"],
    );

    for (name, _) in suite {
        let base = by(name, None)?;
        let mut row4 = vec![name.clone()];
        for t in [0u32, 1, 2, 3] {
            let r = by(name, Some(t))?;
            row4.push(fmt_or_dash(r.feasible, pct(r.replicated_frac)));
        }
        row4.push(cpu(by(name, Some(3))?));
        row4.push(cpu(base));
        t4.row(row4);
        let mut row5 = vec![name.clone(), fmt_or_dash(base.feasible, pct(base.clb_util))];
        let mut row6 = vec![
            name.clone(),
            fmt_or_dash(base.feasible, base.cost.to_string()),
        ];
        let mut row7 = vec![name.clone(), fmt_or_dash(base.feasible, pct(base.iob_util))];
        for t in [1u32, 2, 3] {
            let r = by(name, Some(t))?;
            let ok = r.feasible && base.feasible;
            row5.push(fmt_or_dash(r.feasible, pct(r.clb_util)));
            row5.push(fmt_or_dash(ok, pct(r.clb_util - base.clb_util)));
            row6.push(fmt_or_dash(r.feasible, r.cost.to_string()));
            row6.push(fmt_or_dash(
                ok,
                pct(1.0 - r.cost as f64 / base.cost.max(1) as f64),
            ));
            row7.push(fmt_or_dash(r.feasible, pct(r.iob_util)));
            row7.push(fmt_or_dash(ok, pct(1.0 - r.iob_util / base.iob_util.max(1e-9))));
        }
        t5.row(row5);
        t6.row(row6);
        t7.row(row7);
    }
    Ok((t4, t5, t6, t7, all))
}

/// The builtin multi-FPGA board scenarios the topology experiment
/// sweeps: a 2-FPGA direct link, a 2×2 mesh and an 8-leaf star.
pub fn builtin_boards() -> Vec<Board> {
    vec![Board::direct2(), Board::mesh2x2(), Board::star(8)]
}

/// One circuit × one board of the topology scenario matrix.
#[derive(Clone, Debug)]
pub struct BoardMatrixRecord {
    /// Circuit name.
    pub name: String,
    /// Board name.
    pub board: String,
    /// Occupied parts of the placement that was routed.
    pub parts: usize,
    /// Whether the placement mapped onto the board (parts ≤ sites).
    pub mappable: bool,
    /// Cut nets routed (0 when unmappable).
    pub routed_nets: usize,
    /// Total hop cost of the routing.
    pub hops: u64,
    /// Total channel congestion `Σ_c max(0, load_c − cap_c)`.
    pub congestion: u64,
    /// Channels loaded beyond capacity.
    pub overflowed: usize,
    /// Peak load/capacity ratio over all channels.
    pub max_util: f64,
}

/// The board scenario matrix: routes each circuit's cut nets over every
/// builtin board topology and scores the topology objective.
///
/// The 2-site board routes the best equal-halves bipartition (functional
/// replication at `T = 0`); the larger boards route the cost-driven
/// k-way placement (`T = 1`). A placement occupying more parts than a
/// board has sites is reported as unmappable (`-` cells) rather than
/// failing the whole matrix. Under the golden protocol every cell is a
/// pure function of `(suite, candidates, seed)`.
///
/// # Errors
///
/// [`ExperimentError::PartitionFailed`] if a partitioning run fails,
/// [`ExperimentError::MissingRecord`] if the winning bipartition
/// exported no placement.
pub fn board_matrix(
    suite: &[(String, Hypergraph)],
    candidates: usize,
    seed: u64,
) -> Result<(Table, Vec<BoardMatrixRecord>), ExperimentError> {
    let boards = builtin_boards();
    let mut t = Table::new(
        "Board matrix — cut nets routed over the builtin board topologies",
        &[
            "Circuit", "Board", "Parts", "Routed", "Hops", "Congestion", "Overflow", "Max util",
            "Legal",
        ],
    );
    let mut records = Vec::new();
    for (name, hg) in suite {
        let fail = |source: PartitionError| ExperimentError::PartitionFailed {
            name: name.clone(),
            source,
        };
        // The identity part→site mapping needs as many sites as occupied
        // parts: a bipartition feeds the 2-site board, the k-way
        // placement feeds the larger boards.
        let bi_cfg = BipartitionConfig::equal(hg, 0.1)
            .with_seed(seed)
            .with_replication(ReplicationMode::functional(0));
        let bi = run_many(hg, &bi_cfg, 3).map_err(fail)?;
        let bi_placement =
            bi.best()
                .placement
                .clone()
                .ok_or_else(|| ExperimentError::MissingRecord {
                    name: name.clone(),
                    threshold: Some(0),
                })?;
        let kw_cfg = KWayConfig::new(DeviceLibrary::xc3000())
            .with_candidates(candidates)
            .with_seed(seed)
            .with_max_passes(8)
            .with_replication(ReplicationMode::functional(1));
        let kw = kway_partition(hg, &kw_cfg).map_err(fail)?;
        for board in &boards {
            let placement = if board.n_sites() == 2 {
                &bi_placement
            } else {
                &kw.placement
            };
            let parts = placement
                .part_areas(hg)
                .iter()
                .rposition(|&a| a > 0)
                .map_or(0, |last| last + 1);
            let rec = match demands(hg, placement, board).map(|d| route_nets(board, &d)) {
                Ok(Ok(routing)) => {
                    let obj = TopologyObjective::evaluate(board, &routing);
                    BoardMatrixRecord {
                        name: name.clone(),
                        board: board.name().to_string(),
                        parts,
                        mappable: true,
                        routed_nets: obj.routed_nets,
                        hops: obj.hops,
                        congestion: obj.congestion,
                        overflowed: obj.overflowed_channels,
                        max_util: obj.max_channel_util,
                    }
                }
                _ => BoardMatrixRecord {
                    name: name.clone(),
                    board: board.name().to_string(),
                    parts,
                    mappable: false,
                    routed_nets: 0,
                    hops: 0,
                    congestion: 0,
                    overflowed: 0,
                    max_util: 0.0,
                },
            };
            let cell = |s: String| fmt_or_dash(rec.mappable, s);
            t.row([
                rec.name.clone(),
                rec.board.clone(),
                rec.parts.to_string(),
                cell(rec.routed_nets.to_string()),
                cell(rec.hops.to_string()),
                cell(rec.congestion.to_string()),
                cell(rec.overflowed.to_string()),
                cell(f2(rec.max_util)),
                cell(if rec.congestion == 0 { "yes" } else { "no" }.into()),
            ]);
            records.push(rec);
        }
    }
    Ok((t, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Vec<(String, Hypergraph)> {
        suite(16, &["c3540", "s5378"])
    }

    #[test]
    fn table1_lists_five_devices() {
        let t = table1();
        assert_eq!(t.n_rows(), 5);
        assert!(t.to_ascii().contains("XC3090"));
    }

    #[test]
    fn table2_covers_suite() {
        let s = tiny_suite();
        let t = table2(&s);
        assert_eq!(t.n_rows(), 2);
        assert!(t.to_csv().contains("c3540"));
    }

    #[test]
    fn figure3_percentages_sum_to_100() {
        let s = tiny_suite();
        let t = figure3(&s);
        for line in t.to_csv().lines().skip(1) {
            let total: f64 = line
                .split(',')
                .skip(1)
                .map(|v| v.parse::<f64>().expect("numeric cell"))
                .sum();
            assert!((total - 100.0).abs() < 0.5, "row sums to {total}");
        }
    }

    #[test]
    fn table3_reduces_cut() {
        let s = tiny_suite();
        let (t, records) =
            table3(&s, 3, Timing::Deterministic).expect("suite circuits are satisfiable");
        assert_eq!(t.n_rows(), 3); // 2 circuits + Avg.
        for r in &records {
            assert!(r.repl_avg <= r.plain_avg, "{r:?}");
        }
        // Deterministic timing prints `-` in the CPU column.
        assert!(t.to_csv().lines().nth(1).is_some_and(|l| l.ends_with(",-")));
    }

    #[test]
    fn deterministic_timing_is_byte_stable() {
        let s = tiny_suite();
        let a = table3(&s, 2, Timing::Deterministic).expect("runs").0;
        let b = table3(&s, 2, Timing::Deterministic).expect("runs").0;
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn errors_are_typed_and_printable() {
        let err = try_suite(1, &["nonesuch"]).expect_err("unknown circuit");
        assert!(matches!(err, ExperimentError::UnknownCircuit { .. }));
        assert!(err.to_string().contains("nonesuch"));
    }

    #[test]
    fn board_matrix_covers_every_circuit_board_pair() {
        let s = tiny_suite();
        let (t, records) = board_matrix(&s, 2, 7).expect("suite circuits are satisfiable");
        assert_eq!(records.len(), s.len() * builtin_boards().len());
        assert_eq!(t.n_rows(), records.len());
        // The 2-site board always routes the bipartition placement.
        for r in records.iter().filter(|r| r.board == "direct2") {
            assert!(r.mappable, "{r:?}");
            assert!(r.parts <= 2, "{r:?}");
        }
        // Determinism: the matrix is a pure function of its inputs.
        let (t2, _) = board_matrix(&s, 2, 7).expect("second run");
        assert_eq!(t.to_csv(), t2.to_csv());
    }

    #[test]
    fn kway_records_cover_thresholds() {
        let s = suite(16, &["s5378"]);
        let recs = kway_experiment(
            "s5378",
            &s[0].1,
            &[None, Some(1)],
            2,
            7,
            Timing::Deterministic,
        );
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.feasible));
        assert!(recs[0].cost > 0);
    }
}
