//! Regenerates the paper's tables and figure under the pinned golden
//! protocol (see EXPERIMENTS.md).
//!
//! ```text
//! tables <exhibit> [--runs N] [--candidates N] [--scale N] [--kway-scale N]
//!                  [--out DIR] [--only NAME,...] [--timing]
//!
//! exhibit: table1 | table2 | table3 | table4 (IV–VII) | figure3 | board | all
//! --runs N        bipartition runs per circuit for Table III (default 20)
//! --candidates N  feasible k-way partitions per run for Tables IV–VII (default 3)
//! --scale N       shrink factor for Tables II–III / Figure 3 (default 1 = paper scale)
//! --kway-scale N  shrink factor for Tables IV–VII (default 6, the archived protocol)
//! --out DIR       CSV output directory (default results/)
//! --only LIST     comma-separated circuit subset
//! --timing        measure wall clocks (CPU columns become non-reproducible;
//!                 the default prints `-` so regenerated CSVs are byte-stable)
//! ```
//!
//! With no flags, every emitted CSV must match `results/` byte-for-byte
//! (enforced by `tests/golden_tables.rs`). To bless new goldens after an
//! intentional algorithm change, rerun `tables all` and commit the diff.

use netpart::experiments::{
    board_matrix, figure3, table1, table2, table3, tables_4_to_7, try_suite, Timing,
};
use netpart::report::Table;
use std::path::PathBuf;

struct Options {
    exhibit: String,
    runs: usize,
    candidates: usize,
    scale: usize,
    kway_scale: usize,
    out: PathBuf,
    only: Vec<String>,
    timing: Timing,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        exhibit: String::new(),
        runs: 20,
        candidates: 3,
        scale: 1,
        kway_scale: 6,
        out: PathBuf::from("results"),
        only: Vec::new(),
        timing: Timing::Deterministic,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--runs" => opts.runs = need("--runs")?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--candidates" => {
                opts.candidates = need("--candidates")?
                    .parse()
                    .map_err(|e| format!("--candidates: {e}"))?
            }
            "--scale" => {
                opts.scale = need("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--kway-scale" => {
                opts.kway_scale = need("--kway-scale")?
                    .parse()
                    .map_err(|e| format!("--kway-scale: {e}"))?
            }
            "--out" => opts.out = PathBuf::from(need("--out")?),
            "--only" => {
                opts.only = need("--only")?.split(',').map(str::to_string).collect()
            }
            "--timing" => opts.timing = Timing::Wall,
            _ if a.starts_with('-') => return Err(format!("unknown flag {a}")),
            _ if opts.exhibit.is_empty() => opts.exhibit = a,
            _ => return Err(format!("unexpected argument {a}")),
        }
    }
    if opts.exhibit.is_empty() {
        opts.exhibit = "all".into();
    }
    Ok(opts)
}

fn emit(table: &Table, out: &PathBuf, file: &str) {
    println!("{table}");
    if std::fs::create_dir_all(out).is_ok() {
        let path = out.join(file);
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(csv: {})\n", path.display());
        }
    }
}

fn build_suite(scale: usize, only: &[&str], what: &str) -> Vec<(String, netpart::hypergraph::Hypergraph)> {
    eprintln!(
        "building benchmark suite for {what} (scale 1/{scale}, circuits: {}) ...",
        if only.is_empty() { "all" } else { "subset" }
    );
    match try_suite(scale, only) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let only: Vec<&str> = opts.only.iter().map(String::as_str).collect();
    let want = |x: &str| opts.exhibit == "all" || opts.exhibit == x;
    let mut matched = false;

    if want("table1") {
        matched = true;
        emit(&table1(), &opts.out, "table1.csv");
    }
    if ["table2", "table3", "figure3"].iter().any(|x| want(x)) {
        matched = true;
        let s = build_suite(opts.scale, &only, "Tables II–III / Figure 3");
        if want("table2") {
            emit(&table2(&s), &opts.out, "table2.csv");
        }
        if want("figure3") {
            emit(&figure3(&s), &opts.out, "figure3.csv");
        }
        if want("table3") {
            eprintln!("running Table III ({} runs per circuit) ...", opts.runs);
            match table3(&s, opts.runs, opts.timing) {
                Ok((t, _)) => emit(&t, &opts.out, "table3.csv"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if want("table4") {
        matched = true;
        let s = build_suite(opts.kway_scale, &only, "Tables IV–VII");
        eprintln!(
            "running Tables IV–VII ({} feasible partitions per run) ...",
            opts.candidates
        );
        match tables_4_to_7(&s, opts.candidates, 2024, opts.timing) {
            Ok((t4, t5, t6, t7, _)) => {
                emit(&t4, &opts.out, "table4.csv");
                emit(&t5, &opts.out, "table5.csv");
                emit(&t6, &opts.out, "table6.csv");
                emit(&t7, &opts.out, "table7.csv");
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if want("board") {
        matched = true;
        let s = build_suite(opts.kway_scale, &only, "board matrix");
        eprintln!(
            "running board matrix ({} feasible partitions per run) ...",
            opts.candidates
        );
        match board_matrix(&s, opts.candidates, 2024) {
            Ok((t, _)) => emit(&t, &opts.out, "board_matrix.csv"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if !matched {
        eprintln!(
            "error: unknown exhibit {:?} (expected table1|table2|table3|table4|figure3|board|all)",
            opts.exhibit
        );
        std::process::exit(2);
    }
}
