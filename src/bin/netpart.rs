//! Command-line front end: map a BLIF netlist into XC3000 CLBs and
//! partition it.
//!
//! ```text
//! netpart stats       <file.blif>
//! netpart bipartition <file.blif> [--replication none|traditional|functional]
//!                     [--threshold T] [--runs N] [--epsilon E] [--seed S]
//!                     [--budget-ms MS] [--jobs N] [--cache] [--certify-out C.cert]
//!                     [--multilevel] [--max-levels N] [--coarsen-ratio R]
//!                     [--par-refine]
//! netpart kway        <file.blif> [--replication none|functional] [--threshold T]
//!                     [--candidates N] [--max-attempts N] [--seed S] [--refine]
//!                     [--budget-ms MS] [--assign out.csv] [--jobs N] [--tasks N]
//!                     [--cache] [--certify-out C.cert]
//!                     [--multilevel] [--max-levels N] [--coarsen-ratio R]
//! netpart verify      <file.cert> [--netlist file.blif]
//! netpart serve       <spool-dir> [--drain] [--jobs N] [--max-queue N]
//!                     [--max-retries N] [--backoff-base R] [--poll-ms MS]
//!                     [--budget-ms MS] [--seed S]
//! netpart serve-status <spool-dir>
//! netpart trace       summarize <trace.jsonl>
//! netpart trace       validate  <trace.jsonl>
//! netpart trace       diff      <a.jsonl> <b.jsonl>
//! netpart submit      <spool-dir> <file.blif> [--cmd bipartition|kway] [--id ID]
//!                     [job flags: --seed --runs --epsilon --candidates --tasks
//!                      --replication --threshold --budget-ms --max-retries]
//! netpart queue       <spool-dir>
//! ```
//!
//! `--jobs N` fans the multi-start portfolio across `N` worker threads
//! via the deterministic engine: for a fixed seed the printed solution
//! is identical at every jobs level. `--tasks N` fixes the k-way
//! portfolio width (default 4) independently of `--jobs`, which is what
//! keeps the k-way reduction jobs-invariant. Worker statistics go to
//! stderr so stdout stays byte-comparable. `--cache` enables the
//! engine's in-memory result cache (useful for repeated requests inside
//! one process; stats are printed to stderr).
//!
//! # Observability
//!
//! * `--trace-out <path>` — write a structured JSONL run trace
//!   (`netpart::obs` events at Trace level). Fixed-seed traces are
//!   byte-identical across `--jobs` levels once scheduling timing is
//!   stripped (drop `"scope":"timing"` lines and trailing `"timing"`
//!   objects; see `scripts/strip_timing.sh`).
//! * `--metrics-out <path>` — write an end-of-run metrics snapshot
//!   (counters, paper-metric gauges `$_k`/`k̄`, histograms) as pretty
//!   JSON, suitable as a `BENCH_*.json` artifact.
//! * `--profile-out <path>` — write the folded span profile (the
//!   inclusive/exclusive self-time tree over `fm`/`ml`/`engine`/`serve`
//!   spans) as pretty JSON; with `-v` the flame-style table also prints
//!   to stderr.
//! * `-v` / `-vv` — human-readable events on stderr (Info / Trace).
//!
//! `netpart trace <summarize|validate|diff>` operates on written trace
//! files: `validate` checks every line against the event schema (exit 2
//! on violations), `summarize` prints per-scope event/counter/span
//! tables, and `diff` compares two traces after stripping timing (exit
//! 1 at the first divergence) — the native form of the
//! `scripts/strip_timing.sh` determinism check. `netpart serve-status
//! <spool>` renders the service's latest `metrics.prom` exposition
//! (queue depth, claim-to-done latency quantiles, retry/quarantine/
//! cache counters).
//!
//! Any of these flags routes `bipartition`/`kway` through the portfolio
//! engine even at `--jobs 1`, so the emission pipeline — and therefore
//! stdout and the stripped trace — is identical at every jobs level.
//!
//! # Multilevel V-cycle
//!
//! `--multilevel` wraps every portfolio start in the multilevel V-cycle
//! (`netpart::multilevel`): coarsen by ψ-guarded heavy-edge matching,
//! partition the coarsest graph, refine back up. This is how 100k+-cell
//! circuits become tractable; small circuits (below the default 3000
//! -cell floor) fall through to the flat path byte-identically.
//! `--max-levels N` and `--coarsen-ratio R` override the V-cycle depth
//! and the minimum per-level shrink factor (either flag implies
//! `--multilevel`). The multilevel path routes through the portfolio
//! engine, so `--jobs` invariance and certificates work unchanged.
//!
//! # Board topologies
//!
//! `--board <file.board>` (or a builtin: `direct2`, `mesh2x2`, `star8`)
//! routes the winning solution's cut nets over a concrete multi-FPGA
//! board with the deterministic channel router (`netpart::board`),
//! prints the topology objective (total hop cost, channel congestion,
//! peak channel utilization) and — with `--certify-out` — embeds the
//! board and every route in the certificate so `netpart verify`
//! re-derives routing feasibility and the congestion terms from
//! scratch. Part `j` of the placement is hosted on board site `j`; a
//! placement with more occupied parts than the board has sites is
//! rejected as invalid input (exit 2). Routing is a pure function of
//! the placement, so stdout stays byte-identical across `--jobs`
//! levels.
//!
//! Generated circuits can be exported for experimentation with
//! `netpart synth <gates> [out.blif]`; `--rent P` switches the
//! generator to Rent-rule I/O scaling (`T ≈ 2.5·B^P`) for realistic
//! large-circuit boundaries.
//!
//! # Certificates
//!
//! `--certify-out <path>` serializes the winning solution as a
//! [`SolutionCertificate`] — a self-contained claim file that
//! `netpart verify` re-checks from scratch with the independent
//! `netpart-verify` oracle (no code shared with the optimizer's
//! incremental bookkeeping). `verify` re-reads the netlist from
//! `--netlist` or, absent that, from the `source` path recorded in the
//! certificate, re-derives every claim, and exits `6` on any violation
//! (including malformed certificate files).
//!
//! # Service mode
//!
//! `netpart serve <spool>` runs the durable partitioning service over a
//! spool directory: jobs dropped by `netpart submit` are executed with
//! every queue transition journaled to a checksummed write-ahead log,
//! so the server survives `kill -9` at any point — on restart it
//! replays the journal, re-runs interrupted jobs and replays completed
//! ones from the certificate-verified disk cache. `--drain` processes
//! the backlog and exits (batch mode); without it the server watches
//! `jobs/` until a `drain` sentinel file appears in the spool.
//! `--fault-crash-at <label>`, `--fault-torn-write <n>` and
//! `--fault-disk-full <n>` arm the deterministic fault-injection hooks
//! the recovery test matrix uses.
//!
//! # Exit codes
//!
//! * `0` — success, including *degraded* results (budget ran out or the
//!   k-way escalation ladder relaxed constraints; a `note:` line on
//!   stderr describes the degradation).
//! * `1` — I/O or BLIF parse failure.
//! * `2` — usage error or invalid input
//!   ([`PartitionError::InvalidInput`]).
//! * `3` — infeasible under the device library
//!   ([`PartitionError::InfeasibleLibrary`]).
//! * `4` — budget exhausted with no usable solution
//!   ([`PartitionError::BudgetExhausted`]).
//! * `5` — internal invariant violation, i.e. a bug
//!   ([`PartitionError::InternalInvariant`]).
//! * `6` — certificate violation: `netpart verify` rejected the
//!   certificate (or could not parse it).
//! * `7` — queue full: `netpart submit` hit the spool's backpressure
//!   limit; nothing was written, resubmit later.

use netpart::core::{refine_kway, unreplicate_cleanup};
use netpart::engine::WorkerStats;
use netpart::obs::{
    diff_stripped, parse_prometheus, quantile_of, scan_trace, ProfileRecorder, QuantileBound,
    StderrRecorder,
};
use netpart::prelude::*;
use netpart::report::{
    metrics_table, profile_table, violation_table, worker_table, Table, WorkerRow,
};
use netpart::serve::{
    atomic_write, CrashMode, Injector, JobState, QueueState, ServeError, Wal,
};
use std::error::Error;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage:\n  netpart stats <file.blif>\n  netpart bipartition <file.blif> [--replication none|traditional|functional] [--threshold T] [--runs N] [--epsilon E] [--seed S] [--budget-ms MS] [--jobs N] [--cache] [--multilevel] [--max-levels N] [--coarsen-ratio R] [--par-refine] [--board B.board|direct2|mesh2x2|star8] [--certify-out C.cert] [--trace-out T.jsonl] [--metrics-out M.json] [--profile-out P.json] [-v|-vv]\n  netpart kway <file.blif> [--replication none|functional] [--threshold T] [--candidates N] [--max-attempts N] [--seed S] [--refine] [--budget-ms MS] [--assign out.csv] [--jobs N] [--tasks N] [--cache] [--multilevel] [--max-levels N] [--coarsen-ratio R] [--board B.board|direct2|mesh2x2|star8] [--certify-out C.cert] [--trace-out T.jsonl] [--metrics-out M.json] [--profile-out P.json] [-v|-vv]\n  netpart verify <file.cert> [--netlist file.blif] [-v|-vv]\n  netpart serve <spool-dir> [--drain] [--jobs N] [--max-queue N] [--max-retries N] [--backoff-base R] [--poll-ms MS] [--budget-ms MS] [--seed S] [--trace-out T.jsonl] [--metrics-out M.json] [--profile-out P.json] [-v|-vv]\n  netpart serve-status <spool-dir>\n  netpart trace summarize <trace.jsonl>\n  netpart trace validate <trace.jsonl>\n  netpart trace diff <a.jsonl> <b.jsonl>\n  netpart submit <spool-dir> <file.blif> [--cmd bipartition|kway] [--id ID] [--seed S] [--runs N] [--epsilon E] [--candidates N] [--tasks N] [--replication M] [--threshold T] [--budget-ms MS] [--max-retries N] [--max-queue N]\n  netpart queue <spool-dir>\n  netpart synth <gates> [out.blif] [--dff N] [--seed S] [--rent P]"
    );
    std::process::exit(2)
}

struct Flags {
    replication: String,
    threshold: u32,
    runs: usize,
    epsilon: f64,
    seed: u64,
    candidates: usize,
    max_attempts: Option<usize>,
    budget_ms: Option<u64>,
    refine: bool,
    par_refine: bool,
    assign: Option<String>,
    dff: usize,
    jobs: usize,
    tasks: Option<usize>,
    cache: bool,
    multilevel: bool,
    max_levels: Option<usize>,
    coarsen_ratio: Option<f64>,
    rent: Option<f64>,
    verbose: u8,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    profile_out: Option<String>,
    certify_out: Option<String>,
    netlist: Option<String>,
    board: Option<String>,
    // Service-mode flags (serve / submit / queue).
    id: Option<String>,
    cmd: String,
    max_queue: usize,
    max_retries: Option<u32>,
    backoff_base: u64,
    poll_ms: u64,
    drain: bool,
    max_moves: u64,
    fault_crash_at: Option<String>,
    fault_torn_write: Option<u64>,
    fault_disk_full: Option<u64>,
}

fn parse_flags(args: &[String]) -> Result<Flags, Box<dyn Error>> {
    let mut f = Flags {
        replication: "functional".into(),
        threshold: 0,
        runs: 10,
        epsilon: 0.1,
        seed: 1,
        candidates: 10,
        max_attempts: None,
        budget_ms: None,
        refine: false,
        par_refine: false,
        assign: None,
        dff: 0,
        jobs: 1,
        tasks: None,
        cache: false,
        multilevel: false,
        max_levels: None,
        coarsen_ratio: None,
        rent: None,
        verbose: 0,
        trace_out: None,
        metrics_out: None,
        profile_out: None,
        certify_out: None,
        netlist: None,
        board: None,
        id: None,
        cmd: "kway".into(),
        max_queue: 64,
        max_retries: None,
        backoff_base: 2,
        poll_ms: 50,
        drain: false,
        max_moves: 0,
        fault_crash_at: None,
        fault_torn_write: None,
        fault_disk_full: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || -> Result<&String, Box<dyn Error>> {
            it.next().ok_or_else(|| format!("{a} needs a value").into())
        };
        match a.as_str() {
            "--replication" => f.replication = val()?.clone(),
            "--threshold" => f.threshold = val()?.parse()?,
            "--runs" => f.runs = val()?.parse()?,
            "--epsilon" => f.epsilon = val()?.parse()?,
            "--seed" => f.seed = val()?.parse()?,
            "--candidates" => f.candidates = val()?.parse()?,
            "--max-attempts" => f.max_attempts = Some(val()?.parse()?),
            "--budget-ms" => f.budget_ms = Some(val()?.parse()?),
            "--dff" => f.dff = val()?.parse()?,
            "--jobs" => f.jobs = val()?.parse::<usize>()?.max(1),
            "--tasks" => f.tasks = Some(val()?.parse::<usize>()?.max(1)),
            "--cache" => f.cache = true,
            "--multilevel" => f.multilevel = true,
            "--max-levels" => f.max_levels = Some(val()?.parse()?),
            "--coarsen-ratio" => f.coarsen_ratio = Some(val()?.parse()?),
            "--rent" => f.rent = Some(val()?.parse()?),
            "-v" => f.verbose += 1,
            "-vv" => f.verbose += 2,
            "--trace-out" => f.trace_out = Some(val()?.clone()),
            "--metrics-out" => f.metrics_out = Some(val()?.clone()),
            "--profile-out" => f.profile_out = Some(val()?.clone()),
            "--certify-out" => f.certify_out = Some(val()?.clone()),
            "--netlist" => f.netlist = Some(val()?.clone()),
            "--board" => f.board = Some(val()?.clone()),
            "--refine" => f.refine = true,
            "--par-refine" => f.par_refine = true,
            "--assign" => f.assign = Some(val()?.clone()),
            "--id" => f.id = Some(val()?.clone()),
            "--cmd" => f.cmd = val()?.clone(),
            "--max-queue" => f.max_queue = val()?.parse::<usize>()?.max(1),
            "--max-retries" => f.max_retries = Some(val()?.parse()?),
            "--backoff-base" => f.backoff_base = val()?.parse()?,
            "--poll-ms" => f.poll_ms = val()?.parse()?,
            "--drain" => f.drain = true,
            "--max-moves" => f.max_moves = val()?.parse()?,
            "--fault-crash-at" => f.fault_crash_at = Some(val()?.clone()),
            "--fault-torn-write" => f.fault_torn_write = Some(val()?.parse()?),
            "--fault-disk-full" => f.fault_disk_full = Some(val()?.parse()?),
            _ => return Err(format!("unknown flag {a}").into()),
        }
    }
    Ok(f)
}

/// The observability bundle built from the CLI flags: a [`Tee`] fanning
/// events out to the JSONL trace file (`--trace-out`, Trace level), the
/// metrics accumulator (`--metrics-out` or `-v`), and a human-readable
/// stderr sink (`-v` Info, `-vv` Trace). When no observability flag is
/// set the tee is empty and recording is a no-op.
struct Obs {
    recorder: Arc<dyn Recorder>,
    jsonl: Option<Arc<JsonlRecorder>>,
    metrics: Option<Arc<MetricsRecorder>>,
    profile: Option<Arc<ProfileRecorder>>,
    t0: Instant,
}

impl Obs {
    /// Whether any observability flag was given — if so, the command
    /// routes through the portfolio engine even at `--jobs 1`, so the
    /// emission pipeline is identical at every jobs level.
    fn active(f: &Flags) -> bool {
        f.verbose > 0
            || f.trace_out.is_some()
            || f.metrics_out.is_some()
            || f.profile_out.is_some()
    }

    fn from_flags(f: &Flags) -> Result<Obs, Box<dyn Error>> {
        let mut tee = Tee::new();
        let mut jsonl = None;
        if let Some(path) = &f.trace_out {
            // Atomic: the trace streams to `<path>.tmp` and only the
            // commit in `finish` publishes it — a killed run never
            // leaves a partial trace at the final path.
            let r = Arc::new(
                JsonlRecorder::create_atomic(path)
                    .map_err(|e| format!("cannot create trace file {path}: {e}"))?,
            );
            jsonl = Some(Arc::clone(&r));
            tee = tee.with(r);
        }
        let mut metrics = None;
        if f.metrics_out.is_some() || f.verbose > 0 {
            let m = Arc::new(MetricsRecorder::new());
            tee = tee.with(Arc::clone(&m) as Arc<dyn Recorder>);
            metrics = Some(m);
        }
        let mut profile = None;
        if f.profile_out.is_some() {
            let p = Arc::new(ProfileRecorder::new());
            tee = tee.with(Arc::clone(&p) as Arc<dyn Recorder>);
            profile = Some(p);
        }
        if f.verbose > 0 {
            let max = if f.verbose >= 2 {
                Level::Trace
            } else {
                Level::Info
            };
            tee = tee.with(Arc::new(StderrRecorder::new(max)));
        }
        Ok(Obs {
            recorder: Arc::new(tee),
            jsonl,
            metrics,
            profile,
            t0: Instant::now(),
        })
    }

    /// Flushes the trace file and writes/prints the metrics snapshot.
    /// `extra` carries per-command metadata (runs, tasks, …); wall time
    /// lands in the snapshot's `timing` section, keeping the rest of
    /// the file deterministic for a fixed seed.
    fn finish(
        &self,
        f: &Flags,
        cmd: &str,
        file: &str,
        extra: &[(&str, String)],
    ) -> Result<(), Box<dyn Error>> {
        if let Some(j) = &self.jsonl {
            j.commit()?;
        }
        if let Some(p) = &self.profile {
            let prof = p.profile();
            if let Some(out) = &f.profile_out {
                atomic_write(Path::new(out), prof.to_json().as_bytes(), &Injector::none())?;
                eprintln!("profile written to {out}");
            }
            if f.verbose > 0 {
                eprintln!("{}", profile_table("span profile", &prof));
            }
        }
        if let Some(m) = &self.metrics {
            let mut snap = m.snapshot();
            snap.set_meta("cmd", cmd);
            snap.set_meta("file", file);
            snap.set_meta("seed", f.seed.to_string());
            snap.set_meta("jobs", f.jobs.to_string());
            for (k, v) in extra {
                snap.set_meta(k, v.clone());
            }
            snap.set_timing("wall_ms", self.t0.elapsed().as_millis() as u64);
            if let Some(out) = &f.metrics_out {
                atomic_write(Path::new(out), snap.to_json().as_bytes(), &Injector::none())?;
                eprintln!("metrics written to {out}");
            }
            if f.verbose > 0 {
                eprintln!("{}", metrics_table("run metrics", &snap));
            }
        }
        Ok(())
    }
}

/// Exit code for a rejected (or unparseable) certificate.
const EXIT_CERTIFICATE_VIOLATION: i32 = 6;

/// A certificate `netpart verify` could not parse or refused to accept;
/// mapped to [`EXIT_CERTIFICATE_VIOLATION`] in `main`.
#[derive(Debug)]
struct CertificateViolation(String);

impl std::fmt::Display for CertificateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for CertificateViolation {}

/// Serializes a solution certificate next to the run that produced it.
/// `cert` is `None` when the winning run exported no placement (plain
/// FM without an exported placement has nothing to certify).
fn write_certificate(
    cert: Option<SolutionCertificate>,
    out: &str,
    source: &str,
) -> Result<(), Box<dyn Error>> {
    let cert = cert.ok_or("nothing to certify: the winning run exported no placement")?;
    atomic_write(
        Path::new(out),
        cert.with_source(source).to_text().as_bytes(),
        &Injector::none(),
    )?;
    println!("certificate written to {out}");
    Ok(())
}

fn budget_of(f: &Flags) -> Budget {
    match f.budget_ms {
        Some(ms) => Budget::wall_ms(ms),
        None => Budget::none(),
    }
}

fn load(path: &str) -> Result<(Netlist, Hypergraph), Box<dyn Error>> {
    let text = std::fs::read_to_string(path)?;
    let nl = parse_blif(&text)?;
    nl.validate()?;
    // Decompose anything wider than a 5-input LUT before mapping.
    let nl = decompose_wide_gates(&nl, 5);
    let hg = map(&nl, &MapperConfig::xc3000())?.to_hypergraph(&nl);
    Ok((nl, hg))
}

/// The multilevel configuration requested on the command line, if any.
/// `--max-levels` and `--coarsen-ratio` imply `--multilevel`.
fn ml_of(f: &Flags) -> Option<MultilevelConfig> {
    if !f.multilevel && f.max_levels.is_none() && f.coarsen_ratio.is_none() {
        return None;
    }
    let mut ml = MultilevelConfig::new();
    if let Some(n) = f.max_levels {
        ml = ml.with_max_levels(n);
    }
    if let Some(r) = f.coarsen_ratio {
        ml = ml.with_coarsen_ratio(r);
    }
    Some(ml)
}

/// Resolves a `--board` argument: one of the builtin topologies by
/// name, else a `.board` file path. Parse failures carry the offending
/// line number and exit 1 like BLIF parse errors.
fn load_board(spec: &str) -> Result<Board, Box<dyn Error>> {
    match spec {
        "direct2" => Ok(Board::direct2()),
        "mesh2x2" => Ok(Board::mesh2x2()),
        "star8" => Ok(Board::star(8)),
        path => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read board {path}: {e}"))?;
            parse_board(&text).map_err(|e| format!("{path}: {e}").into())
        }
    }
}

/// Routes the winning placement's cut nets over the `--board` topology:
/// prints the objective line to stdout (deterministic — a pure function
/// of the placement), emits `board.*` events when recording, and
/// returns the claim bundle to embed in the certificate.
fn route_board(
    spec: &str,
    hg: &Hypergraph,
    placement: &Placement,
    recorder: Option<&Arc<dyn Recorder>>,
) -> Result<(BoardClaim, u64, u64), Box<dyn Error>> {
    let board = load_board(spec)?;
    if let Some(r) = recorder {
        r.record(
            &Event::new("board", "loaded", Level::Info)
                .field("name", board.name().to_string())
                .field("sites", board.n_sites())
                .field("channels", board.n_channels())
                .field("digest", format!("{:016x}", board.digest())),
        );
    }
    let demands = board_demands(hg, placement, &board).map_err(|e| -> Box<dyn Error> {
        match &e {
            // More occupied parts than sites is the caller asking for a
            // mapping that cannot exist: invalid input, exit 2.
            BoardError::SitesExceeded { .. } => {
                Box::new(PartitionError::invalid_input(e.to_string()))
            }
            _ => Box::new(e),
        }
    })?;
    let routing = route_nets(&board, &demands)?;
    let objective = TopologyObjective::evaluate(&board, &routing);
    println!("board {}: {objective}", board.name());
    if let Some(r) = recorder {
        r.record(
            &Event::new("board", "routed", Level::Info)
                .field("nets", objective.routed_nets)
                .field("hops", objective.hops)
                .field("congestion", objective.congestion)
                .field("overflow_channels", objective.overflowed_channels),
        );
    }
    let claim = board_claim(&board, &routing);
    Ok((claim, routing.hops, routing.congestion))
}

/// Attaches a routed board claim to a certificate, when both exist.
fn attach_board(
    cert: Option<SolutionCertificate>,
    board: Option<(BoardClaim, u64, u64)>,
) -> Option<SolutionCertificate> {
    match (cert, board) {
        (Some(c), Some((claim, hops, congestion))) => Some(c.with_board(claim, hops, congestion)),
        (c, _) => c,
    }
}

fn mode_of(f: &Flags) -> Result<ReplicationMode, Box<dyn Error>> {
    Ok(match f.replication.as_str() {
        "none" => ReplicationMode::None,
        "traditional" => ReplicationMode::Traditional,
        "functional" => ReplicationMode::functional(f.threshold),
        other => return Err(format!("unknown replication mode {other:?}").into()),
    })
}

/// Prints a degradation notice to stderr when the result deviates from
/// what was requested; degraded results still exit 0.
fn note_degradation(d: &Degradation) {
    if d.is_degraded() {
        eprintln!("note: {d}");
    }
}

/// Prints the per-worker portfolio statistics to stderr (stderr so that
/// stdout stays byte-identical across `--jobs` levels — wall times are
/// not deterministic).
fn note_workers(workers: &[WorkerStats]) {
    let rows: Vec<WorkerRow> = workers
        .iter()
        .map(|w| WorkerRow {
            worker: w.worker,
            starts: w.starts,
            passes: w.passes,
            moves: w.moves,
            wall_ms: w.wall_ms,
            cutoff_hits: w.cutoff_hits,
        })
        .collect();
    eprintln!("{}", worker_table("portfolio workers", &rows));
}

fn note_cache(engine: &Engine) {
    if engine.cache_enabled() {
        let s = engine.cache_stats();
        eprintln!(
            "cache: {} hits, {} misses, {} entries",
            s.hits, s.misses, s.entries
        );
    }
}

fn cmd_stats(path: &str) -> Result<(), Box<dyn Error>> {
    let (nl, hg) = load(path)?;
    let s = hg.stats();
    println!("model {}", nl.name());
    println!(
        "gates {} (dff {}), PIs {}, POs {}",
        nl.n_gates(),
        nl.n_dffs(),
        nl.primary_inputs().len(),
        nl.primary_outputs().len()
    );
    println!(
        "mapped: {} CLBs, {} IOBs, {} nets, {} pins",
        s.clbs, s.iobs, s.nets, s.pins
    );
    let dist = hg.replication_potential_distribution();
    let total: usize = dist.iter().sum();
    print!("replication potential ψ distribution:");
    for (psi, n) in dist.iter().enumerate() {
        if *n > 0 {
            print!(" ψ={psi}:{:.1}%", 100.0 * *n as f64 / total as f64);
        }
    }
    println!();
    Ok(())
}

fn cmd_bipartition(path: &str, f: &Flags) -> Result<(), Box<dyn Error>> {
    if !(0.0..=1.0).contains(&f.epsilon) {
        return Err(format!("--epsilon must be within [0, 1], got {}", f.epsilon).into());
    }
    let (_, hg) = load(path)?;
    let cfg = BipartitionConfig::equal(&hg, f.epsilon)
        .with_seed(f.seed)
        .with_replication(mode_of(f)?)
        .with_budget(budget_of(f));
    let runs = f.runs.max(1);
    let ml = ml_of(f);
    if f.jobs > 1 || f.cache || ml.is_some() || f.par_refine || Obs::active(f) {
        // Portfolio engine path: same printed solution as the
        // sequential harness for a fixed seed, by the engine's
        // determinism contract. Observability flags force this path
        // even at --jobs 1 so the emission pipeline (and the stripped
        // trace) is identical at every jobs level; --multilevel always
        // routes here so the V-cycle keeps the engine's invariance,
        // and --par-refine needs the engine's worker pool.
        let obs = Obs::from_flags(f)?;
        let engine = Engine::new(f.jobs)
            .with_cache(f.cache)
            .with_multilevel(ml)
            .with_recorder(Arc::clone(&obs.recorder));
        let (stats, _hit) = engine.bipartition_many(&hg, &cfg, runs)?;
        note_degradation(&stats.degradation);
        println!(
            "{} runs: best cut {}, avg cut {:.1}, avg replicated cells {:.1}",
            stats.results.len(),
            stats.best_cut(),
            stats.avg_cut(),
            stats.avg_replicated()
        );
        let best = stats.best();
        println!(
            "best run: areas {:?}, {} passes, balanced: {}, stop: {}",
            best.areas, best.passes, best.balanced, best.stop
        );
        // Post-portfolio polish: refine the winner in place with the
        // deterministic parallel refiner, then certify the refined
        // solution. Skipped (with a note) when the winner replicates.
        let mut refined = None;
        if f.par_refine {
            let mut b = best.clone();
            match engine.par_refine(&hg, &cfg, &mut b) {
                Some(out) => {
                    println!(
                        "par-refine: cut {} -> {} ({} committed over {} rounds)",
                        out.cut_before, out.cut_after, out.committed, out.rounds
                    );
                    refined = Some(b);
                }
                None => println!("par-refine: skipped (winner has replicas)"),
            }
        }
        note_workers(&stats.workers);
        note_cache(&engine);
        let mut routed = None;
        if let Some(spec) = &f.board {
            let placement = match &refined {
                Some(b) => b.placement.as_ref(),
                None => best.placement.as_ref(),
            }
            .ok_or("nothing to route: the winning run exported no placement")?;
            routed = Some(route_board(spec, &hg, placement, Some(&obs.recorder))?);
        }
        if let Some(out) = &f.certify_out {
            let cert = match &refined {
                Some(b) => b.certificate(&hg, cfg.seed.wrapping_add(stats.best_start() as u64)),
                None => stats.certificate(&hg, &cfg),
            };
            write_certificate(attach_board(cert, routed), out, path)?;
        }
        obs.finish(f, "bipartition", path, &[("runs", runs.to_string())])?;
        return Ok(());
    }
    let stats = run_many(&hg, &cfg, runs)?;
    note_degradation(&stats.degradation);
    println!(
        "{} runs: best cut {}, avg cut {:.1}, avg replicated cells {:.1}",
        stats.results.len(),
        stats.best_cut(),
        stats.avg_cut(),
        stats.avg_replicated()
    );
    let best = stats.best();
    println!(
        "best run: areas {:?}, {} passes, balanced: {}, stop: {}",
        best.areas, best.passes, best.balanced, best.stop
    );
    let mut routed = None;
    if let Some(spec) = &f.board {
        let placement = best
            .placement
            .as_ref()
            .ok_or("nothing to route: the winning run exported no placement")?;
        routed = Some(route_board(spec, &hg, placement, None)?);
    }
    if let Some(out) = &f.certify_out {
        write_certificate(attach_board(stats.certificate(&hg, &cfg), routed), out, path)?;
    }
    Ok(())
}

fn cmd_kway(path: &str, f: &Flags) -> Result<(), Box<dyn Error>> {
    let (_, hg) = load(path)?;
    let lib = DeviceLibrary::xc3000();
    let mut cfg = KWayConfig::new(lib.clone())
        .with_candidates(f.candidates)
        .with_seed(f.seed)
        .with_max_passes(8)
        .with_budget(budget_of(f))
        .with_replication(match mode_of(f)? {
            ReplicationMode::Traditional => {
                return Err("k-way does not support traditional replication".into())
            }
            m => m,
        });
    if let Some(n) = f.max_attempts {
        cfg = cfg.with_max_attempts(n);
    }
    let obs_active = Obs::active(f);
    let ml = ml_of(f);
    // Built unconditionally so `--board` can emit `board.*` events on
    // the post-refinement result; with no observability flag the tee is
    // empty and both recording and `finish` are no-ops.
    let obs = Obs::from_flags(f)?;
    let (mut res, cert_seed) = if f.jobs > 1 || f.tasks.is_some() || f.cache || ml.is_some() || obs_active
    {
        // Portfolio engine path. The task count is fixed independently
        // of --jobs (default 4), which is what makes the reduction
        // jobs-invariant. Observability flags force this path even at
        // --jobs 1 (see cmd_bipartition), as does --multilevel.
        let tasks = f.tasks.unwrap_or(4);
        let engine = Engine::new(f.jobs)
            .with_cache(f.cache)
            .with_multilevel(ml)
            .with_recorder(Arc::clone(&obs.recorder));
        let (pres, _hit) = engine.kway(&hg, &cfg, tasks)?;
        eprintln!(
            "portfolio: task {} of {} won ({} feasible{})",
            pres.winner,
            pres.tasks,
            pres.feasible_tasks,
            if pres.rescued { ", rescued" } else { "" }
        );
        note_workers(&pres.workers);
        note_cache(&engine);
        let winner_seed = cfg.seed.wrapping_add(pres.winner as u64);
        (pres.result.clone(), winner_seed)
    } else {
        (kway_partition(&hg, &cfg)?, cfg.seed)
    };
    note_degradation(&res.degradation);
    if f.refine {
        let n = unreplicate_cleanup(&hg, &mut res.placement, &res.devices, &lib);
        let st = refine_kway(&hg, &mut res.placement, &res.devices, &lib, 4);
        println!(
            "refinement: {} moves, {} unreplications, Σt {} → {}",
            st.moves, n, st.terminals_before, st.terminals_after
        );
        res.evaluation = evaluate(&hg, &res.placement, &lib, &res.devices);
    }
    println!(
        "k = {}, total cost = {}, avg CLB util {:.0}%, avg IOB util {:.0}%",
        res.devices.len(),
        res.evaluation.total_cost,
        100.0 * res.evaluation.avg_clb_util,
        100.0 * res.evaluation.avg_iob_util
    );
    for part in &res.evaluation.parts {
        println!(
            "  part {}: {:8} {:5} CLBs ({:3.0}%), {:4} IOBs ({:3.0}%)",
            part.part,
            lib.device(part.device).name(),
            part.clbs,
            100.0 * part.clb_util,
            part.terminals,
            100.0 * part.iob_util
        );
    }
    let mut routed = None;
    if let Some(spec) = &f.board {
        routed = Some(route_board(spec, &hg, &res.placement, Some(&obs.recorder))?);
    }
    if let Some(out) = &f.assign {
        let mut csv = String::from("cell,part,outputs_mask\n");
        for c in hg.cell_ids() {
            for copy in res.placement.copies(c) {
                let _ = writeln!(
                    csv,
                    "{},{},{:#b}",
                    hg.cell(c).name(),
                    copy.part.0,
                    copy.outputs
                );
            }
        }
        std::fs::write(out, csv)?;
        println!("assignment written to {out}");
    }
    if let Some(out) = &f.certify_out {
        let cert = Some(res.certificate(&hg, &lib, cert_seed));
        write_certificate(attach_board(cert, routed), out, path)?;
    }
    obs.finish(
        f,
        "kway",
        path,
        &[("tasks", f.tasks.unwrap_or(4).to_string())],
    )?;
    Ok(())
}

/// `netpart verify <cert>`: re-checks a solution certificate with the
/// independent oracle. The netlist comes from `--netlist` or the
/// `source` path recorded in the certificate. Any violation — including
/// a certificate that does not parse — exits
/// [`EXIT_CERTIFICATE_VIOLATION`].
fn cmd_verify(cert_path: &str, f: &Flags) -> Result<(), Box<dyn Error>> {
    let text = std::fs::read_to_string(cert_path)
        .map_err(|e| format!("cannot read certificate {cert_path}: {e}"))?;
    let cert = SolutionCertificate::parse(&text).map_err(|e| {
        Box::new(CertificateViolation(format!(
            "malformed certificate {cert_path}: {e}"
        ))) as Box<dyn Error>
    })?;
    let netlist_path = f
        .netlist
        .clone()
        .or_else(|| cert.source.clone())
        .ok_or("certificate records no source netlist; pass --netlist <file.blif>")?;
    let (_, hg) = load(&netlist_path)?;
    let report = verify(&hg, &cert);
    let obs = if Obs::active(f) {
        Some(Obs::from_flags(f)?)
    } else {
        None
    };
    if let Some(obs) = &obs {
        obs.recorder.record(
            &Event::new("verify", "report", Level::Info)
                .field("violations", report.violations().len())
                .field("clean", report.is_clean())
                .field("cut", report.recomputed().cut),
        );
    }
    println!("{report}");
    if !report.is_clean() {
        let rows: Vec<(String, String)> = report
            .violations()
            .iter()
            .map(|v| (v.code().to_string(), v.to_string()))
            .collect();
        eprintln!("{}", violation_table("certificate violations", &rows));
    }
    if let Some(obs) = &obs {
        obs.finish(f, "verify", &netlist_path, &[("cert", cert_path.to_string())])?;
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(Box::new(CertificateViolation(format!(
            "certificate {cert_path} rejected with {} violation(s)",
            report.violations().len()
        ))))
    }
}

/// Exit code for a submission refused by queue backpressure.
const EXIT_QUEUE_FULL: i32 = 7;

/// A submission the spool refused because the queue is at capacity;
/// mapped to [`EXIT_QUEUE_FULL`] in `main`.
#[derive(Debug)]
struct QueueFull(String);

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for QueueFull {}

/// `netpart serve <spool>`: the durable partitioning service. Runs
/// until drained (`--drain`, or a `drain` sentinel file dropped into
/// the spool). Crash recovery is automatic on startup: the journal is
/// replayed, a torn tail is truncated, interrupted jobs re-run.
fn cmd_serve(spool: &str, f: &Flags) -> Result<(), Box<dyn Error>> {
    let obs = Obs::from_flags(f)?;
    let mut fault = FaultPlan::none();
    if let Some(label) = &f.fault_crash_at {
        fault = fault.crash_after(label.clone());
    }
    if let Some(n) = f.fault_torn_write {
        fault = fault.torn_write(n);
    }
    if let Some(n) = f.fault_disk_full {
        fault = fault.disk_full(n);
    }
    let cfg = ServeConfig {
        jobs: f.jobs,
        max_queue: f.max_queue,
        max_retries: f.max_retries.unwrap_or(3),
        backoff_base: f.backoff_base,
        poll_ms: f.poll_ms,
        drain: f.drain,
        seed: f.seed,
        default_budget_ms: f.budget_ms,
        fault,
        // Injected crashes die for real: `kill -9` semantics.
        crash_mode: CrashMode::Abort,
    };
    let mut server = Server::open(Path::new(spool), cfg, Some(Arc::clone(&obs.recorder)))?;
    let report = server.run()?;
    println!(
        "serve: {} rounds, {} attempts, {} done ({} cache hits), {} failed, {} quarantined{}",
        report.rounds,
        report.executed,
        report.done,
        report.cache_hits,
        report.failed,
        report.quarantined,
        if report.drained { ", drained" } else { "" }
    );
    if report.recovered_interrupted > 0 || report.recovered_torn_tail {
        eprintln!(
            "recovery: {} interrupted job(s) re-run{}",
            report.recovered_interrupted,
            if report.recovered_torn_tail {
                ", torn journal tail truncated"
            } else {
                ""
            }
        );
    }
    obs.finish(
        f,
        "serve",
        spool,
        &[
            ("done", report.done.to_string()),
            ("quarantined", report.quarantined.to_string()),
        ],
    )?;
    Ok(())
}

/// `netpart submit <spool> <file.blif>`: drops a job into the spool.
/// Exits [`EXIT_QUEUE_FULL`] when backpressure refuses it.
fn cmd_submit(spool: &str, blif_path: &str, f: &Flags) -> Result<(), Box<dyn Error>> {
    let id = match &f.id {
        Some(id) => id.clone(),
        None => Path::new(blif_path)
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("cannot derive a job id from {blif_path}; pass --id"))?
            .to_string(),
    };
    let blif = std::fs::read_to_string(blif_path)
        .map_err(|e| format!("cannot read netlist {blif_path}: {e}"))?;
    let spec = JobSpec {
        cmd: match f.cmd.as_str() {
            "bipartition" => JobCmd::Bipartition,
            "kway" => JobCmd::Kway,
            other => return Err(format!("unknown --cmd {other:?}").into()),
        },
        netlist: String::new(), // submit_job rewrites to the spool copy
        seed: f.seed,
        runs: f.runs.max(1),
        epsilon: f.epsilon,
        candidates: f.candidates.max(1),
        tasks: f.tasks.unwrap_or(4),
        replication: mode_of(f)?,
        budget_ms: f.budget_ms.unwrap_or(0),
        max_moves: f.max_moves,
        max_retries: f.max_retries,
    };
    match submit_job(Path::new(spool), &id, &blif, &spec, f.max_queue)? {
        SubmitOutcome::Submitted { job } => {
            println!("submitted {job} to {spool}");
            Ok(())
        }
        SubmitOutcome::QueueFull { open, max } => Err(Box::new(QueueFull(format!(
            "queue full: {open} open job(s) ≥ capacity {max}; resubmit later"
        )))),
    }
}

/// `netpart queue <spool>`: prints the folded journal state per job.
fn cmd_queue(spool: &str) -> Result<(), Box<dyn Error>> {
    let spool = Path::new(spool);
    let replay = Wal::replay_readonly(&spool.join("journal.wal"))?;
    let queue = QueueState::replay(replay.records.iter().map(|(_, r)| r));
    println!("{} journal record(s), {} open job(s)", replay.records.len(), queue.open_count());
    if replay.torn_tail {
        println!("warning: torn journal tail ({} byte(s) pending truncation by the server)", replay.truncated_bytes);
    }
    for e in queue.jobs() {
        let state = match &e.state {
            JobState::Pending if e.interrupted => "interrupted".to_string(),
            JobState::Pending => "pending".to_string(),
            JobState::Done { cached, .. } => {
                format!("done{}", if *cached { " (cached)" } else { "" })
            }
            JobState::Quarantined { .. } => "quarantined".to_string(),
        };
        let err = match (&e.state, &e.last_error) {
            (JobState::Quarantined { msg, .. }, _) => format!("  [{msg}]"),
            (_, Some((code, msg))) => format!("  [exit {code}: {msg}]"),
            _ => String::new(),
        };
        println!(
            "  {:<24} {:<12} attempts {}{}",
            e.job,
            state,
            e.attempts,
            err.replace('\n', " ")
        );
    }
    Ok(())
}

/// A trace that failed schema validation or a determinism diff that
/// found a divergence; carries the exit code `main` should use.
#[derive(Debug)]
struct TraceTrouble(String, i32);

impl std::fmt::Display for TraceTrouble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for TraceTrouble {}

/// `netpart trace <summarize|validate|diff>`: native tooling over
/// `--trace-out` JSONL documents.
///
/// * `validate` checks every line against the event schema (key order,
///   levels, kinds, flat fields, timing-last, span balance) and exits
///   `2` listing the violations;
/// * `summarize` prints per-scope event, counter and span tables;
/// * `diff` compares two traces after stripping scheduling timing —
///   the determinism contract check — and exits `1` at the first
///   divergent line.
fn cmd_trace(args: &[String]) -> Result<(), Box<dyn Error>> {
    let read = |path: &String| -> Result<String, Box<dyn Error>> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}").into())
    };
    match args {
        [sub, path] if sub == "validate" => {
            let scan = scan_trace(&read(path)?);
            if scan.is_valid() {
                println!(
                    "ok: {} line(s), {} span label(s), no schema violations",
                    scan.summary.lines,
                    scan.summary.spans.len()
                );
                Ok(())
            } else {
                for e in &scan.errors {
                    eprintln!("{path}: {e}");
                }
                Err(Box::new(TraceTrouble(
                    format!("{path}: {} schema violation(s)", scan.errors.len()),
                    2,
                )))
            }
        }
        [sub, path] if sub == "summarize" => {
            let scan = scan_trace(&read(path)?);
            let s = &scan.summary;
            let by_level: Vec<String> = s
                .levels
                .iter()
                .map(|(level, n)| format!("{n} {level}"))
                .collect();
            println!("{path}: {} line(s) ({})", s.lines, by_level.join(", "));
            let mut events = Table::new("events", &["Event", "Count"]);
            for (k, n) in &s.events {
                events.row([k.clone(), n.to_string()]);
            }
            println!("{events}");
            if !s.counters.is_empty() {
                let mut counters = Table::new("counters", &["Counter", "Total"]);
                for (k, n) in &s.counters {
                    counters.row([k.clone(), n.to_string()]);
                }
                println!("{counters}");
            }
            if !s.spans.is_empty() {
                let mut spans = Table::new("spans", &["Span", "Count", "Total (ms)"]);
                for (k, agg) in &s.spans {
                    spans.row([
                        k.clone(),
                        agg.count.to_string(),
                        format!("{:.1}", agg.total_us as f64 / 1000.0),
                    ]);
                }
                println!("{spans}");
            }
            if !scan.errors.is_empty() {
                eprintln!(
                    "warning: {} schema violation(s); run `netpart trace validate {path}`",
                    scan.errors.len()
                );
            }
            Ok(())
        }
        [sub, a, b] if sub == "diff" => match diff_stripped(&read(a)?, &read(b)?) {
            None => {
                println!("identical after timing strip");
                Ok(())
            }
            Some(d) => {
                eprintln!("stripped traces diverge at line {}:", d.line);
                eprintln!("  {a}: {}", d.left.as_deref().unwrap_or("<end of trace>"));
                eprintln!("  {b}: {}", d.right.as_deref().unwrap_or("<end of trace>"));
                Err(Box::new(TraceTrouble(
                    format!("traces diverge at stripped line {}", d.line),
                    1,
                )))
            }
        },
        _ => usage(),
    }
}

/// `netpart serve-status <spool>`: renders the service's latest
/// `metrics.prom` exposition — counters, gauges and latency-histogram
/// quantiles — as tables. The file is rewritten atomically by the
/// server after every scheduler round that changed a metric, so this
/// reads a consistent snapshot of a live service.
fn cmd_serve_status(spool: &str) -> Result<(), Box<dyn Error>> {
    if !Path::new(spool).is_dir() {
        return Err(format!("no spool at {spool} (has the server run in this spool?)").into());
    }
    let path = Path::new(spool).join("metrics.prom");
    // A spool exists but holds no exposition yet: the server simply has
    // not completed a scheduler round. That is a normal state of a
    // fresh service, not an error.
    if !path.exists() {
        println!(
            "no metrics snapshots yet in {spool} (the server writes {} after its first round)",
            path.display()
        );
        return Ok(());
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let prom = parse_prometheus(&text)?;
    let mut t = Table::new(format!("service metrics ({spool})"), &["Metric", "Kind", "Value"]);
    for (name, ty) in &prom.types {
        match ty.as_str() {
            "histogram" => {
                let cum = prom.cumulative(name);
                let count = prom.value(&format!("{name}_count")).unwrap_or(0.0);
                let sum = prom.value(&format!("{name}_sum")).unwrap_or(0.0);
                t.row([name.clone(), "hist count".into(), format!("{count}")]);
                t.row([name.clone(), "hist sum".into(), format!("{sum}")]);
                for q in [0.5, 0.9, 0.99] {
                    let v = match quantile_of(&cum, q) {
                        Some(QuantileBound::Finite(ms)) => format!("<= {ms} ms"),
                        Some(QuantileBound::Overflow) => "+Inf".into(),
                        None => "-".into(),
                    };
                    t.row([name.clone(), format!("p{:.0}", q * 100.0), v]);
                }
            }
            _ => {
                let v = prom
                    .value(name)
                    .map(|v| format!("{v}"))
                    .unwrap_or_else(|| "-".into());
                t.row([name.clone(), ty.clone(), v]);
            }
        }
    }
    println!("{t}");
    Ok(())
}

fn cmd_synth(gates: &str, out: Option<&String>, f: &Flags) -> Result<(), Box<dyn Error>> {
    let gates: usize = gates.parse()?;
    let mut cfg = GeneratorConfig::new(gates).with_dff(f.dff).with_seed(f.seed);
    if let Some(p) = f.rent {
        cfg = cfg.with_rent(p);
    }
    let nl = generate(&cfg);
    let text = write_blif(&nl);
    match out {
        Some(path) => {
            std::fs::write(path, text)?;
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    // `trace` and `serve-status` take only positionals — dispatch them
    // before the flag parser can trip over the file arguments.
    match args[0].as_str() {
        "trace" => exit_with(cmd_trace(&args[1..])),
        "serve-status" => exit_with(cmd_serve_status(&args[1])),
        _ => {}
    }
    // `synth` takes an optional positional output path before the
    // flags; `submit` takes the netlist as a second positional.
    let synth_out = (args[0] == "synth" && args.len() >= 3 && !args[2].starts_with('-'))
        .then(|| args[2].clone());
    let flag_start = if synth_out.is_some() || (args[0] == "submit" && args.len() >= 3) {
        3
    } else {
        2
    };
    let flags = match parse_flags(&args[flag_start..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };
    let result = match args[0].as_str() {
        "stats" => cmd_stats(&args[1]),
        "bipartition" => cmd_bipartition(&args[1], &flags),
        "kway" => cmd_kway(&args[1], &flags),
        "verify" => cmd_verify(&args[1], &flags),
        "serve" => cmd_serve(&args[1], &flags),
        "submit" => {
            if args.len() < 3 {
                usage();
            }
            cmd_submit(&args[1], &args[2], &flags)
        }
        "queue" => cmd_queue(&args[1]),
        "synth" => cmd_synth(&args[1], synth_out.as_ref(), &flags),
        _ => {
            usage();
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(exit_code_of(e.as_ref()));
    }
}

/// Maps an error to the pinned exit-code table.
fn exit_code_of(e: &(dyn Error + 'static)) -> i32 {
    if e.is::<CertificateViolation>() {
        EXIT_CERTIFICATE_VIOLATION
    } else if e.is::<QueueFull>() {
        EXIT_QUEUE_FULL
    } else if let Some(t) = e.downcast_ref::<TraceTrouble>() {
        t.1
    } else if let Some(se) = e.downcast_ref::<ServeError>() {
        match se {
            ServeError::Partition(pe) => pe.exit_code(),
            _ => 1,
        }
    } else {
        e.downcast_ref::<PartitionError>()
            .map_or(1, PartitionError::exit_code)
    }
}

/// Terminates with the result's mapped exit code (for the subcommands
/// dispatched before flag parsing).
fn exit_with(result: Result<(), Box<dyn Error>>) -> ! {
    match result {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_code_of(e.as_ref()));
        }
    }
}
