//! The benchmark suite of the paper's experiments (Table II), synthesised.
//!
//! The paper evaluates on nine MCNC `partitioning93` circuits: the
//! ISCAS'85 combinational circuits `c3540`, `c5315`, `c6288`, `c7552` and
//! the ISCAS'89 sequential circuits `s5378`, `s9234`, `s13207`, `s15850`,
//! `s38584`, technology-mapped into the XC3000 family. Those mapped
//! netlists are not redistributable, so this module *synthesises*
//! stand-ins with the same names:
//!
//! * gate, PI, PO and DFF counts follow the published ISCAS circuit sizes,
//!   so the post-mapping CLB/IOB/net/pin counts land in the same range as
//!   the paper's Table II;
//! * the sequential circuits are generated with a higher `clustering`
//!   parameter — the paper explains its stronger Table III gains on the
//!   `s*` circuits by their cells being "more clustered".
//!
//! The substitution is documented in `DESIGN.md` §3.

use crate::generate::{generate, GeneratorConfig};
use crate::model::Netlist;

/// Generation parameters for one named benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BenchSpec {
    /// Benchmark name (matching the paper's tables).
    pub name: &'static str,
    /// Combinational gate count (from the published ISCAS sizes).
    pub gates: usize,
    /// Primary inputs.
    pub pi: usize,
    /// Primary outputs.
    pub po: usize,
    /// D flip-flops.
    pub dff: usize,
    /// Clustering parameter (higher for the sequential circuits).
    pub clustering: f64,
    /// Generator seed (fixed so every run sees identical circuits).
    pub seed: u64,
}

impl BenchSpec {
    /// The generator configuration realising this spec.
    pub fn config(&self) -> GeneratorConfig {
        GeneratorConfig::new(self.gates)
            .with_pi(self.pi)
            .with_po(self.po)
            .with_dff(self.dff)
            .with_clustering(self.clustering)
            .with_seed(self.seed)
    }

    /// Generates the benchmark netlist.
    pub fn build(&self) -> Netlist {
        let mut nl = generate(&self.config());
        nl.set_name(self.name);
        nl
    }

    /// Returns `true` for the sequential (`s*`) circuits.
    pub fn is_sequential(&self) -> bool {
        self.dff > 0
    }
}

/// The nine benchmarks of the paper's Tables II–VII and Fig. 3.
pub const SPECS: [BenchSpec; 9] = [
    BenchSpec {
        name: "c3540",
        gates: 1669,
        pi: 50,
        po: 22,
        dff: 0,
        clustering: 0.55,
        seed: 3540,
    },
    BenchSpec {
        name: "c5315",
        gates: 2307,
        pi: 178,
        po: 123,
        dff: 0,
        clustering: 0.55,
        seed: 5315,
    },
    BenchSpec {
        name: "c6288",
        gates: 2416,
        pi: 32,
        po: 32,
        dff: 0,
        clustering: 0.80,
        seed: 6288,
    },
    BenchSpec {
        name: "c7552",
        gates: 3512,
        pi: 207,
        po: 108,
        dff: 0,
        clustering: 0.55,
        seed: 7552,
    },
    BenchSpec {
        name: "s5378",
        gates: 2779,
        pi: 35,
        po: 49,
        dff: 179,
        clustering: 0.85,
        seed: 5378,
    },
    BenchSpec {
        name: "s9234",
        gates: 5597,
        pi: 36,
        po: 39,
        dff: 211,
        clustering: 0.85,
        seed: 9234,
    },
    BenchSpec {
        name: "s13207",
        gates: 7951,
        pi: 62,
        po: 152,
        dff: 638,
        clustering: 0.85,
        seed: 13207,
    },
    BenchSpec {
        name: "s15850",
        gates: 9772,
        pi: 77,
        po: 150,
        dff: 534,
        clustering: 0.85,
        seed: 15850,
    },
    BenchSpec {
        name: "s38584",
        gates: 19253,
        pi: 38,
        po: 304,
        dff: 1426,
        clustering: 0.85,
        seed: 38584,
    },
];

/// Looks a benchmark spec up by name.
pub fn spec(name: &str) -> Option<&'static BenchSpec> {
    SPECS.iter().find(|s| s.name == name)
}

/// Generates a benchmark netlist by name.
pub fn build(name: &str) -> Option<Netlist> {
    spec(name).map(BenchSpec::build)
}

/// The benchmark names in table order.
pub fn names() -> impl Iterator<Item = &'static str> {
    SPECS.iter().map(|s| s.name)
}

/// A reduced-size version of a named benchmark for fast tests: the same
/// proportions and clustering at `1/scale_down` of the gate count.
///
/// Returns `None` for unknown names.
pub fn build_scaled(name: &str, scale_down: usize) -> Option<Netlist> {
    let s = spec(name)?;
    let d = scale_down.max(1);
    let cfg = GeneratorConfig::new((s.gates / d).max(32))
        .with_pi((s.pi / d).max(4))
        .with_po((s.po / d).max(2))
        .with_dff(s.dff / d)
        .with_clustering(s.clustering)
        .with_seed(s.seed);
    let mut nl = generate(&cfg);
    nl.set_name(format!("{}_div{}", s.name, d));
    Some(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_lookup() {
        assert_eq!(names().count(), 9);
        assert!(spec("s9234").is_some());
        assert!(spec("c1355").is_none());
        assert!(build("nope").is_none());
    }

    #[test]
    fn sequential_flags() {
        assert!(spec("s5378").unwrap().is_sequential());
        assert!(!spec("c3540").unwrap().is_sequential());
    }

    #[test]
    fn smallest_benchmark_builds_and_validates() {
        let nl = build("c3540").unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.name(), "c3540");
        assert_eq!(nl.primary_inputs().len(), 50);
        assert_eq!(nl.n_dffs(), 0);
        assert_eq!(nl.n_gates(), 1669);
    }

    #[test]
    fn scaled_versions_shrink() {
        let nl = build_scaled("s9234", 10).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.n_dffs(), 21);
        assert!(nl.n_gates() < 700);
        assert_eq!(nl.name(), "s9234_div10");
    }
}
