//! The gate-level logic network model.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a signal (a wire of the netlist).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SignalId(pub u32);

/// Identifier of a gate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GateId(pub u32);

impl SignalId {
    /// The signal's index into the netlist's signal table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// The gate's index into [`Netlist::gates`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The function a gate computes.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GateKind {
    /// Buffer (1 input).
    Buf,
    /// Inverter (1 input).
    Not,
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// A generic single-output lookup table described by BLIF cover rows
    /// (each row is `<input pattern> <output bit>`).
    Lut {
        /// BLIF `.names` cover rows.
        cover: Vec<String>,
    },
    /// D flip-flop (1 input: D; clock is implicit).
    Dff,
}

impl GateKind {
    /// Returns `true` for the sequential element.
    pub fn is_dff(&self) -> bool {
        matches!(self, GateKind::Dff)
    }

    /// The valid fan-in range for the kind.
    pub fn arity_range(&self) -> (usize, usize) {
        match self {
            GateKind::Buf | GateKind::Not | GateKind::Dff => (1, 1),
            GateKind::Xor | GateKind::Xnor => (2, 2),
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => (2, usize::MAX),
            GateKind::Lut { .. } => (0, usize::MAX),
        }
    }

    /// A short lowercase mnemonic (`and`, `dff`, `lut`, …).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Lut { .. } => "lut",
            GateKind::Dff => "dff",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single-output gate instance.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Gate {
    /// Instance name.
    pub name: String,
    /// Function computed.
    pub kind: GateKind,
    /// Input signals in pin order.
    pub inputs: Vec<SignalId>,
    /// Output signal.
    pub output: SignalId,
}

/// What drives a signal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Driver {
    /// Nothing yet (invalid in a validated netlist).
    None,
    /// A primary input.
    PrimaryInput,
    /// The output of a gate.
    Gate(GateId),
}

/// An error raised while mutating or validating a [`Netlist`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A signal id was out of range.
    UnknownSignal(SignalId),
    /// A signal already has a driver.
    SignalAlreadyDriven(SignalId),
    /// A signal has no driver.
    UndrivenSignal(SignalId),
    /// A gate's fan-in count is invalid for its kind.
    BadArity {
        /// The offending gate.
        gate: GateId,
        /// The fan-in count supplied.
        got: usize,
    },
    /// A gate lists the same signal twice among its inputs.
    DuplicateInput(GateId),
    /// The combinational part of the network contains a cycle.
    CombinationalCycle,
    /// Two signals share a name.
    DuplicateSignalName(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownSignal(s) => write!(f, "unknown signal {s:?}"),
            NetlistError::SignalAlreadyDriven(s) => write!(f, "signal {s:?} already driven"),
            NetlistError::UndrivenSignal(s) => write!(f, "signal {s:?} has no driver"),
            NetlistError::BadArity { gate, got } => {
                write!(f, "gate {gate:?} has invalid fan-in {got}")
            }
            NetlistError::DuplicateInput(g) => write!(f, "gate {g:?} lists an input twice"),
            NetlistError::CombinationalCycle => write!(f, "combinational cycle detected"),
            NetlistError::DuplicateSignalName(n) => write!(f, "duplicate signal name {n:?}"),
        }
    }
}

impl Error for NetlistError {}

/// A gate-level logic network.
///
/// Signals are single-driver wires; gates are single-output. D flip-flops
/// are gates of kind [`GateKind::Dff`]; their clock is implicit (one global
/// clock domain, as in the ISCAS'89 benchmarks).
///
/// # Examples
///
/// ```
/// use netpart_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), netpart_netlist::NetlistError> {
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.add_primary_input("a")?;
/// let b = nl.add_primary_input("b")?;
/// let sum = nl.add_signal("sum")?;
/// let carry = nl.add_signal("carry")?;
/// nl.add_gate("x1", GateKind::Xor, vec![a, b], sum)?;
/// nl.add_gate("a1", GateKind::And, vec![a, b], carry)?;
/// nl.add_primary_output(sum)?;
/// nl.add_primary_output(carry)?;
/// nl.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Netlist {
    name: String,
    signal_names: Vec<String>,
    name_index: HashMap<String, SignalId>,
    gates: Vec<Gate>,
    drivers: Vec<Driver>,
    primary_inputs: Vec<SignalId>,
    primary_outputs: Vec<SignalId>,
}

impl Netlist {
    /// Creates an empty netlist with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            signal_names: Vec::new(),
            name_index: HashMap::new(),
            gates: Vec::new(),
            drivers: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the model.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a fresh signal.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already taken.
    pub fn add_signal(&mut self, name: impl Into<String>) -> Result<SignalId, NetlistError> {
        let name = name.into();
        if self.name_index.contains_key(&name) {
            return Err(NetlistError::DuplicateSignalName(name));
        }
        let id = SignalId(self.signal_names.len() as u32);
        self.name_index.insert(name.clone(), id);
        self.signal_names.push(name);
        self.drivers.push(Driver::None);
        Ok(id)
    }

    /// Adds a signal driven by a primary input.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already taken.
    pub fn add_primary_input(&mut self, name: impl Into<String>) -> Result<SignalId, NetlistError> {
        let id = self.add_signal(name)?;
        self.drivers[id.index()] = Driver::PrimaryInput;
        self.primary_inputs.push(id);
        Ok(id)
    }

    /// Marks an existing signal as a primary output.
    ///
    /// # Errors
    ///
    /// Returns an error if the signal does not exist.
    pub fn add_primary_output(&mut self, signal: SignalId) -> Result<(), NetlistError> {
        self.check_signal(signal)?;
        self.primary_outputs.push(signal);
        Ok(())
    }

    /// Adds a gate driving `output` from `inputs`.
    ///
    /// # Errors
    ///
    /// Returns an error if a signal is unknown, the output is already
    /// driven, the fan-in count is invalid for `kind`, or an input repeats.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        inputs: Vec<SignalId>,
        output: SignalId,
    ) -> Result<GateId, NetlistError> {
        self.check_signal(output)?;
        for &i in &inputs {
            self.check_signal(i)?;
        }
        let id = GateId(self.gates.len() as u32);
        let (lo, hi) = kind.arity_range();
        if inputs.len() < lo || inputs.len() > hi {
            return Err(NetlistError::BadArity {
                gate: id,
                got: inputs.len(),
            });
        }
        let mut sorted = inputs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != inputs.len() {
            return Err(NetlistError::DuplicateInput(id));
        }
        if self.drivers[output.index()] != Driver::None {
            return Err(NetlistError::SignalAlreadyDriven(output));
        }
        self.drivers[output.index()] = Driver::Gate(id);
        self.gates.push(Gate {
            name: name.into(),
            kind,
            inputs,
            output,
        });
        Ok(id)
    }

    /// The gates, indexable by [`GateId`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Number of signals.
    pub fn n_signals(&self) -> usize {
        self.signal_names.len()
    }

    /// Number of gates (including DFFs).
    pub fn n_gates(&self) -> usize {
        self.gates.len()
    }

    /// The name of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.signal_names[s.index()]
    }

    /// Looks a signal up by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.name_index.get(name).copied()
    }

    /// What drives `signal`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn driver(&self, signal: SignalId) -> Driver {
        self.drivers[signal.index()]
    }

    /// The primary inputs in declaration order.
    pub fn primary_inputs(&self) -> &[SignalId] {
        &self.primary_inputs
    }

    /// The primary outputs in declaration order.
    pub fn primary_outputs(&self) -> &[SignalId] {
        &self.primary_outputs
    }

    /// Iterates over gate ids in ascending order.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Iterates over signal ids in ascending order.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> {
        (0..self.signal_names.len() as u32).map(SignalId)
    }

    /// Number of D flip-flops.
    pub fn n_dffs(&self) -> usize {
        self.gates.iter().filter(|g| g.kind.is_dff()).count()
    }

    /// Builds, for every signal, the list of gates reading it.
    pub fn fanout_index(&self) -> Vec<Vec<GateId>> {
        let mut idx = vec![Vec::new(); self.signal_names.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for &s in &g.inputs {
                idx[s.index()].push(GateId(i as u32));
            }
        }
        idx
    }

    /// Checks that every signal is driven and the combinational part is
    /// acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, d) in self.drivers.iter().enumerate() {
            if *d == Driver::None {
                return Err(NetlistError::UndrivenSignal(SignalId(i as u32)));
            }
        }
        crate::analysis::topo_order(self)?;
        Ok(())
    }

    fn check_signal(&self, s: SignalId) -> Result<(), NetlistError> {
        if s.index() >= self.signal_names.len() {
            return Err(NetlistError::UnknownSignal(s));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate_half_adder() {
        let mut nl = Netlist::new("ha");
        let a = nl.add_primary_input("a").unwrap();
        let b = nl.add_primary_input("b").unwrap();
        let s = nl.add_signal("s").unwrap();
        let c = nl.add_signal("c").unwrap();
        nl.add_gate("x", GateKind::Xor, vec![a, b], s).unwrap();
        nl.add_gate("a1", GateKind::And, vec![a, b], c).unwrap();
        nl.add_primary_output(s).unwrap();
        nl.add_primary_output(c).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.n_gates(), 2);
        assert_eq!(nl.n_signals(), 4);
        assert_eq!(nl.n_dffs(), 0);
        assert_eq!(nl.driver(s), Driver::Gate(GateId(0)));
        assert_eq!(nl.signal_by_name("c"), Some(c));
        assert_eq!(nl.signal_name(a), "a");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_primary_input("a").unwrap();
        assert_eq!(
            nl.add_signal("a"),
            Err(NetlistError::DuplicateSignalName("a".into()))
        );
    }

    #[test]
    fn double_drive_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a").unwrap();
        let y = nl.add_signal("y").unwrap();
        nl.add_gate("g1", GateKind::Buf, vec![a], y).unwrap();
        assert_eq!(
            nl.add_gate("g2", GateKind::Not, vec![a], y),
            Err(NetlistError::SignalAlreadyDriven(y))
        );
    }

    #[test]
    fn arity_checked() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a").unwrap();
        let y = nl.add_signal("y").unwrap();
        assert!(matches!(
            nl.add_gate("g", GateKind::And, vec![a], y),
            Err(NetlistError::BadArity { got: 1, .. })
        ));
        assert!(matches!(
            nl.add_gate("g", GateKind::Not, vec![a, a], y),
            Err(NetlistError::DuplicateInput(_)) | Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn duplicate_inputs_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a").unwrap();
        let y = nl.add_signal("y").unwrap();
        assert_eq!(
            nl.add_gate("g", GateKind::And, vec![a, a], y),
            Err(NetlistError::DuplicateInput(GateId(0)))
        );
    }

    #[test]
    fn undriven_signal_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a").unwrap();
        let y = nl.add_signal("y").unwrap();
        let z = nl.add_signal("z").unwrap();
        nl.add_gate("g", GateKind::Buf, vec![a], y).unwrap();
        let _ = z;
        assert_eq!(nl.validate(), Err(NetlistError::UndrivenSignal(z)));
    }

    #[test]
    fn dff_breaks_cycles() {
        // q = DFF(d); d = NOT(q) — legal (a toggle register).
        let mut nl = Netlist::new("t");
        let q = nl.add_signal("q").unwrap();
        let d = nl.add_signal("d").unwrap();
        nl.add_gate("ff", GateKind::Dff, vec![d], q).unwrap();
        nl.add_gate("inv", GateKind::Not, vec![q], d).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.n_dffs(), 1);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_signal("a").unwrap();
        let b = nl.add_signal("b").unwrap();
        nl.add_gate("g1", GateKind::Not, vec![b], a).unwrap();
        nl.add_gate("g2", GateKind::Not, vec![a], b).unwrap();
        assert_eq!(nl.validate(), Err(NetlistError::CombinationalCycle));
    }

    #[test]
    fn fanout_index_lists_readers() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a").unwrap();
        let y = nl.add_signal("y").unwrap();
        let z = nl.add_signal("z").unwrap();
        let g1 = nl.add_gate("g1", GateKind::Buf, vec![a], y).unwrap();
        let g2 = nl.add_gate("g2", GateKind::Not, vec![a], z).unwrap();
        let idx = nl.fanout_index();
        assert_eq!(idx[a.index()], vec![g1, g2]);
        assert!(idx[y.index()].is_empty());
    }
}
