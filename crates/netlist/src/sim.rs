//! Two-valued logic simulation.
//!
//! Used by the test-suite to check *semantic* properties the structural
//! checks cannot: BLIF covers written by [`write_blif`](crate::write_blif)
//! evaluate like the primitive gates they encode, and transformations
//! such as [`decompose_wide_gates`](../fn.decompose_wide_gates.html)
//! preserve circuit behaviour.

use crate::analysis::topo_order;
use crate::model::{GateKind, Netlist, NetlistError, SignalId};

/// A simulation trace: primary-output values per cycle.
pub type Trace = Vec<Vec<bool>>;

/// Evaluates a BLIF cover (rows of `<pattern> <value>`) on inputs.
///
/// A cover with no rows is constant 0; a row whose pattern matches sets
/// the output to the row's value (standard BLIF single-phase semantics:
/// all rows carry the same output phase; we honour `1` rows as ON-set and
/// `0` rows as OFF-set complement).
fn eval_cover(cover: &[String], inputs: &[bool]) -> bool {
    let mut on_phase = true;
    let mut matched = false;
    for row in cover {
        let mut parts = row.split_whitespace();
        let (pattern, value) = match (parts.next(), parts.next()) {
            (Some(p), Some(v)) => (p, v),
            (Some(v), None) if inputs.is_empty() => ("", v),
            _ => continue,
        };
        if pattern.len() != inputs.len() {
            continue;
        }
        let hit = pattern.chars().zip(inputs).all(|(c, &x)| match c {
            '0' => !x,
            '1' => x,
            _ => true, // '-'
        });
        on_phase = value != "0";
        if hit {
            matched = true;
        }
    }
    if on_phase {
        matched
    } else {
        !matched
    }
}

/// Evaluates one gate.
fn eval_gate(kind: &GateKind, inputs: &[bool]) -> bool {
    match kind {
        GateKind::Buf => inputs[0],
        GateKind::Not => !inputs[0],
        GateKind::And => inputs.iter().all(|&x| x),
        GateKind::Nand => !inputs.iter().all(|&x| x),
        GateKind::Or => inputs.iter().any(|&x| x),
        GateKind::Nor => !inputs.iter().any(|&x| x),
        GateKind::Xor => inputs[0] ^ inputs[1],
        GateKind::Xnor => !(inputs[0] ^ inputs[1]),
        GateKind::Lut { cover } => eval_cover(cover, inputs),
        GateKind::Dff => unreachable!("DFFs are evaluated at clock edges"),
    }
}

/// Simulates `nl` for `stimuli.len()` clock cycles.
///
/// `stimuli[c]` holds the primary-input values of cycle `c` (in
/// [`Netlist::primary_inputs`] order); flip-flops start at 0 and update
/// on every cycle boundary. Returns the primary-output values per cycle.
///
/// # Errors
///
/// Returns an error if the combinational logic is cyclic or a stimulus
/// vector has the wrong width.
pub fn simulate(nl: &Netlist, stimuli: &[Vec<bool>]) -> Result<Trace, NetlistError> {
    let order = topo_order(nl)?;
    let n_pi = nl.primary_inputs().len();
    let mut values = vec![false; nl.n_signals()];
    let mut trace = Vec::with_capacity(stimuli.len());
    for cycle in stimuli {
        if cycle.len() != n_pi {
            return Err(NetlistError::UnknownSignal(SignalId(u32::MAX)));
        }
        for (i, &s) in nl.primary_inputs().iter().enumerate() {
            values[s.index()] = cycle[i];
        }
        for &g in &order {
            let gate = nl.gate(g);
            if gate.kind.is_dff() {
                continue;
            }
            let ins: Vec<bool> = gate.inputs.iter().map(|s| values[s.index()]).collect();
            values[gate.output.index()] = eval_gate(&gate.kind, &ins);
        }
        trace.push(
            nl.primary_outputs()
                .iter()
                .map(|s| values[s.index()])
                .collect(),
        );
        // Clock edge: every DFF captures its D input.
        let next: Vec<(SignalId, bool)> = nl
            .gates()
            .iter()
            .filter(|g| g.kind.is_dff())
            .map(|g| (g.output, values[g.inputs[0].index()]))
            .collect();
        for (q, v) in next {
            values[q.index()] = v;
        }
    }
    Ok(trace)
}

/// Drives both netlists with the same pseudo-random stimuli for
/// `cycles` cycles and reports whether every primary output matched
/// every cycle. The netlists must have the same PI/PO counts (matched by
/// position).
///
/// # Errors
///
/// Returns an error if either netlist fails to simulate.
pub fn equivalent_under_random_stimuli(
    a: &Netlist,
    b: &Netlist,
    cycles: usize,
    seed: u64,
) -> Result<bool, NetlistError> {
    if a.primary_inputs().len() != b.primary_inputs().len()
        || a.primary_outputs().len() != b.primary_outputs().len()
    {
        return Ok(false);
    }
    // xorshift64* keeps this dependency-free and deterministic.
    let mut x = seed | 1;
    let mut bit = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x & 1 == 1
    };
    let stimuli: Vec<Vec<bool>> = (0..cycles)
        .map(|_| (0..a.primary_inputs().len()).map(|_| bit()).collect())
        .collect();
    Ok(simulate(a, &stimuli)? == simulate(b, &stimuli)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blif::{parse_blif, write_blif};
    use crate::generate::{generate, GeneratorConfig};
    use crate::model::Netlist;

    fn stimuli(n_pi: usize, cycles: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut x = seed | 1;
        (0..cycles)
            .map(|_| {
                (0..n_pi)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x & 1 == 1
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn half_adder_truth_table() {
        let mut nl = Netlist::new("ha");
        let a = nl.add_primary_input("a").unwrap();
        let b = nl.add_primary_input("b").unwrap();
        let s = nl.add_signal("s").unwrap();
        let c = nl.add_signal("c").unwrap();
        nl.add_gate("x", GateKind::Xor, vec![a, b], s).unwrap();
        nl.add_gate("a1", GateKind::And, vec![a, b], c).unwrap();
        nl.add_primary_output(s).unwrap();
        nl.add_primary_output(c).unwrap();
        let t = simulate(
            &nl,
            &[
                vec![false, false],
                vec![false, true],
                vec![true, false],
                vec![true, true],
            ],
        )
        .unwrap();
        assert_eq!(
            t,
            vec![
                vec![false, false],
                vec![true, false],
                vec![true, false],
                vec![false, true],
            ]
        );
    }

    #[test]
    fn toggle_register_oscillates() {
        // q = DFF(¬q): output toggles 0,1,0,1,…
        let mut nl = Netlist::new("t");
        let q = nl.add_signal("q").unwrap();
        let d = nl.add_signal("d").unwrap();
        nl.add_gate("ff", GateKind::Dff, vec![d], q).unwrap();
        nl.add_gate("inv", GateKind::Not, vec![q], d).unwrap();
        nl.add_primary_output(q).unwrap();
        let t = simulate(&nl, &[vec![], vec![], vec![], vec![]]).unwrap();
        assert_eq!(t, vec![vec![false], vec![true], vec![false], vec![true]]);
    }

    #[test]
    fn blif_roundtrip_is_semantically_equivalent() {
        // The covers `write_blif` emits must compute the same functions
        // when re-parsed as generic LUTs.
        let nl = generate(&GeneratorConfig::new(200).with_dff(12).with_seed(77));
        let back = parse_blif(&write_blif(&nl)).unwrap();
        assert!(equivalent_under_random_stimuli(&nl, &back, 64, 5).unwrap());
    }

    #[test]
    fn decomposition_is_semantically_equivalent() {
        let mut nl = Netlist::new("w");
        let ins: Vec<_> = (0..9)
            .map(|i| nl.add_primary_input(format!("i{i}")).unwrap())
            .collect();
        let y = nl.add_signal("y").unwrap();
        let z = nl.add_signal("z").unwrap();
        nl.add_gate("big", GateKind::Nand, ins.clone(), y).unwrap();
        nl.add_gate("big2", GateKind::Or, ins, z).unwrap();
        nl.add_primary_output(y).unwrap();
        nl.add_primary_output(z).unwrap();
        // decompose_wide_gates lives in netpart-techmap; emulate its
        // contract here by comparing against a manually narrowed tree via
        // the BLIF route: the cover of a 9-input NAND must match.
        let st = stimuli(9, 128, 3);
        let direct = simulate(&nl, &st).unwrap();
        let round = simulate(&parse_blif(&write_blif(&nl)).unwrap(), &st).unwrap();
        assert_eq!(direct, round);
    }

    #[test]
    fn mismatched_interfaces_not_equivalent() {
        let a = generate(&GeneratorConfig::new(50).with_seed(1).with_pi(8));
        let b = generate(&GeneratorConfig::new(50).with_seed(1).with_pi(9));
        assert!(!equivalent_under_random_stimuli(&a, &b, 8, 1).unwrap());
    }

    #[test]
    fn constant_cover_evaluates() {
        let src = ".model t\n.outputs k z\n.names k\n1\n.names z\n.end\n";
        let nl = parse_blif(src).unwrap();
        let t = simulate(&nl, &[vec![]]).unwrap();
        assert_eq!(t, vec![vec![true, false]]);
    }

    #[test]
    fn wrong_stimulus_width_rejected() {
        let nl = generate(&GeneratorConfig::new(20).with_seed(1).with_pi(4));
        assert!(simulate(&nl, &[vec![true; 3]]).is_err());
    }
}
