//! Seeded synthetic circuit generation.
//!
//! The generator synthesises gate-level circuits with a controllable
//! *clustering* (community structure): each gate draws its inputs either
//! from a local window of recently created signals (local, clustered
//! wiring) or uniformly from everything created so far (global wiring).
//! The paper observes that the sequential ISCAS'89 benchmarks "are more
//! clustered" and benefit more from functional replication; the
//! `clustering` knob reproduces that contrast.

use crate::model::{GateKind, Netlist, SignalId};
use netpart_rng::Rng;

/// Parameters of the synthetic circuit generator.
///
/// # Examples
///
/// ```
/// use netpart_netlist::{generate, GeneratorConfig};
///
/// let nl = generate(
///     &GeneratorConfig::new(500)
///         .with_seed(42)
///         .with_dff(40)
///         .with_clustering(0.8),
/// );
/// assert_eq!(nl.n_dffs(), 40);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GeneratorConfig {
    /// Number of combinational gates (excluding DFFs).
    pub n_gates: usize,
    /// Number of primary inputs.
    pub n_pi: usize,
    /// Number of primary outputs.
    pub n_po: usize,
    /// Number of D flip-flops.
    pub n_dff: usize,
    /// Probability of drawing each input from the local window instead of
    /// uniformly (0 = fully random wiring, 1 = fully local).
    pub clustering: f64,
    /// Size of the local window.
    pub window: usize,
    /// RNG seed; the same config always generates the same circuit.
    pub seed: u64,
    /// Maximum gate fan-in (minimum is 2).
    pub max_fanin: usize,
    /// Rent-rule mode: when set to `Some(p)`, the wire-distance
    /// distribution is derived from the Rent exponent `p` instead of
    /// [`clustering`](Self::clustering), and the I/O counts follow
    /// `T = t·G^p` without the small-circuit clamp (see
    /// [`with_rent`](Self::with_rent)).
    pub rent_exponent: Option<f64>,
}

impl GeneratorConfig {
    /// A config for `n_gates` combinational gates with defaults scaled to
    /// the circuit size (PIs/POs ≈ Rent-like fractions, no DFFs,
    /// moderate clustering).
    pub fn new(n_gates: usize) -> Self {
        let io = ((n_gates as f64).powf(0.62).round() as usize).clamp(3, 512);
        GeneratorConfig {
            n_gates,
            n_pi: io,
            n_po: (io / 2).max(2),
            n_dff: 0,
            clustering: 0.6,
            window: 48,
            seed: 1,
            max_fanin: 4,
            rent_exponent: None,
        }
    }

    /// Enables Rent-rule mode with exponent `p` (clamped to
    /// `[0.1, 0.85]`): region terminal counts follow `T ≈ t·B^p`.
    ///
    /// Two things change. The wire-distance Pareto shape becomes
    /// `α = 1 − p` (for a power-law wire-length distribution with tail
    /// exponent `α < 1`, the distinct-terminal count of a contiguous
    /// `B`-gate region scales as `B^(1−α)`, so matching the target
    /// exponent means `α = 1 − p` — the default `clustering` mapping
    /// caps the reachable exponent near 0.4 and cannot express the
    /// `p ≈ 0.6–0.7` of realistic logic). And the primary I/O counts
    /// are re-derived as `T = 2.5·G^p` with no upper clamp, so 100k+-
    /// gate circuits get realistically wide I/O boundaries instead of
    /// the 512-pad ceiling.
    pub fn with_rent(mut self, p: f64) -> Self {
        let p = p.clamp(0.1, 0.85);
        self.rent_exponent = Some(p);
        let io = ((2.5 * (self.n_gates as f64).powf(p)).round() as usize).max(3);
        self.n_pi = io;
        self.n_po = (io / 2).max(2);
        self
    }

    /// Sets the number of primary inputs.
    pub fn with_pi(mut self, n: usize) -> Self {
        self.n_pi = n;
        self
    }

    /// Sets the number of primary outputs.
    pub fn with_po(mut self, n: usize) -> Self {
        self.n_po = n;
        self
    }

    /// Sets the number of D flip-flops.
    pub fn with_dff(mut self, n: usize) -> Self {
        self.n_dff = n;
        self
    }

    /// Sets the clustering probability (clamped to `[0, 1]`).
    pub fn with_clustering(mut self, c: f64) -> Self {
        self.clustering = c.clamp(0.0, 1.0);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum fan-in (clamped to `[2, 8]`).
    pub fn with_max_fanin(mut self, k: usize) -> Self {
        self.max_fanin = k.clamp(2, 8);
        self
    }

    /// Sets the local window size (minimum 4).
    pub fn with_window(mut self, w: usize) -> Self {
        self.window = w.max(4);
        self
    }
}

/// Generates a random netlist according to `cfg`.
///
/// The result always validates: signals are single-driver and the
/// combinational part is acyclic by construction (gates only read earlier
/// signals; feedback flows through DFFs).
///
/// # Panics
///
/// Panics if `cfg.n_pi + cfg.n_dff == 0` (no sources to wire from).
pub fn generate(cfg: &GeneratorConfig) -> Netlist {
    assert!(
        cfg.n_pi + cfg.n_dff > 0,
        "generator needs at least one primary input or flip-flop"
    );
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut nl = Netlist::new("synthetic");

    let mut pool: Vec<SignalId> = Vec::new();
    let mut uses: Vec<u32> = Vec::new();
    let push = |pool: &mut Vec<SignalId>, uses: &mut Vec<u32>, s: SignalId| {
        pool.push(s);
        uses.push(0);
    };

    for i in 0..cfg.n_pi {
        let s = nl.add_primary_input(format!("pi{i}")).expect("fresh name");
        push(&mut pool, &mut uses, s);
    }
    // State signals become available immediately; their DFF drivers are
    // created at the end (feedback is legal through the flip-flops).
    let states: Vec<SignalId> = (0..cfg.n_dff)
        .map(|i| nl.add_signal(format!("st{i}")).expect("fresh name"))
        .collect();
    for &s in &states {
        push(&mut pool, &mut uses, s);
    }

    // Wire distances follow a Pareto (power-law) distribution, giving the
    // Rent-rule-like locality of real circuits: most wires are short, a
    // heavy tail reaches far back (to primary inputs and state). The
    // `clustering` knob sets the Pareto shape — higher values concentrate
    // wiring locally, which is how the ISCAS'89-style circuits differ
    // from the combinational ones in the paper's experiments.
    // In Rent mode the shape is pinned to `α = 1 − p` so region
    // terminal counts scale as `B^p` (see `with_rent`); otherwise the
    // `clustering` knob sets it directly.
    let alpha = match cfg.rent_exponent {
        Some(p) => (1.0 - p).max(0.05),
        None => 0.6 + 2.2 * cfg.clustering,
    };
    let pick = |rng: &mut Rng, pool: &[SignalId], uses: &mut [u32]| -> SignalId {
        let n = pool.len();
        let u: f64 = rng.gen_f64_open();
        let d = (u.powf(-1.0 / alpha)).floor() as usize; // Pareto, d_min = 1
        let idx = n.saturating_sub(d.clamp(1, n));
        // Bias toward an unused signal in the same neighbourhood so few
        // outputs dangle.
        let idx = if uses[idx] > 0 && rng.gen_bool(0.5) {
            let lo = idx.saturating_sub(cfg.window / 2);
            let hi = (idx + cfg.window / 2).min(n - 1);
            (lo..=hi).find(|&i| uses[i] == 0).unwrap_or(idx)
        } else {
            idx
        };
        uses[idx] += 1;
        pool[idx]
    };

    for g in 0..cfg.n_gates {
        let k_max = cfg.max_fanin.min(pool.len());
        // Weight fan-in toward 2–3 inputs, like mapped MCNC logic.
        let k = match rng.gen_range(0..10) {
            0..=4 => 2,
            5..=7 => 3.min(k_max),
            _ => k_max.clamp(2, 4),
        }
        .min(k_max)
        .max(if pool.len() >= 2 { 2 } else { 1 });
        let mut inputs = Vec::with_capacity(k);
        let mut guard = 0;
        while inputs.len() < k && guard < 64 {
            let s = pick(&mut rng, &pool, &mut uses);
            if !inputs.contains(&s) {
                inputs.push(s);
            }
            guard += 1;
        }
        let kind = match (inputs.len(), rng.gen_range(0..10)) {
            (1, _) => GateKind::Not,
            (2, 0..=2) => GateKind::Xor,
            (_, 0..=4) => GateKind::Nand,
            (_, 5..=6) => GateKind::And,
            (_, 7..=8) => GateKind::Nor,
            _ => GateKind::Or,
        };
        let out = nl.add_signal(format!("w{g}")).expect("fresh name");
        nl.add_gate(format!("g{g}"), kind, inputs, out)
            .expect("construction is structurally valid");
        push(&mut pool, &mut uses, out);
    }

    // Wire the flip-flop D inputs from late (deep) signals.
    for (i, &q) in states.iter().enumerate() {
        let d = pick(&mut rng, &pool, &mut uses);
        // Avoid the degenerate q = DFF(q) self-loop where possible.
        let d = if d == q && pool.len() > 1 {
            pick(&mut rng, &pool, &mut uses)
        } else {
            d
        };
        nl.add_gate(format!("ff{i}"), GateKind::Dff, vec![d], q)
            .expect("state signal is undriven until now");
    }

    // Primary outputs: prefer unused gate outputs so little logic dangles.
    let gate_outputs: Vec<usize> = (cfg.n_pi + cfg.n_dff..pool.len()).collect();
    let mut chosen: Vec<SignalId> = Vec::new();
    for &i in gate_outputs.iter().rev() {
        if chosen.len() >= cfg.n_po {
            break;
        }
        if uses[i] == 0 {
            chosen.push(pool[i]);
        }
    }
    let mut guard = 0;
    while chosen.len() < cfg.n_po && !gate_outputs.is_empty() && guard < 10 * cfg.n_po + 64 {
        let i = gate_outputs[rng.gen_range(0..gate_outputs.len())];
        if !chosen.contains(&pool[i]) {
            chosen.push(pool[i]);
        }
        guard += 1;
    }
    for s in chosen {
        nl.add_primary_output(s).expect("signal exists");
    }

    debug_assert!(nl.validate().is_ok());
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::NetlistStats;

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneratorConfig::new(300).with_seed(9).with_dff(20);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(crate::write_blif(&a), crate::write_blif(&b));
        let c = generate(&GeneratorConfig::new(300).with_seed(10).with_dff(20));
        assert_ne!(crate::write_blif(&a), crate::write_blif(&c));
    }

    #[test]
    fn respects_counts() {
        let cfg = GeneratorConfig::new(400)
            .with_seed(3)
            .with_pi(30)
            .with_po(20)
            .with_dff(25);
        let nl = generate(&cfg);
        nl.validate().unwrap();
        assert_eq!(nl.primary_inputs().len(), 30);
        assert_eq!(nl.primary_outputs().len(), 20);
        assert_eq!(nl.n_dffs(), 25);
        assert_eq!(nl.n_gates(), 400 + 25);
    }

    #[test]
    fn clustering_increases_locality() {
        // Measure mean |driver_index - reader_index| over gate-to-gate
        // edges; clustered circuits should wire much more locally.
        fn mean_distance(nl: &Netlist) -> f64 {
            let mut sum = 0.0f64;
            let mut count = 0.0f64;
            for g in nl.gate_ids() {
                for &s in &nl.gate(g).inputs {
                    if let crate::model::Driver::Gate(d) = nl.driver(s) {
                        sum += (g.index() as f64 - d.index() as f64).abs();
                        count += 1.0;
                    }
                }
            }
            sum / count.max(1.0)
        }
        let local = generate(
            &GeneratorConfig::new(1500)
                .with_seed(5)
                .with_clustering(0.95),
        );
        let global = generate(
            &GeneratorConfig::new(1500)
                .with_seed(5)
                .with_clustering(0.05),
        );
        assert!(mean_distance(&local) * 3.0 < mean_distance(&global));
    }

    #[test]
    fn few_dangling_outputs() {
        let nl = generate(&GeneratorConfig::new(500).with_seed(11));
        let idx = nl.fanout_index();
        let po: std::collections::HashSet<_> = nl.primary_outputs().iter().collect();
        let dangling = nl
            .gates()
            .iter()
            .filter(|g| idx[g.output.index()].is_empty() && !po.contains(&g.output))
            .count();
        assert!(
            dangling < nl.n_gates() / 5,
            "too many dangling outputs: {dangling}"
        );
    }

    #[test]
    fn stats_reasonable() {
        let nl = generate(&GeneratorConfig::new(800).with_seed(2).with_dff(60));
        let s = NetlistStats::of(&nl);
        assert!(s.avg_fanin >= 2.0 && s.avg_fanin <= 4.0);
        assert!(s.max_level >= 3);
    }

    /// Distinct boundary-crossing signals of the contiguous
    /// creation-order gate window `[lo, hi)`: inputs driven outside the
    /// window plus outputs read outside it (or exported as POs).
    fn region_terminals(
        nl: &Netlist,
        fanout: &[Vec<crate::model::GateId>],
        po: &std::collections::HashSet<SignalId>,
        lo: usize,
        hi: usize,
    ) -> usize {
        let inside = |g: crate::model::GateId| (lo..hi).contains(&g.index());
        let mut crossing = std::collections::HashSet::new();
        for gi in lo..hi {
            let g = nl.gate(crate::model::GateId(gi as u32));
            for &s in &g.inputs {
                let external = match nl.driver(s) {
                    crate::model::Driver::Gate(d) => !inside(d),
                    _ => true,
                };
                if external {
                    crossing.insert(s);
                }
            }
            let s = g.output;
            if po.contains(&s) || fanout[s.index()].iter().any(|&r| !inside(r)) {
                crossing.insert(s);
            }
        }
        crossing.len()
    }

    #[test]
    fn rent_mode_reproduces_the_scaling_law() {
        // T(B) ≈ t·B^p: the mean distinct-terminal count of contiguous
        // B-gate regions must scale with the configured exponent. Fit
        // ln T against ln B by least squares across region sizes and
        // check the slope lands near p.
        let p = 0.65;
        let nl = generate(
            &GeneratorConfig::new(16_384)
                .with_seed(17)
                .with_rent(p),
        );
        let fanout = nl.fanout_index();
        let po: std::collections::HashSet<_> = nl.primary_outputs().iter().copied().collect();
        let sizes = [64usize, 256, 1024, 4096];
        let mut pts: Vec<(f64, f64)> = Vec::new();
        for &b in &sizes {
            let mut sum = 0.0f64;
            let mut count = 0usize;
            let mut lo = 0;
            while lo + b <= nl.n_gates() - nl.n_dffs() {
                sum += region_terminals(&nl, &fanout, &po, lo, lo + b) as f64;
                count += 1;
                lo += b;
            }
            pts.push(((b as f64).ln(), (sum / count as f64).ln()));
        }
        let n = pts.len() as f64;
        let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |a, &(x, y)| (a.0 + x, a.1 + y));
        let (sxx, sxy): (f64, f64) = pts
            .iter()
            .fold((0.0, 0.0), |a, &(x, y)| (a.0 + x * x, a.1 + x * y));
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!(
            (slope - p).abs() <= 0.15,
            "fitted Rent exponent {slope:.3} not within 0.15 of target {p}"
        );
    }

    #[test]
    fn rent_mode_widens_io_without_clamp() {
        let cfg = GeneratorConfig::new(100_000).with_rent(0.65);
        // The default sizing clamps at 512 pads; Rent mode must not.
        assert!(cfg.n_pi > 512, "rent-mode n_pi clamped: {}", cfg.n_pi);
        assert_eq!(cfg.rent_exponent, Some(0.65));
        // Deterministic per seed, like every other generator mode.
        let a = generate(&GeneratorConfig::new(2000).with_rent(0.65).with_seed(4));
        let b = generate(&GeneratorConfig::new(2000).with_rent(0.65).with_seed(4));
        assert_eq!(crate::write_blif(&a), crate::write_blif(&b));
        a.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one primary input")]
    fn zero_sources_panics() {
        generate(&GeneratorConfig {
            n_pi: 0,
            n_dff: 0,
            ..GeneratorConfig::new(10)
        });
    }
}
