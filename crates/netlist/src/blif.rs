//! Reader and writer for a subset of the Berkeley Logic Interchange
//! Format (BLIF): `.model`, `.inputs`, `.outputs`, `.names` (with cover
//! rows), `.latch` and `.end`, with `\` line continuation.

use crate::model::{GateKind, Netlist, NetlistError, SignalId};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// An error raised while parsing BLIF text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseBlifError {
    /// A directive had the wrong number of arguments.
    Malformed {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        what: String,
    },
    /// The netlist violated a structural invariant while being built.
    Netlist {
        /// 1-based source line.
        line: usize,
        /// The underlying netlist error.
        source: NetlistError,
    },
    /// An `.outputs` signal was never defined.
    UnknownOutput {
        /// 1-based source line of the `.outputs` directive naming it.
        line: usize,
        /// The undefined signal name.
        name: String,
    },
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBlifError::Malformed { line, what } => {
                write!(f, "line {line}: malformed directive: {what}")
            }
            ParseBlifError::Netlist { line, source } => write!(f, "line {line}: {source}"),
            ParseBlifError::UnknownOutput { line, name } => {
                write!(f, "line {line}: unknown output signal {name:?}")
            }
        }
    }
}

impl Error for ParseBlifError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseBlifError::Netlist { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses a BLIF-subset description into a [`Netlist`].
///
/// Supported directives: `.model`, `.inputs`, `.outputs`, `.names`
/// (cover rows become [`GateKind::Lut`]), `.latch` (becomes
/// [`GateKind::Dff`]; type/control/init fields are accepted and ignored)
/// and `.end`. `#` comments and `\` continuations are handled.
///
/// # Errors
///
/// Returns an error on malformed directives or structural violations
/// (multiple drivers, undefined outputs, combinational cycles).
///
/// # Examples
///
/// ```
/// let src = "\
/// .model toy
/// .inputs a b
/// .outputs y
/// .names a b y
/// 11 1
/// .end
/// ";
/// let nl = netpart_netlist::parse_blif(src)?;
/// assert_eq!(nl.name(), "toy");
/// assert_eq!(nl.n_gates(), 1);
/// # Ok::<(), netpart_netlist::ParseBlifError>(())
/// ```
pub fn parse_blif(src: &str) -> Result<Netlist, ParseBlifError> {
    let mut nl = Netlist::new("top");
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, Vec<String>, Vec<String>)> = None; // (.names line, tokens, cover)

    // Join continuation lines, remembering the first physical line number.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut acc = String::new();
    let mut acc_line = 0usize;
    for (i, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        if acc.is_empty() {
            acc_line = i + 1;
        }
        if let Some(stripped) = line.strip_suffix('\\') {
            acc.push_str(stripped);
            acc.push(' ');
            continue;
        }
        acc.push_str(line);
        if !acc.trim().is_empty() {
            logical.push((acc_line, std::mem::take(&mut acc)));
        } else {
            acc.clear();
        }
    }

    let flush_names = |nl: &mut Netlist,
                       pend: &mut Option<(usize, Vec<String>, Vec<String>)>|
     -> Result<(), ParseBlifError> {
        if let Some((line, tokens, cover)) = pend.take() {
            let (ins, out) = tokens.split_at(tokens.len() - 1);
            let inputs: Vec<SignalId> = ins
                .iter()
                .map(|n| intern(nl, n))
                .collect::<Result<_, _>>()
                .map_err(|source| ParseBlifError::Netlist { line, source })?;
            let out_sig =
                intern(nl, &out[0]).map_err(|source| ParseBlifError::Netlist { line, source })?;
            nl.add_gate(
                format!("names_{}", out[0]),
                GateKind::Lut { cover },
                inputs,
                out_sig,
            )
            .map_err(|source| ParseBlifError::Netlist { line, source })?;
        }
        Ok(())
    };

    for (line, text) in logical {
        let text = text.trim();
        if text.starts_with('.') {
            flush_names(&mut nl, &mut pending)?;
        }
        let mut tok = text.split_whitespace();
        let head = tok.next().unwrap_or("");
        match head {
            ".model" => {
                let name = tok.next().unwrap_or("top");
                let mut renamed = Netlist::new(name);
                std::mem::swap(&mut renamed, &mut nl);
                // Keep any content accumulated before `.model` (none in
                // well-formed files).
                if renamed.n_signals() > 0 {
                    return Err(ParseBlifError::Malformed {
                        line,
                        what: ".model after content".into(),
                    });
                }
            }
            ".inputs" => {
                for name in tok {
                    nl.add_primary_input(name)
                        .map_err(|source| ParseBlifError::Netlist { line, source })?;
                }
            }
            ".outputs" => {
                for name in tok {
                    outputs.push((line, name.to_string()));
                }
            }
            ".names" => {
                let tokens: Vec<String> = tok.map(str::to_string).collect();
                if tokens.is_empty() {
                    return Err(ParseBlifError::Malformed {
                        line,
                        what: ".names needs at least an output".into(),
                    });
                }
                pending = Some((line, tokens, Vec::new()));
            }
            ".latch" => {
                let d = tok.next();
                let q = tok.next();
                let (Some(d), Some(q)) = (d, q) else {
                    return Err(ParseBlifError::Malformed {
                        line,
                        what: ".latch needs input and output".into(),
                    });
                };
                let d_sig = intern(&mut nl, d)
                    .map_err(|source| ParseBlifError::Netlist { line, source })?;
                let q_sig = intern(&mut nl, q)
                    .map_err(|source| ParseBlifError::Netlist { line, source })?;
                nl.add_gate(format!("latch_{q}"), GateKind::Dff, vec![d_sig], q_sig)
                    .map_err(|source| ParseBlifError::Netlist { line, source })?;
            }
            ".end" => break,
            _ if head.starts_with('.') => {
                return Err(ParseBlifError::Malformed {
                    line,
                    what: format!("unsupported directive {head}"),
                });
            }
            _ => {
                // A cover row of the pending `.names`.
                match &mut pending {
                    Some((_, _, cover)) => cover.push(text.to_string()),
                    None => {
                        return Err(ParseBlifError::Malformed {
                            line,
                            what: "cover row outside .names".into(),
                        })
                    }
                }
            }
        }
    }
    flush_names(&mut nl, &mut pending)?;

    for (line, name) in outputs {
        let sig = nl
            .signal_by_name(&name)
            .ok_or_else(|| ParseBlifError::UnknownOutput {
                line,
                name: name.clone(),
            })?;
        nl.add_primary_output(sig)
            .map_err(|source| ParseBlifError::Netlist { line, source })?;
    }
    Ok(nl)
}

fn intern(nl: &mut Netlist, name: &str) -> Result<SignalId, NetlistError> {
    match nl.signal_by_name(name) {
        Some(s) => Ok(s),
        None => nl.add_signal(name),
    }
}

/// Serialises a [`Netlist`] as BLIF text that [`parse_blif`] round-trips.
///
/// Primitive gates are emitted as `.names` with the canonical sum-of-
/// products cover for their function; DFFs become `.latch` lines.
pub fn write_blif(nl: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", nl.name());
    if !nl.primary_inputs().is_empty() {
        let names: Vec<&str> = nl
            .primary_inputs()
            .iter()
            .map(|&s| nl.signal_name(s))
            .collect();
        let _ = writeln!(out, ".inputs {}", names.join(" "));
    }
    if !nl.primary_outputs().is_empty() {
        let names: Vec<&str> = nl
            .primary_outputs()
            .iter()
            .map(|&s| nl.signal_name(s))
            .collect();
        let _ = writeln!(out, ".outputs {}", names.join(" "));
    }
    for g in nl.gates() {
        if g.kind.is_dff() {
            let _ = writeln!(
                out,
                ".latch {} {} re clk 0",
                nl.signal_name(g.inputs[0]),
                nl.signal_name(g.output)
            );
            continue;
        }
        let mut names: Vec<&str> = g.inputs.iter().map(|&s| nl.signal_name(s)).collect();
        names.push(nl.signal_name(g.output));
        let _ = writeln!(out, ".names {}", names.join(" "));
        for row in cover_rows(&g.kind, g.inputs.len()) {
            let _ = writeln!(out, "{row}");
        }
    }
    out.push_str(".end\n");
    out
}

/// The canonical sum-of-products cover rows for a primitive gate.
fn cover_rows(kind: &GateKind, n: usize) -> Vec<String> {
    match kind {
        GateKind::Buf => vec!["1 1".into()],
        GateKind::Not => vec!["0 1".into()],
        GateKind::And => vec![format!("{} 1", "1".repeat(n))],
        GateKind::Nor => vec![format!("{} 1", "0".repeat(n))],
        GateKind::Or => (0..n)
            .map(|i| {
                let mut row = vec!['-'; n];
                row[i] = '1';
                format!("{} 1", row.iter().collect::<String>())
            })
            .collect(),
        GateKind::Nand => (0..n)
            .map(|i| {
                let mut row = vec!['-'; n];
                row[i] = '0';
                format!("{} 1", row.iter().collect::<String>())
            })
            .collect(),
        GateKind::Xor => vec!["01 1".into(), "10 1".into()],
        GateKind::Xnor => vec!["00 1".into(), "11 1".into()],
        GateKind::Lut { cover } => cover.clone(),
        GateKind::Dff => unreachable!("DFFs are written as .latch"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GateKind;

    #[test]
    fn parse_simple_model() {
        let src = "\
# a comment
.model demo
.inputs a b \\
c
.outputs y q
.names a b w
11 1
.names w c y
1- 1
-1 1
.latch y q re clk 0
.end
";
        let nl = parse_blif(src).unwrap();
        assert_eq!(nl.name(), "demo");
        assert_eq!(nl.primary_inputs().len(), 3);
        assert_eq!(nl.primary_outputs().len(), 2);
        assert_eq!(nl.n_gates(), 3);
        assert_eq!(nl.n_dffs(), 1);
        nl.validate().unwrap();
    }

    #[test]
    fn roundtrip_primitive_gates() {
        let mut nl = Netlist::new("rt");
        let a = nl.add_primary_input("a").unwrap();
        let b = nl.add_primary_input("b").unwrap();
        let w = nl.add_signal("w").unwrap();
        let x = nl.add_signal("x").unwrap();
        let q = nl.add_signal("q").unwrap();
        nl.add_gate("g0", GateKind::Nand, vec![a, b], w).unwrap();
        nl.add_gate("g1", GateKind::Xor, vec![w, b], x).unwrap();
        nl.add_gate("ff", GateKind::Dff, vec![x], q).unwrap();
        nl.add_primary_output(q).unwrap();
        let text = write_blif(&nl);
        let back = parse_blif(&text).unwrap();
        assert_eq!(back.n_gates(), 3);
        assert_eq!(back.n_dffs(), 1);
        assert_eq!(back.primary_inputs().len(), 2);
        assert_eq!(back.primary_outputs().len(), 1);
        back.validate().unwrap();
        // Second round trip is a fixpoint.
        assert_eq!(write_blif(&back), write_blif(&parse_blif(&text).unwrap()));
    }

    #[test]
    fn unknown_output_rejected() {
        let src = ".model t\n.inputs a\n.outputs zz\n.end\n";
        assert_eq!(
            parse_blif(src).unwrap_err(),
            ParseBlifError::UnknownOutput {
                line: 3,
                name: "zz".into()
            }
        );
    }

    #[test]
    fn duplicate_input_signal_reported_with_line() {
        let src = ".model t\n.inputs a\n.inputs a\n.end\n";
        match parse_blif(src).unwrap_err() {
            ParseBlifError::Netlist { line, source } => {
                assert_eq!(line, 3);
                assert!(matches!(source, NetlistError::DuplicateSignalName(_)));
            }
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn empty_names_rejected_with_line() {
        let src = ".model t\n.inputs a\n.names\n.end\n";
        assert!(matches!(
            parse_blif(src).unwrap_err(),
            ParseBlifError::Malformed { line: 3, .. }
        ));
    }

    #[test]
    fn truncated_latch_rejected_with_line() {
        let src = ".model t\n.inputs d\n.latch d\n.end\n";
        assert!(matches!(
            parse_blif(src).unwrap_err(),
            ParseBlifError::Malformed { line: 3, .. }
        ));
    }

    #[test]
    fn dangling_names_output_feeding_nothing_still_parses() {
        // A `.names` whose output drives nothing is legal BLIF; only
        // undriven `.outputs` are an error.
        let src = ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a w\n0 1\n.end\n";
        let nl = parse_blif(src).unwrap();
        assert_eq!(nl.n_gates(), 2);
        nl.validate().unwrap();
    }

    #[test]
    fn unsupported_directive_rejected() {
        let src = ".model t\n.gate and2 A=a B=b O=y\n.end\n";
        assert!(matches!(
            parse_blif(src).unwrap_err(),
            ParseBlifError::Malformed { line: 2, .. }
        ));
    }

    #[test]
    fn stray_cover_row_rejected() {
        let src = ".model t\n11 1\n.end\n";
        assert!(matches!(
            parse_blif(src).unwrap_err(),
            ParseBlifError::Malformed { .. }
        ));
    }

    #[test]
    fn double_driver_reported_with_line() {
        let src = ".model t\n.inputs a\n.names a y\n1 1\n.names a y\n0 1\n.end\n";
        match parse_blif(src).unwrap_err() {
            ParseBlifError::Netlist { line, source } => {
                assert_eq!(line, 5);
                assert!(matches!(source, NetlistError::SignalAlreadyDriven(_)));
            }
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn constant_names_allowed() {
        let src = ".model t\n.outputs k\n.names k\n1\n.end\n";
        let nl = parse_blif(src).unwrap();
        assert_eq!(nl.n_gates(), 1);
        assert!(matches!(nl.gates()[0].kind, GateKind::Lut { .. }));
    }
}
