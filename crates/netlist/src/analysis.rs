//! DAG analysis utilities: topological order, levelization, transitive
//! support and aggregate statistics.

use crate::model::{Driver, GateId, Netlist, NetlistError, SignalId};
use std::collections::BTreeSet;

/// Returns the gates in a topological order of their *combinational*
/// dependencies (a DFF's input does not constrain its order — the
/// flip-flop boundary is where sequential feedback is cut).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the combinational part
/// of the network is cyclic.
pub fn topo_order(nl: &Netlist) -> Result<Vec<GateId>, NetlistError> {
    let n = nl.n_gates();
    let mut indegree = vec![0usize; n];
    let fanouts = nl.fanout_index();
    for g in nl.gate_ids() {
        if nl.gate(g).kind.is_dff() {
            continue; // DFF consumes its input after the clock edge
        }
        for &s in &nl.gate(g).inputs {
            if let Driver::Gate(_) = nl.driver(s) {
                indegree[g.index()] += 1;
            }
        }
    }
    let mut queue: Vec<GateId> = nl.gate_ids().filter(|g| indegree[g.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(g) = queue.pop() {
        order.push(g);
        for &reader in &fanouts[nl.gate(g).output.index()] {
            if nl.gate(reader).kind.is_dff() {
                continue;
            }
            indegree[reader.index()] -= 1;
            if indegree[reader.index()] == 0 {
                queue.push(reader);
            }
        }
    }
    if order.len() != n {
        return Err(NetlistError::CombinationalCycle);
    }
    Ok(order)
}

/// Computes the combinational depth of every gate (primary inputs and DFF
/// outputs are at depth 0; a gate's level is `1 + max(input levels)`;
/// DFF gates themselves are at level 0).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] on cyclic combinational
/// logic.
pub fn levelize(nl: &Netlist) -> Result<Vec<u32>, NetlistError> {
    let order = topo_order(nl)?;
    let mut level = vec![0u32; nl.n_gates()];
    for g in order {
        if nl.gate(g).kind.is_dff() {
            continue;
        }
        let mut lvl = 0;
        for &s in &nl.gate(g).inputs {
            if let Driver::Gate(d) = nl.driver(s) {
                if !nl.gate(d).kind.is_dff() {
                    lvl = lvl.max(level[d.index()] + 1);
                    continue;
                }
            }
            lvl = lvl.max(1);
        }
        level[g.index()] = lvl;
    }
    Ok(level)
}

/// The transitive *support* of a signal: the set of source signals
/// (primary inputs and DFF outputs) it combinationally depends on.
pub fn transitive_support(nl: &Netlist, signal: SignalId) -> BTreeSet<SignalId> {
    let mut support = BTreeSet::new();
    let mut stack = vec![signal];
    let mut seen = vec![false; nl.n_signals()];
    while let Some(s) = stack.pop() {
        if seen[s.index()] {
            continue;
        }
        seen[s.index()] = true;
        match nl.driver(s) {
            Driver::PrimaryInput => {
                support.insert(s);
            }
            Driver::Gate(g) if nl.gate(g).kind.is_dff() => {
                support.insert(s);
            }
            Driver::Gate(g) => {
                stack.extend(nl.gate(g).inputs.iter().copied());
            }
            Driver::None => {}
        }
    }
    support
}

/// Aggregate netlist statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetlistStats {
    /// Total gate count, including DFFs.
    pub gates: usize,
    /// Primary-input count.
    pub pis: usize,
    /// Primary-output count.
    pub pos: usize,
    /// D flip-flop count.
    pub dffs: usize,
    /// Signal count.
    pub signals: usize,
    /// Mean combinational fan-in over non-DFF gates.
    pub avg_fanin: f64,
    /// Maximum combinational depth.
    pub max_level: u32,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle (validate first).
    pub fn of(nl: &Netlist) -> Self {
        let levels = levelize(nl).expect("netlist must be acyclic");
        let comb: Vec<_> = nl.gates().iter().filter(|g| !g.kind.is_dff()).collect();
        let fanin_sum: usize = comb.iter().map(|g| g.inputs.len()).sum();
        NetlistStats {
            gates: nl.n_gates(),
            pis: nl.primary_inputs().len(),
            pos: nl.primary_outputs().len(),
            dffs: nl.n_dffs(),
            signals: nl.n_signals(),
            avg_fanin: if comb.is_empty() {
                0.0
            } else {
                fanin_sum as f64 / comb.len() as f64
            },
            max_level: levels.iter().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GateKind;

    fn chain() -> Netlist {
        // a -> g0 -> g1 -> g2, with a DFF on the end feeding back to g0's
        // second input.
        let mut nl = Netlist::new("chain");
        let a = nl.add_primary_input("a").unwrap();
        let q = nl.add_signal("q").unwrap();
        let w0 = nl.add_signal("w0").unwrap();
        let w1 = nl.add_signal("w1").unwrap();
        let w2 = nl.add_signal("w2").unwrap();
        nl.add_gate("g0", GateKind::And, vec![a, q], w0).unwrap();
        nl.add_gate("g1", GateKind::Not, vec![w0], w1).unwrap();
        nl.add_gate("g2", GateKind::Not, vec![w1], w2).unwrap();
        nl.add_gate("ff", GateKind::Dff, vec![w2], q).unwrap();
        nl.add_primary_output(w2).unwrap();
        nl.validate().unwrap();
        nl
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = chain();
        let order = topo_order(&nl).unwrap();
        let pos: Vec<usize> = nl
            .gate_ids()
            .map(|g| order.iter().position(|&x| x == g).unwrap())
            .collect();
        assert!(pos[0] < pos[1]);
        assert!(pos[1] < pos[2]);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn levels_count_depth() {
        let nl = chain();
        let levels = levelize(&nl).unwrap();
        assert_eq!(levels[0], 1);
        assert_eq!(levels[1], 2);
        assert_eq!(levels[2], 3);
        assert_eq!(levels[3], 0); // DFF
    }

    #[test]
    fn support_stops_at_state() {
        let nl = chain();
        let w2 = nl.signal_by_name("w2").unwrap();
        let sup = transitive_support(&nl, w2);
        let names: Vec<&str> = sup.iter().map(|&s| nl.signal_name(s)).collect();
        assert_eq!(names, vec!["a", "q"]);
    }

    #[test]
    fn stats_summary() {
        let nl = chain();
        let s = NetlistStats::of(&nl);
        assert_eq!(s.gates, 4);
        assert_eq!(s.dffs, 1);
        assert_eq!(s.pis, 1);
        assert_eq!(s.pos, 1);
        assert_eq!(s.max_level, 3);
        assert!((s.avg_fanin - 4.0 / 3.0).abs() < 1e-12);
    }
}
