//! Gate-level netlist substrate: logic network model, a BLIF-subset
//! reader/writer, DAG analysis utilities and a synthetic benchmark
//! generator approximating the MCNC `partitioning93` suite used by the
//! paper (Table II).
//!
//! The original benchmarks (ISCAS'85 `c*` and ISCAS'89 `s*` circuits mapped
//! into XC3000 CLBs by XACT) are not redistributable here, so
//! [`bench_suite`] synthesises circuits of the same names with
//! approximately the same post-mapping scale and — for the sequential
//! `s*` circuits — a higher *clustering* (community structure), the
//! property the paper calls out when explaining why functional replication
//! helps them more.
//!
//! # Examples
//!
//! ```
//! use netpart_netlist::{generate, GeneratorConfig};
//!
//! let cfg = GeneratorConfig::new(200).with_seed(7).with_pi(16).with_po(8);
//! let nl = generate(&cfg);
//! assert_eq!(nl.primary_inputs().len(), 16);
//! assert!(nl.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod bench_suite;
mod blif;
mod generate;
mod model;
pub mod sim;

pub use analysis::{levelize, topo_order, transitive_support, NetlistStats};
pub use blif::{parse_blif, write_blif, ParseBlifError};
pub use generate::{generate, GeneratorConfig};
pub use model::{Driver, Gate, GateId, GateKind, Netlist, NetlistError, SignalId};
