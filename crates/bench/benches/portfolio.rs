//! Criterion bench for the parallel portfolio engine: the same
//! 20-start FM portfolio at increasing `--jobs` levels, so the
//! speedup (and the single-thread overhead of the engine versus the
//! sequential `run_many` harness) can be measured on real hardware.
//!
//! The determinism contract means every jobs level computes the same
//! best solution — the bench measures pure wall-clock scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netpart_core::{run_many, BipartitionConfig, ReplicationMode};
use netpart_engine::portfolio_bipartition;
use netpart_netlist::bench_suite;
use netpart_techmap::{map, MapperConfig};

fn bench_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_bipartition");
    group.sample_size(10);
    let nl = bench_suite::build_scaled("c3540", 2).expect("known benchmark");
    let hg = map(&nl, &MapperConfig::xc3000())
        .expect("maps")
        .to_hypergraph(&nl);
    let label = format!("c3540/{}clb", hg.stats().clbs);
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(1)
        .with_replication(ReplicationMode::functional(0));
    const STARTS: usize = 20;

    group.bench_with_input(
        BenchmarkId::new("sequential_run_many", &label),
        &hg,
        |b, hg| b.iter(|| run_many(hg, &cfg, STARTS).expect("satisfiable").best_cut()),
    );
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("jobs{jobs}"), &label),
            &hg,
            |b, hg| {
                b.iter(|| {
                    portfolio_bipartition(hg, &cfg, STARTS, jobs)
                        .expect("satisfiable")
                        .best_cut()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
