//! Criterion bench for the Table III kernel: equal-halves FM
//! bipartitioning with and without replication.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netpart_core::{bipartition, BipartitionConfig, ReplicationMode};
use netpart_netlist::bench_suite;
use netpart_techmap::{map, MapperConfig};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_bipartition");
    group.sample_size(10);
    for (name, scale) in [("c3540", 1usize), ("s9234", 4)] {
        let nl = bench_suite::build_scaled(name, scale).expect("known benchmark");
        let hg = map(&nl, &MapperConfig::xc3000())
            .expect("maps")
            .to_hypergraph(&nl);
        let label = format!("{name}/{}clb", hg.stats().clbs);
        for (mode_name, mode) in [
            ("fm", ReplicationMode::None),
            ("fm+traditional", ReplicationMode::Traditional),
            ("fm+functional", ReplicationMode::functional(0)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(mode_name, &label),
                &hg,
                |b, hg| {
                    let cfg = BipartitionConfig::equal(hg, 0.1)
                        .with_seed(1)
                        .with_replication(mode);
                    b.iter(|| bipartition(hg, &cfg).cut)
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
