//! Criterion bench for the FM selection-structure rewrite: seeded
//! bipartitions under the incremental `GainBuckets` ladder (default)
//! vs the retained `LazyHeap` baseline, at two circuit scales and in
//! all three replication modes.
//!
//! Quick mode for CI: `cargo bench --bench fm_pass -- --quick`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netpart_core::{bipartition, BipartitionConfig, ReplicationMode, SelectionStrategy};
use netpart_hypergraph::Hypergraph;
use netpart_netlist::bench_suite;
use netpart_techmap::{map, MapperConfig};

fn circuit(name: &str, scale: usize) -> Hypergraph {
    let nl = bench_suite::build_scaled(name, scale).expect("known benchmark");
    map(&nl, &MapperConfig::xc3000())
        .expect("maps")
        .to_hypergraph(&nl)
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm_pass_selection");
    group.sample_size(10);
    for (name, scale) in [("c3540", 2), ("s5378", 2)] {
        let hg = circuit(name, scale);
        let label = format!("{name}/{}clb", hg.stats().clbs);
        for (tag, strategy) in [
            ("buckets", SelectionStrategy::GainBuckets),
            ("heap", SelectionStrategy::LazyHeap),
        ] {
            group.bench_with_input(
                BenchmarkId::new(tag, &label),
                &hg,
                |b, hg| {
                    let cfg = BipartitionConfig::equal(hg, 0.1)
                        .with_seed(1)
                        .with_replication(ReplicationMode::functional(0))
                        .with_selection(strategy);
                    b.iter(|| {
                        let r = bipartition(hg, &cfg);
                        assert_eq!(r.gain_repairs, 0);
                        r.cut
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm_pass_modes");
    group.sample_size(10);
    let hg = circuit("c3540", 2);
    for (tag, mode) in [
        ("none", ReplicationMode::None),
        ("traditional", ReplicationMode::Traditional),
        ("functional", ReplicationMode::functional(0)),
    ] {
        group.bench_with_input(BenchmarkId::new("buckets", tag), &hg, |b, hg| {
            let cfg = BipartitionConfig::equal(hg, 0.1)
                .with_seed(1)
                .with_replication(mode)
                .with_selection(SelectionStrategy::GainBuckets);
            b.iter(|| bipartition(hg, &cfg).cut)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_modes);
criterion_main!(benches);
