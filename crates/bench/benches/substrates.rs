//! Criterion benches for the substrates behind Table II and Figure 3:
//! circuit synthesis, technology mapping, hypergraph emission and the
//! replication-potential distribution.

use criterion::{criterion_group, criterion_main, Criterion};
use netpart_netlist::{bench_suite, generate, GeneratorConfig};
use netpart_techmap::{map, MapperConfig};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    let cfg = GeneratorConfig::new(2000).with_dff(120).with_seed(9);
    group.bench_function("generate/2000g", |b| b.iter(|| generate(&cfg).n_gates()));

    let nl = bench_suite::build("c3540").expect("known benchmark");
    group.bench_function("techmap/c3540", |b| {
        b.iter(|| map(&nl, &MapperConfig::xc3000()).expect("maps").n_clbs())
    });

    let mapped = map(&nl, &MapperConfig::xc3000()).expect("maps");
    group.bench_function("to_hypergraph/c3540", |b| {
        b.iter(|| mapped.to_hypergraph(&nl).n_cells())
    });

    let hg = mapped.to_hypergraph(&nl);
    group.bench_function("figure3_distribution/c3540", |b| {
        b.iter(|| hg.replication_potential_distribution().len())
    });

    group.bench_function("table2_stats/c3540", |b| b.iter(|| hg.stats().pins));
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
