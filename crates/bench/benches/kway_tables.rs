//! Criterion bench for the Tables IV–VII kernel: cost-driven k-way
//! partitioning into the heterogeneous XC3000 library.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netpart_core::{kway_partition, KWayConfig, ReplicationMode};
use netpart_fpga::DeviceLibrary;
use netpart_netlist::bench_suite;
use netpart_techmap::{map, MapperConfig};

fn bench_kway(c: &mut Criterion) {
    let mut group = c.benchmark_group("kway_tables4_to_7");
    group.sample_size(10);
    let nl = bench_suite::build_scaled("s5378", 2).expect("known benchmark");
    let hg = map(&nl, &MapperConfig::xc3000())
        .expect("maps")
        .to_hypergraph(&nl);
    let label = format!("s5378/{}clb", hg.stats().clbs);
    for (mode_name, mode) in [
        ("no-replication", ReplicationMode::None),
        ("functional-T1", ReplicationMode::functional(1)),
    ] {
        group.bench_with_input(BenchmarkId::new(mode_name, &label), &hg, |b, hg| {
            let cfg = KWayConfig::new(DeviceLibrary::xc3000())
                .with_candidates(2)
                .with_seed(5)
                .with_max_passes(8)
                .with_replication(mode);
            b.iter(|| {
                kway_partition(hg, &cfg)
                    .map(|r| r.evaluation.total_cost)
                    .unwrap_or(0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kway);
criterion_main!(benches);
