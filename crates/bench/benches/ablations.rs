//! Ablation benches for the design choices DESIGN.md calls out:
//! threshold replication potential `T` (eq. 6), packing affinity (what
//! functional replication recovers), and gain evaluation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netpart_core::{bipartition, BipartitionConfig, EngineState, ReplicationMode};
use netpart_netlist::bench_suite;
use netpart_techmap::{map, MapperConfig};

fn bench_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_threshold");
    group.sample_size(10);
    let nl = bench_suite::build_scaled("s5378", 2).expect("known benchmark");
    let hg = map(&nl, &MapperConfig::xc3000())
        .expect("maps")
        .to_hypergraph(&nl);
    for t in [0u32, 1, 2, 3] {
        group.bench_with_input(BenchmarkId::new("T", t), &hg, |b, hg| {
            let cfg = BipartitionConfig::equal(hg, 0.1)
                .with_seed(1)
                .with_replication(ReplicationMode::functional(t));
            b.iter(|| bipartition(hg, &cfg).cut)
        });
    }
    group.finish();
}

fn bench_pack_affinity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pack_affinity");
    group.sample_size(10);
    let nl = bench_suite::build_scaled("c3540", 2).expect("known benchmark");
    for aff in [0.5f64, 0.85, 1.0] {
        let cfg = MapperConfig::xc3000().with_pack_affinity(aff);
        let hg = map(&nl, &cfg).expect("maps").to_hypergraph(&nl);
        group.bench_with_input(
            BenchmarkId::new("affinity", format!("{aff}")),
            &hg,
            |b, hg| {
                let cfg = BipartitionConfig::equal(hg, 0.1)
                    .with_seed(1)
                    .with_replication(ReplicationMode::functional(0));
                b.iter(|| bipartition(hg, &cfg).cut)
            },
        );
    }
    group.finish();
}

fn bench_gain_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gain_eval");
    let nl = bench_suite::build_scaled("c3540", 2).expect("known benchmark");
    let hg = map(&nl, &MapperConfig::xc3000())
        .expect("maps")
        .to_hypergraph(&nl);
    let sides: Vec<u8> = (0..hg.n_cells()).map(|i| (i % 2) as u8).collect();
    let engine = EngineState::new(&hg, &sides);
    group.bench_function("peek_all_moves", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for cell in hg.cell_ids() {
                acc += engine.peek_gain(
                    cell,
                    netpart_core::CellState::Single {
                        side: 1 - (cell.0 % 2) as u8,
                    },
                );
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_threshold, bench_pack_affinity, bench_gain_eval);
criterion_main!(benches);
