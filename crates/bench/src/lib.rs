//! Benchmark harness: Criterion benches over the paper's kernels.
//!
//! The experiment drivers (Tables I–VII, Figure 3) live in
//! [`netpart::experiments`] inside the hermetic root package — that is
//! what the `tables` binary and the golden-snapshot tests build offline.
//! This crate re-exports them so existing bench code keeps its imports,
//! and adds the registry-dependent Criterion benches under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use netpart::experiments::{
    figure3, kway_experiment, suite, table1, table2, table3, table3_record, tables_4_to_7,
    try_suite, ExperimentError, KWayRecord, Table3Record, Timing,
};
