//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each `table*`/`figure3` function reproduces one exhibit of the
//! evaluation section as a [`netpart_report::Table`]; the `tables` binary
//! renders them to the terminal and to `results/*.csv`. The Criterion
//! benches under `benches/` measure the runtime of the same kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::{
    figure3, kway_experiment, suite, table1, table2, table3, table3_record, tables_4_to_7,
    try_suite, ExperimentError, KWayRecord, Table3Record,
};
