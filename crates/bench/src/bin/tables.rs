//! Regenerates the paper's tables and figure.
//!
//! ```text
//! tables <exhibit> [--runs N] [--candidates N] [--scale N] [--out DIR] [--only NAME,...]
//!
//! exhibit: table1 | table2 | table3 | table4 (IV–VII) | figure3 | all
//! --runs N        bipartition runs per circuit for Table III (default 20)
//! --candidates N  feasible k-way partitions per run for Tables IV–VII (default 10)
//! --scale N       shrink every benchmark by N× (default 1 = paper scale)
//! --out DIR       CSV output directory (default results/)
//! --only LIST     comma-separated circuit subset
//! ```

use netpart_bench::{figure3, table1, table2, table3, tables_4_to_7, try_suite};
use netpart_report::Table;
use std::path::PathBuf;

struct Options {
    exhibit: String,
    runs: usize,
    candidates: usize,
    scale: usize,
    out: PathBuf,
    only: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        exhibit: String::new(),
        runs: 20,
        candidates: 10,
        scale: 1,
        out: PathBuf::from("results"),
        only: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--runs" => opts.runs = need("--runs")?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--candidates" => {
                opts.candidates = need("--candidates")?
                    .parse()
                    .map_err(|e| format!("--candidates: {e}"))?
            }
            "--scale" => {
                opts.scale = need("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--out" => opts.out = PathBuf::from(need("--out")?),
            "--only" => {
                opts.only = need("--only")?.split(',').map(str::to_string).collect()
            }
            _ if a.starts_with('-') => return Err(format!("unknown flag {a}")),
            _ if opts.exhibit.is_empty() => opts.exhibit = a,
            _ => return Err(format!("unexpected argument {a}")),
        }
    }
    if opts.exhibit.is_empty() {
        opts.exhibit = "all".into();
    }
    Ok(opts)
}

fn emit(table: &Table, out: &PathBuf, file: &str) {
    println!("{table}");
    if std::fs::create_dir_all(out).is_ok() {
        let path = out.join(file);
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(csv: {})\n", path.display());
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let only: Vec<&str> = opts.only.iter().map(String::as_str).collect();
    let want = |x: &str| opts.exhibit == "all" || opts.exhibit == x;
    let mut matched = false;

    if want("table1") {
        matched = true;
        emit(&table1(), &opts.out, "table1.csv");
    }
    let needs_suite = ["table2", "table3", "table4", "figure3"]
        .iter()
        .any(|x| want(x));
    if needs_suite {
        matched = true;
        eprintln!(
            "building benchmark suite (scale 1/{}, circuits: {}) ...",
            opts.scale,
            if only.is_empty() { "all" } else { "subset" }
        );
        let s = match try_suite(opts.scale, &only) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        if want("table2") {
            emit(&table2(&s), &opts.out, "table2.csv");
        }
        if want("figure3") {
            emit(&figure3(&s), &opts.out, "figure3.csv");
        }
        if want("table3") {
            eprintln!("running Table III ({} runs per circuit) ...", opts.runs);
            match table3(&s, opts.runs) {
                Ok((t, _)) => emit(&t, &opts.out, "table3.csv"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        if want("table4") {
            eprintln!(
                "running Tables IV–VII ({} feasible partitions per run) ...",
                opts.candidates
            );
            match tables_4_to_7(&s, opts.candidates, 2024) {
                Ok((t4, t5, t6, t7, _)) => {
                    emit(&t4, &opts.out, "table4.csv");
                    emit(&t5, &opts.out, "table5.csv");
                    emit(&t6, &opts.out, "table6.csv");
                    emit(&t7, &opts.out, "table7.csv");
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if !matched {
        eprintln!(
            "error: unknown exhibit {:?} (expected table1|table2|table3|table4|figure3|all)",
            opts.exhibit
        );
        std::process::exit(2);
    }
}
