//! The classic Fiduccia–Mattheyses gain-bucket ladder.
//!
//! [`GainBuckets`] keeps every candidate cell in a bucket array indexed
//! by `(gain, tie)` over the static gain range `[-p_max, +p_max]`, with
//! a doubly linked intrusive list per bucket and a moving max-gain
//! pointer. All structural operations — insert, remove, reposition after
//! an incremental gain update — are O(1); selection walks the max
//! pointer downward, which amortizes to O(total gain change) per pass,
//! the linear-time property FM is built on.
//!
//! Gains outside `±p_max` (possible for replication moves whose bound is
//! looser than the single-move pin bound) overflow into a small sorted
//! side list so their priorities stay exact instead of being clamped.
//!
//! # Ordering contract
//!
//! Selection returns the maximum `(gain, tie)` pair; the tie byte
//! encodes the pass's move preference (unreplicate > move > replicate).
//! Within one `(gain, tie)` bucket the order is LIFO (most recently
//! inserted first) — deterministic, because every insertion is driven by
//! the deterministic pass loop. Overflow entries break exact `(gain,
//! tie)` ties by the *lowest* cell id. A bucket entry and an overflow
//! entry can never share a key (overflow holds out-of-range gains only),
//! so the combined order is total and reproducible run-to-run — the
//! fixed-seed determinism the portfolio engine's `--jobs` byte-identity
//! contract builds on.

/// End-of-list sentinel for the intrusive links.
const NIL: u32 = u32::MAX;
/// `slot` marker: the cell is not in the structure.
const ABSENT: u32 = u32::MAX;
/// `slot` marker: the cell lives in the overflow list.
const OVERFLOW: u32 = u32::MAX - 1;
/// Tie classes per gain value (unreplicate / move / replicate).
const TIES: usize = 3;

/// Per-cell bucket metadata, packed into one 24-byte record so an
/// insert/remove/reposition touches a single cache line per cell
/// instead of four parallel vectors (links, slot and key used to live
/// in separate allocations, costing four cache misses per structural
/// operation on large circuits).
#[derive(Clone, Copy, Debug)]
struct Node {
    /// Current gain of the cell while present (relocates overflow
    /// entries and skips no-op repositions).
    gain: i64,
    /// Intrusive forward link (`NIL` at a tail).
    next: u32,
    /// Intrusive backward link (`NIL` at a head).
    prev: u32,
    /// Bucket slot of the cell, `ABSENT`, or `OVERFLOW`.
    slot: u32,
    /// Tie class of the current key while present.
    tie: u8,
}

impl Node {
    const EMPTY: Node = Node {
        gain: 0,
        next: NIL,
        prev: NIL,
        slot: ABSENT,
        tie: 0,
    };

    fn key(&self) -> (i64, u8) {
        (self.gain, self.tie)
    }
}

/// A bucket-array priority structure over cells keyed by `(gain, tie)`.
///
/// See the module docs for the ordering contract. Cell ids must be
/// `< n_cells` passed at construction; each cell is present at most
/// once.
#[derive(Debug)]
pub(crate) struct GainBuckets {
    /// Gain magnitude bound of the bucket array: in-range gains satisfy
    /// `-p_max <= gain <= p_max`.
    p_max: i64,
    /// Head cell of each `(gain, tie)` bucket (`NIL` when empty).
    heads: Vec<u32>,
    /// Packed per-cell state: links, slot and key, indexed by cell.
    nodes: Vec<Node>,
    /// Out-of-range entries as `(gain, tie, cell)`, sorted ascending by
    /// `(gain, tie, !cell)` so the maximum — lowest cell id on exact
    /// ties — is last.
    overflow: Vec<(i64, u8, u32)>,
    /// Highest bucket slot that may be non-empty (moving max pointer).
    max_slot: usize,
    /// Number of cells currently in the structure.
    len: usize,
    /// Bucket slots examined while walking the max pointer (telemetry).
    scans: u64,
}

impl GainBuckets {
    /// An empty structure for cells `0..n_cells` and in-range gains
    /// `[-p_max, +p_max]`.
    pub(crate) fn new(n_cells: usize, p_max: i64) -> Self {
        let p_max = p_max.max(0);
        let n_slots = (2 * p_max as usize + 1) * TIES;
        GainBuckets {
            p_max,
            heads: vec![NIL; n_slots],
            nodes: vec![Node::EMPTY; n_cells],
            overflow: Vec::new(),
            max_slot: 0,
            len: 0,
            scans: 0,
        }
    }

    /// Number of cells in the structure.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether the structure is empty.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `cell` is currently present.
    pub(crate) fn contains(&self, cell: u32) -> bool {
        self.nodes[cell as usize].slot != ABSENT
    }

    /// Bucket slots examined so far while moving the max pointer.
    pub(crate) fn scans(&self) -> u64 {
        self.scans
    }

    fn slot_of(&self, gain: i64, tie: u8) -> Option<usize> {
        debug_assert!((1..=TIES as u8).contains(&tie), "tie class out of range");
        if gain < -self.p_max || gain > self.p_max {
            return None;
        }
        Some(((gain + self.p_max) as usize) * TIES + (tie as usize - 1))
    }

    fn key_of_slot(&self, slot: usize) -> (i64, u8) {
        ((slot / TIES) as i64 - self.p_max, (slot % TIES) as u8 + 1)
    }

    /// Ascending sort key for the overflow list: maximum last, lowest
    /// cell id first among exact `(gain, tie)` ties.
    fn overflow_key(entry: (i64, u8, u32)) -> (i64, u8, u32) {
        (entry.0, entry.1, !entry.2)
    }

    /// Inserts `cell` with the given key.
    ///
    /// The cell must not already be present (debug-asserted); the pass
    /// loop guarantees this by repositioning via [`GainBuckets::update`].
    pub(crate) fn insert(&mut self, cell: u32, gain: i64, tie: u8) {
        debug_assert!(!self.contains(cell), "cell {cell} inserted twice");
        self.nodes[cell as usize].gain = gain;
        self.nodes[cell as usize].tie = tie;
        match self.slot_of(gain, tie) {
            Some(s) => {
                let head = self.heads[s];
                self.nodes[cell as usize].next = head;
                self.nodes[cell as usize].prev = NIL;
                if head != NIL {
                    self.nodes[head as usize].prev = cell;
                }
                self.heads[s] = cell;
                self.nodes[cell as usize].slot = s as u32;
                if s > self.max_slot || self.len == 0 {
                    self.max_slot = s;
                }
            }
            None => {
                let entry = (gain, tie, cell);
                let pos = self
                    .overflow
                    .partition_point(|&e| Self::overflow_key(e) < Self::overflow_key(entry));
                self.overflow.insert(pos, entry);
                self.nodes[cell as usize].slot = OVERFLOW;
            }
        }
        self.len += 1;
    }

    /// Removes `cell` if present; returns whether it was.
    pub(crate) fn remove(&mut self, cell: u32) -> bool {
        let node = self.nodes[cell as usize];
        match node.slot {
            ABSENT => return false,
            OVERFLOW => {
                let entry = (node.gain, node.tie, cell);
                let pos = self
                    .overflow
                    .partition_point(|&e| Self::overflow_key(e) < Self::overflow_key(entry));
                debug_assert!(self.overflow.get(pos) == Some(&entry), "overflow desync");
                self.overflow.remove(pos);
            }
            s => {
                let s = s as usize;
                let (p, n) = (node.prev, node.next);
                if p == NIL {
                    self.heads[s] = n;
                } else {
                    self.nodes[p as usize].next = n;
                }
                if n != NIL {
                    self.nodes[n as usize].prev = p;
                }
            }
        }
        self.nodes[cell as usize].slot = ABSENT;
        self.nodes[cell as usize].next = NIL;
        self.nodes[cell as usize].prev = NIL;
        self.len -= 1;
        true
    }

    /// Repositions `cell` under a new key, inserting it if absent. A
    /// no-op when the key is unchanged and the cell is present.
    pub(crate) fn update(&mut self, cell: u32, gain: i64, tie: u8) {
        if self.contains(cell) {
            if self.nodes[cell as usize].key() == (gain, tie) {
                return;
            }
            self.remove(cell);
        }
        self.insert(cell, gain, tie);
    }

    /// Removes and returns the maximum-key cell, or `None` when empty.
    pub(crate) fn pop(&mut self) -> Option<(u32, i64, u8)> {
        if self.is_empty() {
            return None;
        }
        // Walk the max pointer down to the first non-empty bucket.
        let bucket_top = loop {
            if self.heads[self.max_slot] != NIL {
                break Some(self.max_slot);
            }
            self.scans += 1;
            if self.max_slot == 0 {
                break None;
            }
            self.max_slot -= 1;
        };
        let from_overflow = match (bucket_top, self.overflow.last()) {
            (None, Some(_)) => true,
            (Some(s), Some(&(g, t, _))) => (g, t) > self.key_of_slot(s),
            (_, None) => false,
        };
        if from_overflow {
            let (g, t, cell) = *self.overflow.last().expect("checked non-empty");
            self.remove(cell);
            return Some((cell, g, t));
        }
        let s = bucket_top?;
        let cell = self.heads[s];
        self.remove(cell);
        let (g, t) = self.key_of_slot(s);
        Some((cell, g, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_gain_then_tie_order() {
        let mut b = GainBuckets::new(8, 4);
        b.insert(0, -2, 2);
        b.insert(1, 3, 1);
        b.insert(2, 3, 3);
        b.insert(3, 0, 2);
        assert_eq!(b.len(), 4);
        // Highest gain first; on a gain tie the higher tie class wins.
        assert_eq!(b.pop(), Some((2, 3, 3)));
        assert_eq!(b.pop(), Some((1, 3, 1)));
        assert_eq!(b.pop(), Some((3, 0, 2)));
        assert_eq!(b.pop(), Some((0, -2, 2)));
        assert_eq!(b.pop(), None);
        assert!(b.is_empty());
    }

    #[test]
    fn equal_keys_pop_lifo() {
        let mut b = GainBuckets::new(4, 2);
        b.insert(0, 1, 2);
        b.insert(1, 1, 2);
        b.insert(2, 1, 2);
        assert_eq!(b.pop(), Some((2, 1, 2)));
        assert_eq!(b.pop(), Some((1, 1, 2)));
        assert_eq!(b.pop(), Some((0, 1, 2)));
    }

    #[test]
    fn out_of_range_gains_overflow_with_exact_priority() {
        let mut b = GainBuckets::new(8, 2);
        b.insert(0, 9, 1); // above +p_max
        b.insert(1, 1, 2);
        b.insert(2, -7, 2); // below -p_max
        b.insert(3, 9, 1); // same overflow key except cell: lower id wins
        assert_eq!(b.pop(), Some((0, 9, 1)));
        assert_eq!(b.pop(), Some((3, 9, 1)));
        assert_eq!(b.pop(), Some((1, 1, 2)));
        assert_eq!(b.pop(), Some((2, -7, 2)));
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn update_repositions_and_raises_the_max_pointer() {
        let mut b = GainBuckets::new(4, 5);
        b.insert(0, -3, 2);
        b.insert(1, 0, 2);
        assert_eq!(b.pop(), Some((1, 0, 2)));
        // Raising a gain after the pointer moved down must still win.
        b.update(0, 4, 2);
        b.insert(1, 2, 2);
        assert_eq!(b.pop(), Some((0, 4, 2)));
        assert_eq!(b.pop(), Some((1, 2, 2)));
    }

    #[test]
    fn update_with_same_key_is_a_noop() {
        let mut b = GainBuckets::new(2, 3);
        b.insert(0, 2, 1);
        b.insert(1, 2, 1);
        b.update(1, 2, 1); // would reorder the LIFO bucket if not a no-op
        assert_eq!(b.pop(), Some((1, 2, 1)));
        assert_eq!(b.pop(), Some((0, 2, 1)));
    }

    #[test]
    fn remove_unlinks_from_the_middle() {
        let mut b = GainBuckets::new(4, 3);
        b.insert(0, 1, 2);
        b.insert(1, 1, 2);
        b.insert(2, 1, 2);
        assert!(b.remove(1));
        assert!(!b.remove(1));
        assert!(!b.contains(1));
        assert_eq!(b.pop(), Some((2, 1, 2)));
        assert_eq!(b.pop(), Some((0, 1, 2)));
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn overflow_and_bucket_interleave_correctly() {
        let mut b = GainBuckets::new(8, 1);
        b.insert(0, 1, 2); // bucket top
        b.insert(1, 5, 1); // overflow, higher gain
        b.insert(2, -4, 3); // overflow, lower than any bucket
        b.insert(3, 0, 3);
        assert_eq!(b.pop(), Some((1, 5, 1)));
        assert_eq!(b.pop(), Some((0, 1, 2)));
        assert_eq!(b.pop(), Some((3, 0, 3)));
        assert_eq!(b.pop(), Some((2, -4, 3)));
    }

    #[test]
    fn scans_count_bucket_walks() {
        let mut b = GainBuckets::new(2, 10);
        b.insert(0, 10, 3);
        b.insert(1, -10, 1);
        assert_eq!(b.pop(), Some((0, 10, 3)));
        let before = b.scans();
        assert_eq!(b.pop(), Some((1, -10, 1)));
        assert!(b.scans() > before, "walking down must be counted");
    }

    #[test]
    fn gains_exactly_at_pmax_stay_in_range() {
        // ±p_max are the *inclusive* bounds of the bucket array: entries
        // there must land in buckets (LIFO ties), not in the overflow
        // side list (lowest-id ties) — the two regimes order equal keys
        // differently, so a off-by-one here silently changes selection.
        let mut b = GainBuckets::new(6, 3);
        b.insert(0, 3, 2); // exactly +p_max
        b.insert(1, 3, 2);
        b.insert(2, -3, 1); // exactly -p_max
        b.insert(3, -3, 1);
        assert!(b.overflow.is_empty(), "boundary gains must not overflow");
        // LIFO within each boundary bucket proves bucket residency.
        assert_eq!(b.pop(), Some((1, 3, 2)));
        assert_eq!(b.pop(), Some((0, 3, 2)));
        assert_eq!(b.pop(), Some((3, -3, 1)));
        assert_eq!(b.pop(), Some((2, -3, 1)));
        // One past either bound overflows.
        b.insert(4, 4, 2);
        b.insert(5, -4, 2);
        assert_eq!(b.overflow.len(), 2);
    }

    #[test]
    fn overflow_side_list_stays_sorted_under_arbitrary_insertion_order() {
        // The side list is kept ascending by (gain, tie, !cell) so the
        // maximum is always `last()`. Insert in a deliberately adversarial
        // order and check the full invariant, then the pop order.
        let mut b = GainBuckets::new(8, 1);
        b.insert(5, 7, 1);
        b.insert(0, -9, 3);
        b.insert(3, 7, 1); // exact (gain, tie) duplicate, lower id
        b.insert(1, 7, 2);
        b.insert(4, -9, 3); // exact duplicate of cell 0's key, higher id
        b.insert(2, 12, 1);
        assert!(
            b.overflow
                .windows(2)
                .all(|w| GainBuckets::overflow_key(w[0]) < GainBuckets::overflow_key(w[1])),
            "overflow list out of order: {:?}",
            b.overflow
        );
        // Max gain first; exact (gain, tie) ties by lowest cell id.
        assert_eq!(b.pop(), Some((2, 12, 1)));
        assert_eq!(b.pop(), Some((1, 7, 2)));
        assert_eq!(b.pop(), Some((3, 7, 1)));
        assert_eq!(b.pop(), Some((5, 7, 1)));
        assert_eq!(b.pop(), Some((0, -9, 3)));
        assert_eq!(b.pop(), Some((4, -9, 3)));
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn max_slot_pointer_decays_after_last_cell_in_slot_unlinks() {
        let mut b = GainBuckets::new(6, 4);
        b.insert(0, 4, 3); // the top slot
        b.insert(1, 4, 3);
        b.insert(2, -1, 2);
        let top = b.max_slot;
        // Removing one of two cells keeps the slot non-empty: the pointer
        // must not move, and no scan happens on the next pop.
        assert!(b.remove(1));
        assert_eq!(b.max_slot, top);
        let scans0 = b.scans();
        assert_eq!(b.pop(), Some((0, 4, 3)));
        assert_eq!(b.scans(), scans0, "non-empty top slot must pop scan-free");
        // The top slot is now empty but the pointer is lazy: it still
        // points at `top` and only decays when the next pop walks down.
        assert_eq!(b.max_slot, top);
        assert_eq!(b.pop(), Some((2, -1, 2)));
        assert!(b.max_slot < top, "pointer must decay past the emptied slot");
        assert!(b.scans() > scans0, "the walk down must be counted");
        // A fresh insert above the decayed pointer raises it again.
        b.insert(3, 2, 1);
        assert_eq!(b.pop(), Some((3, 2, 1)));
    }

    #[test]
    fn reinsertion_after_pop_rebuilds_a_consistent_structure() {
        // Pop-then-update cycles are the pass loop's hot path; a stale
        // link after remove would corrupt the intrusive list.
        let mut b = GainBuckets::new(3, 2);
        for round in 0..3i64 {
            b.update(0, round - 1, 1);
            b.update(1, round - 1, 1);
            b.update(2, 2 - round, 2);
            let mut popped = Vec::new();
            while let Some((c, _, _)) = b.pop() {
                popped.push(c);
            }
            popped.sort_unstable();
            assert_eq!(popped, [0, 1, 2], "round {round} lost a cell");
            assert!(b.is_empty());
        }
    }

    #[test]
    fn zero_pmax_still_works_via_overflow() {
        let mut b = GainBuckets::new(3, 0);
        b.insert(0, 0, 2);
        b.insert(1, 3, 2);
        b.insert(2, -1, 2);
        assert_eq!(b.pop(), Some((1, 3, 2)));
        assert_eq!(b.pop(), Some((0, 0, 2)));
        assert_eq!(b.pop(), Some((2, -1, 2)));
    }
}
