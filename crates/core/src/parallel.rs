//! Deterministic intra-run parallel refinement over the CSR arenas.
//!
//! Portfolio parallelism (one thread per start) leaves a single run
//! serial. This module parallelizes *inside* one run, mt-KaHyPar
//! style, without giving up the `--jobs N ≡ --jobs 1` byte-identity
//! contract:
//!
//! 1. **Propose.** The cell range is split into a *fixed* number of
//!    disjoint contiguous regions — fixed regardless of the worker
//!    count. Workers evaluate regions against a frozen snapshot of the
//!    engine state (read-only shared borrow), collecting every
//!    positive-gain boundary flip in ascending cell order. A region's
//!    proposal list is a pure function of the snapshot and the region
//!    bounds, so *which* worker computes it cannot matter.
//! 2. **Commit.** A single thread replays the proposals in fixed order
//!    (region index ascending, then proposal order within the region),
//!    re-validating each flip's gain and the area window against the
//!    live state before applying it. Stale proposals (invalidated by an
//!    earlier commit this round) are dropped.
//! 3. Repeat until a round commits nothing or `max_rounds` is reached.
//!
//! Every committed flip strictly decreases the objective (cut plus
//! weighted pad cost), so the loop terminates, and the commit sequence
//! — hence the final state, trace events and certificates — is
//! byte-identical for any `jobs` value by construction
//! (`tests/par_refine.rs` pins this at the differential seed matrix).
//!
//! Replication-free by design: the refiner runs on plain side vectors,
//! as a post-pass polish of an already-balanced solution (the finest
//! V-cycle rung or a portfolio winner). It never replicates and never
//! moves a solution out of its area window.

use crate::config::BipartitionConfig;
use crate::csr::CsrGraph;
use crate::state::{CellState, EngineState};
use netpart_hypergraph::{CellId, Hypergraph};
use netpart_obs::{Event, Level, Recorder, Span};
use std::sync::Arc;

/// Fixed proposal-region count. Part of the determinism contract: the
/// region partition must not depend on the worker count, so any `jobs`
/// value sees identical proposal lists.
const REGIONS: usize = 64;

/// Telemetry of one [`par_refine_sides`] invocation. All fields are
/// `jobs`-invariant (they describe the deterministic proposal/commit
/// sequence, never the scheduling).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParRefineOutcome {
    /// Refinement rounds executed (including the final empty round).
    pub rounds: usize,
    /// Positive-gain proposals collected across all rounds.
    pub proposed: u64,
    /// Proposals that survived live re-validation and were applied.
    pub committed: u64,
    /// Cut size before refinement.
    pub cut_before: usize,
    /// Cut size after refinement (`<= cut_before`).
    pub cut_after: usize,
}

/// One region's proposals against a frozen snapshot: every
/// positive-gain boundary flip in `[lo, hi)`, ascending by cell id.
fn propose_region(
    engine: &EngineState<'_>,
    lo: usize,
    hi: usize,
) -> Vec<(u32, i64)> {
    let mut out = Vec::new();
    for i in lo..hi {
        let c = CellId(i as u32);
        let CellState::Single { side } = engine.cell_state(c) else {
            continue;
        };
        // Boundary filter: only cells with an incident net occupied on
        // the far side can gain from flipping.
        let far = 1 - side as usize;
        if !engine
            .incident_nets(c)
            .iter()
            .any(|&nt| engine.net_side_occupancy(nt)[far] > 0)
        {
            continue;
        }
        let flip = CellState::Single { side: 1 - side };
        let gain = engine.peek_gain(c, flip);
        if gain > 0 {
            out.push((c.0, gain));
        }
    }
    out
}

/// Whether flipping `c` keeps both sides inside the configured area
/// window (the refiner commits greedily, so balance must hold after
/// every single commit — stricter than the pass loop's rollback rule).
fn window_ok(engine: &EngineState<'_>, cfg: &BipartitionConfig, c: CellId, new: CellState) -> bool {
    let d = engine.area_delta(c, new);
    let a = engine.areas();
    (0..2).all(|s| {
        let v = a[s] as i64 + d[s];
        v >= 0 && (v as u64) >= cfg.min_area[s] && (v as u64) <= cfg.max_area[s]
    })
}

/// Refines a replication-free bipartition in place: `sides[i]` is cell
/// `i`'s side on entry and exit. Returns the deterministic outcome
/// telemetry; the refined `sides` (and everything derived from them) is
/// byte-identical for every `jobs >= 1`.
///
/// Emits one `fm.par_refine` debug event (deterministic fields only)
/// under a `fm`-scope span.
///
/// # Panics
///
/// Panics if `sides.len() != hg.n_cells()`, a side is not 0/1, or a
/// worker thread panics.
pub fn par_refine_sides(
    hg: &Hypergraph,
    cfg: &BipartitionConfig,
    sides: &mut [u8],
    jobs: usize,
    max_rounds: usize,
    recorder: &dyn Recorder,
) -> ParRefineOutcome {
    let span = Span::enter(recorder, "fm", "par_refine");
    let n = hg.n_cells();
    let jobs = jobs.max(1);
    let nregions = REGIONS.min(n.max(1));
    let bounds = move |r: usize| (r * n / nregions, (r + 1) * n / nregions);
    let mut engine = EngineState::new_weighted(hg, sides, cfg.terminal_weight);
    let cut_before = engine.cut();
    let mut rounds = 0usize;
    let mut proposed = 0u64;
    let mut committed = 0u64;
    while rounds < max_rounds {
        rounds += 1;
        // Propose against the frozen snapshot.
        let proposals: Vec<Vec<(u32, i64)>> = if jobs == 1 {
            (0..nregions)
                .map(|r| {
                    let (lo, hi) = bounds(r);
                    propose_region(&engine, lo, hi)
                })
                .collect()
        } else {
            let mut slots: Vec<Vec<(u32, i64)>> = vec![Vec::new(); nregions];
            let snapshot = &engine;
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..jobs)
                    .map(|k| {
                        s.spawn(move || {
                            let mut mine = Vec::new();
                            let mut r = k;
                            while r < nregions {
                                let (lo, hi) = bounds(r);
                                mine.push((r, propose_region(snapshot, lo, hi)));
                                r += jobs;
                            }
                            mine
                        })
                    })
                    .collect();
                for h in handles {
                    for (r, p) in h.join().expect("par-refine worker panicked") {
                        slots[r] = p;
                    }
                }
            });
            slots
        };
        // Commit in fixed order, re-validating against the live state.
        let mut committed_round = 0u64;
        for region in &proposals {
            proposed += region.len() as u64;
            for &(cell, _snapshot_gain) in region {
                let c = CellId(cell);
                let CellState::Single { side } = engine.cell_state(c) else {
                    continue;
                };
                let flip = CellState::Single { side: 1 - side };
                if engine.peek_gain(c, flip) <= 0 || !window_ok(&engine, cfg, c, flip) {
                    continue;
                }
                engine.set_state(c, flip);
                committed_round += 1;
            }
        }
        committed += committed_round;
        if committed_round == 0 {
            break;
        }
    }
    for c in hg.cell_ids() {
        let CellState::Single { side } = engine.cell_state(c) else {
            unreachable!("par refine only flips single cells");
        };
        sides[c.index()] = side;
    }
    let out = ParRefineOutcome {
        rounds,
        proposed,
        committed,
        cut_before,
        cut_after: engine.cut(),
    };
    drop(span);
    if recorder.enabled(Level::Debug) {
        recorder.record(
            &Event::new("fm", "par_refine", Level::Debug)
                .field("regions", nregions)
                .field("rounds", out.rounds)
                .field("proposed", out.proposed)
                .field("committed", out.committed)
                .field("cut_before", out.cut_before)
                .field("cut_after", out.cut_after),
        );
    }
    out
}

/// [`par_refine_sides`] exposed over a shared CSR handle so repeated
/// refinements on one hypergraph skip re-flattening. Currently the CSR
/// build is cheap enough that [`par_refine_sides`] simply rebuilds; this
/// seam exists for the multilevel rung integration.
#[allow(dead_code)]
pub(crate) fn par_refine_sides_with_csr(
    hg: &Hypergraph,
    _csr: Arc<CsrGraph>,
    cfg: &BipartitionConfig,
    sides: &mut [u8],
    jobs: usize,
    max_rounds: usize,
    recorder: &dyn Recorder,
) -> ParRefineOutcome {
    par_refine_sides(hg, cfg, sides, jobs, max_rounds, recorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_obs::NoopRecorder;

    fn mapped(gates: usize, seed: u64) -> Hypergraph {
        let nl = netpart_netlist::generate(
            &netpart_netlist::GeneratorConfig::new(gates)
                .with_dff(gates / 12)
                .with_seed(seed),
        );
        netpart_techmap::map(&nl, &netpart_techmap::MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl)
    }

    #[test]
    fn refines_without_leaving_the_window_and_is_jobs_invariant() {
        let hg = mapped(300, 5);
        let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(5);
        let base = crate::fm::bipartition(&hg, &cfg);
        assert!(base.balanced);
        let p = base.placement.as_ref().expect("no replication");
        let sides0: Vec<u8> = hg
            .cell_ids()
            .map(|c| p.part_of(c).expect("single copy").0 as u8)
            .collect();
        let mut outcomes = Vec::new();
        let mut refined = Vec::new();
        for jobs in [1usize, 2, 8] {
            let mut sides = sides0.clone();
            let out = par_refine_sides(&hg, &cfg, &mut sides, jobs, 16, &NoopRecorder);
            assert!(out.cut_after <= out.cut_before);
            assert!(cfg.balanced(EngineState::new(&hg, &sides).areas()));
            outcomes.push(out);
            refined.push(sides);
        }
        assert_eq!(outcomes[0], outcomes[1], "jobs 1 vs 2 diverged");
        assert_eq!(outcomes[0], outcomes[2], "jobs 1 vs 8 diverged");
        assert_eq!(refined[0], refined[1]);
        assert_eq!(refined[0], refined[2]);
    }

    #[test]
    fn converged_input_is_a_fixpoint() {
        // A second refinement of an already-refined solution commits
        // nothing and leaves the sides untouched.
        let hg = mapped(200, 9);
        let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(9);
        let base = crate::fm::bipartition(&hg, &cfg);
        let p = base.placement.as_ref().expect("no replication");
        let mut sides: Vec<u8> = hg
            .cell_ids()
            .map(|c| p.part_of(c).expect("single copy").0 as u8)
            .collect();
        par_refine_sides(&hg, &cfg, &mut sides, 4, 16, &NoopRecorder);
        let frozen = sides.clone();
        let out = par_refine_sides(&hg, &cfg, &mut sides, 4, 16, &NoopRecorder);
        assert_eq!(out.committed, 0);
        assert_eq!(out.rounds, 1);
        assert_eq!(sides, frozen);
    }
}
