//! The pointer-chasing reference implementation of the engine state —
//! retained for **one PR** as the differential baseline of the CSR
//! hot-path port (`tests/csr_differential.rs`), exactly as the
//! selection-strategy rewrite kept the lazy heap around.
//!
//! [`RefEngineState`] is the pre-CSR [`EngineState`]
//! verbatim: per-call `incident_nets` sort+dedup, per-net rescans of the
//! whole cell's pin list, separate sink/driver/occupancy count vectors.
//! It shares no traversal code with the CSR arenas, so any ordering or
//! accounting drift in the flat layout surfaces as a gain/cut/occupancy
//! divergence under the differential move sequences. Scheduled for
//! removal once the CSR port has soaked.

use crate::state::{full_mask, CellState, EngineState};
use netpart_hypergraph::{CellId, Hypergraph, NetId, Pin};

/// Connection flags of one pin: `conn[s]` = connected on side `s`.
type Conn = [bool; 2];

/// The pre-CSR engine state: identical semantics to
/// [`EngineState`], pointer-y data layout.
#[derive(Clone, Debug)]
pub struct RefEngineState<'a> {
    hg: &'a Hypergraph,
    state: Vec<CellState>,
    sink_cnt: Vec<[u32; 2]>,
    drv_cnt: Vec<[u32; 2]>,
    occ_cnt: Vec<[u32; 2]>,
    spanning: usize,
    areas: [u64; 2],
    cut: usize,
    terminal_weight: [i64; 2],
    pad_cost: i64,
}

impl<'a> RefEngineState<'a> {
    /// Builds the state from an initial side per cell.
    ///
    /// # Panics
    ///
    /// Panics if `sides.len() != hg.n_cells()` or a side is not 0/1.
    pub fn new(hg: &'a Hypergraph, sides: &[u8]) -> Self {
        Self::new_weighted(hg, sides, [0, 0])
    }

    /// Builds the state with a per-side terminal weight.
    ///
    /// # Panics
    ///
    /// Panics if `sides.len() != hg.n_cells()` or a side is not 0/1.
    pub fn new_weighted(hg: &'a Hypergraph, sides: &[u8], terminal_weight: [i64; 2]) -> Self {
        assert_eq!(sides.len(), hg.n_cells(), "one side per cell");
        assert!(sides.iter().all(|&s| s < 2), "sides are 0 or 1");
        let mut st = RefEngineState {
            hg,
            state: sides
                .iter()
                .map(|&s| CellState::Single { side: s })
                .collect(),
            sink_cnt: vec![[0; 2]; hg.n_nets()],
            drv_cnt: vec![[0; 2]; hg.n_nets()],
            occ_cnt: vec![[0; 2]; hg.n_nets()],
            spanning: 0,
            areas: [0; 2],
            cut: 0,
            terminal_weight,
            pad_cost: 0,
        };
        for c in hg.cell_ids() {
            let s = sides[c.index()] as usize;
            st.areas[s] += u64::from(hg.cell(c).area());
            if hg.cell(c).is_terminal() {
                st.pad_cost += terminal_weight[s];
            }
            let cs = st.state[c.index()];
            for (net, pin) in Self::cell_pins(hg, c) {
                let conn = Self::pin_conn(hg, c, cs, pin);
                for (side, &connected) in conn.iter().enumerate() {
                    if connected {
                        match pin {
                            Pin::Output(_) => st.drv_cnt[net.index()][side] += 1,
                            Pin::Input(_) => st.sink_cnt[net.index()][side] += 1,
                        }
                        st.occ_cnt[net.index()][side] += 1;
                    }
                }
            }
        }
        st.cut = hg.net_ids().filter(|&n| st.is_cut(n)).count();
        st.spanning = st.occ_cnt.iter().filter(|o| o[0] > 0 && o[1] > 0).count();
        st
    }

    /// Current state of a cell.
    pub fn cell_state(&self, c: CellId) -> CellState {
        self.state[c.index()]
    }

    /// The current cut size.
    pub fn cut(&self) -> usize {
        self.cut
    }

    /// Current per-side areas (replicas counted on both sides).
    pub fn areas(&self) -> [u64; 2] {
        self.areas
    }

    /// Number of replicated cells.
    pub fn replicated_cells(&self) -> usize {
        self.state.iter().filter(|s| s.is_replicated()).count()
    }

    /// Returns `true` if the net is currently cut.
    pub fn is_cut(&self, net: NetId) -> bool {
        Self::cut_from(self.sink_cnt[net.index()], self.drv_cnt[net.index()])
    }

    fn cut_from(sc: [u32; 2], dc: [u32; 2]) -> bool {
        (0..2).any(|s| sc[s] > 0 && dc[s] == 0 && dc[1 - s] > 0)
    }

    /// Connected endpoints (sinks plus drivers) of a net per side.
    pub fn net_side_occupancy(&self, net: NetId) -> [u32; 2] {
        self.occ_cnt[net.index()]
    }

    /// Number of nets with connected endpoints on both sides.
    pub fn spanning_nets(&self) -> usize {
        self.spanning
    }

    /// `(net, pin)` pairs of a cell, one per pin.
    fn cell_pins(hg: &Hypergraph, c: CellId) -> impl Iterator<Item = (NetId, Pin)> + '_ {
        let cell = hg.cell(c);
        cell.input_nets()
            .iter()
            .enumerate()
            .map(|(j, &n)| (n, Pin::Input(j as u16)))
            .chain(
                cell.output_nets()
                    .iter()
                    .enumerate()
                    .map(|(o, &n)| (n, Pin::Output(o as u16))),
            )
    }

    /// Connection flags of a pin under a hypothetical state.
    fn pin_conn(hg: &Hypergraph, c: CellId, state: CellState, pin: Pin) -> Conn {
        let cell = hg.cell(c);
        match state {
            CellState::Single { side } => {
                let mut conn = [false; 2];
                conn[side as usize] = true;
                conn
            }
            CellState::Traditional { .. } => [true, true],
            CellState::Functional {
                orig_side,
                replica_mask,
            } => {
                let s = orig_side as usize;
                let full = full_mask(cell.m_outputs());
                let orig_mask = full & !replica_mask;
                let mut conn = [false; 2];
                match pin {
                    Pin::Output(o) => {
                        conn[s] = orig_mask & (1 << o) != 0;
                        conn[1 - s] = replica_mask & (1 << o) != 0;
                    }
                    Pin::Input(j) => {
                        let adj = cell.adjacency();
                        let j = j as usize;
                        if adj.is_global_input(j) {
                            return [true, true];
                        }
                        conn[s] = adj.support_of_mask(orig_mask).get(j);
                        conn[1 - s] = adj.support_of_mask(replica_mask).get(j);
                    }
                }
                conn
            }
        }
    }

    /// The distinct nets incident to a cell (per-call sort+dedup — the
    /// allocation the CSR arenas exist to eliminate).
    fn incident_nets(hg: &Hypergraph, c: CellId) -> Vec<NetId> {
        let mut nets: Vec<NetId> = hg.cell(c).incident_nets().collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }

    fn pad_cost_gain(&self, c: CellId, old: CellState, new: CellState) -> i64 {
        if !self.hg.cell(c).is_terminal() {
            return 0;
        }
        let side_of = |st: CellState| match st {
            CellState::Single { side } => side as usize,
            CellState::Functional { orig_side, .. } | CellState::Traditional { orig_side } => {
                orig_side as usize
            }
        };
        self.terminal_weight[side_of(old)] - self.terminal_weight[side_of(new)]
    }

    fn net_contribution(
        hg: &Hypergraph,
        c: CellId,
        old: CellState,
        new: CellState,
        net: NetId,
        counts: ([u32; 2], [u32; 2]),
    ) -> i64 {
        let (mut sc, mut dc) = counts;
        let before = Self::cut_from(sc, dc);
        for (n2, pin) in Self::cell_pins(hg, c) {
            if n2 != net {
                continue;
            }
            let oc = Self::pin_conn(hg, c, old, pin);
            let nc = Self::pin_conn(hg, c, new, pin);
            for side in 0..2 {
                let delta = i64::from(nc[side]) - i64::from(oc[side]);
                let slot = match pin {
                    Pin::Output(_) => &mut dc[side],
                    Pin::Input(_) => &mut sc[side],
                };
                *slot = (*slot as i64 + delta) as u32;
            }
        }
        i64::from(before) - i64::from(Self::cut_from(sc, dc))
    }

    /// The gain of changing `c` to `new`, without mutating the state.
    pub fn peek_gain(&self, c: CellId, new: CellState) -> i64 {
        let old = self.state[c.index()];
        let mut gain = self.pad_cost_gain(c, old, new);
        for net in Self::incident_nets(self.hg, c) {
            let counts = (self.sink_cnt[net.index()], self.drv_cnt[net.index()]);
            gain += Self::net_contribution(self.hg, c, old, new, net, counts);
        }
        gain
    }

    /// Per-side area change of moving `c` to `new`.
    pub fn area_delta(&self, c: CellId, new: CellState) -> [i64; 2] {
        let a = i64::from(self.hg.cell(c).area());
        let occ = |st: CellState| -> [i64; 2] {
            match st {
                CellState::Single { side } => {
                    let mut v = [0; 2];
                    v[side as usize] = a;
                    v
                }
                _ => [a, a],
            }
        };
        let old = occ(self.state[c.index()]);
        let newv = occ(new);
        [newv[0] - old[0], newv[1] - old[1]]
    }

    /// Applies a state change, updating counts, areas and the cut size.
    /// Returns the realised gain (cut decrease).
    pub fn set_state(&mut self, c: CellId, new: CellState) -> i64 {
        let old = self.state[c.index()];
        if old == new {
            return 0;
        }
        let mut gain = self.pad_cost_gain(c, old, new);
        self.pad_cost -= self.pad_cost_gain(c, old, new);
        for net in Self::incident_nets(self.hg, c) {
            let before = self.is_cut(net);
            let occ = self.occ_cnt[net.index()];
            let spanned = occ[0] > 0 && occ[1] > 0;
            for (n2, pin) in Self::cell_pins(self.hg, c) {
                if n2 != net {
                    continue;
                }
                let oc = Self::pin_conn(self.hg, c, old, pin);
                let nc = Self::pin_conn(self.hg, c, new, pin);
                for side in 0..2 {
                    let delta = i64::from(nc[side]) - i64::from(oc[side]);
                    let slot = match pin {
                        Pin::Output(_) => &mut self.drv_cnt[net.index()][side],
                        Pin::Input(_) => &mut self.sink_cnt[net.index()][side],
                    };
                    *slot = (*slot as i64 + delta) as u32;
                    let occ_slot = &mut self.occ_cnt[net.index()][side];
                    *occ_slot = (*occ_slot as i64 + delta) as u32;
                }
            }
            let occ = self.occ_cnt[net.index()];
            let spans = occ[0] > 0 && occ[1] > 0;
            self.spanning = (self.spanning as i64 + i64::from(spans) - i64::from(spanned)) as usize;
            let after = self.is_cut(net);
            gain += i64::from(before) - i64::from(after);
            self.cut = (self.cut as i64 + i64::from(after) - i64::from(before)) as usize;
        }
        let ad = self.area_delta(c, new);
        self.areas[0] = (self.areas[0] as i64 + ad[0]) as u64;
        self.areas[1] = (self.areas[1] as i64 + ad[1]) as u64;
        self.state[c.index()] = new;
        gain
    }
}

/// Mirror of [`EngineState`]'s differential surface on the reference
/// implementation, so the test suite can drive both uniformly.
impl RefEngineState<'_> {
    /// Clones the live [`EngineState`]'s cell states into a fresh
    /// reference state over the same hypergraph (counts rebuilt from
    /// scratch) — the differential suite's synchronization primitive.
    pub fn mirror_of<'b>(engine: &'b EngineState<'b>) -> RefEngineState<'b> {
        let hg = engine.hypergraph();
        let sides: Vec<u8> = hg
            .cell_ids()
            .map(|c| match engine.cell_state(c) {
                CellState::Single { side } => side,
                CellState::Functional { orig_side, .. }
                | CellState::Traditional { orig_side } => orig_side,
            })
            .collect();
        let mut st = RefEngineState::new(hg, &sides);
        for c in hg.cell_ids() {
            st.set_state(c, engine.cell_state(c));
        }
        st
    }
}
