//! The bipartitioner's mutable state: cell placement/replication states,
//! per-net connected-endpoint counts and incremental cut maintenance.
//!
//! Cut semantics (uniform across plain moves, functional and traditional
//! replication): a net is **cut** iff some side holds a connected *sink*
//! of the net but no connected *driver*. With single-driver nets this is
//! the ordinary "spans both sides" rule; with traditional replication
//! (drivers on both sides) output nets drop out of the cut, exactly as
//! the paper's gain eq. 8 accounts.
//!
//! The hot path runs on the flat [`CsrGraph`] arenas (built once per
//! state, shared via `Arc`): per-net endpoint counts live in one
//! cache-dense array of packed [`NetCounts`] records, and every
//! per-move traversal walks contiguous index ranges instead of chasing
//! the hypergraph's per-cell vectors.

use crate::csr::{decode_pin, CsrGraph};
use netpart_hypergraph::{CellCopy, CellId, Hypergraph, NetId, PartId, Pin, Placement};
use std::sync::Arc;

/// Placement/replication state of one cell in a bipartition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellState {
    /// One copy on `side`.
    Single {
        /// The side holding the only copy.
        side: u8,
    },
    /// Functionally replicated: the original on `orig_side` keeps the
    /// outputs *not* in `replica_mask`; the replica on the other side
    /// keeps `replica_mask` and only the inputs those outputs read.
    Functional {
        /// Side of the original copy.
        orig_side: u8,
        /// Outputs kept by the replica (non-empty proper subset).
        replica_mask: u32,
    },
    /// Traditionally replicated: the replica connects every pin of the
    /// original (both copies drive all output nets).
    Traditional {
        /// Side of the original copy.
        orig_side: u8,
    },
}

impl CellState {
    /// Returns `true` if the cell has two copies.
    pub fn is_replicated(self) -> bool {
        !matches!(self, CellState::Single { .. })
    }
}

/// Mask with the low `m` bits set.
pub(crate) fn full_mask(m: usize) -> u32 {
    debug_assert!(m <= 32);
    if m == 32 {
        u32::MAX
    } else {
        (1u32 << m) - 1
    }
}

/// Connection flags of one pin: `conn[s]` = connected on side `s`.
type Conn = [bool; 2];

/// Per-net connected-endpoint counters, packed so one record (16 bytes,
/// four per cache line) carries everything a cut/occupancy query needs.
/// Occupancy is derived (`sink + drv`) rather than stored.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct NetCounts {
    /// Connected sink endpoints per side.
    sink: [u32; 2],
    /// Connected driver endpoints per side (0..=2).
    drv: [u32; 2],
}

impl NetCounts {
    fn occ(self) -> [u32; 2] {
        [self.sink[0] + self.drv[0], self.sink[1] + self.drv[1]]
    }

    fn spans(self) -> bool {
        let o = self.occ();
        o[0] > 0 && o[1] > 0
    }
}

/// The mutable engine state for one bipartition.
#[derive(Clone, Debug)]
pub struct EngineState<'a> {
    hg: &'a Hypergraph,
    /// The flat connectivity arenas the hot path traverses.
    csr: Arc<CsrGraph>,
    state: Vec<CellState>,
    /// Packed per-net endpoint counts (sinks and drivers per side).
    counts: Vec<NetCounts>,
    /// Number of nets currently occupied on both sides.
    spanning: usize,
    areas: [u64; 2],
    cut: usize,
    /// Extra objective cost per terminal cell residing on each side
    /// (models the IOB a pad consumes wherever it lives; the k-way
    /// carver weights the chunk side to relieve its terminal budget).
    terminal_weight: [i64; 2],
    /// Current Σ terminal-weight over pad cells.
    pad_cost: i64,
}

impl<'a> EngineState<'a> {
    /// Builds the state from an initial side per cell.
    ///
    /// # Panics
    ///
    /// Panics if `sides.len() != hg.n_cells()` or a side is not 0/1.
    pub fn new(hg: &'a Hypergraph, sides: &[u8]) -> Self {
        Self::new_weighted(hg, sides, [0, 0])
    }

    /// Builds the state with a per-side terminal weight: each pad cell on
    /// side `s` adds `terminal_weight[s]` to the objective the gains
    /// optimize (the cut itself always counts 1 per net).
    ///
    /// # Panics
    ///
    /// Panics if `sides.len() != hg.n_cells()` or a side is not 0/1.
    pub fn new_weighted(hg: &'a Hypergraph, sides: &[u8], terminal_weight: [i64; 2]) -> Self {
        Self::with_csr(hg, Arc::new(CsrGraph::build(hg)), sides, terminal_weight)
    }

    /// [`EngineState::new_weighted`] over pre-built CSR arenas, so
    /// repeated states on one hypergraph (validation rebuilds, parallel
    /// refinement snapshots) share the flattening work.
    pub(crate) fn with_csr(
        hg: &'a Hypergraph,
        csr: Arc<CsrGraph>,
        sides: &[u8],
        terminal_weight: [i64; 2],
    ) -> Self {
        assert_eq!(sides.len(), hg.n_cells(), "one side per cell");
        assert!(sides.iter().all(|&s| s < 2), "sides are 0 or 1");
        let mut st = EngineState {
            hg,
            csr,
            state: sides
                .iter()
                .map(|&s| CellState::Single { side: s })
                .collect(),
            counts: vec![NetCounts::default(); hg.n_nets()],
            spanning: 0,
            areas: [0; 2],
            cut: 0,
            terminal_weight,
            pad_cost: 0,
        };
        for c in hg.cell_ids() {
            let s = sides[c.index()] as usize;
            st.areas[s] += u64::from(hg.cell(c).area());
            if hg.cell(c).is_terminal() {
                st.pad_cost += terminal_weight[s];
            }
            let cs = st.state[c.index()];
            for (net, pins) in st.csr.groups(c) {
                let nc = &mut st.counts[net.index()];
                for &code in pins {
                    let pin = decode_pin(code);
                    let conn = Self::pin_conn(hg, c, cs, pin);
                    for (side, &connected) in conn.iter().enumerate() {
                        if connected {
                            match pin {
                                Pin::Output(_) => nc.drv[side] += 1,
                                Pin::Input(_) => nc.sink[side] += 1,
                            }
                        }
                    }
                }
            }
        }
        st.cut = st.counts.iter().filter(|c| c.is_cut()).count();
        st.spanning = st.counts.iter().filter(|c| c.spans()).count();
        st
    }

    /// The underlying hypergraph.
    pub fn hypergraph(&self) -> &'a Hypergraph {
        self.hg
    }

    /// The shared CSR arenas (cheap to clone; the pass loops hold their
    /// own handle so slices stay borrowable across state mutations).
    pub(crate) fn csr(&self) -> &Arc<CsrGraph> {
        &self.csr
    }

    /// Current state of a cell.
    pub fn cell_state(&self, c: CellId) -> CellState {
        self.state[c.index()]
    }

    /// The current cut size.
    pub fn cut(&self) -> usize {
        self.cut
    }

    /// Current per-side areas (replicas counted on both sides).
    pub fn areas(&self) -> [u64; 2] {
        self.areas
    }

    /// Number of replicated cells.
    pub fn replicated_cells(&self) -> usize {
        self.state.iter().filter(|s| s.is_replicated()).count()
    }

    /// Returns `true` if the net is currently cut.
    pub fn is_cut(&self, net: NetId) -> bool {
        self.counts[net.index()].is_cut()
    }

    /// Connected `(sink, driver)` endpoint counts of a net per side —
    /// the snapshot the incremental bucket pass diffs around a move.
    pub(crate) fn net_counts(&self, net: NetId) -> ([u32; 2], [u32; 2]) {
        let nc = self.counts[net.index()];
        (nc.sink, nc.drv)
    }

    /// Connected endpoints (sinks plus drivers) of a net per side.
    pub fn net_side_occupancy(&self, net: NetId) -> [u32; 2] {
        self.counts[net.index()].occ()
    }

    /// Number of nets with connected endpoints on both sides. A
    /// superset of the cut (a traditionally replicated driver occupies
    /// both sides without cutting its output nets); reported as the
    /// `spanning` field of `fm.pass` trace events.
    pub fn spanning_nets(&self) -> usize {
        self.spanning
    }

    /// The distinct nets incident to a cell, ascending (a contiguous
    /// CSR slice — no allocation).
    pub(crate) fn incident_nets(&self, c: CellId) -> &[NetId] {
        self.csr.nets_of(c)
    }

    /// Connection flags of a pin under a hypothetical state.
    pub(crate) fn pin_conn(hg: &Hypergraph, c: CellId, state: CellState, pin: Pin) -> Conn {
        let cell = hg.cell(c);
        match state {
            CellState::Single { side } => {
                let mut conn = [false; 2];
                conn[side as usize] = true;
                conn
            }
            CellState::Traditional { .. } => [true, true],
            CellState::Functional {
                orig_side,
                replica_mask,
            } => {
                let s = orig_side as usize;
                let full = full_mask(cell.m_outputs());
                let orig_mask = full & !replica_mask;
                let mut conn = [false; 2];
                match pin {
                    Pin::Output(o) => {
                        conn[s] = orig_mask & (1 << o) != 0;
                        conn[1 - s] = replica_mask & (1 << o) != 0;
                    }
                    Pin::Input(j) => {
                        let adj = cell.adjacency();
                        let j = j as usize;
                        if adj.is_global_input(j) {
                            return [true, true];
                        }
                        conn[s] = adj.support_of_mask(orig_mask).get(j);
                        conn[1 - s] = adj.support_of_mask(replica_mask).get(j);
                    }
                }
                conn
            }
        }
    }

    /// The paper's *criticality* of the net on pin `pin` of an
    /// unreplicated cell `c`: whether moving that single pin to the other
    /// side would change the net's cut state (used to build the `Q^I`,
    /// `Q^O` vectors of §III).
    ///
    /// Returns `false` for replicated cells (the vectors are defined on
    /// unreplicated cells).
    pub fn pin_critical(&self, c: CellId, pin: Pin) -> bool {
        let CellState::Single { side } = self.state[c.index()] else {
            return false;
        };
        let s = side as usize;
        let cell = self.hg.cell(c);
        let net = match pin {
            Pin::Input(j) => cell.input_net(j as usize),
            Pin::Output(o) => cell.output_net(o as usize),
        };
        let nc = self.counts[net.index()];
        let (mut sc, mut dc) = (nc.sink, nc.drv);
        let before = cut_from(sc, dc);
        match pin {
            Pin::Input(_) => {
                sc[s] -= 1;
                sc[1 - s] += 1;
            }
            Pin::Output(_) => {
                dc[s] -= 1;
                dc[1 - s] += 1;
            }
        }
        cut_from(sc, dc) != before
    }

    /// The objective decrease of moving a terminal cell between sides
    /// under the configured weights (0 for logic cells).
    fn pad_cost_gain(&self, c: CellId, old: CellState, new: CellState) -> i64 {
        if !self.hg.cell(c).is_terminal() {
            return 0;
        }
        let side_of = |st: CellState| match st {
            CellState::Single { side } => side as usize,
            CellState::Functional { orig_side, .. } | CellState::Traditional { orig_side } => {
                orig_side as usize
            }
        };
        self.terminal_weight[side_of(old)] - self.terminal_weight[side_of(new)]
    }

    /// Contribution of one net to the gain of changing `c` from `old`
    /// to `new`, evaluated against explicit endpoint `counts`: the
    /// net's cut state before minus after applying the pin deltas of
    /// `c` on `net` (looked up as a CSR pin group — only that net's
    /// pins are touched, never the whole cell).
    ///
    /// [`EngineState::peek_gain`] sums this over a cell's incident nets
    /// against the live counts, and the incremental bucket pass
    /// re-evaluates it against before/after count snapshots of the nets
    /// a move touched — so delta-updated candidate gains agree with the
    /// from-scratch gains by construction.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn net_contribution(
        &self,
        c: CellId,
        old: CellState,
        new: CellState,
        net: NetId,
        counts: ([u32; 2], [u32; 2]),
    ) -> i64 {
        pins_contribution(self.hg, c, old, new, self.csr.pins_on(c, net), counts)
    }

    /// The gain (objective decrease: cut plus weighted pad cost) of
    /// changing `c` to `new`, without mutating the state.
    pub fn peek_gain(&self, c: CellId, new: CellState) -> i64 {
        let old = self.state[c.index()];
        let mut gain = self.pad_cost_gain(c, old, new);
        for (net, pins) in self.csr.groups(c) {
            let nc = self.counts[net.index()];
            gain += pins_contribution(self.hg, c, old, new, pins, (nc.sink, nc.drv));
        }
        gain
    }

    /// Per-side area change of moving `c` to `new`.
    pub fn area_delta(&self, c: CellId, new: CellState) -> [i64; 2] {
        let a = i64::from(self.hg.cell(c).area());
        let occ = |st: CellState| -> [i64; 2] {
            match st {
                CellState::Single { side } => {
                    let mut v = [0; 2];
                    v[side as usize] = a;
                    v
                }
                _ => [a, a],
            }
        };
        let old = occ(self.state[c.index()]);
        let newv = occ(new);
        [newv[0] - old[0], newv[1] - old[1]]
    }

    /// Applies a state change, updating counts, areas and the cut size.
    /// Returns the realised gain (cut decrease).
    pub fn set_state(&mut self, c: CellId, new: CellState) -> i64 {
        let old = self.state[c.index()];
        if old == new {
            return 0;
        }
        let pad_gain = self.pad_cost_gain(c, old, new);
        self.pad_cost -= pad_gain;
        let ad = self.area_delta(c, new);
        let mut gain = pad_gain;
        let hg = self.hg;
        {
            // Split borrows: walk the shared CSR groups while mutating
            // the packed counters in one flat pass per incident net.
            let Self {
                ref csr,
                ref mut counts,
                ref mut spanning,
                ref mut cut,
                ..
            } = *self;
            for (net, pins) in csr.groups(c) {
                let nc = &mut counts[net.index()];
                let before = nc.is_cut();
                let spanned = nc.spans();
                for &code in pins {
                    let pin = decode_pin(code);
                    let oc = Self::pin_conn(hg, c, old, pin);
                    let npc = Self::pin_conn(hg, c, new, pin);
                    for side in 0..2 {
                        let delta = i64::from(npc[side]) - i64::from(oc[side]);
                        let slot = match pin {
                            Pin::Output(_) => &mut nc.drv[side],
                            Pin::Input(_) => &mut nc.sink[side],
                        };
                        *slot = (*slot as i64 + delta) as u32;
                    }
                }
                let after = nc.is_cut();
                *spanning =
                    (*spanning as i64 + i64::from(nc.spans()) - i64::from(spanned)) as usize;
                gain += i64::from(before) - i64::from(after);
                *cut = (*cut as i64 + i64::from(after) - i64::from(before)) as usize;
            }
        }
        self.areas[0] = (self.areas[0] as i64 + ad[0]) as u64;
        self.areas[1] = (self.areas[1] as i64 + ad[1]) as u64;
        self.state[c.index()] = new;
        gain
    }

    /// Exports the state as a 2-part [`Placement`].
    ///
    /// Traditionally replicated cells have no placement representation
    /// (their copies share output nets); collapse them first or avoid
    /// [`CellState::Traditional`] when a placement is needed.
    ///
    /// # Panics
    ///
    /// Panics if any cell is in [`CellState::Traditional`].
    pub fn to_placement(&self) -> Placement {
        let mut p = Placement::new_uniform(self.hg, 2, PartId(0));
        for c in self.hg.cell_ids() {
            match self.state[c.index()] {
                CellState::Single { side } => p.place(c, PartId(u16::from(side))),
                CellState::Functional {
                    orig_side,
                    replica_mask,
                } => {
                    let full = full_mask(self.hg.cell(c).m_outputs());
                    p.set_copies(
                        c,
                        vec![
                            CellCopy {
                                part: PartId(u16::from(orig_side)),
                                outputs: full & !replica_mask,
                            },
                            CellCopy {
                                part: PartId(u16::from(1 - orig_side)),
                                outputs: replica_mask,
                            },
                        ],
                    );
                }
                CellState::Traditional { .. } => {
                    panic!("traditional replication has no Placement representation")
                }
            }
        }
        p
    }

    /// Recomputes every derived quantity from scratch and compares with
    /// the incrementally maintained values. Test/debug aid.
    pub fn validate(&self) -> bool {
        let fresh = {
            let sides: Vec<u8> = self
                .state
                .iter()
                .map(|s| match s {
                    CellState::Single { side } => *side,
                    CellState::Functional { orig_side, .. }
                    | CellState::Traditional { orig_side } => *orig_side,
                })
                .collect();
            let mut f =
                EngineState::with_csr(self.hg, self.csr.clone(), &sides, self.terminal_weight);
            for c in self.hg.cell_ids() {
                f.set_state(c, self.state[c.index()]);
            }
            f
        };
        fresh.counts == self.counts
            && fresh.spanning == self.spanning
            && fresh.cut == self.cut
            && fresh.areas == self.areas
            && fresh.pad_cost == self.pad_cost
    }
}

impl NetCounts {
    fn is_cut(self) -> bool {
        cut_from(self.sink, self.drv)
    }
}

/// The uniform cut rule: some side holds a connected sink but no
/// connected driver while the other side has one.
fn cut_from(sc: [u32; 2], dc: [u32; 2]) -> bool {
    (0..2).any(|s| sc[s] > 0 && dc[s] == 0 && dc[1 - s] > 0)
}

/// Cut-state contribution of one net's pin group to a state change of
/// `c`: before minus after, applying only the deltas of `pins` (packed
/// codes of `c`'s pins on that net) to the explicit `counts`.
pub(crate) fn pins_contribution(
    hg: &Hypergraph,
    c: CellId,
    old: CellState,
    new: CellState,
    pins: &[u32],
    counts: ([u32; 2], [u32; 2]),
) -> i64 {
    let (mut sc, mut dc) = counts;
    let before = cut_from(sc, dc);
    for &code in pins {
        let pin = decode_pin(code);
        let oc = EngineState::pin_conn(hg, c, old, pin);
        let nc = EngineState::pin_conn(hg, c, new, pin);
        for side in 0..2 {
            let delta = i64::from(nc[side]) - i64::from(oc[side]);
            let slot = match pin {
                Pin::Output(_) => &mut dc[side],
                Pin::Input(_) => &mut sc[side],
            };
            *slot = (*slot as i64 + delta) as u32;
        }
    }
    i64::from(before) - i64::from(cut_from(sc, dc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_hypergraph::{AdjacencyMatrix, CellKind, HypergraphBuilder};

    /// The Fig. 1 fixture: cell M (in {a,b,c}, out {X,Y}; X←{a,b},
    /// Y←{b,c}), pads around it.
    fn fig1() -> (Hypergraph, CellId, [NetId; 5]) {
        let mut b = HypergraphBuilder::new();
        let pads: Vec<_> = ["a", "b", "c"]
            .iter()
            .map(|n| b.add_cell(*n, CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad()))
            .collect();
        let m = b.add_cell(
            "M",
            CellKind::logic(1),
            3,
            2,
            AdjacencyMatrix::from_rows(3, &[&[0, 1], &[1, 2]]),
        );
        let px = b.add_cell("X", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        let py = b.add_cell("Y", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        let nets: Vec<NetId> = ["na", "nb", "nc", "nx", "ny"]
            .iter()
            .map(|n| b.add_net(*n))
            .collect();
        for i in 0..3 {
            b.connect_output(nets[i], pads[i], 0).unwrap();
            b.connect_input(nets[i], m, i).unwrap();
        }
        b.connect_output(nets[3], m, 0).unwrap();
        b.connect_input(nets[3], px, 0).unwrap();
        b.connect_output(nets[4], m, 1).unwrap();
        b.connect_input(nets[4], py, 0).unwrap();
        (
            b.finish().unwrap(),
            m,
            [nets[0], nets[1], nets[2], nets[3], nets[4]],
        )
    }

    #[test]
    fn initial_counts_and_cut() {
        let (hg, m, _) = fig1();
        // Pads a,b on side 0; pad c, X, Y on side 1; M on side 0.
        let sides = vec![0, 0, 1, 0, 1, 1];
        let st = EngineState::new(&hg, &sides);
        // nc: driver (pad c) on 1, sink (M input) on 0 → cut.
        // nx: driver (M) on 0, sink (pad X) on 1 → cut.
        // ny: driver on 0, sink on 1 → cut.
        assert_eq!(st.cut(), 3);
        assert_eq!(st.areas(), [1, 0]);
        assert!(st.validate());
        let _ = m;
    }

    #[test]
    fn move_gain_matches_apply() {
        let (hg, m, _) = fig1();
        let sides = vec![0, 0, 1, 0, 1, 1];
        let mut st = EngineState::new(&hg, &sides);
        let g = st.peek_gain(m, CellState::Single { side: 1 });
        // Moving M to side 1: na, nb become cut (+2), nc, nx, ny uncut (−3)
        // → net gain +1.
        assert_eq!(g, 1);
        let realized = st.set_state(m, CellState::Single { side: 1 });
        assert_eq!(realized, 1);
        assert_eq!(st.cut(), 2);
        assert!(st.validate());
    }

    #[test]
    fn functional_replication_gain() {
        let (hg, m, _) = fig1();
        // Everything on side 0 except pads c and Y on side 1.
        let sides = vec![0, 0, 1, 0, 0, 1];
        let mut st = EngineState::new(&hg, &sides);
        // cut: nc (c pad on 1 feeds M on 0), ny (M on 0 feeds Y pad on 1).
        assert_eq!(st.cut(), 2);
        // Replicate M with the replica keeping output Y (bit 1) on side 1:
        // replica connects b,c and drives ny locally; original keeps X with
        // a,b. nc now sinks only on side 1 (replica) → uncut. ny driver
        // moves to side 1 → uncut. nb gains a sink on side 1 → cut.
        let new = CellState::Functional {
            orig_side: 0,
            replica_mask: 0b10,
        };
        assert_eq!(st.peek_gain(m, new), 1);
        st.set_state(m, new);
        assert_eq!(st.cut(), 1);
        assert_eq!(st.areas(), [1, 1]);
        assert_eq!(st.replicated_cells(), 1);
        assert!(st.validate());
        // Unreplicate back to side 0 restores the original cut.
        st.set_state(m, CellState::Single { side: 0 });
        assert_eq!(st.cut(), 2);
        assert_eq!(st.areas(), [1, 0]);
        assert!(st.validate());
    }

    #[test]
    fn traditional_replication_covers_output_nets() {
        let (hg, m, _) = fig1();
        // Pads a,b,c on side 0, M on side 0, X and Y pads on side 1.
        let sides = vec![0, 0, 0, 0, 1, 1];
        let mut st = EngineState::new(&hg, &sides);
        assert_eq!(st.cut(), 2); // nx, ny exported
                                 // Traditional replication: copies on both sides drive nx and ny,
                                 // so both leave the cut; inputs a,b,c all become cut.
        let new = CellState::Traditional { orig_side: 0 };
        assert_eq!(st.peek_gain(m, new), 2 - 3);
        st.set_state(m, new);
        assert_eq!(st.cut(), 3);
        assert!(st.validate());
    }

    #[test]
    fn occupancy_and_spanning_track_moves() {
        let (hg, m, nets) = fig1();
        let sides = vec![0, 0, 1, 0, 1, 1];
        let mut st = EngineState::new(&hg, &sides);
        // nc, nx, ny have endpoints on both sides; na, nb are local.
        assert_eq!(st.spanning_nets(), 3);
        assert_eq!(st.net_side_occupancy(nets[0]), [2, 0]);
        assert_eq!(st.net_side_occupancy(nets[2]), [1, 1]);
        st.set_state(m, CellState::Single { side: 1 });
        // M on side 1: na, nb now span; nc, nx, ny collapse to side 1.
        assert_eq!(st.spanning_nets(), 2);
        assert_eq!(st.net_side_occupancy(nets[2]), [0, 2]);
        assert!(st.validate());
        // Replication occupies both sides of every net M touches.
        st.set_state(m, CellState::Traditional { orig_side: 1 });
        assert_eq!(st.spanning_nets(), 5);
        assert!(st.validate());
    }

    #[test]
    fn peek_gain_is_sum_of_net_contributions() {
        let (hg, m, _) = fig1();
        let sides = vec![0, 0, 1, 0, 1, 1];
        let st = EngineState::new(&hg, &sides);
        for new in [
            CellState::Single { side: 1 },
            CellState::Traditional { orig_side: 0 },
            CellState::Functional {
                orig_side: 0,
                replica_mask: 0b10,
            },
        ] {
            let old = st.cell_state(m);
            let sum: i64 = st
                .incident_nets(m)
                .iter()
                .map(|&n| st.net_contribution(m, old, new, n, st.net_counts(n)))
                .sum();
            assert_eq!(sum, st.peek_gain(m, new));
        }
    }

    #[test]
    fn placement_export_matches_state() {
        let (hg, m, _) = fig1();
        let sides = vec![0, 0, 1, 0, 0, 1];
        let mut st = EngineState::new(&hg, &sides);
        st.set_state(
            m,
            CellState::Functional {
                orig_side: 0,
                replica_mask: 0b10,
            },
        );
        let p = st.to_placement();
        p.validate(&hg).unwrap();
        assert_eq!(p.cut_size(&hg), st.cut());
        assert_eq!(
            [p.part_area(&hg, PartId(0)), p.part_area(&hg, PartId(1))],
            [1, 1]
        );
    }

    #[test]
    #[should_panic(expected = "no Placement representation")]
    fn traditional_export_panics() {
        let (hg, m, _) = fig1();
        let mut st = EngineState::new(&hg, &[0; 6]);
        st.set_state(m, CellState::Traditional { orig_side: 0 });
        let _ = st.to_placement();
    }
}
