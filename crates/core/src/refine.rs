//! Direct multi-way refinement of a k-way partition.
//!
//! The recursive carver commits each cut before seeing later ones; this
//! post-pass repairs that greediness with k-way-aware local moves:
//!
//! * **cell moves** between parts (pads included), accepted when they
//!   reduce total terminal usage `Σ t_Pj` (the numerator of the paper's
//!   eq. 2) without breaking any part's device feasibility;
//! * **unreplication cleanup**: a replicated pair whose merge no longer
//!   costs interconnect is collapsed, recovering CLB area.
//!
//! This is the "multi-way refinement" extension listed in DESIGN.md §12.

use netpart_fpga::DeviceLibrary;
use netpart_hypergraph::{CellId, Hypergraph, NetId, PartId, Placement};

/// Outcome of a refinement run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefineStats {
    /// Accepted cell moves.
    pub moves: usize,
    /// Total terminal usage `Σ t_Pj` before refinement.
    pub terminals_before: usize,
    /// Total terminal usage after refinement.
    pub terminals_after: usize,
}

/// Incremental k-way bookkeeping: per-net endpoint and pad counts per
/// part, per-part areas and terminal usage.
struct RefState<'a> {
    hg: &'a Hypergraph,
    n_parts: usize,
    /// Connected endpoints of each net in each part.
    counts: Vec<u32>,
    /// Connected *pad* endpoints of each net in each part.
    pads: Vec<u32>,
    part_areas: Vec<u64>,
    part_terms: Vec<i64>,
}

impl<'a> RefState<'a> {
    fn idx(&self, net: NetId, part: usize) -> usize {
        net.index() * self.n_parts + part
    }

    fn new(hg: &'a Hypergraph, placement: &Placement) -> Self {
        let n_parts = placement.n_parts();
        let mut st = RefState {
            hg,
            n_parts,
            counts: vec![0; hg.n_nets() * n_parts],
            pads: vec![0; hg.n_nets() * n_parts],
            part_areas: placement.part_areas(hg),
            part_terms: vec![0; n_parts],
        };
        for nid in hg.net_ids() {
            for ep in hg.net(nid).endpoints() {
                let is_pad = hg.cell(ep.cell).is_terminal();
                for (ci, copy) in placement.copies(ep.cell).iter().enumerate() {
                    if placement.pin_connected(hg, ep.cell, ci, ep.pin) {
                        let i = st.idx(nid, copy.part.index());
                        st.counts[i] += 1;
                        if is_pad {
                            st.pads[i] += 1;
                        }
                    }
                }
            }
        }
        for nid in hg.net_ids() {
            for p in 0..n_parts {
                st.part_terms[p] += st.net_iobs(nid, p);
            }
        }
        st
    }

    /// IOBs net `nid` consumes in `part` under the current counts.
    fn net_iobs(&self, nid: NetId, part: usize) -> i64 {
        let touches = self.counts[self.idx(nid, part)] > 0;
        if !touches {
            return 0;
        }
        let spans = (0..self.n_parts)
            .filter(|&p| self.counts[self.idx(nid, p)] > 0)
            .count();
        let crossing = i64::from(spans >= 2);
        i64::from(self.pads[self.idx(nid, part)]).max(crossing)
    }

    /// Applies (or simulates) moving every connected endpoint of `cell`'s
    /// single copy from `from` to `to`, returning the per-part terminal
    /// deltas it causes. When `commit` is false the state is restored.
    fn move_deltas(
        &mut self,
        cell: CellId,
        from: usize,
        to: usize,
        commit: bool,
    ) -> Vec<(usize, i64)> {
        let cellref = self.hg.cell(cell);
        let is_pad = cellref.is_terminal();
        let mut nets: Vec<NetId> = cellref.incident_nets().collect();
        nets.sort_unstable();
        nets.dedup();
        // Parts whose IOB count can change: every part touching the nets.
        let mut affected: Vec<usize> = Vec::new();
        for &nid in &nets {
            for p in 0..self.n_parts {
                if self.counts[self.idx(nid, p)] > 0 {
                    affected.push(p);
                }
            }
        }
        affected.push(to);
        affected.sort_unstable();
        affected.dedup();

        let before: Vec<i64> = affected
            .iter()
            .map(|&p| nets.iter().map(|&n| self.net_iobs(n, p)).sum())
            .collect();
        // How many endpoints of each net belong to this cell.
        for &nid in &nets {
            let k = Self::pin_count_on(self.hg, cell, nid);
            let (i_from, i_to) = (self.idx(nid, from), self.idx(nid, to));
            self.counts[i_from] -= k;
            self.counts[i_to] += k;
            if is_pad {
                self.pads[i_from] -= k;
                self.pads[i_to] += k;
            }
        }
        let mut deltas = Vec::with_capacity(affected.len());
        for (i, &p) in affected.iter().enumerate() {
            let after: i64 = nets.iter().map(|&n| self.net_iobs(n, p)).sum();
            deltas.push((p, after - before[i]));
        }
        if commit {
            let a = u64::from(cellref.area());
            self.part_areas[from] -= a;
            self.part_areas[to] += a;
            for &(p, d) in &deltas {
                self.part_terms[p] += d;
            }
        } else {
            for &nid in &nets {
                let k = Self::pin_count_on(self.hg, cell, nid);
                let (i_from, i_to) = (self.idx(nid, from), self.idx(nid, to));
                self.counts[i_to] -= k;
                self.counts[i_from] += k;
                if is_pad {
                    self.pads[i_to] -= k;
                    self.pads[i_from] += k;
                }
            }
        }
        deltas
    }

    /// How many pins of `cell` attach to `nid`.
    fn pin_count_on(hg: &Hypergraph, cell: CellId, nid: NetId) -> u32 {
        let c = hg.cell(cell);
        let on = |nets: &[NetId]| nets.iter().filter(|&&n| n == nid).count() as u32;
        on(c.input_nets()) + on(c.output_nets())
    }

    fn total_terms(&self) -> i64 {
        self.part_terms.iter().sum()
    }
}

/// Refines a k-way placement in place; `devices[p]` is the library index
/// of part `p`'s device (unchanged by refinement).
///
/// Runs up to `max_passes` sweeps; each sweep tries, for every
/// single-copy cell, the parts its nets touch, accepting the best move
/// that strictly reduces `Σ t_Pj` while keeping every affected part
/// feasible. Returns the acceptance statistics.
///
/// # Panics
///
/// Panics if `devices` is shorter than the placement's part count.
pub fn refine_kway(
    hg: &Hypergraph,
    placement: &mut Placement,
    devices: &[usize],
    library: &DeviceLibrary,
    max_passes: usize,
) -> RefineStats {
    assert!(devices.len() >= placement.n_parts(), "device per part");
    let mut st = RefState::new(hg, placement);
    let terminals_before = st.total_terms() as usize;
    let mut stats = RefineStats {
        moves: 0,
        terminals_before,
        terminals_after: terminals_before,
    };
    let feasible = |st: &RefState<'_>, p: usize| -> bool {
        let d = library.device(devices[p]);
        // Empty parts stay empty-feasible.
        if st.part_areas[p] == 0 && st.part_terms[p] == 0 {
            return true;
        }
        d.fits(st.part_areas[p], st.part_terms[p].max(0) as u64)
    };

    for _ in 0..max_passes.max(1) {
        let mut improved = false;
        for cell in hg.cell_ids() {
            if placement.is_replicated(cell) {
                continue;
            }
            let from = placement.copies(cell)[0].part.index();
            // Candidate targets: parts the cell's nets already touch.
            let mut targets: Vec<usize> = Vec::new();
            for nid in hg.cell(cell).incident_nets() {
                for p in 0..st.n_parts {
                    if p != from && st.counts[st.idx(nid, p)] > 0 {
                        targets.push(p);
                    }
                }
            }
            targets.sort_unstable();
            targets.dedup();
            let mut best: Option<(i64, usize)> = None;
            for &to in &targets {
                // Area feasibility first (cheap).
                let a = u64::from(hg.cell(cell).area());
                let dto = library.device(devices[to]);
                if st.part_areas[to] + a > dto.max_clbs() {
                    continue;
                }
                let deltas = st.move_deltas(cell, from, to, false);
                let total: i64 = deltas.iter().map(|&(_, d)| d).sum();
                if total >= best.map_or(0, |(b, _)| b) {
                    continue;
                }
                // Terminal feasibility of every affected part.
                let ok = deltas.iter().all(|&(p, d)| {
                    let t = st.part_terms[p] + d;
                    let dev = library.device(devices[p]);
                    t <= i64::from(dev.iobs())
                }) && {
                    // The source part must stay above its device's lower
                    // utilization bound (or empty out entirely); the
                    // target only grows, so its lower bound still holds.
                    let dfrom = library.device(devices[from]);
                    let from_area = st.part_areas[from] - a;
                    from_area == 0 || from_area >= dfrom.min_clbs()
                };
                if ok {
                    best = Some((total, to));
                }
            }
            if let Some((_, to)) = best {
                st.move_deltas(cell, from, to, true);
                placement.place(cell, PartId(to as u16));
                // Keep feasibility honest even under bookkeeping drift.
                debug_assert!(feasible(&st, to) && feasible(&st, from));
                stats.moves += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    stats.terminals_after = st.total_terms() as usize;
    stats
}

/// Collapses replicated cells whose merge does not increase total
/// terminal usage, preferring the merge direction with the lower usage.
/// Returns the number of unreplications applied.
pub fn unreplicate_cleanup(
    hg: &Hypergraph,
    placement: &mut Placement,
    devices: &[usize],
    library: &DeviceLibrary,
) -> usize {
    assert!(devices.len() >= placement.n_parts(), "device per part");
    let mut applied = 0usize;
    for cell in hg.cell_ids() {
        if !placement.is_replicated(cell) || placement.copies(cell).len() != 2 {
            continue;
        }
        let parts: Vec<PartId> = placement.copies(cell).iter().map(|c| c.part).collect();
        let saved = placement.copies(cell).to_vec();
        let base_terms: usize = placement.part_terminal_counts(hg).iter().sum();
        let mut best: Option<(usize, PartId)> = None;
        for &target in &parts {
            placement.unreplicate(cell, target).expect("part in range");
            let terms: usize = placement.part_terminal_counts(hg).iter().sum();
            let areas = placement.part_areas(hg);
            let ok = (0..placement.n_parts()).all(|p| {
                let d = library.device(devices[p]);
                let t = placement.part_terminals(hg, PartId(p as u16)) as u64;
                (areas[p] == 0 && t == 0) || d.fits(areas[p], t)
            });
            if ok && terms <= base_terms && best.is_none_or(|(b, _)| terms < b) {
                best = Some((terms, target));
            }
            placement.set_copies(cell, saved.clone());
        }
        if let Some((_, target)) = best {
            placement.unreplicate(cell, target).expect("part in range");
            applied += 1;
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway::{kway_partition, KWayConfig};
    use crate::ReplicationMode;
    use netpart_fpga::evaluate;
    use netpart_netlist::{generate, GeneratorConfig};
    use netpart_techmap::{map, MapperConfig};

    fn mapped(gates: usize, dffs: usize, seed: u64) -> Hypergraph {
        let nl = generate(&GeneratorConfig::new(gates).with_dff(dffs).with_seed(seed));
        map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl)
    }

    #[test]
    fn refinement_never_hurts_and_stays_feasible() {
        let hg = mapped(900, 50, 3);
        let lib = DeviceLibrary::xc3000();
        let cfg = KWayConfig::new(lib.clone())
            .with_candidates(2)
            .with_seed(9)
            .with_max_passes(8);
        let mut res = kway_partition(&hg, &cfg).unwrap();
        let before = evaluate(&hg, &res.placement, &lib, &res.devices);
        let stats = refine_kway(&hg, &mut res.placement, &res.devices, &lib, 4);
        res.placement.validate(&hg).unwrap();
        let after = evaluate(&hg, &res.placement, &lib, &res.devices);
        assert!(after.feasible, "refinement must preserve feasibility");
        assert!(
            stats.terminals_after <= stats.terminals_before,
            "refinement must not increase Σ t_Pj"
        );
        assert!(after.avg_iob_util <= before.avg_iob_util + 1e-9);
        assert_eq!(after.total_cost, before.total_cost, "devices unchanged");
    }

    #[test]
    fn refine_bookkeeping_matches_scratch_evaluation() {
        let hg = mapped(700, 30, 5);
        let lib = DeviceLibrary::xc3000();
        let cfg = KWayConfig::new(lib.clone())
            .with_candidates(2)
            .with_seed(2)
            .with_max_passes(8);
        let mut res = kway_partition(&hg, &cfg).unwrap();
        let stats = refine_kway(&hg, &mut res.placement, &res.devices, &lib, 3);
        let scratch: usize = res.placement.part_terminal_counts(&hg).iter().sum();
        assert_eq!(stats.terminals_after, scratch);
    }

    #[test]
    fn unreplication_cleanup_preserves_feasibility() {
        let hg = mapped(900, 50, 7);
        let lib = DeviceLibrary::xc3000();
        let cfg = KWayConfig::new(lib.clone())
            .with_candidates(2)
            .with_seed(4)
            .with_max_passes(8)
            .with_replication(ReplicationMode::functional(0));
        let mut res = kway_partition(&hg, &cfg).unwrap();
        let before = evaluate(&hg, &res.placement, &lib, &res.devices);
        let _n = unreplicate_cleanup(&hg, &mut res.placement, &res.devices, &lib);
        res.placement.validate(&hg).unwrap();
        let after = evaluate(&hg, &res.placement, &lib, &res.devices);
        assert!(after.feasible);
        assert!(after.avg_iob_util <= before.avg_iob_util + 1e-9);
    }
}
