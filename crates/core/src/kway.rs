//! Recursive, device-aware k-way partitioning: minimum total device cost
//! (eq. 1) and minimum interconnect (eq. 2) over a heterogeneous FPGA
//! library — the paper's second experiment, extending the framework of
//! \[3\] with functional replication.
//!
//! The carver repeatedly bipartitions the remaining circuit into a chunk
//! that is feasible on a chosen device (CLB count within `[l·c, u·c]`,
//! terminals within `t`) and a remainder, until the remainder itself fits
//! a device. Many randomized carves are attempted; among the feasible
//! k-way partitions found (the paper generates 50 per run), the cheapest
//! — tie-broken by average IOB utilization — wins.

use crate::config::{BipartitionConfig, ReplicationMode};
use crate::extract::{extract_rest, Extraction};
use crate::fm::bipartition;
use netpart_fpga::{evaluate, DeviceLibrary, Evaluation};
use netpart_hypergraph::{CellCopy, CellId, Hypergraph, PartId, Placement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Configuration of the k-way partitioner.
#[derive(Clone, Debug)]
pub struct KWayConfig {
    /// The device library to implement the circuit with.
    pub library: DeviceLibrary,
    /// Replication moves used inside each carve bipartition.
    /// [`ReplicationMode::Traditional`] is not supported here (its copies
    /// have no placement representation).
    pub replication: ReplicationMode,
    /// Stop after this many *feasible* k-way partitions (the paper uses
    /// 50 per run).
    pub candidates: usize,
    /// Hard cap on carve attempts (feasible or not).
    pub max_attempts: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// FM pass limit inside each carve bipartition.
    pub max_passes: usize,
    /// Run the direct multi-way refinement pass (an extension beyond the
    /// paper: [`refine_kway`](crate::refine_kway) plus
    /// [`unreplicate_cleanup`](crate::unreplicate_cleanup)) on the winning
    /// partition.
    pub refine: bool,
}

impl KWayConfig {
    /// A configuration with the paper's defaults (50 candidate feasible
    /// partitions) for the given library.
    pub fn new(library: DeviceLibrary) -> Self {
        KWayConfig {
            library,
            replication: ReplicationMode::None,
            candidates: 50,
            max_attempts: 200,
            seed: 0,
            max_passes: 8,
            refine: false,
        }
    }

    /// Sets the hard cap on carve attempts (feasible or not). Each
    /// failed attempt costs a full recursive FM run, so this bounds the
    /// worst-case runtime on infeasible inputs. Call *after*
    /// [`with_candidates`](Self::with_candidates), which rescales the cap.
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Enables the post-carve multi-way refinement extension.
    pub fn with_refine(mut self, refine: bool) -> Self {
        self.refine = refine;
        self
    }

    /// Sets the replication mode.
    ///
    /// # Panics
    ///
    /// Panics on [`ReplicationMode::Traditional`].
    pub fn with_replication(mut self, mode: ReplicationMode) -> Self {
        assert!(
            !matches!(mode, ReplicationMode::Traditional),
            "traditional replication is not supported in k-way partitioning"
        );
        self.replication = mode;
        self
    }

    /// Sets the feasible-candidate target and scales the attempt cap to
    /// `8×` it (at least 32), bounding the cost of infeasible inputs.
    pub fn with_candidates(mut self, n: usize) -> Self {
        self.candidates = n.max(1);
        self.max_attempts = (8 * self.candidates).max(32);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the FM pass limit per carve step.
    pub fn with_max_passes(mut self, n: usize) -> Self {
        self.max_passes = n.max(1);
        self
    }
}

/// A feasible k-way partition with its devices and evaluation.
#[derive(Clone, Debug)]
pub struct KWayResult {
    /// The k-part placement on the original circuit (replicated cells
    /// have one copy per part they appear in).
    pub placement: Placement,
    /// Library index of the device implementing each part.
    pub devices: Vec<usize>,
    /// Cost/utilization evaluation (eqs. 1 and 2).
    pub evaluation: Evaluation,
    /// Total carve attempts made.
    pub attempts: usize,
    /// Feasible partitions found (≥ 1).
    pub feasible_found: usize,
}

/// k-way partitioning failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KWayError {
    /// No feasible partition was found within the attempt budget.
    NoFeasiblePartition {
        /// Attempts made.
        attempts: usize,
    },
}

impl fmt::Display for KWayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KWayError::NoFeasiblePartition { attempts } => {
                write!(f, "no feasible k-way partition in {attempts} attempts")
            }
        }
    }
}

impl Error for KWayError {}

/// Records the cells of part `which` (of a placement of `piece`) into
/// the global assignment list under top-level part id `part`.
fn record_part(
    piece: &Extraction,
    placement: &Placement,
    which: PartId,
    part: u16,
    assignments: &mut Vec<(CellId, u32, u16)>,
) {
    for c in piece.hypergraph.cell_ids() {
        if let Some((top, top_mask)) = piece.origin[c.index()] {
            for copy in placement.copies(c) {
                if copy.part == which {
                    assignments.push((
                        top,
                        crate::extract::project_mask(top_mask, copy.outputs),
                        part,
                    ));
                }
            }
        }
    }
}

fn kway_debug() -> bool {
    std::env::var_os("NETPART_KWAY_DEBUG").is_some()
}

/// One carve attempt: returns the global placement and device list, or
/// `None` if the attempt dead-ends.
///
/// Pieces that fit no device are split recursively, mixing two
/// strategies: **balanced halving** (the recursive min-cut bisection of
/// \[3\]) and **device carving** (split off a chunk sized exactly for a
/// randomly chosen device, with the FM objective weighted to keep pads
/// out of the chunk). Pieces that fit take their cheapest feasible
/// device.
fn carve_once(
    hg: &Hypergraph,
    cfg: &KWayConfig,
    rng: &mut StdRng,
) -> Option<(Placement, Vec<usize>)> {
    // (top-level cell, top-level mask, part)
    let mut assignments: Vec<(CellId, u32, u16)> = Vec::new();
    let mut devices: Vec<usize> = Vec::new();
    let mut stack: Vec<Extraction> = vec![Extraction::identity(hg)];

    while let Some(piece) = stack.pop() {
        if devices.len() + stack.len() >= netpart_hypergraph::MAX_PARTS {
            return None;
        }
        let area = piece.hypergraph.total_area();
        let single = Placement::new_uniform(&piece.hypergraph, 1, PartId(0));
        let terminals = single.part_terminals(&piece.hypergraph, PartId(0)) as u64;
        if let Some(dev) = cfg.library.cheapest_fitting(area, terminals) {
            let part = devices.len() as u16;
            let di = cfg.library.index_of(dev.name()).expect("library device");
            record_part(&piece, &single, PartId(0), part, &mut assignments);
            devices.push(di);
            continue;
        }
        if kway_debug() {
            eprintln!("no fit: area={area} terminals={terminals}");
        }
        if area < 2 {
            if kway_debug() {
                eprintln!("piece unsplittable: area={area} terminals={terminals}");
            }
            return None; // terminals alone make the piece infeasible
        }

        // Choose a split strategy for this piece.
        let carve_device = if rng.gen_bool(0.5) {
            // Prefer the largest device whose feasibility window fits
            // inside the piece, randomized for candidate diversity.
            let eligible: Vec<usize> = (0..cfg.library.len())
                .filter(|&i| {
                    let d = cfg.library.device(i);
                    d.min_clbs() <= (area - 1).min(d.max_clbs())
                })
                .collect();
            if eligible.is_empty() {
                None
            } else if rng.gen_bool(0.6) {
                eligible.last().copied()
            } else {
                Some(eligible[rng.gen_range(0..eligible.len())])
            }
        } else {
            None
        };

        // Retry plan: the chosen strategy twice, then balanced halving
        // as a fallback (halving always lets the recursion proceed; an
        // oversized piece is simply split again).
        let plans: Vec<Option<usize>> = match carve_device {
            Some(di) => vec![Some(di), Some(di), None, None],
            None => vec![None, None, None],
        };

        let mut split_done = false;
        for plan in plans {
            let (bounds_min, bounds_max, tweight) = match plan {
                Some(di) => {
                    let d = cfg.library.device(di);
                    (
                        [d.min_clbs(), 0],
                        [d.max_clbs().min(area - 1), area],
                        [1i64, 0i64],
                    )
                }
                None => {
                    // Balanced halving with ±10% slack.
                    let lo = (area as f64 / 2.0 * 0.9).floor() as u64;
                    let hi = (area as f64 / 2.0 * 1.1).ceil() as u64;
                    ([lo, lo], [hi.max(1), hi.max(1)], [0i64, 0i64])
                }
            };
            let bcfg = BipartitionConfig::bounded(bounds_min, bounds_max)
                .with_replication(cfg.replication)
                .with_seed(rng.gen::<u64>())
                .with_max_passes(cfg.max_passes)
                .with_terminal_weight(tweight)
                .with_max_growth(Some((area / 16).max(4)));
            let res = bipartition(&piece.hypergraph, &bcfg);
            if !res.balanced {
                if kway_debug() {
                    eprintln!(
                        "split unbalanced: areas {:?}, want [{bounds_min:?}..{bounds_max:?}] of {area}",
                        res.areas
                    );
                }
                continue;
            }
            let placement = res.placement.expect("non-traditional modes export");
            match plan {
                Some(di) => {
                    let tcounts = placement.part_terminal_counts(&piece.hypergraph);
                    let dev = cfg.library.device(di);
                    if tcounts[0] as u64 > u64::from(dev.iobs()) {
                        if kway_debug() {
                            eprintln!(
                                "chunk terminals {} > {} ({})",
                                tcounts[0],
                                dev.iobs(),
                                dev.name()
                            );
                        }
                        continue;
                    }
                    let part = devices.len() as u16;
                    record_part(&piece, &placement, PartId(0), part, &mut assignments);
                    devices.push(di);
                    stack.push(extract_rest(
                        &piece.hypergraph,
                        &placement,
                        PartId(1),
                        &piece.origin,
                    ));
                }
                None => {
                    stack.push(extract_rest(
                        &piece.hypergraph,
                        &placement,
                        PartId(0),
                        &piece.origin,
                    ));
                    stack.push(extract_rest(
                        &piece.hypergraph,
                        &placement,
                        PartId(1),
                        &piece.origin,
                    ));
                }
            }
            split_done = true;
            break;
        }
        if !split_done {
            return None;
        }
    }

    // Stitch the global placement together.
    let k = devices.len();
    let mut copies: Vec<Vec<CellCopy>> = vec![Vec::new(); hg.n_cells()];
    for (cell, mask, part) in assignments {
        copies[cell.index()].push(CellCopy {
            part: PartId(part),
            outputs: mask,
        });
    }
    let mut placement = Placement::new_uniform(hg, k.max(1), PartId(0));
    for c in hg.cell_ids() {
        let list = std::mem::take(&mut copies[c.index()]);
        debug_assert!(!list.is_empty(), "every cell must land somewhere");
        placement.set_copies(c, list);
    }
    debug_assert!(placement.validate(hg).is_ok());
    Some((placement, devices))
}

/// Finds a minimum-cost feasible k-way partition.
///
/// Randomized carve attempts run until [`KWayConfig::candidates`]
/// feasible partitions are found or [`KWayConfig::max_attempts`] is
/// exhausted; the best by `(total cost, average IOB utilization)` is
/// returned.
///
/// # Errors
///
/// Returns [`KWayError::NoFeasiblePartition`] if no attempt produces a
/// feasible partition.
pub fn kway_partition(hg: &Hypergraph, cfg: &KWayConfig) -> Result<KWayResult, KWayError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut best: Option<KWayResult> = None;
    let mut feasible = 0usize;
    let mut attempts = 0usize;
    while attempts < cfg.max_attempts && feasible < cfg.candidates {
        attempts += 1;
        let Some((placement, devices)) = carve_once(hg, cfg, &mut rng) else {
            continue;
        };
        let eval = evaluate(hg, &placement, &cfg.library, &devices);
        if !eval.feasible {
            continue;
        }
        feasible += 1;
        let better = match &best {
            None => true,
            Some(b) => {
                (eval.total_cost, eval.avg_iob_util)
                    < (b.evaluation.total_cost, b.evaluation.avg_iob_util)
            }
        };
        if better {
            best = Some(KWayResult {
                placement,
                devices,
                evaluation: eval,
                attempts,
                feasible_found: feasible,
            });
        }
    }
    match best {
        Some(mut b) => {
            b.attempts = attempts;
            b.feasible_found = feasible;
            if cfg.refine {
                crate::refine::unreplicate_cleanup(hg, &mut b.placement, &b.devices, &cfg.library);
                crate::refine::refine_kway(hg, &mut b.placement, &b.devices, &cfg.library, 4);
                b.evaluation = evaluate(hg, &b.placement, &cfg.library, &b.devices);
            }
            Ok(b)
        }
        None => Err(KWayError::NoFeasiblePartition { attempts }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_netlist::{generate, GeneratorConfig};
    use netpart_techmap::{map, MapperConfig};

    fn mapped(gates: usize, dffs: usize, seed: u64) -> Hypergraph {
        let nl = generate(&GeneratorConfig::new(gates).with_dff(dffs).with_seed(seed));
        map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl)
    }

    fn quick_cfg() -> KWayConfig {
        KWayConfig::new(DeviceLibrary::xc3000())
            .with_candidates(4)
            .with_max_attempts(200)
            .with_seed(1)
            .with_max_passes(8)
    }

    #[test]
    fn small_circuit_lands_on_one_device() {
        let hg = mapped(120, 0, 3);
        assert!(hg.total_area() <= 304, "fixture should fit one XC3090");
        let res = kway_partition(&hg, &quick_cfg()).unwrap();
        assert_eq!(res.devices.len(), 1);
        assert!(res.evaluation.feasible);
        res.placement.validate(&hg).unwrap();
    }

    #[test]
    fn large_circuit_uses_multiple_devices_feasibly() {
        let hg = mapped(2000, 100, 5);
        let res = kway_partition(&hg, &quick_cfg()).unwrap();
        assert!(res.devices.len() >= 2);
        assert!(res.evaluation.feasible);
        res.placement.validate(&hg).unwrap();
        // Every part respects its device bounds (re-checked from scratch).
        let lib = quick_cfg().library;
        for pe in &res.evaluation.parts {
            let d = lib.device(pe.device);
            assert!(d.fits(pe.clbs, pe.terminals), "part {pe:?} infeasible");
        }
    }

    #[test]
    fn replication_does_not_break_feasibility() {
        let hg = mapped(1200, 60, 7);
        let cfg = quick_cfg().with_replication(ReplicationMode::functional(0));
        let res = kway_partition(&hg, &cfg).unwrap();
        assert!(res.evaluation.feasible);
        res.placement.validate(&hg).unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let hg = mapped(800, 40, 11);
        let a = kway_partition(&hg, &quick_cfg()).unwrap();
        let b = kway_partition(&hg, &quick_cfg()).unwrap();
        assert_eq!(a.evaluation.total_cost, b.evaluation.total_cost);
        assert_eq!(a.devices, b.devices);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn traditional_mode_rejected() {
        let _ = quick_cfg().with_replication(ReplicationMode::Traditional);
    }
}
#[cfg(test)]
mod refine_flag_tests {
    use super::*;
    use netpart_netlist::{generate, GeneratorConfig};
    use netpart_techmap::{map, MapperConfig};

    #[test]
    fn refine_flag_improves_or_matches_interconnect() {
        let nl = generate(&GeneratorConfig::new(1200).with_dff(60).with_seed(13));
        let hg = map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl);
        let base = KWayConfig::new(DeviceLibrary::xc3000())
            .with_candidates(2)
            .with_seed(3)
            .with_max_passes(8)
            .with_replication(crate::ReplicationMode::functional(1));
        let plain = kway_partition(&hg, &base).unwrap();
        let refined = kway_partition(&hg, &base.clone().with_refine(true)).unwrap();
        assert!(refined.evaluation.feasible);
        assert!(refined.evaluation.avg_iob_util <= plain.evaluation.avg_iob_util + 1e-9);
        assert_eq!(refined.evaluation.total_cost, plain.evaluation.total_cost);
        refined.placement.validate(&hg).unwrap();
    }
}
