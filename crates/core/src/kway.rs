//! Recursive, device-aware k-way partitioning: minimum total device cost
//! (eq. 1) and minimum interconnect (eq. 2) over a heterogeneous FPGA
//! library — the paper's second experiment, extending the framework of
//! \[3\] with functional replication.
//!
//! The carver repeatedly bipartitions the remaining circuit into a chunk
//! that is feasible on a chosen device (CLB count within `[l·c, u·c]`,
//! terminals within `t`) and a remainder, until the remainder itself fits
//! a device. Many randomized carves are attempted; among the feasible
//! k-way partitions found (the paper generates 50 per run), the cheapest
//! — tie-broken by average IOB utilization — wins.
//!
//! # Resilience
//!
//! [`kway_partition`] is a *driver*: it validates its input up front,
//! honors the [`Budget`]/[`FaultPlan`] in its configuration, and when
//! the requested attempt pool produces nothing feasible it climbs an
//! escalation ladder instead of giving up:
//!
//! 1. **Reseed** — grant a second attempt pool from a derived seed;
//! 2. **Relax the floor** — drop every device's lower utilization bound
//!    `l_i` to 0 (parts may underfill; cost suffers, feasibility wins);
//! 3. **Prefer larger devices** — place pieces on the *largest* fitting
//!    device instead of the cheapest, buying terminal headroom.
//!
//! Every rung actually climbed is recorded in
//! [`KWayResult::degradation`], so a caller can tell a pristine answer
//! from a rescued one. Only when the whole ladder fails (or the budget
//! dies first) does the driver return a typed [`PartitionError`].

use crate::budget::{Budget, RunClock};
use crate::config::{BipartitionConfig, ReplicationMode, SelectionStrategy};
use crate::error::{Degradation, PartitionError, Relaxation, StopReason};
use crate::extract::{extract_rest, Extraction};
use crate::fault::FaultPlan;
use crate::fm::bipartition_with_clock;
use netpart_fpga::{try_evaluate, DeviceLibrary, Evaluation};
use netpart_hypergraph::{CellCopy, CellId, Hypergraph, PartId, Placement};
use netpart_obs::{Event, Level, Recorder};
use netpart_rng::Rng;

/// Configuration of the k-way partitioner.
#[derive(Clone, Debug)]
pub struct KWayConfig {
    /// The device library to implement the circuit with.
    pub library: DeviceLibrary,
    /// Replication moves used inside each carve bipartition.
    /// [`ReplicationMode::Traditional`] is not supported here (its copies
    /// have no placement representation).
    pub replication: ReplicationMode,
    /// Stop after this many *feasible* k-way partitions (the paper uses
    /// 50 per run).
    pub candidates: usize,
    /// Hard cap on carve attempts (feasible or not) per escalation rung.
    pub max_attempts: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// FM pass limit inside each carve bipartition.
    pub max_passes: usize,
    /// Run the direct multi-way refinement pass (an extension beyond the
    /// paper: [`refine_kway`](crate::refine_kway) plus
    /// [`unreplicate_cleanup`](crate::unreplicate_cleanup)) on the winning
    /// partition.
    pub refine: bool,
    /// Whether the escalation ladder (reseed → relax floor → larger
    /// devices) may climb when the base attempt pool finds nothing
    /// feasible. `true` by default; the parallel portfolio engine turns
    /// it off for its first phase so that a sibling task's feasible
    /// result (the shared incumbent) can make the ladder unnecessary,
    /// and only re-enables it in a dedicated rescue phase when *no* task
    /// found anything.
    pub escalate: bool,
    /// Work limits shared across every attempt and escalation rung; on
    /// exhaustion the best feasible partition found so far is returned
    /// (with [`KWayResult::degradation`] set), or
    /// [`PartitionError::BudgetExhausted`] if there is none yet.
    pub budget: Budget,
    /// Deterministic fault-injection plan (testing hook).
    pub fault: FaultPlan,
    /// Move-selection structure used inside each carve bipartition;
    /// [`SelectionStrategy::GainBuckets`] by default.
    pub selection: SelectionStrategy,
}

impl KWayConfig {
    /// A configuration with the paper's defaults (50 candidate feasible
    /// partitions) for the given library.
    pub fn new(library: DeviceLibrary) -> Self {
        KWayConfig {
            library,
            replication: ReplicationMode::None,
            candidates: 50,
            max_attempts: 200,
            seed: 0,
            max_passes: 8,
            refine: false,
            escalate: true,
            budget: Budget::none(),
            fault: FaultPlan::none(),
            selection: SelectionStrategy::default(),
        }
    }

    /// Sets the hard cap on carve attempts (feasible or not). Each
    /// failed attempt costs a full recursive FM run, so this bounds the
    /// worst-case runtime on infeasible inputs. Call *after*
    /// [`with_candidates`](Self::with_candidates), which rescales the cap.
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Enables the post-carve multi-way refinement extension.
    pub fn with_refine(mut self, refine: bool) -> Self {
        self.refine = refine;
        self
    }

    /// Enables or disables the escalation ladder (see
    /// [`KWayConfig::escalate`]).
    pub fn with_escalation(mut self, on: bool) -> Self {
        self.escalate = on;
        self
    }

    /// Sets the replication mode.
    ///
    /// # Panics
    ///
    /// Panics on [`ReplicationMode::Traditional`].
    pub fn with_replication(mut self, mode: ReplicationMode) -> Self {
        assert!(
            !matches!(mode, ReplicationMode::Traditional),
            "traditional replication is not supported in k-way partitioning"
        );
        self.replication = mode;
        self
    }

    /// Sets the feasible-candidate target and scales the attempt cap to
    /// `8×` it (at least 32), bounding the cost of infeasible inputs.
    pub fn with_candidates(mut self, n: usize) -> Self {
        self.candidates = n.max(1);
        self.max_attempts = (8 * self.candidates).max(32);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the FM pass limit per carve step.
    pub fn with_max_passes(mut self, n: usize) -> Self {
        self.max_passes = n.max(1);
        self
    }

    /// Sets the run budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Arms a fault-injection plan (testing hook).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the move-selection strategy of the carve FM passes.
    pub fn with_selection(mut self, s: SelectionStrategy) -> Self {
        self.selection = s;
        self
    }
}

/// A feasible k-way partition with its devices and evaluation.
#[derive(Clone, Debug)]
pub struct KWayResult {
    /// The k-part placement on the original circuit (replicated cells
    /// have one copy per part they appear in).
    pub placement: Placement,
    /// Library index of the device implementing each part.
    pub devices: Vec<usize>,
    /// Cost/utilization evaluation (eqs. 1 and 2). When
    /// [`degradation`](Self::degradation) records a
    /// [`Relaxation::RelaxedFloor`], feasibility here is judged against
    /// the *relaxed* library (underfilled devices count as feasible).
    pub evaluation: Evaluation,
    /// Total carve attempts made, across every escalation rung.
    pub attempts: usize,
    /// Feasible partitions found (≥ 1).
    pub feasible_found: usize,
    /// How the driver degraded (budget shortfall, escalation rungs
    /// climbed) to produce this result; un-degraded when the requested
    /// candidate pool completed under the original constraints.
    pub degradation: Degradation,
}

impl KWayResult {
    /// The library this result was actually evaluated against: `base`
    /// itself, or its floor-relaxed variant when the escalation ladder
    /// recorded a [`Relaxation::RelaxedFloor`].
    pub fn effective_library(&self, base: &DeviceLibrary) -> DeviceLibrary {
        if self
            .degradation
            .relaxations
            .contains(&Relaxation::RelaxedFloor)
        {
            base.relaxed_floor()
        } else {
            base.clone()
        }
    }

    /// Serializes this result as an independently checkable
    /// [`SolutionCertificate`](netpart_verify::SolutionCertificate).
    ///
    /// `library` is the *base* configuration library; the certificate
    /// embeds [`effective_library`](Self::effective_library) so the
    /// verifier judges feasibility against the same window the run did.
    pub fn certificate(
        &self,
        hg: &Hypergraph,
        library: &DeviceLibrary,
        seed: u64,
    ) -> netpart_verify::SolutionCertificate {
        netpart_verify::SolutionCertificate::from_kway(
            hg,
            &self.placement,
            &self.effective_library(library),
            &self.devices,
            &self.evaluation,
            seed,
        )
    }
}

/// Records the cells of part `which` (of a placement of `piece`) into
/// the global assignment list under top-level part id `part`.
fn record_part(
    piece: &Extraction,
    placement: &Placement,
    which: PartId,
    part: u16,
    assignments: &mut Vec<(CellId, u32, u16)>,
) {
    for c in piece.hypergraph.cell_ids() {
        if let Some((top, top_mask)) = piece.origin[c.index()] {
            for copy in placement.copies(c) {
                if copy.part == which {
                    assignments.push((
                        top,
                        crate::extract::project_mask(top_mask, copy.outputs),
                        part,
                    ));
                }
            }
        }
    }
}

/// Emits the paper-metric gauges for an incumbent evaluation: `$_k`
/// (eq. 1) as `paper.cost_k`, `k̄` (eq. 2) as `paper.kbar` and the
/// per-device histogram as `paper.devices`. Shared with the portfolio
/// engine so both layers report the paper's metrics identically.
pub fn record_paper_gauges(recorder: &dyn Recorder, eval: &Evaluation, lib: &DeviceLibrary) {
    recorder.record(&Event::gauge("paper", "cost_k", eval.total_cost as f64));
    recorder.record(&Event::gauge("paper", "kbar", eval.avg_iob_util));
    let bins: Vec<u64> = eval
        .device_histogram(lib.len())
        .into_iter()
        .map(|n| n as u64)
        .collect();
    recorder.record(&Event::hist("paper", "devices", bins));
}

/// One carve attempt against `lib` (the possibly-relaxed library):
/// returns the global placement and device list, or `None` if the
/// attempt dead-ends or the clock trips.
///
/// Pieces that fit no device are split recursively, mixing two
/// strategies: **balanced halving** (the recursive min-cut bisection of
/// \[3\]) and **device carving** (split off a chunk sized exactly for a
/// randomly chosen device, with the FM objective weighted to keep pads
/// out of the chunk). Pieces that fit take their cheapest feasible
/// device — or, when `prefer_large` (escalation rung 3), the largest,
/// trading cost for terminal headroom.
fn carve_once(
    hg: &Hypergraph,
    cfg: &KWayConfig,
    lib: &DeviceLibrary,
    prefer_large: bool,
    rng: &mut Rng,
    clock: &RunClock,
) -> Option<(Placement, Vec<usize>)> {
    // (top-level cell, top-level mask, part)
    let mut assignments: Vec<(CellId, u32, u16)> = Vec::new();
    let mut devices: Vec<usize> = Vec::new();
    let mut stack: Vec<Extraction> = vec![Extraction::identity(hg)];

    while let Some(piece) = stack.pop() {
        if clock.stopped().is_some() {
            return None;
        }
        if devices.len() + stack.len() >= netpart_hypergraph::MAX_PARTS {
            return None;
        }
        let area = piece.hypergraph.total_area();
        let single = Placement::new_uniform(&piece.hypergraph, 1, PartId(0));
        let terminals = single.part_terminals(&piece.hypergraph, PartId(0)) as u64;
        let fitting = if prefer_large {
            lib.largest_fitting(area, terminals)
        } else {
            lib.cheapest_fitting(area, terminals)
        };
        if let Some(dev) = fitting {
            let part = devices.len() as u16;
            let di = lib.index_of(dev.name()).expect("library device");
            record_part(&piece, &single, PartId(0), part, &mut assignments);
            devices.push(di);
            continue;
        }
        let recorder = clock.recorder();
        if recorder.enabled(Level::Trace) {
            recorder.record(
                &Event::new("kway", "carve.no_fit", Level::Trace)
                    .field("area", area)
                    .field("terminals", terminals),
            );
        }
        if area < 2 {
            if recorder.enabled(Level::Debug) {
                recorder.record(
                    &Event::new("kway", "carve.unsplittable", Level::Debug)
                        .field("area", area)
                        .field("terminals", terminals),
                );
            }
            return None; // terminals alone make the piece infeasible
        }

        // Choose a split strategy for this piece.
        let carve_device = if rng.gen_bool(0.5) {
            // Prefer the largest device whose feasibility window fits
            // inside the piece, randomized for candidate diversity.
            let eligible: Vec<usize> = (0..lib.len())
                .filter(|&i| {
                    let d = lib.device(i);
                    d.min_clbs() <= (area - 1).min(d.max_clbs())
                })
                .collect();
            if eligible.is_empty() {
                None
            } else if rng.gen_bool(0.6) {
                eligible.last().copied()
            } else {
                Some(eligible[rng.gen_range(0..eligible.len())])
            }
        } else {
            None
        };

        // Retry plan: the chosen strategy twice, then balanced halving
        // as a fallback (halving always lets the recursion proceed; an
        // oversized piece is simply split again).
        let plans: Vec<Option<usize>> = match carve_device {
            Some(di) => vec![Some(di), Some(di), None, None],
            None => vec![None, None, None],
        };

        let mut split_done = false;
        for plan in plans {
            let (bounds_min, bounds_max, tweight) = match plan {
                Some(di) => {
                    let d = lib.device(di);
                    (
                        [d.min_clbs(), 0],
                        [d.max_clbs().min(area - 1), area],
                        [1i64, 0i64],
                    )
                }
                None => {
                    // Balanced halving with ±10% slack.
                    let lo = (area as f64 / 2.0 * 0.9).floor() as u64;
                    let hi = (area as f64 / 2.0 * 1.1).ceil() as u64;
                    ([lo, lo], [hi.max(1), hi.max(1)], [0i64, 0i64])
                }
            };
            let bcfg = BipartitionConfig::bounded(bounds_min, bounds_max)
                .with_replication(cfg.replication)
                .with_seed(rng.next_u64())
                .with_max_passes(cfg.max_passes)
                .with_terminal_weight(tweight)
                .with_max_growth(Some((area / 16).max(4)))
                .with_selection(cfg.selection);
            let res = bipartition_with_clock(&piece.hypergraph, &bcfg, clock);
            if clock.stopped().is_some() {
                return None;
            }
            if !res.balanced {
                if recorder.enabled(Level::Trace) {
                    recorder.record(
                        &Event::new("kway", "carve.split_unbalanced", Level::Trace)
                            .field("area", area)
                            .field("got", vec![res.areas[0], res.areas[1]])
                            .field("want_min", vec![bounds_min[0], bounds_min[1]])
                            .field("want_max", vec![bounds_max[0], bounds_max[1]]),
                    );
                }
                continue;
            }
            let placement = res.placement.expect("non-traditional modes export");
            match plan {
                Some(di) => {
                    let tcounts = placement.part_terminal_counts(&piece.hypergraph);
                    let dev = lib.device(di);
                    if tcounts[0] as u64 > u64::from(dev.iobs()) {
                        if recorder.enabled(Level::Trace) {
                            recorder.record(
                                &Event::new("kway", "carve.chunk_overflow", Level::Trace)
                                    .field("terminals", tcounts[0])
                                    .field("iobs", dev.iobs())
                                    .field("device", dev.name()),
                            );
                        }
                        continue;
                    }
                    let part = devices.len() as u16;
                    record_part(&piece, &placement, PartId(0), part, &mut assignments);
                    devices.push(di);
                    stack.push(extract_rest(
                        &piece.hypergraph,
                        &placement,
                        PartId(1),
                        &piece.origin,
                    ));
                }
                None => {
                    stack.push(extract_rest(
                        &piece.hypergraph,
                        &placement,
                        PartId(0),
                        &piece.origin,
                    ));
                    stack.push(extract_rest(
                        &piece.hypergraph,
                        &placement,
                        PartId(1),
                        &piece.origin,
                    ));
                }
            }
            split_done = true;
            break;
        }
        if !split_done {
            return None;
        }
    }

    // Stitch the global placement together.
    let k = devices.len();
    let mut copies: Vec<Vec<CellCopy>> = vec![Vec::new(); hg.n_cells()];
    for (cell, mask, part) in assignments {
        copies[cell.index()].push(CellCopy {
            part: PartId(part),
            outputs: mask,
        });
    }
    let mut placement = Placement::new_uniform(hg, k.max(1), PartId(0));
    for c in hg.cell_ids() {
        let list = std::mem::take(&mut copies[c.index()]);
        debug_assert!(!list.is_empty(), "every cell must land somewhere");
        placement.set_copies(c, list);
    }
    debug_assert!(placement.validate(hg).is_ok());
    Some((placement, devices))
}

/// The best candidate found so far, with the library it was judged by.
struct BestCandidate {
    placement: Placement,
    devices: Vec<usize>,
    evaluation: Evaluation,
}

struct StageOutcome {
    attempts: usize,
    feasible: usize,
}

/// Runs one escalation rung: up to `max_attempts` carves against `lib`,
/// stopping early at `cfg.candidates` feasible partitions or a tripped
/// clock.
#[allow(clippy::too_many_arguments)]
fn run_stage(
    hg: &Hypergraph,
    cfg: &KWayConfig,
    lib: &DeviceLibrary,
    prefer_large: bool,
    rng: &mut Rng,
    clock: &RunClock,
    max_attempts: usize,
    feasible_so_far: usize,
    best: &mut Option<BestCandidate>,
    rung: &'static str,
) -> StageOutcome {
    let recorder = clock.recorder();
    let mut attempts = 0usize;
    let mut feasible = 0usize;
    while attempts < max_attempts && feasible_so_far + feasible < cfg.candidates {
        if clock.tick_attempt().is_some() {
            break;
        }
        attempts += 1;
        let Some((placement, devices)) = carve_once(hg, cfg, lib, prefer_large, rng, clock) else {
            if clock.stopped().is_some() {
                break;
            }
            continue;
        };
        // `devices` indexes `lib` by construction, so evaluation cannot
        // fail; a defect here is skipped rather than propagated.
        let Ok(eval) = try_evaluate(hg, &placement, lib, &devices) else {
            debug_assert!(false, "carve produced an unevaluable placement");
            continue;
        };
        if !eval.feasible {
            continue;
        }
        feasible += 1;
        let better = match &*best {
            None => true,
            Some(b) => {
                (eval.total_cost, eval.avg_iob_util)
                    < (b.evaluation.total_cost, b.evaluation.avg_iob_util)
            }
        };
        if better {
            if recorder.enabled(Level::Info) {
                recorder.record(
                    &Event::new("kway", "incumbent", Level::Info)
                        .field("rung", rung)
                        .field("attempt", attempts)
                        .field("cost", eval.total_cost)
                        .field("kbar", eval.avg_iob_util)
                        .field("k", eval.k()),
                );
                record_paper_gauges(recorder, &eval, lib);
            }
            *best = Some(BestCandidate {
                placement,
                devices,
                evaluation: eval,
            });
        }
    }
    if recorder.enabled(Level::Debug) {
        recorder.record(
            &Event::new("kway", "stage", Level::Debug)
                .field("rung", rung)
                .field("attempts", attempts)
                .field("feasible", feasible),
        );
        recorder.record(&Event::counter("kway", "attempts", attempts as u64).at(Level::Debug));
        recorder.record(&Event::counter("kway", "feasible", feasible as u64).at(Level::Debug));
    }
    StageOutcome { attempts, feasible }
}

/// Finds a minimum-cost feasible k-way partition.
///
/// Randomized carve attempts run until [`KWayConfig::candidates`]
/// feasible partitions are found or [`KWayConfig::max_attempts`] is
/// exhausted; the best by `(total cost, average IOB utilization)` is
/// returned. If the first pool yields nothing feasible, the escalation
/// ladder (reseed → relax `l_i` floor → prefer larger devices) is
/// climbed before declaring the input infeasible; rungs climbed are
/// recorded in [`KWayResult::degradation`].
///
/// # Errors
///
/// * [`PartitionError::InvalidInput`] on an empty hypergraph or a
///   [`ReplicationMode::Traditional`] configuration.
/// * [`PartitionError::InfeasibleLibrary`] when a single cell exceeds
///   every device (detected statically) or the full escalation ladder
///   finds nothing feasible.
/// * [`PartitionError::BudgetExhausted`] when the budget (or an injected
///   fault) trips before the first feasible partition exists.
pub fn kway_partition(hg: &Hypergraph, cfg: &KWayConfig) -> Result<KWayResult, PartitionError> {
    let clock = RunClock::new(&cfg.budget, &cfg.fault);
    kway_partition_with_clock(hg, cfg, &clock)
}

/// [`kway_partition`] against an externally owned [`RunClock`], so a
/// parallel portfolio can share one wall deadline and
/// [`CancelToken`](crate::CancelToken) across concurrently carving
/// tasks. The clock's budget/fault plan (not `cfg.budget`/`cfg.fault`)
/// is what is enforced here.
pub fn kway_partition_with_clock(
    hg: &Hypergraph,
    cfg: &KWayConfig,
    clock: &RunClock,
) -> Result<KWayResult, PartitionError> {
    if hg.n_cells() == 0 {
        return Err(PartitionError::invalid_input(
            "cannot partition an empty hypergraph",
        ));
    }
    if matches!(cfg.replication, ReplicationMode::Traditional) {
        return Err(PartitionError::invalid_input(
            "traditional replication is not supported in k-way partitioning",
        ));
    }
    let max_clbs = cfg.library.max_clbs_per_device();
    if hg.total_area() > 0 && max_clbs == 0 {
        return Err(PartitionError::InfeasibleLibrary {
            reason: "every device in the library has zero usable CLB capacity".into(),
            attempts: 0,
        });
    }
    if let Some(biggest) = hg.cells().iter().map(|c| u64::from(c.area())).max() {
        if biggest > max_clbs {
            return Err(PartitionError::InfeasibleLibrary {
                reason: format!(
                    "a single cell of area {biggest} exceeds the largest usable device capacity {max_clbs}"
                ),
                attempts: 0,
            });
        }
    }

    let recorder = clock.recorder();
    if recorder.enabled(Level::Debug) {
        // The replication-potential distribution d_X(ψ) (paper eq. 5) of
        // the input — deterministic per circuit, emitted once per run.
        let bins: Vec<u64> = hg
            .replication_potential_distribution()
            .into_iter()
            .map(|n| n as u64)
            .collect();
        recorder.record(&Event::hist("paper", "d_psi", bins).at(Level::Debug));
    }
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut best: Option<BestCandidate> = None;
    let mut degradation = Degradation {
        requested: cfg.candidates,
        ..Degradation::default()
    };
    let mut attempts = 0usize;
    let mut feasible = 0usize;
    let mut floor_relaxed = false;

    // Rung 0: exactly as configured.
    let s = run_stage(
        hg,
        cfg,
        &cfg.library,
        false,
        &mut rng,
        clock,
        cfg.max_attempts,
        0,
        &mut best,
        "base",
    );
    attempts += s.attempts;
    feasible += s.feasible;

    // The ladder only climbs while escalation is enabled, nothing
    // feasible exists and work is still allowed; each rung is recorded
    // whether or not it rescues the run, so the report shows everything
    // that was tried.
    let escalate_event = |rung: &'static str, attempts_so_far: usize| {
        if recorder.enabled(Level::Info) {
            recorder.record(
                &Event::new("kway", "escalate", Level::Info)
                    .field("rung", rung)
                    .field("attempts_so_far", attempts_so_far),
            );
        }
    };
    if cfg.escalate && best.is_none() && clock.stopped().is_none() {
        escalate_event("reseed", attempts);
        degradation.relaxations.push(Relaxation::Reseeded {
            extra_attempts: cfg.max_attempts,
        });
        let mut rng2 = Rng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
        let s = run_stage(
            hg,
            cfg,
            &cfg.library,
            false,
            &mut rng2,
            clock,
            cfg.max_attempts,
            0,
            &mut best,
            "reseed",
        );
        attempts += s.attempts;
        feasible += s.feasible;
    }
    let relaxed = if cfg.escalate && best.is_none() && clock.stopped().is_none() {
        escalate_event("relaxed_floor", attempts);
        degradation.relaxations.push(Relaxation::RelaxedFloor);
        floor_relaxed = true;
        let relaxed = cfg.library.relaxed_floor();
        let s = run_stage(
            hg,
            cfg,
            &relaxed,
            false,
            &mut rng,
            clock,
            cfg.max_attempts,
            0,
            &mut best,
            "relaxed_floor",
        );
        attempts += s.attempts;
        feasible += s.feasible;
        Some(relaxed)
    } else {
        None
    };
    if cfg.escalate && best.is_none() && clock.stopped().is_none() {
        escalate_event("larger_device", attempts);
        degradation.relaxations.push(Relaxation::NextLargerDevice);
        let lib = relaxed.as_ref().unwrap_or(&cfg.library);
        let s = run_stage(
            hg,
            cfg,
            lib,
            true,
            &mut rng,
            clock,
            cfg.max_attempts,
            0,
            &mut best,
            "larger_device",
        );
        attempts += s.attempts;
        feasible += s.feasible;
    }

    degradation.completed = feasible.min(cfg.candidates);
    degradation.budget_exhausted = clock.stopped() == Some(StopReason::BudgetExhausted);
    degradation.fault_injected = clock.stopped() == Some(StopReason::FaultInjected);

    if recorder.enabled(Level::Debug) {
        // Budget consumption at the end of the attempt pools. Note the
        // clock may be shared across portfolio tasks, in which case
        // these are pool-wide totals.
        recorder.record(
            &Event::new("kway", "budget", Level::Debug)
                .field("moves", clock.moves())
                .field("passes", clock.passes())
                .field("attempts", clock.attempts())
                .field("stopped", format!("{:?}", clock.stopped())),
        );
    }

    let Some(mut b) = best else {
        return Err(match clock.stopped() {
            Some(StopReason::BudgetExhausted) => PartitionError::BudgetExhausted {
                budget: cfg.budget.describe(),
                completed: attempts,
            },
            Some(StopReason::FaultInjected) => PartitionError::BudgetExhausted {
                budget: "injected fault".into(),
                completed: attempts,
            },
            Some(StopReason::Cancelled) => PartitionError::BudgetExhausted {
                budget: "cancelled by the portfolio".into(),
                completed: attempts,
            },
            _ => PartitionError::InfeasibleLibrary {
                reason: if cfg.escalate {
                    "no feasible k-way partition found, even after reseeding, \
                     floor relaxation and larger-device escalation"
                        .into()
                } else {
                    "no feasible k-way partition found in the base attempt pool \
                     (escalation disabled)"
                        .to_string()
                },
                attempts,
            },
        });
    };

    if cfg.refine {
        let lib = if floor_relaxed {
            relaxed.as_ref().unwrap_or(&cfg.library)
        } else {
            &cfg.library
        };
        crate::refine::unreplicate_cleanup(hg, &mut b.placement, &b.devices, lib);
        crate::refine::refine_kway(hg, &mut b.placement, &b.devices, lib, 4);
        b.evaluation = try_evaluate(hg, &b.placement, lib, &b.devices)
            .map_err(|e| PartitionError::internal(e.to_string()))?;
    }
    if recorder.enabled(Level::Info) {
        recorder.record(
            &Event::new("kway", "done", Level::Info)
                .field("cost", b.evaluation.total_cost)
                .field("kbar", b.evaluation.avg_iob_util)
                .field("k", b.evaluation.k())
                .field("attempts", attempts)
                .field("feasible", feasible)
                .field("relaxations", degradation.relaxations.len())
                .field("degraded", degradation.is_degraded()),
        );
    }
    let result = KWayResult {
        placement: b.placement,
        devices: b.devices,
        evaluation: b.evaluation,
        attempts,
        feasible_found: feasible,
        degradation,
    };
    // Debug builds re-derive every claim through the independent
    // verifier before handing the result out; a violation here means
    // the incremental bookkeeping and the from-scratch re-evaluation
    // disagree, which is always a bug.
    if cfg!(debug_assertions) {
        let cert = result.certificate(hg, &cfg.library, cfg.seed);
        let report = netpart_verify::verify(hg, &cert);
        if recorder.enabled(Level::Debug) {
            recorder.record(
                &Event::new("verify", "report", Level::Debug)
                    .field("violations", report.violations().len() as u64)
                    .field("clean", report.is_clean())
                    .field("cut", report.recomputed().cut),
            );
        }
        debug_assert!(report.is_clean(), "post-run certificate self-check: {report}");
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_netlist::{generate, GeneratorConfig};
    use netpart_techmap::{map, MapperConfig};

    fn mapped(gates: usize, dffs: usize, seed: u64) -> Hypergraph {
        let nl = generate(&GeneratorConfig::new(gates).with_dff(dffs).with_seed(seed));
        map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl)
    }

    fn quick_cfg() -> KWayConfig {
        KWayConfig::new(DeviceLibrary::xc3000())
            .with_candidates(4)
            .with_max_attempts(200)
            .with_seed(1)
            .with_max_passes(8)
    }

    #[test]
    fn small_circuit_lands_on_one_device() {
        let hg = mapped(120, 0, 3);
        assert!(hg.total_area() <= 304, "fixture should fit one XC3090");
        let res = kway_partition(&hg, &quick_cfg()).unwrap();
        assert_eq!(res.devices.len(), 1);
        assert!(res.evaluation.feasible);
        res.placement.validate(&hg).unwrap();
    }

    /// The 2000-gate fixture needs the full escalation ladder (two
    /// attempt pools fail, the relaxed-floor rung rescues it), ~30 s.
    /// `large_circuit_budgeted_returns_promptly` is the fast default
    /// variant; run this one with `cargo test -- --ignored`.
    #[test]
    #[ignore = "slow (~30s): climbs the full escalation ladder"]
    fn large_circuit_uses_multiple_devices_feasibly() {
        let hg = mapped(2000, 100, 5);
        let res = kway_partition(&hg, &quick_cfg()).unwrap();
        assert!(res.devices.len() >= 2);
        assert!(res.evaluation.feasible);
        res.placement.validate(&hg).unwrap();
        // Every part respects its device bounds, re-checked against the
        // library actually used (relaxed if the ladder said so).
        let lib = if res
            .degradation
            .relaxations
            .contains(&Relaxation::RelaxedFloor)
        {
            quick_cfg().library.relaxed_floor()
        } else {
            quick_cfg().library
        };
        for pe in &res.evaluation.parts {
            let d = lib.device(pe.device);
            assert!(d.fits(pe.clbs, pe.terminals), "part {pe:?} infeasible");
        }
    }

    /// Fast-budget variant of the ignored ladder test above: the same
    /// hard fixture under a wall budget must come back within twice the
    /// budget (plus scheduling slack) with either a typed error or a
    /// degraded-but-feasible result — never a hang or a panic.
    #[test]
    fn large_circuit_budgeted_returns_promptly() {
        let hg = mapped(2000, 100, 5);
        let budget_ms = 1500u64;
        let cfg = quick_cfg().with_budget(Budget::wall_ms(budget_ms));
        let t0 = std::time::Instant::now();
        let out = kway_partition(&hg, &cfg);
        let elapsed = t0.elapsed().as_millis() as u64;
        assert!(
            elapsed <= 2 * budget_ms + 500,
            "budgeted run overshot: {elapsed}ms for a {budget_ms}ms budget"
        );
        match out {
            Ok(res) => {
                assert!(res.evaluation.feasible);
                assert!(res.degradation.is_degraded());
            }
            Err(PartitionError::BudgetExhausted { .. }) => {}
            other => panic!("expected budget outcome, got {other:?}"),
        }
    }

    #[test]
    fn replication_does_not_break_feasibility() {
        let hg = mapped(1200, 60, 7);
        let cfg = quick_cfg().with_replication(ReplicationMode::functional(0));
        let res = kway_partition(&hg, &cfg).unwrap();
        assert!(res.evaluation.feasible);
        res.placement.validate(&hg).unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let hg = mapped(800, 40, 11);
        let a = kway_partition(&hg, &quick_cfg()).unwrap();
        let b = kway_partition(&hg, &quick_cfg()).unwrap();
        assert_eq!(a.evaluation.total_cost, b.evaluation.total_cost);
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.degradation, b.degradation);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn traditional_mode_rejected() {
        let _ = quick_cfg().with_replication(ReplicationMode::Traditional);
    }

    #[test]
    fn traditional_mode_in_struct_is_invalid_input() {
        let hg = mapped(100, 0, 1);
        let cfg = KWayConfig {
            replication: ReplicationMode::Traditional,
            ..quick_cfg()
        };
        assert!(matches!(
            kway_partition(&hg, &cfg),
            Err(PartitionError::InvalidInput { .. })
        ));
    }

    #[test]
    fn empty_hypergraph_is_invalid_input() {
        let hg = netpart_hypergraph::HypergraphBuilder::new()
            .finish()
            .unwrap();
        assert!(matches!(
            kway_partition(&hg, &quick_cfg()),
            Err(PartitionError::InvalidInput { .. })
        ));
    }

    #[test]
    fn oversized_cell_is_statically_infeasible() {
        use netpart_fpga::Device;
        let hg = mapped(400, 0, 2);
        // A library whose biggest device holds 3 usable CLBs: even one
        // mapped cell cluster may fit, but the total area never will —
        // and once pieces shrink to single cells, terminals kill it. The
        // static check fires only when a single cell exceeds max_clbs;
        // build a library with zero usable capacity instead.
        let lib = DeviceLibrary::new(vec![Device::new("NIL", 10, 10, 1, 0.0, 0.0)]);
        let cfg = KWayConfig {
            library: lib,
            ..quick_cfg()
        };
        match kway_partition(&hg, &cfg) {
            Err(PartitionError::InfeasibleLibrary { attempts, .. }) => assert_eq!(attempts, 0),
            other => panic!("expected static InfeasibleLibrary, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhausted_before_any_feasible_is_typed() {
        let hg = mapped(800, 40, 3);
        let cfg = quick_cfg().with_budget(Budget::wall_ms(0));
        match kway_partition(&hg, &cfg) {
            Err(PartitionError::BudgetExhausted { .. }) => {}
            Ok(res) => assert!(res.degradation.is_degraded(), "a rescue must be reported"),
            other => panic!("expected BudgetExhausted or degraded Ok, got {other:?}"),
        }
    }

    #[test]
    fn fault_after_attempts_is_typed_or_degraded() {
        let hg = mapped(800, 40, 3);
        let cfg = quick_cfg().with_fault(FaultPlan::none().kill_after_attempts(1));
        match kway_partition(&hg, &cfg) {
            Err(PartitionError::BudgetExhausted { budget, .. }) => {
                assert_eq!(budget, "injected fault");
            }
            Ok(res) => assert!(res.degradation.fault_injected),
            other => panic!("expected fault outcome, got {other:?}"),
        }
    }
}
#[cfg(test)]
mod refine_flag_tests {
    use super::*;
    use netpart_netlist::{generate, GeneratorConfig};
    use netpart_techmap::{map, MapperConfig};

    #[test]
    fn refine_flag_improves_or_matches_interconnect() {
        let nl = generate(&GeneratorConfig::new(1200).with_dff(60).with_seed(13));
        let hg = map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl);
        let base = KWayConfig::new(DeviceLibrary::xc3000())
            .with_candidates(2)
            .with_seed(3)
            .with_max_passes(8)
            .with_replication(crate::ReplicationMode::functional(1));
        let plain = kway_partition(&hg, &base).unwrap();
        let refined = kway_partition(&hg, &base.clone().with_refine(true)).unwrap();
        assert!(refined.evaluation.feasible);
        assert!(refined.evaluation.avg_iob_util <= plain.evaluation.avg_iob_util + 1e-9);
        assert_eq!(refined.evaluation.total_cost, plain.evaluation.total_cost);
        refined.placement.validate(&hg).unwrap();
    }
}
