//! Sub-circuit extraction for the recursive k-way partitioner.
//!
//! After a carve step assigns one chunk of the circuit to a device, the
//! *rest* becomes a circuit of its own: copies of cells placed in the
//! rest part (with their kept outputs and connected inputs), plus pseudo
//! I/O pads standing in for every net that crosses to the already-carved
//! chunk. The paper's recursive formulation (\[3\], §I) partitions this
//! remainder again until it fits a device.

use netpart_hypergraph::{
    AdjacencyMatrix, BitVec, CellId, CellKind, Hypergraph, HypergraphBuilder, PartId, Pin,
    Placement,
};

/// A derived circuit plus the mapping back to the top-level circuit.
#[derive(Clone, Debug)]
pub struct Extraction {
    /// The derived circuit.
    pub hypergraph: Hypergraph,
    /// For every cell of [`hypergraph`](Self::hypergraph): the top-level
    /// cell it descends from and the top-level output mask its outputs
    /// correspond to, or `None` for a pseudo pad introduced at a cut.
    pub origin: Vec<Option<(CellId, u32)>>,
}

impl Extraction {
    /// The identity extraction of a whole circuit (every cell maps to
    /// itself with all outputs).
    pub fn identity(hg: &Hypergraph) -> Self {
        let origin = hg
            .cells()
            .iter()
            .enumerate()
            .map(|(i, c)| Some((CellId(i as u32), crate::state::full_mask(c.m_outputs()))))
            .collect();
        Extraction {
            hypergraph: hg.clone(),
            origin,
        }
    }
}

/// Projects a copy's current-space output mask into top-level space:
/// bit `i` of `current` selects the `i`-th set bit of `top`.
pub(crate) fn project_mask(top: u32, current: u32) -> u32 {
    let mut out = 0u32;
    let mut top_bits = top;
    let mut i = 0;
    while top_bits != 0 {
        let bit = top_bits & top_bits.wrapping_neg();
        if current & (1 << i) != 0 {
            out |= bit;
        }
        top_bits ^= bit;
        i += 1;
    }
    out
}

/// Extracts the sub-circuit of part `rest` from a placed circuit.
///
/// Every cell copy placed in `rest` becomes a cell of the result, keeping
/// its connected pins only; nets crossing to other parts gain pseudo
/// input/output pads. `origin` maps the current circuit's cells to the
/// top level (compose with [`Extraction::identity`] at the first level).
///
/// Terminal-count note: a crossing net that *also* keeps a real pad in
/// `rest` gets a pseudo pad on top of it, so the extracted circuit
/// counts that net at 2 IOBs where the final global evaluation
/// ([`Placement::part_terminals`]) shares the pad's wire and counts 1.
/// The extraction is only used to *guide* carving, so this slight
/// conservatism is safe; the global evaluation is authoritative.
///
/// # Panics
///
/// Panics if `origin.len() != hg.n_cells()`.
pub fn extract_rest(
    hg: &Hypergraph,
    placement: &Placement,
    rest: PartId,
    origin: &[Option<(CellId, u32)>],
) -> Extraction {
    assert_eq!(origin.len(), hg.n_cells(), "one origin entry per cell");
    let mut b = HypergraphBuilder::new();
    let mut new_origin: Vec<Option<(CellId, u32)>> = Vec::new();

    // (cell, copy index) → (new cell, kept input indices, kept output indices)
    type KeptCopy = (netpart_hypergraph::CellId, Vec<usize>, Vec<usize>);
    let mut kept: Vec<Vec<KeptCopy>> = vec![Vec::new(); hg.n_cells()];

    for c in hg.cell_ids() {
        let cell = hg.cell(c);
        for (ci, copy) in placement.copies(c).iter().enumerate() {
            if copy.part != rest {
                continue;
            }
            let kept_outputs: Vec<usize> = (0..cell.m_outputs())
                .filter(|o| copy.outputs & (1 << o) != 0)
                .collect();
            let kept_inputs: Vec<usize> = (0..cell.n_inputs())
                .filter(|&j| placement.pin_connected(hg, c, ci, Pin::Input(j as u16)))
                .collect();
            let adj = cell.adjacency();
            let rows: Vec<BitVec> = kept_outputs
                .iter()
                .map(|&o| {
                    let mut row = BitVec::zeros(kept_inputs.len());
                    for (jj, &j) in kept_inputs.iter().enumerate() {
                        if !cell.is_terminal() && adj.depends(o, j) {
                            row.set(jj, true);
                        }
                    }
                    row
                })
                .collect();
            let new_adj = if cell.is_terminal() {
                AdjacencyMatrix::pad()
            } else {
                AdjacencyMatrix::from_bitvec_rows(kept_inputs.len(), rows)
            };
            let id = b.add_cell(
                cell.name().to_string(),
                cell.kind(),
                kept_inputs.len(),
                kept_outputs.len(),
                new_adj,
            );
            new_origin.push(
                origin[c.index()]
                    .map(|(top, top_mask)| (top, project_mask(top_mask, copy.outputs))),
            );
            kept[c.index()].push((id, kept_inputs, kept_outputs));
        }
    }

    // Wire nets.
    for nid in hg.net_ids() {
        let net = hg.net(nid);
        // The parts the net's connected endpoints touch.
        let parts = {
            let mut v: Vec<PartId> = Vec::new();
            for ep in net.endpoints() {
                v.extend(placement.pin_parts(hg, ep.cell, ep.pin));
            }
            v.sort_unstable();
            v.dedup();
            v
        };
        if !parts.contains(&rest) {
            continue; // net lives entirely in carved parts
        }
        let touches_elsewhere = parts.iter().any(|&p| p != rest);

        // Internal driver: the driver pin connected on a rest copy.
        let drv = net.driver();
        let Pin::Output(o) = drv.pin else {
            unreachable!("drivers are output pins")
        };
        let mut internal_driver: Option<(netpart_hypergraph::CellId, usize)> = None;
        for (id, _ins, outs) in &kept[drv.cell.index()] {
            if let Some(pos) = outs.iter().position(|&oo| oo == o as usize) {
                internal_driver = Some((*id, pos));
            }
        }

        // Collect internal sinks: (new cell, new input pin).
        let mut internal_sinks: Vec<(netpart_hypergraph::CellId, usize)> = Vec::new();
        for ep in net.sinks() {
            let Pin::Input(j) = ep.pin else {
                unreachable!("sinks are input pins")
            };
            for (id, ins, _outs) in &kept[ep.cell.index()] {
                if let Some(pos) = ins.iter().position(|&jj| jj == j as usize) {
                    internal_sinks.push((*id, pos));
                }
            }
        }

        if internal_driver.is_none() && internal_sinks.is_empty() {
            continue; // touches rest only via disconnected pins — impossible
        }

        let n = b.add_net(net.name().to_string());
        match internal_driver {
            Some((id, pos)) => {
                b.connect_output(n, id, pos).expect("fresh output pin");
                if touches_elsewhere {
                    // Export to a carved device: pseudo output pad.
                    let pad = b.add_cell(
                        format!("xout_{}", net.name()),
                        CellKind::output_pad(),
                        1,
                        0,
                        AdjacencyMatrix::pad(),
                    );
                    new_origin.push(None);
                    b.connect_input(n, pad, 0).expect("fresh pad pin");
                }
            }
            None => {
                // Import from a carved device: pseudo input pad.
                let pad = b.add_cell(
                    format!("xin_{}", net.name()),
                    CellKind::input_pad(),
                    0,
                    1,
                    AdjacencyMatrix::pad(),
                );
                new_origin.push(None);
                b.connect_output(n, pad, 0).expect("fresh pad pin");
            }
        }
        for (id, pos) in internal_sinks {
            b.connect_input(n, id, pos).expect("fresh input pin");
        }
    }

    let hypergraph = b.finish().expect("extracted circuit is consistent");
    Extraction {
        hypergraph,
        origin: new_origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_hypergraph::CellId;

    #[test]
    fn project_mask_selects_bits() {
        // top mask 0b1101 has set bits at {0,2,3}; current bit i selects
        // the i-th of those.
        assert_eq!(project_mask(0b1101, 0b001), 0b0001);
        assert_eq!(project_mask(0b1101, 0b010), 0b0100);
        assert_eq!(project_mask(0b1101, 0b100), 0b1000);
        assert_eq!(project_mask(0b1101, 0b111), 0b1101);
        assert_eq!(project_mask(0b1101, 0), 0);
    }

    /// Fig.-1-style fixture: 3 input pads, one 2-output cell, 2 output
    /// pads.
    fn fixture() -> (Hypergraph, CellId) {
        let mut b = HypergraphBuilder::new();
        let pads: Vec<_> = ["a", "b", "c"]
            .iter()
            .map(|n| b.add_cell(*n, CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad()))
            .collect();
        let m = b.add_cell(
            "M",
            CellKind::logic(1),
            3,
            2,
            AdjacencyMatrix::from_rows(3, &[&[0, 1], &[1, 2]]),
        );
        let px = b.add_cell("X", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        let py = b.add_cell("Y", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        for (i, name) in ["na", "nb", "nc"].iter().enumerate() {
            let n = b.add_net(*name);
            b.connect_output(n, pads[i], 0).unwrap();
            b.connect_input(n, m, i).unwrap();
        }
        let nx = b.add_net("nx");
        b.connect_output(nx, m, 0).unwrap();
        b.connect_input(nx, px, 0).unwrap();
        let ny = b.add_net("ny");
        b.connect_output(ny, m, 1).unwrap();
        b.connect_input(ny, py, 0).unwrap();
        (b.finish().unwrap(), m)
    }

    #[test]
    fn identity_extraction_maps_cells() {
        let (hg, m) = fixture();
        let e = Extraction::identity(&hg);
        assert_eq!(e.hypergraph.n_cells(), hg.n_cells());
        assert_eq!(e.origin[m.index()], Some((m, 0b11)));
    }

    #[test]
    fn extract_rest_introduces_pseudo_pads() {
        let (hg, m) = fixture();
        let mut p = Placement::new_uniform(&hg, 2, PartId(1));
        // Chunk (part 0): pads a and X; rest: everything else.
        p.place(CellId(0), PartId(0));
        p.place(CellId(4), PartId(0));
        let e = extract_rest(&hg, &p, PartId(1), &Extraction::identity(&hg).origin);
        let hg2 = &e.hypergraph;
        // Rest keeps: pads b, c, M, Y + pseudo pads for na (import) and nx
        // (export).
        assert_eq!(hg2.n_cells(), 6);
        let names: Vec<&str> = hg2.cells().iter().map(|c| c.name()).collect();
        assert!(names.contains(&"xin_na"));
        assert!(names.contains(&"xout_nx"));
        // M keeps both outputs, origin intact.
        let m2 = hg2
            .cells()
            .iter()
            .position(|c| c.name() == "M")
            .map(|i| CellId(i as u32))
            .unwrap();
        assert_eq!(e.origin[m2.index()], Some((m, 0b11)));
        // Pseudo pads have no origin.
        let xin = hg2
            .cells()
            .iter()
            .position(|c| c.name() == "xin_na")
            .unwrap();
        assert_eq!(e.origin[xin], None);
    }

    #[test]
    fn extract_rest_of_replicated_cell_keeps_partial_outputs() {
        let (hg, m) = fixture();
        let mut p = Placement::new_uniform(&hg, 2, PartId(1));
        // Chunk gets the replica keeping X (output 0) plus pads a and X.
        p.replicate(&hg, m, PartId(0), 0b01).unwrap();
        p.place(CellId(0), PartId(0));
        p.place(CellId(4), PartId(0));
        let e = extract_rest(&hg, &p, PartId(1), &Extraction::identity(&hg).origin);
        let hg2 = &e.hypergraph;
        let m2 = hg2
            .cells()
            .iter()
            .position(|c| c.name() == "M")
            .map(|i| CellId(i as u32))
            .unwrap();
        let cell = hg2.cell(m2);
        // Rest copy keeps only Y and its inputs {b, c}.
        assert_eq!(cell.m_outputs(), 1);
        assert_eq!(cell.n_inputs(), 2);
        assert_eq!(e.origin[m2.index()], Some((m, 0b10)));
        // na is not imported: the rest copy floats input a.
        assert!(!hg2.cells().iter().any(|c| c.name() == "xin_na"));
        // nb is shared: internal pad b drives it; it also feeds the chunk
        // copy, so it must be exported.
        assert!(hg2.cells().iter().any(|c| c.name() == "xout_nb"));
    }
}
