//! Multi-start harness: the paper's Table III methodology (20 randomized
//! bipartitioning runs per circuit, reporting best and average cut).

use crate::config::BipartitionConfig;
use crate::fm::{bipartition, BipartitionResult};
use netpart_hypergraph::Hypergraph;

/// Aggregate statistics over repeated randomized runs.
#[derive(Clone, Debug)]
pub struct MultiRunStats {
    /// Every run's result, in seed order.
    pub results: Vec<BipartitionResult>,
    /// Index of the best (lowest-cut balanced) run.
    pub best_index: usize,
}

impl MultiRunStats {
    /// The best run's result.
    pub fn best(&self) -> &BipartitionResult {
        &self.results[self.best_index]
    }

    /// The smallest cut over all balanced runs.
    pub fn best_cut(&self) -> usize {
        self.best().cut
    }

    /// The mean cut over all balanced runs.
    pub fn avg_cut(&self) -> f64 {
        let balanced: Vec<_> = self.results.iter().filter(|r| r.balanced).collect();
        if balanced.is_empty() {
            return f64::NAN;
        }
        balanced.iter().map(|r| r.cut as f64).sum::<f64>() / balanced.len() as f64
    }

    /// The mean number of replicated cells over balanced runs.
    pub fn avg_replicated(&self) -> f64 {
        let balanced: Vec<_> = self.results.iter().filter(|r| r.balanced).collect();
        if balanced.is_empty() {
            return f64::NAN;
        }
        balanced.iter().map(|r| r.replicated_cells as f64).sum::<f64>() / balanced.len() as f64
    }
}

/// Runs `n` bipartitions with seeds `base.seed`, `base.seed + 1`, … and
/// collects statistics.
///
/// # Panics
///
/// Panics if `n == 0` or no run achieves balance (pathological bounds).
pub fn run_many(hg: &Hypergraph, base: &BipartitionConfig, n: usize) -> MultiRunStats {
    assert!(n > 0, "at least one run");
    let mut results = Vec::with_capacity(n);
    for i in 0..n {
        let cfg = base.clone().with_seed(base.seed.wrapping_add(i as u64));
        results.push(bipartition(hg, &cfg));
    }
    let best_index = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.balanced)
        .min_by_key(|(_, r)| r.cut)
        .map(|(i, _)| i)
        .expect("at least one balanced run");
    MultiRunStats {
        results,
        best_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicationMode;
    use netpart_netlist::{generate, GeneratorConfig};
    use netpart_techmap::{map, MapperConfig};

    fn mapped(gates: usize, seed: u64) -> Hypergraph {
        let nl = generate(&GeneratorConfig::new(gates).with_seed(seed).with_dff(20));
        map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl)
    }

    #[test]
    fn stats_aggregate_over_runs() {
        let hg = mapped(300, 2);
        let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(10);
        let stats = run_many(&hg, &cfg, 5);
        assert_eq!(stats.results.len(), 5);
        assert!(stats.best_cut() as f64 <= stats.avg_cut());
        assert!(stats.best().balanced);
        assert_eq!(stats.avg_replicated(), 0.0);
    }

    #[test]
    fn replication_beats_plain_on_average() {
        let hg = mapped(400, 6);
        let base = BipartitionConfig::equal(&hg, 0.1).with_seed(1);
        let plain = run_many(&hg, &base, 5);
        let repl = run_many(
            &hg,
            &base.clone().with_replication(ReplicationMode::functional(0)),
            5,
        );
        assert!(
            repl.avg_cut() <= plain.avg_cut(),
            "functional replication should help on average: {} vs {}",
            repl.avg_cut(),
            plain.avg_cut()
        );
    }
}
