//! Multi-start harness: the paper's Table III methodology (20 randomized
//! bipartitioning runs per circuit, reporting best and average cut).
//!
//! The harness shares one [`Budget`](crate::Budget) across all starts:
//! the first start always runs to completion (so a usable solution
//! exists whenever one is reachable at all), later starts are skipped
//! once the budget trips, and the result carries a
//! [`Degradation`] report saying how many starts actually ran.

use crate::budget::RunClock;
use crate::config::BipartitionConfig;
use crate::error::{Degradation, PartitionError, StopReason};
use crate::fm::{bipartition_with_clock, BipartitionResult};
use netpart_hypergraph::Hypergraph;

/// Aggregate statistics over repeated randomized runs.
#[derive(Clone, Debug)]
pub struct MultiRunStats {
    /// Every completed run's result, in seed order.
    pub results: Vec<BipartitionResult>,
    /// Index of the best (lowest-cut balanced) run.
    pub best_index: usize,
    /// How the harness degraded from the requested run count, if at all.
    pub degradation: Degradation,
}

impl MultiRunStats {
    /// The best run's result.
    pub fn best(&self) -> &BipartitionResult {
        &self.results[self.best_index]
    }

    /// The smallest cut over all balanced runs.
    pub fn best_cut(&self) -> usize {
        self.best().cut
    }

    /// The mean cut over all balanced runs.
    pub fn avg_cut(&self) -> f64 {
        let balanced: Vec<_> = self.results.iter().filter(|r| r.balanced).collect();
        if balanced.is_empty() {
            return f64::NAN;
        }
        balanced.iter().map(|r| r.cut as f64).sum::<f64>() / balanced.len() as f64
    }

    /// The mean number of replicated cells over balanced runs.
    pub fn avg_replicated(&self) -> f64 {
        let balanced: Vec<_> = self.results.iter().filter(|r| r.balanced).collect();
        if balanced.is_empty() {
            return f64::NAN;
        }
        balanced
            .iter()
            .map(|r| r.replicated_cells as f64)
            .sum::<f64>()
            / balanced.len() as f64
    }

    /// Serializes the best run as an independently checkable
    /// certificate, stamped with its derived seed (`base.seed +
    /// best_index`). `None` when the winner exported no placement.
    pub fn certificate(
        &self,
        hg: &Hypergraph,
        base: &BipartitionConfig,
    ) -> Option<netpart_verify::SolutionCertificate> {
        self.best()
            .certificate(hg, base.seed.wrapping_add(self.best_index as u64))
    }
}

/// Runs the `index`-th start of a multi-start portfolio as one
/// self-contained, `Send`-able unit of work: a single bipartition with
/// seed `base.seed + index` against an externally owned clock.
///
/// This is the primitive the parallel portfolio engine fans across
/// worker threads; [`run_many`] is the sequential composition of these
/// starts over one shared clock. The seed derivation here is the single
/// source of truth — both drivers produce identical per-start results
/// for the same `(hg, base, index)`.
pub fn run_start(
    hg: &Hypergraph,
    base: &BipartitionConfig,
    index: u64,
    clock: &RunClock,
) -> BipartitionResult {
    let cfg = base.clone().with_seed(base.seed.wrapping_add(index));
    bipartition_with_clock(hg, &cfg, clock)
}

/// Runs up to `n` bipartitions with seeds `base.seed`, `base.seed + 1`, …
/// and collects statistics.
///
/// The budget in `base` covers the whole harness, not each start. The
/// first start always completes; once the budget (or an injected fault)
/// trips, remaining starts are skipped and
/// [`MultiRunStats::degradation`] reports the shortfall.
///
/// # Errors
///
/// * [`PartitionError::InvalidInput`] if `n == 0` or the hypergraph has
///   no cells.
/// * [`PartitionError::BudgetExhausted`] if the budget tripped before
///   any run achieved balance.
/// * [`PartitionError::InfeasibleLibrary`] if every run completed but
///   none satisfied the area bounds (pathological windows).
pub fn run_many(
    hg: &Hypergraph,
    base: &BipartitionConfig,
    n: usize,
) -> Result<MultiRunStats, PartitionError> {
    if n == 0 {
        return Err(PartitionError::invalid_input(
            "multi-start harness needs at least one run",
        ));
    }
    if hg.n_cells() == 0 {
        return Err(PartitionError::invalid_input(
            "cannot partition an empty hypergraph",
        ));
    }
    let clock = RunClock::new(&base.budget, &base.fault);
    let mut results = Vec::with_capacity(n);
    for i in 0..n {
        // The first start always runs — a budget too small for even one
        // start should still produce that start's (quickly truncated)
        // result rather than nothing.
        if i > 0 && clock.check_wall().is_some() {
            break;
        }
        results.push(run_start(hg, base, i as u64, &clock));
        if clock.stopped().is_some() {
            break;
        }
    }
    let completed = results.len();
    let degradation = Degradation {
        requested: n,
        completed,
        budget_exhausted: clock.stopped() == Some(StopReason::BudgetExhausted),
        fault_injected: clock.stopped() == Some(StopReason::FaultInjected),
        relaxations: Vec::new(),
    };
    let best_index = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.balanced)
        .min_by_key(|(_, r)| r.cut)
        .map(|(i, _)| i);
    match best_index {
        Some(best_index) => Ok(MultiRunStats {
            results,
            best_index,
            degradation,
        }),
        None if degradation.budget_exhausted || degradation.fault_injected => {
            Err(PartitionError::BudgetExhausted {
                budget: base.budget.describe(),
                completed,
            })
        }
        None => Err(PartitionError::InfeasibleLibrary {
            reason: format!(
                "no run satisfied the area bounds [{:?}..{:?}]",
                base.min_area, base.max_area
            ),
            attempts: completed,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::config::ReplicationMode;
    use crate::fault::FaultPlan;
    use netpart_netlist::{generate, GeneratorConfig};
    use netpart_techmap::{map, MapperConfig};

    fn mapped(gates: usize, seed: u64) -> Hypergraph {
        let nl = generate(&GeneratorConfig::new(gates).with_seed(seed).with_dff(20));
        map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl)
    }

    #[test]
    fn stats_aggregate_over_runs() {
        let hg = mapped(300, 2);
        let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(10);
        let stats = run_many(&hg, &cfg, 5).unwrap();
        assert_eq!(stats.results.len(), 5);
        assert!(stats.best_cut() as f64 <= stats.avg_cut());
        assert!(stats.best().balanced);
        assert_eq!(stats.avg_replicated(), 0.0);
        assert!(!stats.degradation.is_degraded());
    }

    #[test]
    fn replication_beats_plain_on_average() {
        let hg = mapped(400, 6);
        let base = BipartitionConfig::equal(&hg, 0.1).with_seed(1);
        let plain = run_many(&hg, &base, 5).unwrap();
        let repl = run_many(
            &hg,
            &base
                .clone()
                .with_replication(ReplicationMode::functional(0)),
            5,
        )
        .unwrap();
        assert!(
            repl.avg_cut() <= plain.avg_cut(),
            "functional replication should help on average: {} vs {}",
            repl.avg_cut(),
            plain.avg_cut()
        );
    }

    #[test]
    fn zero_runs_is_invalid_input() {
        let hg = mapped(100, 1);
        let cfg = BipartitionConfig::equal(&hg, 0.1);
        assert!(matches!(
            run_many(&hg, &cfg, 0),
            Err(PartitionError::InvalidInput { .. })
        ));
    }

    #[test]
    fn impossible_bounds_are_infeasible_not_a_panic() {
        let hg = mapped(100, 1);
        // Both sides must exceed the total area: unsatisfiable.
        let total = hg.total_area();
        let cfg = BipartitionConfig::bounded([total, total], [2 * total, 2 * total]);
        match run_many(&hg, &cfg, 3) {
            Err(PartitionError::InfeasibleLibrary { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected InfeasibleLibrary, got {other:?}"),
        }
    }

    #[test]
    fn zero_wall_budget_still_completes_one_start() {
        let hg = mapped(200, 3);
        let cfg = BipartitionConfig::equal(&hg, 0.1).with_budget(Budget::wall_ms(0));
        let stats = run_many(&hg, &cfg, 20).unwrap();
        assert_eq!(stats.results.len(), 1, "exactly the guaranteed first start");
        assert!(stats.degradation.is_degraded());
        assert!(stats.degradation.budget_exhausted);
        assert_eq!(stats.degradation.completed, 1);
    }

    #[test]
    fn fault_mid_harness_returns_best_so_far() {
        let hg = mapped(200, 3);
        // Generous move allowance: let a couple of starts finish, then die.
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_fault(FaultPlan::none().kill_after_moves(3 * hg.n_cells() as u64));
        let stats = run_many(&hg, &cfg, 20).unwrap();
        assert!(stats.results.len() < 20);
        assert!(stats.degradation.fault_injected);
        assert!(stats.best().balanced);
    }
}
