//! Bipartitioning configuration.

use crate::budget::Budget;
use crate::fault::FaultPlan;
use netpart_hypergraph::Hypergraph;

/// Which replication moves the bipartitioner may perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ReplicationMode {
    /// Plain FM: single-cell moves only (the baseline of \[3\]).
    None,
    /// Traditional (Kring–Newton-style) replication: the replica connects
    /// every pin of the original (gain eq. 8).
    Traditional,
    /// Functional replication (the paper's contribution): the replica
    /// keeps one output and only the inputs that output depends on; cells
    /// qualify when their replication potential `ψ` is at least
    /// `threshold` (the paper's `T`, eq. 6).
    Functional {
        /// The threshold replication potential `T`; 0 admits every
        /// multi-output cell.
        threshold: u32,
    },
}

impl ReplicationMode {
    /// Functional replication with threshold `t`.
    pub fn functional(t: u32) -> Self {
        ReplicationMode::Functional { threshold: t }
    }

    /// Returns `true` if any replication move is enabled.
    pub fn replicates(self) -> bool {
        !matches!(self, ReplicationMode::None)
    }
}

/// How the FM pass selects the next move to try.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SelectionStrategy {
    /// The classic FM gain-bucket ladder with incremental delta updates
    /// — linear-time gain maintenance, the default.
    #[default]
    GainBuckets,
    /// A lazy max-heap that re-derives every touched neighbor's best
    /// move after each applied move. Kept as the benchmark baseline the
    /// `fm_pass` bench compares against.
    LazyHeap,
}

/// Configuration of one bipartitioning run.
///
/// Construct with [`BipartitionConfig::equal`] (the paper's first
/// experiment: two equal-sized halves) or
/// [`BipartitionConfig::bounded`] (explicit per-side area windows, used
/// by the k-way carver), then adjust with the builder methods.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BipartitionConfig {
    /// Inclusive lower area bound per side.
    pub min_area: [u64; 2],
    /// Inclusive upper area bound per side.
    pub max_area: [u64; 2],
    /// Replication moves enabled.
    pub replication: ReplicationMode,
    /// Maximum FM passes (each pass is a full lock-all-cells sweep with
    /// rollback to the best balanced prefix).
    pub max_passes: usize,
    /// Seed for the initial random placement.
    pub seed: u64,
    /// Per-side objective weight for terminal (pad) cells: a pad on side
    /// `s` costs `terminal_weight[s]` on top of the cut. The k-way carver
    /// weights the chunk side to relieve its IOB budget; the equal-halves
    /// experiment leaves both at 0 ("completely relaxing the terminal
    /// constraints", §IV).
    pub terminal_weight: [i64; 2],
    /// Cap on the total area added by replication (None = only the side
    /// bounds limit growth). The k-way carver uses a small budget so
    /// replicas do not inflate the device count.
    pub max_growth: Option<u64>,
    /// Work limits for the run; when a limit trips mid-run the
    /// bipartitioner keeps its best state so far and reports the stop in
    /// [`BipartitionResult::stop`](crate::BipartitionResult::stop)
    /// instead of aborting. [`Budget::none`] by default.
    pub budget: Budget,
    /// Deterministic fault-injection plan (testing hook); see
    /// [`FaultPlan`]. [`FaultPlan::none`] by default.
    pub fault: FaultPlan,
    /// Move-selection structure of the FM pass;
    /// [`SelectionStrategy::GainBuckets`] by default.
    #[cfg_attr(feature = "serde", serde(default))]
    pub selection: SelectionStrategy,
}

impl BipartitionConfig {
    /// Bounds for two equal halves with relative tolerance `epsilon`
    /// (side areas within `total/2 · (1 ± epsilon)`).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative.
    pub fn equal(hg: &Hypergraph, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "tolerance must be non-negative");
        let total = hg.total_area() as f64;
        let lo = (total / 2.0 * (1.0 - epsilon)).floor() as u64;
        let hi = (total / 2.0 * (1.0 + epsilon)).ceil() as u64;
        BipartitionConfig {
            min_area: [lo, lo],
            max_area: [hi.max(1), hi.max(1)],
            replication: ReplicationMode::None,
            max_passes: 16,
            seed: 0,
            terminal_weight: [0, 0],
            max_growth: None,
            budget: Budget::none(),
            fault: FaultPlan::none(),
            selection: SelectionStrategy::default(),
        }
    }

    /// Explicit per-side area windows.
    pub fn bounded(min_area: [u64; 2], max_area: [u64; 2]) -> Self {
        BipartitionConfig {
            min_area,
            max_area,
            replication: ReplicationMode::None,
            max_passes: 16,
            seed: 0,
            terminal_weight: [0, 0],
            max_growth: None,
            budget: Budget::none(),
            fault: FaultPlan::none(),
            selection: SelectionStrategy::default(),
        }
    }

    /// Caps total replication-induced area growth.
    pub fn with_max_growth(mut self, g: Option<u64>) -> Self {
        self.max_growth = g;
        self
    }

    /// Sets the per-side terminal weights.
    pub fn with_terminal_weight(mut self, w: [i64; 2]) -> Self {
        self.terminal_weight = w;
        self
    }

    /// Sets the replication mode.
    pub fn with_replication(mut self, mode: ReplicationMode) -> Self {
        self.replication = mode;
        self
    }

    /// Sets the RNG seed for the initial placement.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the FM pass limit.
    pub fn with_max_passes(mut self, n: usize) -> Self {
        self.max_passes = n.max(1);
        self
    }

    /// Sets the run budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Arms a fault-injection plan (testing hook).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the move-selection strategy of the FM pass.
    pub fn with_selection(mut self, s: SelectionStrategy) -> Self {
        self.selection = s;
        self
    }

    /// Returns `true` if `areas` satisfies both sides' bounds.
    pub fn balanced(&self, areas: [u64; 2]) -> bool {
        (0..2).all(|i| areas[i] >= self.min_area[i] && areas[i] <= self.max_area[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_hypergraph::{AdjacencyMatrix, CellKind, HypergraphBuilder};

    fn ten_cell_graph() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let pi = b.add_cell("pi", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let n = b.add_net("n");
        b.connect_output(n, pi, 0).unwrap();
        for i in 0..10 {
            let c = b.add_cell(
                format!("c{i}"),
                CellKind::logic(1),
                1,
                1,
                AdjacencyMatrix::full(1, 1),
            );
            b.connect_input(n, c, 0).unwrap();
            let out = b.add_net(format!("o{i}"));
            b.connect_output(out, c, 0).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn equal_bounds_bracket_half() {
        let hg = ten_cell_graph();
        let cfg = BipartitionConfig::equal(&hg, 0.2);
        assert_eq!(cfg.min_area, [4, 4]);
        assert_eq!(cfg.max_area, [6, 6]);
        assert!(cfg.balanced([5, 5]));
        assert!(cfg.balanced([4, 6]));
        assert!(!cfg.balanced([3, 7]));
    }

    #[test]
    fn builder_methods() {
        let cfg = BipartitionConfig::bounded([0, 0], [10, 10])
            .with_replication(ReplicationMode::functional(2))
            .with_seed(9)
            .with_max_passes(0);
        assert_eq!(
            cfg.replication,
            ReplicationMode::Functional { threshold: 2 }
        );
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.max_passes, 1, "pass count clamps to at least 1");
        assert!(ReplicationMode::Traditional.replicates());
        assert!(!ReplicationMode::None.replicates());
    }
}
