//! Flat CSR (compressed sparse row) arenas over the hypergraph's
//! pin-level connectivity — the data layout the FM hot path runs on.
//!
//! [`Hypergraph`] keeps per-cell `Vec<NetId>` pin lists and per-net
//! `Vec<Endpoint>` sink lists: convenient to build, but every hot-path
//! query chases a pointer per cell and re-derives the distinct incident
//! nets with a sort+dedup allocation per call. [`CsrGraph`] flattens all
//! of it once per run into contiguous index-range arrays:
//!
//! * `cells → distinct nets` (ascending, exactly the order the old
//!   `incident_nets` sort+dedup produced), with the cell's pins on each
//!   net packed alongside as a sub-range — so a per-net gain evaluation
//!   touches only that net's pins instead of scanning the whole cell;
//! * `nets → distinct cells` in **first-seen endpoint order** (driver
//!   first, then sinks, duplicates dropped at their first occurrence) —
//!   exactly the order the pass loops used to derive with a linear
//!   `seen` scan per move, so neighbor updates keep electing identical
//!   move sequences.
//!
//! Both orders are part of the determinism contract: the CSR port must
//! be byte-identical to the pointer-chasing baseline (golden tables,
//! `tests/csr_differential.rs`), so the arenas encode the traversal
//! orders, not merely the connectivity.

use netpart_hypergraph::{CellId, Hypergraph, NetId, Pin};

/// High bit of a packed pin code: set for output pins.
const OUT_BIT: u32 = 1 << 31;

/// Packs a pin as a `u32` code (bit 31 = output, low bits = pin index).
fn encode_pin(pin: Pin) -> u32 {
    match pin {
        Pin::Input(j) => u32::from(j),
        Pin::Output(o) => OUT_BIT | u32::from(o),
    }
}

/// Decodes a packed pin code.
pub(crate) fn decode_pin(code: u32) -> Pin {
    if code & OUT_BIT != 0 {
        Pin::Output((code & !OUT_BIT) as u16)
    } else {
        Pin::Input(code as u16)
    }
}

/// The flattened connectivity arenas. Immutable once built; shared
/// across pass loops, snapshots and worker threads via `Arc`.
#[derive(Debug)]
pub(crate) struct CsrGraph {
    /// `cells → distinct nets` range bounds (`len = n_cells + 1`).
    cell_net_start: Vec<u32>,
    /// Distinct incident nets per cell, ascending within each cell.
    cell_nets: Vec<NetId>,
    /// Pin sub-range bounds per `(cell, net)` group, indexed parallel
    /// to `cell_nets` (`len = cell_nets.len() + 1`).
    group_start: Vec<u32>,
    /// Packed pin codes ([`encode_pin`]) grouped by `(cell, net)`,
    /// inputs before outputs in pin order within each group.
    group_pins: Vec<u32>,
    /// `nets → distinct cells` range bounds (`len = n_nets + 1`).
    net_cell_start: Vec<u32>,
    /// Distinct cells per net in first-seen endpoint order.
    net_cells: Vec<CellId>,
    /// Maximum distinct-incident-net count over all cells (the FM
    /// in-range gain bound `p_max`).
    max_cell_degree: usize,
}

impl CsrGraph {
    /// Flattens `hg` into CSR arenas. `O(pins log pins)` once per run.
    pub(crate) fn build(hg: &Hypergraph) -> Self {
        let n = hg.n_cells();
        let mut cell_net_start = Vec::with_capacity(n + 1);
        cell_net_start.push(0u32);
        let mut cell_nets: Vec<NetId> = Vec::new();
        let mut group_start = vec![0u32];
        let mut group_pins: Vec<u32> = Vec::new();
        let mut pairs: Vec<(NetId, u32)> = Vec::new();
        let mut max_cell_degree = 0usize;
        for c in hg.cell_ids() {
            let cell = hg.cell(c);
            pairs.clear();
            pairs.extend(
                cell.input_nets()
                    .iter()
                    .enumerate()
                    .map(|(j, &nt)| (nt, encode_pin(Pin::Input(j as u16)))),
            );
            pairs.extend(
                cell.output_nets()
                    .iter()
                    .enumerate()
                    .map(|(o, &nt)| (nt, encode_pin(Pin::Output(o as u16)))),
            );
            // Stable sort: within one net the pins keep cell-pin order
            // (inputs in pin order, then outputs in pin order).
            pairs.sort_by_key(|&(nt, _)| nt);
            let mut i = 0;
            let first_group = cell_nets.len();
            while i < pairs.len() {
                let nt = pairs[i].0;
                cell_nets.push(nt);
                while i < pairs.len() && pairs[i].0 == nt {
                    group_pins.push(pairs[i].1);
                    i += 1;
                }
                group_start.push(group_pins.len() as u32);
            }
            cell_net_start.push(cell_nets.len() as u32);
            max_cell_degree = max_cell_degree.max(cell_nets.len() - first_group);
        }

        let mut net_cell_start = Vec::with_capacity(hg.n_nets() + 1);
        net_cell_start.push(0u32);
        let mut net_cells: Vec<CellId> = Vec::new();
        // First-seen dedup via a per-cell stamp of the last net that
        // recorded it (no net id equals the sentinel).
        let mut stamp = vec![u32::MAX; n];
        for nt in hg.net_ids() {
            for ep in hg.net(nt).endpoints() {
                if stamp[ep.cell.index()] != nt.0 {
                    stamp[ep.cell.index()] = nt.0;
                    net_cells.push(ep.cell);
                }
            }
            net_cell_start.push(net_cells.len() as u32);
        }

        CsrGraph {
            cell_net_start,
            cell_nets,
            group_start,
            group_pins,
            net_cell_start,
            net_cells,
            max_cell_degree,
        }
    }

    /// The distinct nets incident to `c`, ascending.
    pub(crate) fn nets_of(&self, c: CellId) -> &[NetId] {
        let (s, e) = (
            self.cell_net_start[c.index()] as usize,
            self.cell_net_start[c.index() + 1] as usize,
        );
        &self.cell_nets[s..e]
    }

    /// `(net, packed pins)` groups of `c`, in ascending net order.
    pub(crate) fn groups(&self, c: CellId) -> impl Iterator<Item = (NetId, &[u32])> + '_ {
        let (s, e) = (
            self.cell_net_start[c.index()] as usize,
            self.cell_net_start[c.index() + 1] as usize,
        );
        (s..e).map(move |g| {
            let (ps, pe) = (self.group_start[g] as usize, self.group_start[g + 1] as usize);
            (self.cell_nets[g], &self.group_pins[ps..pe])
        })
    }

    /// The packed pins of `c` on `net` (empty when not incident).
    pub(crate) fn pins_on(&self, c: CellId, net: NetId) -> &[u32] {
        let (s, e) = (
            self.cell_net_start[c.index()] as usize,
            self.cell_net_start[c.index() + 1] as usize,
        );
        match self.cell_nets[s..e].binary_search(&net) {
            Ok(i) => {
                let g = s + i;
                let (ps, pe) = (self.group_start[g] as usize, self.group_start[g + 1] as usize);
                &self.group_pins[ps..pe]
            }
            Err(_) => &[],
        }
    }

    /// The distinct cells on `net` in first-seen endpoint order
    /// (driver's cell first).
    pub(crate) fn cells_of(&self, net: NetId) -> &[CellId] {
        let (s, e) = (
            self.net_cell_start[net.index()] as usize,
            self.net_cell_start[net.index() + 1] as usize,
        );
        &self.net_cells[s..e]
    }

    /// Maximum distinct-incident-net count over all cells (`p_max`).
    pub(crate) fn max_cell_degree(&self) -> usize {
        self.max_cell_degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_hypergraph::{AdjacencyMatrix, CellKind, HypergraphBuilder};

    /// A cell with two pins on one net plus a self-looping net pair,
    /// exercising dedup in both directions.
    fn shared_pin_graph() -> (Hypergraph, CellId, CellId) {
        let mut b = HypergraphBuilder::new();
        let pa = b.add_cell("a", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let d = b.add_cell(
            "D",
            CellKind::logic(1),
            2,
            1,
            AdjacencyMatrix::from_rows(2, &[&[0, 1]]),
        );
        let na = b.add_net("na");
        let nx = b.add_net("nx");
        b.connect_output(na, pa, 0).unwrap();
        b.connect_input(na, d, 0).unwrap();
        b.connect_input(na, d, 1).unwrap();
        b.connect_output(nx, d, 0).unwrap();
        let px = b.add_cell("X", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        b.connect_input(nx, px, 0).unwrap();
        (b.finish().unwrap(), pa, d)
    }

    #[test]
    fn matches_sort_dedup_incident_nets() {
        let (hg, _, d) = shared_pin_graph();
        let csr = CsrGraph::build(&hg);
        for c in hg.cell_ids() {
            let mut nets: Vec<NetId> = hg.cell(c).incident_nets().collect();
            nets.sort_unstable();
            nets.dedup();
            assert_eq!(csr.nets_of(c), nets.as_slice(), "cell {c}");
        }
        assert_eq!(csr.nets_of(d).len(), 2, "na deduped, nx kept");
        assert_eq!(csr.max_cell_degree(), 2);
    }

    #[test]
    fn groups_keep_pin_order_and_cover_all_pins() {
        let (hg, _, d) = shared_pin_graph();
        let csr = CsrGraph::build(&hg);
        let groups: Vec<(NetId, Vec<Pin>)> = csr
            .groups(d)
            .map(|(nt, pins)| (nt, pins.iter().map(|&p| decode_pin(p)).collect()))
            .collect();
        assert_eq!(
            groups,
            vec![
                (NetId(0), vec![Pin::Input(0), Pin::Input(1)]),
                (NetId(1), vec![Pin::Output(0)]),
            ]
        );
        assert_eq!(csr.pins_on(d, NetId(0)).len(), 2);
        assert_eq!(csr.pins_on(d, NetId(1)).len(), 1);
        assert!(csr.pins_on(d, NetId(2)).is_empty(), "not incident");
    }

    #[test]
    fn net_cells_first_seen_driver_first() {
        let (hg, pa, d) = shared_pin_graph();
        let csr = CsrGraph::build(&hg);
        // na: driver pad a, then D (its duplicate sink pin dropped).
        assert_eq!(csr.cells_of(NetId(0)), &[pa, d]);
        // Mirror the old per-move dedup: first-seen endpoint order.
        for nt in hg.net_ids() {
            let mut seen: Vec<CellId> = Vec::new();
            for ep in hg.net(nt).endpoints() {
                if !seen.contains(&ep.cell) {
                    seen.push(ep.cell);
                }
            }
            assert_eq!(csr.cells_of(nt), seen.as_slice(), "net {nt}");
        }
    }
}
