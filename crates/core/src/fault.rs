//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] tells the engine to *pretend* a resource died after a
//! fixed amount of work: the [`RunClock`](crate::RunClock) reports
//! [`StopReason::FaultInjected`](crate::StopReason::FaultInjected) at
//! the configured checkpoint, and the driver must then behave exactly as
//! it would on a real mid-run interruption — return the best solution
//! found so far with a degradation report, or a typed error, but never
//! panic. The fault-injection test harness (`tests/fault_injection.rs`)
//! sweeps kill points across the engine's checkpoints to verify that
//! contract.
//!
//! Plans are plain data and deterministic: the same plan on the same
//! input always kills at the same checkpoint.

/// A deterministic fault-injection plan. [`FaultPlan::none`] (the
/// default) injects nothing.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// Report a fault once this many FM moves have been applied.
    pub kill_after_moves: Option<u64>,
    /// Report a fault once this many FM passes have completed.
    pub kill_after_passes: Option<u64>,
    /// Report a fault once this many k-way carve attempts have started.
    pub kill_after_attempts: Option<u64>,
    /// In a parallel portfolio, make the worker that claims this start
    /// index die before running it (the start is lost, the worker's
    /// thread exits early; the engine must still join cleanly and report
    /// the shortfall).
    pub kill_start: Option<u64>,
    /// In a parallel portfolio, panic inside the worker thread that
    /// claims this start index — exercising the engine's
    /// catch-and-convert contract (a worker panic must surface as a
    /// typed error or degraded result, never a process abort or hang).
    pub panic_in_worker: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether any fault is armed.
    pub fn is_armed(&self) -> bool {
        self.kill_after_moves.is_some()
            || self.kill_after_passes.is_some()
            || self.kill_after_attempts.is_some()
            || self.kill_start.is_some()
            || self.panic_in_worker.is_some()
    }

    /// Arms a kill after `n` applied FM moves.
    pub fn kill_after_moves(mut self, n: u64) -> Self {
        self.kill_after_moves = Some(n);
        self
    }

    /// Arms a kill after `n` completed FM passes.
    pub fn kill_after_passes(mut self, n: u64) -> Self {
        self.kill_after_passes = Some(n);
        self
    }

    /// Arms a kill after `n` k-way carve attempts.
    pub fn kill_after_attempts(mut self, n: u64) -> Self {
        self.kill_after_attempts = Some(n);
        self
    }

    /// Arms a worker death at portfolio start index `i` (engine-level
    /// checkpoint; sequential drivers ignore it).
    pub fn kill_start(mut self, i: u64) -> Self {
        self.kill_start = Some(i);
        self
    }

    /// Arms a deliberate panic in the worker that claims portfolio start
    /// index `i` (engine-level checkpoint; sequential drivers ignore it).
    pub fn panic_in_worker(mut self, i: u64) -> Self {
        self.panic_in_worker = Some(i);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_arm_the_plan() {
        assert!(!FaultPlan::none().is_armed());
        assert!(FaultPlan::none().kill_after_moves(1).is_armed());
        assert!(FaultPlan::none().kill_after_passes(2).is_armed());
        assert!(FaultPlan::none().kill_after_attempts(3).is_armed());
        assert!(FaultPlan::none().kill_start(0).is_armed());
        assert!(FaultPlan::none().panic_in_worker(1).is_armed());
        let p = FaultPlan::none().kill_after_moves(7).kill_after_attempts(9);
        assert_eq!(p.kill_after_moves, Some(7));
        assert_eq!(p.kill_after_passes, None);
        assert_eq!(p.kill_after_attempts, Some(9));
        assert_eq!(p.kill_start, None);
        assert_eq!(p.panic_in_worker, None);
    }
}
