//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] tells the engine to *pretend* a resource died after a
//! fixed amount of work: the [`RunClock`](crate::RunClock) reports
//! [`StopReason::FaultInjected`](crate::StopReason::FaultInjected) at
//! the configured checkpoint, and the driver must then behave exactly as
//! it would on a real mid-run interruption — return the best solution
//! found so far with a degradation report, or a typed error, but never
//! panic. The fault-injection test harness (`tests/fault_injection.rs`)
//! sweeps kill points across the engine's checkpoints to verify that
//! contract.
//!
//! Plans are plain data and deterministic: the same plan on the same
//! input always kills at the same checkpoint.

/// A deterministic fault-injection plan. [`FaultPlan::none`] (the
/// default) injects nothing.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// Report a fault once this many FM moves have been applied.
    pub kill_after_moves: Option<u64>,
    /// Report a fault once this many FM passes have completed.
    pub kill_after_passes: Option<u64>,
    /// Report a fault once this many k-way carve attempts have started.
    pub kill_after_attempts: Option<u64>,
    /// In a parallel portfolio, make the worker that claims this start
    /// index die before running it (the start is lost, the worker's
    /// thread exits early; the engine must still join cleanly and report
    /// the shortfall).
    pub kill_start: Option<u64>,
    /// In a parallel portfolio, panic inside the worker thread that
    /// claims this start index — exercising the engine's
    /// catch-and-convert contract (a worker panic must surface as a
    /// typed error or degraded result, never a process abort or hang).
    pub panic_in_worker: Option<u64>,
    /// Crash the serving process (`kill -9` semantics: no cleanup, no
    /// destructors) immediately *after* the named journal transition is
    /// made durable. Labels are the `netpart-serve` journal record
    /// types (`submit`, `claim`, `start`, `done`, `fail`, `retry`,
    /// `quarantine`) plus the artifact checkpoints `artifact` and
    /// `cache`; the recovery test matrix sweeps them all.
    pub crash_after: Option<String>,
    /// Tear the `n`-th durable write (1-based, counted across journal
    /// appends and atomic artifact writes): only a prefix of the bytes
    /// reaches disk and the process then crashes. Recovery must detect
    /// the torn record/stray temp file and never trust it.
    pub torn_write: Option<u64>,
    /// Fail the `n`-th durable write (1-based) with a disk-full I/O
    /// error instead of writing anything. The server must degrade to a
    /// typed failure (retry or clean shutdown), never a corrupt
    /// artifact.
    pub disk_full: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether any fault is armed.
    pub fn is_armed(&self) -> bool {
        self.kill_after_moves.is_some()
            || self.kill_after_passes.is_some()
            || self.kill_after_attempts.is_some()
            || self.kill_start.is_some()
            || self.panic_in_worker.is_some()
            || self.crash_after.is_some()
            || self.torn_write.is_some()
            || self.disk_full.is_some()
    }

    /// Arms a kill after `n` applied FM moves.
    pub fn kill_after_moves(mut self, n: u64) -> Self {
        self.kill_after_moves = Some(n);
        self
    }

    /// Arms a kill after `n` completed FM passes.
    pub fn kill_after_passes(mut self, n: u64) -> Self {
        self.kill_after_passes = Some(n);
        self
    }

    /// Arms a kill after `n` k-way carve attempts.
    pub fn kill_after_attempts(mut self, n: u64) -> Self {
        self.kill_after_attempts = Some(n);
        self
    }

    /// Arms a worker death at portfolio start index `i` (engine-level
    /// checkpoint; sequential drivers ignore it).
    pub fn kill_start(mut self, i: u64) -> Self {
        self.kill_start = Some(i);
        self
    }

    /// Arms a deliberate panic in the worker that claims portfolio start
    /// index `i` (engine-level checkpoint; sequential drivers ignore it).
    pub fn panic_in_worker(mut self, i: u64) -> Self {
        self.panic_in_worker = Some(i);
        self
    }

    /// Arms a process crash right after journal transition `label` is
    /// made durable (serve-level checkpoint; algorithm drivers ignore
    /// it).
    pub fn crash_after(mut self, label: impl Into<String>) -> Self {
        self.crash_after = Some(label.into());
        self
    }

    /// Arms a torn write on the `n`-th durable write (1-based,
    /// serve-level checkpoint).
    pub fn torn_write(mut self, n: u64) -> Self {
        self.torn_write = Some(n);
        self
    }

    /// Arms a disk-full failure on the `n`-th durable write (1-based,
    /// serve-level checkpoint).
    pub fn disk_full(mut self, n: u64) -> Self {
        self.disk_full = Some(n);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_arm_the_plan() {
        assert!(!FaultPlan::none().is_armed());
        assert!(FaultPlan::none().kill_after_moves(1).is_armed());
        assert!(FaultPlan::none().kill_after_passes(2).is_armed());
        assert!(FaultPlan::none().kill_after_attempts(3).is_armed());
        assert!(FaultPlan::none().kill_start(0).is_armed());
        assert!(FaultPlan::none().panic_in_worker(1).is_armed());
        assert!(FaultPlan::none().crash_after("done").is_armed());
        assert!(FaultPlan::none().torn_write(1).is_armed());
        assert!(FaultPlan::none().disk_full(2).is_armed());
        let p = FaultPlan::none().kill_after_moves(7).kill_after_attempts(9);
        assert_eq!(p.kill_after_moves, Some(7));
        assert_eq!(p.kill_after_passes, None);
        assert_eq!(p.kill_after_attempts, Some(9));
        assert_eq!(p.kill_start, None);
        assert_eq!(p.panic_in_worker, None);
    }
}
