//! Min-cut bipartitioning with functional replication and cost-driven
//! k-way partitioning into heterogeneous FPGAs.
//!
//! This crate is the primary contribution of Kužnar–Brglez–Zajc (DAC
//! 1994), reimplemented in Rust:
//!
//! * [`gain`] — the paper's unified gain model (§III, eqs. 7–11) over
//!   adjacency (`A_Xi`), cutset (`C^I`, `C^O`) and critical-net (`Q^I`,
//!   `Q^O`) vectors;
//! * [`bipartition`] — a Fiduccia–Mattheyses bipartitioner extended with
//!   three move kinds: single cell move, *traditional* replication and
//!   *functional* replication (plus unreplication), gated by the
//!   threshold replication potential `T` (eq. 6);
//! * [`kway`] — the recursive, device-aware k-way partitioner of the
//!   paper's second experiment: minimize total device cost (eq. 1) and
//!   average IOB utilization (eq. 2) over a heterogeneous library.
//!
//! # Examples
//!
//! Bipartition a small mapped circuit with functional replication:
//!
//! ```
//! use netpart_core::{bipartition, BipartitionConfig, ReplicationMode};
//! use netpart_netlist::{generate, GeneratorConfig};
//! use netpart_techmap::{map, MapperConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = generate(&GeneratorConfig::new(200).with_seed(1));
//! let hg = map(&nl, &MapperConfig::xc3000())?.to_hypergraph(&nl);
//! let cfg = BipartitionConfig::equal(&hg, 0.1)
//!     .with_replication(ReplicationMode::functional(0))
//!     .with_seed(7);
//! let result = bipartition(&hg, &cfg);
//! assert!(result.balanced);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod buckets;
mod budget;
mod config;
mod csr;
pub mod error;
mod extract;
mod fault;
mod fm;
pub mod gain;
pub mod kway;
mod parallel;
mod refine;
pub mod rent;
mod runs;
mod state;

pub use budget::{Budget, CancelToken, RunClock};
pub use config::{BipartitionConfig, ReplicationMode, SelectionStrategy};
pub use error::{Degradation, PartitionError, Relaxation, StopReason};
pub use extract::{extract_rest, Extraction};
pub use fault::FaultPlan;
pub use fm::{bipartition, bipartition_from_sides, bipartition_with_clock, BipartitionResult};
pub use kway::{
    kway_partition, kway_partition_with_clock, record_paper_gauges, KWayConfig, KWayResult,
};
pub use parallel::{par_refine_sides, ParRefineOutcome};
pub use refine::{refine_kway, unreplicate_cleanup, RefineStats};
pub use runs::{run_many, run_start, MultiRunStats};
pub use state::{CellState, EngineState};
