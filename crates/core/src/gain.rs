//! The paper's unified gain model (§III, eqs. 7–11).
//!
//! For an unreplicated `n`-input, `m`-output cell the model works on four
//! binary vectors besides the adjacency vectors `A_Xi`:
//!
//! * `C^I`, `C^O` — *cutset adjacency*: bit `j` set iff the net on
//!   input/output pin `j` is currently cut;
//! * `Q^I`, `Q^O` — *critical nets*: bit `j` set iff one move (of that
//!   pin) changes the net's state.
//!
//! [`single_move_gain`] is eq. 7, [`traditional_gain`] is eq. 8 and
//! [`functional_gain`] generalizes eqs. 9–10 from the paper's two-output
//! derivation to any output count; [`best_functional_gain`] is eq. 11.
//! The formulas agree exactly with the engine's cut-delta computation —
//! a property the test-suite checks on random circuits — provided each
//! pin of the cell is on a distinct single-driver net (the paper's
//! implicit assumption).

use crate::state::EngineState;
use netpart_hypergraph::{AdjacencyMatrix, BitVec, CellId, Pin};

/// The four per-cell vectors of the unified cost model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellVectors {
    /// Cutset adjacency over input pins (`C^I`).
    pub c_i: BitVec,
    /// Cutset adjacency over output pins (`C^O`).
    pub c_o: BitVec,
    /// Critical nets over input pins (`Q^I`).
    pub q_i: BitVec,
    /// Critical nets over output pins (`Q^O`).
    pub q_o: BitVec,
}

/// Extracts `C^I`, `C^O`, `Q^I`, `Q^O` for an unreplicated cell from the
/// engine state.
///
/// Returns `None` if the cell is replicated or two of its pins share a
/// net (the vector model indexes nets by pin).
pub fn extract_vectors(engine: &EngineState<'_>, c: CellId) -> Option<CellVectors> {
    if engine.cell_state(c).is_replicated() {
        return None;
    }
    let cell = engine.hypergraph().cell(c);
    let mut nets: Vec<_> = cell.incident_nets().collect();
    nets.sort_unstable();
    let distinct = nets.windows(2).all(|w| w[0] != w[1]);
    if !distinct {
        return None;
    }
    let n = cell.n_inputs();
    let m = cell.m_outputs();
    let mut v = CellVectors {
        c_i: BitVec::zeros(n),
        c_o: BitVec::zeros(m),
        q_i: BitVec::zeros(n),
        q_o: BitVec::zeros(m),
    };
    for j in 0..n {
        v.c_i.set(j, engine.is_cut(cell.input_net(j)));
        v.q_i.set(j, engine.pin_critical(c, Pin::Input(j as u16)));
    }
    for o in 0..m {
        v.c_o.set(o, engine.is_cut(cell.output_net(o)));
        v.q_o.set(o, engine.pin_critical(c, Pin::Output(o as u16)));
    }
    Some(v)
}

/// Eq. 7: the gain of moving the whole cell across the cut,
/// `G_m = (‖C^I∘Q^I‖ + ‖C^O∘Q^O‖) − (‖C̄^I∘Q^I‖ + ‖C̄^O∘Q^O‖)`.
pub fn single_move_gain(v: &CellVectors) -> i64 {
    let plus = v.c_i.and(&v.q_i).norm() + v.c_o.and(&v.q_o).norm();
    let minus = v.c_i.complement().and(&v.q_i).norm() + v.c_o.complement().and(&v.q_o).norm();
    plus as i64 - minus as i64
}

/// Eq. 8: the gain of traditional (Kring–Newton) replication,
/// `G_tr = (‖C^I‖ + ‖C^O‖) − n`.
pub fn traditional_gain(v: &CellVectors) -> i64 {
    (v.c_i.norm() + v.c_o.norm()) as i64 - v.c_i.len() as i64
}

/// Eqs. 9–10 generalized to `m` outputs: the gain of functional
/// replication where the replica keeps output `replica_output`.
///
/// With `E_i` the inputs exclusive to output `X_i` and `S_i = A_Xi ∖ E_i`
/// the inputs it shares with other outputs:
///
/// ```text
/// G_Xi = ‖C^I∘Q^I∘E_i‖ − ‖C̄^I∘Q^I∘E_i‖   (exclusive inputs move across)
///      − ‖C̄^I∘S_i‖                        (shared inputs get duplicated)
///      + (c^O_i·q^O_i) − (c̄^O_i·q^O_i)     (the kept output moves across)
/// ```
///
/// # Panics
///
/// Panics if `replica_output` is out of range or vector shapes mismatch
/// the adjacency matrix.
pub fn functional_gain(adj: &AdjacencyMatrix, v: &CellVectors, replica_output: usize) -> i64 {
    let m = adj.m_outputs();
    assert!(replica_output < m, "output index out of range");
    assert_eq!(adj.n_inputs(), v.c_i.len(), "input arity mismatch");
    assert_eq!(m, v.c_o.len(), "output arity mismatch");
    let mut exclusive = adj.row(replica_output).clone();
    for j in 0..m {
        if j != replica_output {
            exclusive = exclusive.and(&adj.row(j).complement());
        }
    }
    let shared = adj.row(replica_output).and(&exclusive.complement());
    let moved = v.c_i.and(&v.q_i).and(&exclusive).norm() as i64
        - v.c_i.complement().and(&v.q_i).and(&exclusive).norm() as i64;
    let duplicated = v.c_i.complement().and(&shared).norm() as i64;
    let c = i64::from(v.c_o.get(replica_output));
    let q = i64::from(v.q_o.get(replica_output));
    let output = c * q - (1 - c) * q;
    moved - duplicated + output
}

/// Eq. 11: the best functional-replication gain over all outputs,
/// `G_r = max_i G_Xi`, with the winning output. Returns `None` for cells
/// with fewer than two outputs (functional replication needs an output
/// split).
pub fn best_functional_gain(adj: &AdjacencyMatrix, v: &CellVectors) -> Option<(usize, i64)> {
    if adj.m_outputs() < 2 {
        return None;
    }
    (0..adj.m_outputs())
        .map(|o| (o, functional_gain(adj, v, o)))
        .max_by_key(|&(o, g)| (g, std::cmp::Reverse(o)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CellState;
    use netpart_hypergraph::{AdjacencyMatrix, CellKind, Hypergraph, HypergraphBuilder};

    /// Reconstruction of the paper's Fig. 4: a 5-input, 2-output cell with
    /// `A_X1 = {a1,a2,a3}`, `A_X2 = {a3,a4,a5}`. Side 0 holds the cell,
    /// pads a1..a3 and the X1 sink; side 1 holds pads a4, a5 and the X2
    /// sink. The cut is {a4, a5, X2} — size 3.
    fn fig4() -> (Hypergraph, CellId, Vec<u8>) {
        let mut b = HypergraphBuilder::new();
        let pads: Vec<_> = (1..=5)
            .map(|i| {
                b.add_cell(
                    format!("a{i}"),
                    CellKind::input_pad(),
                    0,
                    1,
                    AdjacencyMatrix::pad(),
                )
            })
            .collect();
        let m = b.add_cell(
            "M",
            CellKind::logic(1),
            5,
            2,
            AdjacencyMatrix::from_rows(5, &[&[0, 1, 2], &[2, 3, 4]]),
        );
        let px1 = b.add_cell("sX1", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        let px2 = b.add_cell("sX2", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        for (i, &pad) in pads.iter().enumerate() {
            let n = b.add_net(format!("na{i}"));
            b.connect_output(n, pad, 0).unwrap();
            b.connect_input(n, m, i).unwrap();
        }
        let nx1 = b.add_net("nx1");
        b.connect_output(nx1, m, 0).unwrap();
        b.connect_input(nx1, px1, 0).unwrap();
        let nx2 = b.add_net("nx2");
        b.connect_output(nx2, m, 1).unwrap();
        b.connect_input(nx2, px2, 0).unwrap();
        let hg = b.finish().unwrap();
        // sides: a1,a2,a3 → 0; a4,a5 → 1; M → 0; sX1 → 0; sX2 → 1.
        let sides = vec![0, 0, 0, 1, 1, 0, 0, 1];
        (hg, m, sides)
    }

    #[test]
    fn fig4_single_move_gain_is_minus_one() {
        let (hg, m, sides) = fig4();
        let engine = EngineState::new(&hg, &sides);
        assert_eq!(engine.cut(), 3);
        let v = extract_vectors(&engine, m).unwrap();
        assert_eq!(single_move_gain(&v), -1);
        assert_eq!(engine.peek_gain(m, CellState::Single { side: 1 }), -1);
    }

    #[test]
    fn fig4_traditional_gain_is_minus_two() {
        let (hg, m, sides) = fig4();
        let engine = EngineState::new(&hg, &sides);
        let v = extract_vectors(&engine, m).unwrap();
        assert_eq!(traditional_gain(&v), -2);
        assert_eq!(
            engine.peek_gain(m, CellState::Traditional { orig_side: 0 }),
            -2
        );
    }

    #[test]
    fn fig4_functional_gains_match_paper() {
        let (hg, m, sides) = fig4();
        let engine = EngineState::new(&hg, &sides);
        let v = extract_vectors(&engine, m).unwrap();
        let adj = hg.cell(m).adjacency();
        // Keeping X1 in the replica: −4 (the paper's G_X1).
        assert_eq!(functional_gain(adj, &v, 0), -4);
        // Keeping X2: +2 (the paper's G_X2), hence G_r = +2 (eq. 11).
        assert_eq!(functional_gain(adj, &v, 1), 2);
        assert_eq!(best_functional_gain(adj, &v), Some((1, 2)));
        // Engine agreement.
        assert_eq!(
            engine.peek_gain(
                m,
                CellState::Functional {
                    orig_side: 0,
                    replica_mask: 0b01
                }
            ),
            -4
        );
        assert_eq!(
            engine.peek_gain(
                m,
                CellState::Functional {
                    orig_side: 0,
                    replica_mask: 0b10
                }
            ),
            2
        );
    }

    #[test]
    fn fig4_applying_best_replication_reduces_cut_to_one() {
        let (hg, m, sides) = fig4();
        let mut engine = EngineState::new(&hg, &sides);
        engine.set_state(
            m,
            CellState::Functional {
                orig_side: 0,
                replica_mask: 0b10,
            },
        );
        assert_eq!(engine.cut(), 1, "the paper's Fig. 4: cut 3 → 1");
        assert!(engine.validate());
    }

    #[test]
    fn vectors_unavailable_for_replicated_cells() {
        let (hg, m, sides) = fig4();
        let mut engine = EngineState::new(&hg, &sides);
        engine.set_state(
            m,
            CellState::Functional {
                orig_side: 0,
                replica_mask: 0b10,
            },
        );
        assert!(extract_vectors(&engine, m).is_none());
    }

    #[test]
    fn best_functional_needs_two_outputs() {
        let v = CellVectors {
            c_i: BitVec::zeros(2),
            c_o: BitVec::zeros(1),
            q_i: BitVec::zeros(2),
            q_o: BitVec::zeros(1),
        };
        assert_eq!(best_functional_gain(&AdjacencyMatrix::full(2, 1), &v), None);
    }
}
