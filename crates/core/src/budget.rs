//! Run budgets and the runtime clock that enforces them.
//!
//! A [`Budget`] declares how much work a run may do — wall-clock time,
//! FM moves, FM passes, carve attempts — and a [`RunClock`] is the
//! runtime instance that watches those limits (and any injected
//! [`FaultPlan`](crate::FaultPlan)) as the engine executes. The engine
//! polls the clock at natural checkpoints (each applied move, each
//! pass, each carve attempt); when a limit trips, the engine abandons
//! remaining work, keeps the best state found so far, and reports the
//! [`StopReason`] — it never aborts the process.

use crate::error::StopReason;
use crate::fault::FaultPlan;
use netpart_obs::{Recorder, NOOP};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock moves are only sampled every this many applied moves;
/// `Instant::now` is cheap but not free, and FM applies moves in tight
/// heap-pop loops.
const WALL_CHECK_STRIDE: u64 = 64;

/// Declarative work limits for a partitioning run.
///
/// All limits are optional; [`Budget::none`] (the default) never trips.
/// Budgets degrade gracefully: a tripped run returns its best-so-far
/// solution plus a [`Degradation`](crate::Degradation) report rather
/// than an error, unless *no* usable solution exists yet (then
/// [`PartitionError::BudgetExhausted`](crate::PartitionError::BudgetExhausted)).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Budget {
    /// Wall-clock limit in milliseconds.
    pub wall_ms: Option<u64>,
    /// Limit on applied FM moves (summed across passes and, in k-way
    /// runs, across carve bipartitions).
    pub max_moves: Option<u64>,
}

impl Budget {
    /// A budget with no limits (never trips).
    pub fn none() -> Self {
        Budget::default()
    }

    /// A wall-clock budget of `ms` milliseconds.
    pub fn wall_ms(ms: u64) -> Self {
        Budget {
            wall_ms: Some(ms),
            ..Budget::default()
        }
    }

    /// Sets the applied-move limit.
    pub fn with_max_moves(mut self, n: u64) -> Self {
        self.max_moves = Some(n);
        self
    }

    /// Whether any limit is configured.
    pub fn is_limited(&self) -> bool {
        self.wall_ms.is_some() || self.max_moves.is_some()
    }

    /// A human-readable description of the first configured limit, for
    /// error messages.
    pub fn describe(&self) -> String {
        match (self.wall_ms, self.max_moves) {
            (Some(ms), _) => format!("wall {ms}ms"),
            (None, Some(n)) => format!("{n} moves"),
            (None, None) => "unlimited".to_string(),
        }
    }
}

/// A cooperative cancellation flag shared between the threads of a
/// parallel portfolio.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone observes the same
/// flag. A [`RunClock`] built with [`RunClock::with_shared`] polls the
/// token on its wall-check path and latches
/// [`StopReason::Cancelled`] once it is set, so an in-flight FM run
/// drains at its next checkpoint (at most `WALL_CHECK_STRIDE` moves
/// later) instead of running to completion.
///
/// Cancellation is one-way: there is no `reset`. A portfolio that wants
/// a fresh flag makes a fresh token.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// The runtime clock of one driver invocation: counts work, watches the
/// [`Budget`] deadline and the [`FaultPlan`], and latches the first
/// [`StopReason`] it observes.
///
/// Interior mutability (all counters are [`Cell`]s) lets the clock be
/// threaded through the engine by shared reference alongside the
/// immutable hypergraph and configuration.
#[derive(Debug)]
pub struct RunClock {
    deadline: Option<Instant>,
    max_moves: Option<u64>,
    fault: FaultPlan,
    moves: Cell<u64>,
    passes: Cell<u64>,
    attempts: Cell<u64>,
    stopped: Cell<Option<StopReason>>,
    budget: Budget,
    cancel: Option<CancelToken>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl RunClock {
    /// Starts a clock for `budget` with faults from `fault`.
    pub fn new(budget: &Budget, fault: &FaultPlan) -> Self {
        RunClock {
            deadline: budget
                .wall_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            max_moves: budget.max_moves,
            fault: fault.clone(),
            moves: Cell::new(0),
            passes: Cell::new(0),
            attempts: Cell::new(0),
            stopped: Cell::new(None),
            budget: budget.clone(),
            cancel: None,
            recorder: None,
        }
    }

    /// Starts a clock whose wall deadline is an explicit [`Instant`]
    /// shared with other clocks (rather than `now + budget.wall_ms`),
    /// and that additionally drains when `cancel` fires.
    ///
    /// This is the portfolio-engine constructor: every worker's clock
    /// points at the *same* deadline so "the budget tripped" means the
    /// same thing on every thread, and a worker that observes the trip
    /// first can [`CancelToken::cancel`] the rest. `budget.wall_ms` is
    /// kept only for [`RunClock::budget`] error messages; the effective
    /// deadline is the one passed here (`None` = no wall limit). The
    /// `max_moves` limit still applies to this clock alone.
    pub fn with_shared(
        budget: &Budget,
        fault: &FaultPlan,
        deadline: Option<Instant>,
        cancel: Option<CancelToken>,
    ) -> Self {
        RunClock {
            deadline,
            max_moves: budget.max_moves,
            fault: fault.clone(),
            moves: Cell::new(0),
            passes: Cell::new(0),
            attempts: Cell::new(0),
            stopped: Cell::new(None),
            budget: budget.clone(),
            cancel,
            recorder: None,
        }
    }

    /// Attaches a telemetry recorder; instrumentation sites reach it
    /// through [`RunClock::recorder`]. The clock is already threaded
    /// through every engine entry point, so this is how tracing rides
    /// along without widening any algorithm signature.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// A clock that never trips.
    pub fn unlimited() -> Self {
        RunClock::new(&Budget::none(), &FaultPlan::none())
    }

    /// The first stop condition observed, if any.
    pub fn stopped(&self) -> Option<StopReason> {
        self.stopped.get()
    }

    /// The budget this clock enforces (for error messages).
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Total applied moves observed.
    pub fn moves(&self) -> u64 {
        self.moves.get()
    }

    /// Total completed FM passes observed.
    pub fn passes(&self) -> u64 {
        self.passes.get()
    }

    /// Total k-way carve attempts observed.
    pub fn attempts(&self) -> u64 {
        self.attempts.get()
    }

    /// The attached telemetry recorder (the no-op recorder when none is
    /// attached, so call sites never branch on `Option`).
    pub fn recorder(&self) -> &dyn Recorder {
        match &self.recorder {
            Some(r) => r.as_ref(),
            None => &NOOP,
        }
    }

    fn trip(&self, reason: StopReason) -> StopReason {
        if self.stopped.get().is_none() {
            self.stopped.set(Some(reason));
        }
        self.stopped.get().unwrap_or(reason)
    }

    /// Records one applied FM move; returns the stop reason if a limit
    /// or fault tripped. The wall clock is only sampled every 64 moves
    /// (`WALL_CHECK_STRIDE`).
    pub fn tick_move(&self) -> Option<StopReason> {
        if let Some(r) = self.stopped.get() {
            return Some(r);
        }
        let n = self.moves.get() + 1;
        self.moves.set(n);
        if self.fault.kill_after_moves.is_some_and(|k| n >= k) {
            return Some(self.trip(StopReason::FaultInjected));
        }
        if self.max_moves.is_some_and(|m| n >= m) {
            return Some(self.trip(StopReason::BudgetExhausted));
        }
        if n.is_multiple_of(WALL_CHECK_STRIDE) {
            return self.check_wall();
        }
        None
    }

    /// Records one completed FM pass; returns the stop reason if a
    /// limit or fault tripped.
    pub fn tick_pass(&self) -> Option<StopReason> {
        if let Some(r) = self.stopped.get() {
            return Some(r);
        }
        let n = self.passes.get() + 1;
        self.passes.set(n);
        if self.fault.kill_after_passes.is_some_and(|k| n >= k) {
            return Some(self.trip(StopReason::FaultInjected));
        }
        self.check_wall()
    }

    /// Records one k-way carve attempt; returns the stop reason if a
    /// limit or fault tripped.
    pub fn tick_attempt(&self) -> Option<StopReason> {
        if let Some(r) = self.stopped.get() {
            return Some(r);
        }
        let n = self.attempts.get() + 1;
        self.attempts.set(n);
        if self.fault.kill_after_attempts.is_some_and(|k| n >= k) {
            return Some(self.trip(StopReason::FaultInjected));
        }
        self.check_wall()
    }

    /// Samples the wall clock immediately (checkpoints between
    /// multi-start runs use this).
    pub fn check_wall(&self) -> Option<StopReason> {
        if let Some(r) = self.stopped.get() {
            return Some(r);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(self.trip(StopReason::BudgetExhausted));
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(self.trip(StopReason::Cancelled));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let c = RunClock::unlimited();
        for _ in 0..10_000 {
            assert_eq!(c.tick_move(), None);
        }
        assert_eq!(c.tick_pass(), None);
        assert_eq!(c.tick_attempt(), None);
        assert_eq!(c.stopped(), None);
    }

    #[test]
    fn move_budget_trips_and_latches() {
        let c = RunClock::new(&Budget::none().with_max_moves(5), &FaultPlan::none());
        for _ in 0..4 {
            assert_eq!(c.tick_move(), None);
        }
        assert_eq!(c.tick_move(), Some(StopReason::BudgetExhausted));
        // Latched: every later poll reports the same condition.
        assert_eq!(c.tick_pass(), Some(StopReason::BudgetExhausted));
        assert_eq!(c.stopped(), Some(StopReason::BudgetExhausted));
    }

    #[test]
    fn zero_wall_budget_trips_fast() {
        let c = RunClock::new(&Budget::wall_ms(0), &FaultPlan::none());
        assert_eq!(c.check_wall(), Some(StopReason::BudgetExhausted));
    }

    #[test]
    fn fault_beats_budget_on_the_same_move() {
        let c = RunClock::new(
            &Budget::none().with_max_moves(3),
            &FaultPlan::none().kill_after_moves(3),
        );
        assert_eq!(c.tick_move(), None);
        assert_eq!(c.tick_move(), None);
        assert_eq!(c.tick_move(), Some(StopReason::FaultInjected));
    }

    #[test]
    fn cancel_token_drains_a_shared_clock() {
        let token = CancelToken::new();
        let c = RunClock::with_shared(
            &Budget::none(),
            &FaultPlan::none(),
            None,
            Some(token.clone()),
        );
        assert_eq!(c.check_wall(), None);
        token.cancel();
        assert!(token.is_cancelled());
        // Every clone observes the same flag.
        assert!(token.clone().is_cancelled());
        assert_eq!(c.check_wall(), Some(StopReason::Cancelled));
        // Latched like any other stop condition.
        assert_eq!(c.tick_move(), Some(StopReason::Cancelled));
        assert_eq!(c.stopped(), Some(StopReason::Cancelled));
    }

    #[test]
    fn shared_deadline_overrides_budget_wall() {
        // budget says 0ms, but the explicit deadline is far away: the
        // shared deadline wins.
        let far = Instant::now() + Duration::from_secs(3600);
        let c = RunClock::with_shared(&Budget::wall_ms(0), &FaultPlan::none(), Some(far), None);
        assert_eq!(c.check_wall(), None);
        // And an already-expired shared deadline trips immediately.
        let c = RunClock::with_shared(
            &Budget::none(),
            &FaultPlan::none(),
            Some(Instant::now()),
            None,
        );
        assert_eq!(c.check_wall(), Some(StopReason::BudgetExhausted));
    }

    #[test]
    fn shared_clock_still_enforces_move_budget() {
        let c = RunClock::with_shared(
            &Budget::none().with_max_moves(2),
            &FaultPlan::none(),
            None,
            None,
        );
        assert_eq!(c.tick_move(), None);
        assert_eq!(c.tick_move(), Some(StopReason::BudgetExhausted));
    }

    #[test]
    fn describe_names_the_limit() {
        assert_eq!(Budget::wall_ms(50).describe(), "wall 50ms");
        assert_eq!(Budget::none().with_max_moves(9).describe(), "9 moves");
        assert_eq!(Budget::none().describe(), "unlimited");
        assert!(Budget::wall_ms(1).is_limited());
        assert!(!Budget::none().is_limited());
    }
}
