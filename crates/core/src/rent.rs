//! Rent-characteristic estimation by recursive bisection.
//!
//! Rent's rule relates the terminals `T` of a sub-circuit to its cell
//! count `B`: `T ≈ t·B^p`. The exponent `p` summarizes interconnect
//! locality — real logic sits around `p ≈ 0.5–0.75`, random graphs near
//! `p ≈ 1`. This module measures it the standard way: recursively
//! bisect with FM, record `(cells, terminals)` of every piece, and fit
//! the log–log regression. DESIGN.md §5.4 claims the synthetic
//! benchmarks have Rent-like locality; this is the instrument that
//! checks it (see the `rent_exponent_is_sub_linear` test).

use crate::config::BipartitionConfig;
use crate::extract::{extract_rest, Extraction};
use crate::fm::bipartition;
use netpart_hypergraph::{Hypergraph, PartId, Placement};

/// One sampled sub-circuit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RentPoint {
    /// Interior cell area of the piece (CLBs).
    pub cells: u64,
    /// Terminals of the piece (pads plus crossing nets).
    pub terminals: u64,
}

/// The fitted Rent characteristic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RentFit {
    /// The Rent exponent `p` (log–log slope).
    pub exponent: f64,
    /// The Rent coefficient `t` (terminals of a single cell).
    pub coefficient: f64,
    /// Number of points the fit used.
    pub points: usize,
}

/// Recursively bisects `hg` for `levels` levels and returns every
/// intermediate piece's `(cells, terminals)` sample.
///
/// Pieces smaller than 8 cells are not split further; unbalanced
/// bisections (pathological inputs) terminate their branch early.
pub fn rent_points(hg: &Hypergraph, levels: usize, seed: u64) -> Vec<RentPoint> {
    let mut points = Vec::new();
    let mut frontier = vec![Extraction::identity(hg)];
    for level in 0..=levels {
        let mut next = Vec::new();
        for piece in frontier {
            let area = piece.hypergraph.total_area();
            let single = Placement::new_uniform(&piece.hypergraph, 1, PartId(0));
            let terminals = single.part_terminals(&piece.hypergraph, PartId(0)) as u64;
            points.push(RentPoint {
                cells: area,
                terminals,
            });
            if level == levels || area < 8 {
                continue;
            }
            let cfg = BipartitionConfig::equal(&piece.hypergraph, 0.1)
                .with_seed(seed ^ (points.len() as u64) << 8);
            let res = bipartition(&piece.hypergraph, &cfg);
            if !res.balanced {
                continue;
            }
            let placement = res.placement.expect("plain FM exports");
            next.push(extract_rest(
                &piece.hypergraph,
                &placement,
                PartId(0),
                &piece.origin,
            ));
            next.push(extract_rest(
                &piece.hypergraph,
                &placement,
                PartId(1),
                &piece.origin,
            ));
        }
        frontier = next;
    }
    points
}

/// Least-squares fit of `log T = log t + p·log B` over the points
/// (pieces with zero cells or terminals are skipped).
///
/// Returns `None` with fewer than three usable points.
pub fn fit_rent(points: &[RentPoint]) -> Option<RentFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.cells > 0 && p.terminals > 0)
        .map(|p| ((p.cells as f64).ln(), (p.terminals as f64).ln()))
        .collect();
    if logs.len() < 3 {
        return None;
    }
    let n = logs.len() as f64;
    let (sx, sy): (f64, f64) = logs
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let sxx: f64 = logs.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|&(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let p = (n * sxy - sx * sy) / denom;
    let intercept = (sy - p * sx) / n;
    Some(RentFit {
        exponent: p,
        coefficient: intercept.exp(),
        points: logs.len(),
    })
}

/// Convenience: sample and fit in one call.
pub fn rent_exponent(hg: &Hypergraph, levels: usize, seed: u64) -> Option<RentFit> {
    fit_rent(&rent_points(hg, levels, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_netlist::{generate, GeneratorConfig};
    use netpart_techmap::{map, MapperConfig};

    #[test]
    fn fit_recovers_exact_power_law() {
        let points: Vec<RentPoint> = (1..=8)
            .map(|i| {
                let b = 1u64 << i;
                RentPoint {
                    cells: b,
                    terminals: (3.0 * (b as f64).powf(0.6)).round() as u64,
                }
            })
            .collect();
        let fit = fit_rent(&points).unwrap();
        assert!((fit.exponent - 0.6).abs() < 0.05, "p = {}", fit.exponent);
        assert!(
            (fit.coefficient - 3.0).abs() < 0.6,
            "t = {}",
            fit.coefficient
        );
    }

    #[test]
    fn fit_needs_enough_points() {
        assert!(fit_rent(&[]).is_none());
        assert!(fit_rent(&[RentPoint {
            cells: 4,
            terminals: 4
        }])
        .is_none());
    }

    #[test]
    fn rent_exponent_is_sub_linear() {
        // The synthetic benchmarks must show Rent-like locality: clearly
        // below the random-graph regime (p ≈ 1).
        let nl = generate(
            &GeneratorConfig::new(1200)
                .with_dff(60)
                .with_seed(17)
                .with_clustering(0.7),
        );
        let hg = map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl);
        let fit = rent_exponent(&hg, 4, 1).expect("enough pieces");
        assert!(fit.points >= 10);
        assert!(
            fit.exponent < 0.95,
            "expected sub-linear Rent exponent, got {}",
            fit.exponent
        );
        assert!(fit.exponent > 0.0);
    }
}
