//! The typed error taxonomy and degradation reporting of the resilient
//! partitioning driver.
//!
//! The paper's flow — multi-start FM bipartitioning driven recursively
//! into a heterogeneous device library — can fail in ways that are *not*
//! bugs: the feasibility system `l_i·c_i ≤ |P_j| ≤ u_i·c_i`, `t_Pj ≤ t_i`
//! may be unsatisfiable for a given circuit/library pair, inputs may be
//! malformed, and randomized multi-start runs may exhaust their time
//! budget before converging. Every driver entry point reports those
//! conditions as a [`PartitionError`] (or as a best-so-far solution with
//! a [`Degradation`] report) instead of panicking.

use std::error::Error;
use std::fmt;

/// A typed partitioning failure.
///
/// The four variants partition the failure space:
///
/// * [`InvalidInput`](PartitionError::InvalidInput) — the caller handed
///   us something malformed (empty circuit, bad configuration value);
///   fix the input.
/// * [`InfeasibleLibrary`](PartitionError::InfeasibleLibrary) — the
///   input is well-formed but the constraint system (device feasibility
///   windows, terminal capacities, area bounds) admits no solution even
///   after every relaxation the driver is willing to make; fix the
///   library or the constraints.
/// * [`BudgetExhausted`](PartitionError::BudgetExhausted) — a run budget
///   expired before *any* usable solution existed (when a best-so-far
///   solution exists, drivers return it with a [`Degradation`] report
///   instead of this error); raise the budget.
/// * [`InternalInvariant`](PartitionError::InternalInvariant) — a bug:
///   an invariant the engine maintains itself was observed broken.
///   Please report it.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PartitionError {
    /// The input (netlist, hypergraph or configuration) is malformed.
    InvalidInput {
        /// What was wrong with it.
        what: String,
    },
    /// No feasible solution exists under the given device library /
    /// constraint system, even after the escalation ladder.
    InfeasibleLibrary {
        /// Why feasibility is out of reach.
        reason: String,
        /// Carve/solve attempts made before giving up (0 when the
        /// infeasibility was detected statically).
        attempts: usize,
    },
    /// A budget (wall-clock, pass or move count) expired before any
    /// usable solution was found.
    BudgetExhausted {
        /// The budget that expired, human-readable (e.g. `"wall 50ms"`).
        budget: String,
        /// Work completed before exhaustion (starts, attempts, …).
        completed: usize,
    },
    /// An engine invariant was violated — a bug in netpart itself.
    InternalInvariant {
        /// The violated invariant.
        what: String,
    },
}

impl PartitionError {
    /// Shorthand constructor for [`PartitionError::InvalidInput`].
    pub fn invalid_input(what: impl Into<String>) -> Self {
        PartitionError::InvalidInput { what: what.into() }
    }

    /// Shorthand constructor for [`PartitionError::InternalInvariant`].
    pub fn internal(what: impl Into<String>) -> Self {
        PartitionError::InternalInvariant { what: what.into() }
    }

    /// The conventional process exit code for this error kind (used by
    /// the `netpart` CLI and documented in README.md): `2` invalid
    /// input, `3` infeasible, `4` budget exhausted, `5` internal.
    pub fn exit_code(&self) -> i32 {
        match self {
            PartitionError::InvalidInput { .. } => 2,
            PartitionError::InfeasibleLibrary { .. } => 3,
            PartitionError::BudgetExhausted { .. } => 4,
            PartitionError::InternalInvariant { .. } => 5,
        }
    }
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            PartitionError::InfeasibleLibrary { reason, attempts } => {
                write!(f, "infeasible under the device library: {reason}")?;
                if *attempts > 0 {
                    write!(f, " (after {attempts} attempts)")?;
                }
                Ok(())
            }
            PartitionError::BudgetExhausted { budget, completed } => write!(
                f,
                "budget exhausted ({budget}) with no usable solution ({completed} unit(s) of work completed)"
            ),
            PartitionError::InternalInvariant { what } => {
                write!(f, "internal invariant violated (bug): {what}")
            }
        }
    }
}

impl Error for PartitionError {}

impl From<netpart_hypergraph::BuildError> for PartitionError {
    fn from(e: netpart_hypergraph::BuildError) -> Self {
        PartitionError::InvalidInput {
            what: e.to_string(),
        }
    }
}

impl From<netpart_fpga::FpgaError> for PartitionError {
    fn from(e: netpart_fpga::FpgaError) -> Self {
        match &e {
            netpart_fpga::FpgaError::EmptyLibrary
            | netpart_fpga::FpgaError::InvalidDevice { .. } => PartitionError::InvalidInput {
                what: e.to_string(),
            },
            netpart_fpga::FpgaError::MissingDeviceAssignment { .. }
            | netpart_fpga::FpgaError::DeviceIndexOutOfRange { .. } => {
                PartitionError::InternalInvariant {
                    what: e.to_string(),
                }
            }
        }
    }
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StopReason {
    /// No pass improved the objective any further.
    #[default]
    Converged,
    /// The configured pass limit was reached while still improving.
    PassLimit,
    /// A wall-clock or move budget expired mid-run.
    BudgetExhausted,
    /// An injected fault (test harness) aborted the run.
    FaultInjected,
    /// A cooperative cancellation request (another worker in a parallel
    /// portfolio tripped the shared budget or made further work
    /// pointless) stopped the run.
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Converged => write!(f, "converged"),
            StopReason::PassLimit => write!(f, "pass limit"),
            StopReason::BudgetExhausted => write!(f, "budget exhausted"),
            StopReason::FaultInjected => write!(f, "fault injected"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// One constraint relaxation the k-way escalation ladder performed to
/// reach a solution.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Relaxation {
    /// The attempt pool was re-seeded and extended past
    /// [`KWayConfig::max_attempts`](crate::KWayConfig::max_attempts).
    Reseeded {
        /// Extra attempts granted.
        extra_attempts: usize,
    },
    /// The per-device lower utilization bound `l_i` was relaxed to 0
    /// (parts may underfill their device).
    RelaxedFloor,
    /// Device selection switched from cheapest-fitting to
    /// largest-fitting, trading device cost for terminal headroom.
    NextLargerDevice,
}

impl fmt::Display for Relaxation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relaxation::Reseeded { extra_attempts } => {
                write!(f, "re-seeded with {extra_attempts} extra attempts")
            }
            Relaxation::RelaxedFloor => {
                write!(f, "relaxed the l_i lower utilization floor to 0")
            }
            Relaxation::NextLargerDevice => {
                write!(
                    f,
                    "escalated to larger devices (cost traded for feasibility)"
                )
            }
        }
    }
}

/// How (and how much) a returned solution degraded from the request.
///
/// A default (all-zero / empty) report means the run completed exactly
/// as requested; [`Degradation::is_degraded`] is the quick check.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Degradation {
    /// Starts (or feasible candidates) the caller asked for.
    pub requested: usize,
    /// Starts (or feasible candidates) actually completed.
    pub completed: usize,
    /// Whether a budget expired before the requested work finished.
    pub budget_exhausted: bool,
    /// Whether an injected fault cut the run short.
    pub fault_injected: bool,
    /// Constraint relaxations performed, in escalation order.
    pub relaxations: Vec<Relaxation>,
}

impl Degradation {
    /// A report for a run that completed `n` of `n` units un-degraded.
    pub fn complete(n: usize) -> Self {
        Degradation {
            requested: n,
            completed: n,
            ..Degradation::default()
        }
    }

    /// Whether the solution deviates from what was requested.
    pub fn is_degraded(&self) -> bool {
        self.budget_exhausted
            || self.fault_injected
            || !self.relaxations.is_empty()
            || self.completed < self.requested
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_degraded() {
            return write!(f, "complete ({}/{} starts)", self.completed, self.requested);
        }
        write!(f, "degraded: {}/{} starts", self.completed, self.requested)?;
        if self.budget_exhausted {
            write!(f, ", budget exhausted")?;
        }
        if self.fault_injected {
            write!(f, ", fault injected")?;
        }
        for r in &self.relaxations {
            write!(f, ", {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_exit_codes() {
        let errs = [
            PartitionError::invalid_input("empty circuit"),
            PartitionError::InfeasibleLibrary {
                reason: "400 CLBs exceed every device".into(),
                attempts: 7,
            },
            PartitionError::BudgetExhausted {
                budget: "wall 50ms".into(),
                completed: 0,
            },
            PartitionError::internal("gain mismatch"),
        ];
        let codes: Vec<i32> = errs.iter().map(PartitionError::exit_code).collect();
        assert_eq!(codes, vec![2, 3, 4, 5]);
        for e in &errs {
            assert!(!e.to_string().is_empty());
            assert!(e.to_string().chars().next().is_some_and(char::is_lowercase));
        }
        assert!(errs[1].to_string().contains("after 7 attempts"));
    }

    #[test]
    fn degradation_report_semantics() {
        let ok = Degradation::complete(20);
        assert!(!ok.is_degraded());
        assert!(ok.to_string().contains("complete"));

        let mut d = Degradation {
            requested: 20,
            completed: 3,
            budget_exhausted: true,
            ..Degradation::default()
        };
        d.relaxations.push(Relaxation::RelaxedFloor);
        assert!(d.is_degraded());
        let s = d.to_string();
        assert!(s.contains("3/20"));
        assert!(s.contains("budget exhausted"));
        assert!(s.contains("utilization floor"));
    }

    #[test]
    fn conversions_preserve_kind() {
        let b = netpart_hypergraph::BuildError::MissingDriver(netpart_hypergraph::NetId(3));
        assert!(matches!(
            PartitionError::from(b),
            PartitionError::InvalidInput { .. }
        ));
        let f = netpart_fpga::FpgaError::EmptyLibrary;
        assert!(matches!(
            PartitionError::from(f),
            PartitionError::InvalidInput { .. }
        ));
        let f = netpart_fpga::FpgaError::MissingDeviceAssignment {
            parts: 3,
            devices: 1,
        };
        assert!(matches!(
            PartitionError::from(f),
            PartitionError::InternalInvariant { .. }
        ));
    }
}
