//! The Fiduccia–Mattheyses pass structure, extended with replication
//! moves (paper §III-D): gain-ordered move selection, lock-after-move,
//! rollback to the best balanced prefix, repeated passes to convergence.
//!
//! Move selection is pluggable via
//! [`SelectionStrategy`](crate::config::SelectionStrategy): the default
//! is the classic FM gain-bucket ladder ([`crate::buckets`]) with
//! **incremental** gain maintenance — after each applied move only the
//! net contributions that actually changed are re-evaluated, against
//! before/after snapshots of the per-net endpoint counts — giving the
//! linear-time pass the algorithm is known for. A lazy max-heap that
//! re-derives every touched neighbor's best move from scratch is kept
//! as the benchmark baseline (`fm_pass` bench).

use crate::buckets::GainBuckets;
use crate::budget::RunClock;
use crate::config::{BipartitionConfig, ReplicationMode, SelectionStrategy};
use crate::error::StopReason;
use crate::state::{pins_contribution, CellState, EngineState};
use netpart_hypergraph::{CellId, Hypergraph, Placement};
use netpart_obs::{Event, Level, Span};
use netpart_rng::Rng;
use std::collections::BinaryHeap;

/// The outcome of one bipartitioning run.
#[derive(Clone, Debug)]
pub struct BipartitionResult {
    /// Final cut-set size (number of cut nets).
    pub cut: usize,
    /// Final per-side areas (replicas counted on both sides).
    pub areas: [u64; 2],
    /// Number of replicated cells in the final state.
    pub replicated_cells: usize,
    /// FM passes executed.
    pub passes: usize,
    /// Whether the final state satisfies both sides' area bounds.
    pub balanced: bool,
    /// Why the run ended. Anything but [`StopReason::Converged`] means
    /// further passes might still have improved the cut; the state
    /// returned is always the best found before stopping (interrupted
    /// passes roll back to their best balanced prefix as usual).
    pub stop: StopReason,
    /// The final placement; `None` only under
    /// [`ReplicationMode::Traditional`] with replicas present (traditional
    /// copies share output nets and have no [`Placement`] form).
    pub placement: Option<Placement>,
    /// Stale-gain repairs across all passes: moves whose cached gain
    /// diverged from the realized gain and were therefore undone,
    /// refreshed and reselected instead of being applied under a wrong
    /// priority. 0 in normal operation — the incremental updates are
    /// exact — so any nonzero value flags a gain-maintenance defect
    /// without corrupting the result.
    pub gain_repairs: usize,
}

impl BipartitionResult {
    /// Serializes this result as an independently checkable
    /// [`SolutionCertificate`](netpart_verify::SolutionCertificate),
    /// stamped with the seed of the run that produced it.
    ///
    /// Returns `None` when the run exported no placement
    /// ([`ReplicationMode::Traditional`] with replicas present).
    pub fn certificate(
        &self,
        hg: &Hypergraph,
        seed: u64,
    ) -> Option<netpart_verify::SolutionCertificate> {
        self.placement
            .as_ref()
            .map(|p| netpart_verify::SolutionCertificate::from_bipartition(hg, p, seed))
    }
}

/// Move priority on gain ties: prefer shrinking work (unreplication),
/// then plain moves, then replication (which grows the design).
const TIE_UNREPLICATE: u8 = 3;
const TIE_MOVE: u8 = 2;
const TIE_REPLICATE: u8 = 1;

#[derive(PartialEq, Eq)]
struct HeapEntry {
    gain: i64,
    tie: u8,
    /// Third-order key replicating the bucket ladder's ordering
    /// contract so both strategies elect identical move sequences:
    /// an insertion sequence number for in-range gains (LIFO — higher
    /// is more recent and wins) and `!cell` for overflow gains (lowest
    /// cell id wins). The two regimes never meet at an equal
    /// `(gain, tie)` key, so the combined order is total.
    ord: u64,
    cell: u32,
    stamp: u64,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.gain, self.tie, self.ord).cmp(&(other.gain, other.tie, other.ord))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The best move currently available for a cell, if any.
fn best_candidate(
    engine: &EngineState<'_>,
    cfg: &BipartitionConfig,
    psi: &[u32],
    c: CellId,
) -> Option<(i64, u8, CellState)> {
    best_candidate_where(engine, cfg, psi, c, |_| true)
}

/// The best move of `c` among candidates satisfying `keep`, enumerated
/// in the same order as [`push_candidates`] (earliest wins exact
/// `(gain, tie)` ties, matching [`best_of`]).
fn best_candidate_where(
    engine: &EngineState<'_>,
    cfg: &BipartitionConfig,
    psi: &[u32],
    c: CellId,
    keep: impl Fn(CellState) -> bool,
) -> Option<(i64, u8, CellState)> {
    let cur = engine.cell_state(c);
    let cell = engine.hypergraph().cell(c);
    let mut best: Option<(i64, u8, CellState)> = None;
    let consider = |gain: i64, tie: u8, st: CellState, best: &mut Option<(i64, u8, CellState)>| {
        if !keep(st) {
            return;
        }
        if best.as_ref().is_none_or(|(g, t, _)| (gain, tie) > (*g, *t)) {
            *best = Some((gain, tie, st));
        }
    };
    match cur {
        CellState::Single { side } => {
            let mv = CellState::Single { side: 1 - side };
            consider(engine.peek_gain(c, mv), TIE_MOVE, mv, &mut best);
            if !cell.is_terminal() {
                match cfg.replication {
                    ReplicationMode::None => {}
                    ReplicationMode::Traditional => {
                        let st = CellState::Traditional { orig_side: side };
                        consider(engine.peek_gain(c, st), TIE_REPLICATE, st, &mut best);
                    }
                    ReplicationMode::Functional { threshold } => {
                        let m = cell.m_outputs();
                        if m >= 2 && psi[c.index()] >= threshold {
                            for o in 0..m {
                                let st = CellState::Functional {
                                    orig_side: side,
                                    replica_mask: 1 << o,
                                };
                                consider(engine.peek_gain(c, st), TIE_REPLICATE, st, &mut best);
                            }
                        }
                    }
                }
            }
        }
        CellState::Functional { .. } | CellState::Traditional { .. } => {
            for side in 0..2u8 {
                let st = CellState::Single { side };
                consider(engine.peek_gain(c, st), TIE_UNREPLICATE, st, &mut best);
            }
        }
    }
    best
}

/// Upper-bound legality of a state change against the area limits and
/// the replication growth budget.
fn legal(
    engine: &EngineState<'_>,
    cfg: &BipartitionConfig,
    total0: u64,
    c: CellId,
    new: CellState,
) -> bool {
    let d = engine.area_delta(c, new);
    let a = engine.areas();
    if !(0..2).all(|i| (a[i] as i64 + d[i]) as u64 <= cfg.max_area[i]) {
        return false;
    }
    match cfg.max_growth {
        None => true,
        Some(g) => (a[0] + a[1]) as i64 + d[0] + d[1] <= (total0 + g) as i64,
    }
}

/// Applies a state change whose gain was predicted as `expected`. On
/// divergence the move is rolled back and `Err(realized)` returned,
/// leaving the engine exactly as it was — the release-safe replacement
/// for the old `debug_assert_eq!`, which let release builds silently
/// apply moves under a wrong priority.
fn apply_exact(
    engine: &mut EngineState<'_>,
    c: CellId,
    new: CellState,
    expected: i64,
) -> Result<i64, i64> {
    let prev = engine.cell_state(c);
    let realized = engine.set_state(c, new);
    if realized == expected {
        Ok(realized)
    } else {
        engine.set_state(c, prev);
        Err(realized)
    }
}

/// One possible move of a cell during a pass, with its live gain.
///
/// The candidate *set* of a cell is fixed for a whole pass — a cell's
/// own state changes only when a move on it is applied (which locks it)
/// or undone by a repair (which restores it) — so only `gain` moves,
/// via the incremental delta updates.
struct Candidate {
    state: CellState,
    tie: u8,
    gain: i64,
}

/// Enumerates the candidate moves of `c` (same set and order as
/// [`best_candidate`]), seeding each gain from a full [`EngineState::peek_gain`].
fn push_candidates(
    engine: &EngineState<'_>,
    cfg: &BipartitionConfig,
    psi: &[u32],
    c: CellId,
    out: &mut Vec<Candidate>,
) {
    let mut push = |state: CellState, tie: u8| {
        out.push(Candidate {
            state,
            tie,
            gain: engine.peek_gain(c, state),
        });
    };
    let cell = engine.hypergraph().cell(c);
    match engine.cell_state(c) {
        CellState::Single { side } => {
            push(CellState::Single { side: 1 - side }, TIE_MOVE);
            if !cell.is_terminal() {
                match cfg.replication {
                    ReplicationMode::None => {}
                    ReplicationMode::Traditional => {
                        push(CellState::Traditional { orig_side: side }, TIE_REPLICATE);
                    }
                    ReplicationMode::Functional { threshold } => {
                        let m = cell.m_outputs();
                        if m >= 2 && psi[c.index()] >= threshold {
                            for o in 0..m {
                                push(
                                    CellState::Functional {
                                        orig_side: side,
                                        replica_mask: 1 << o,
                                    },
                                    TIE_REPLICATE,
                                );
                            }
                        }
                    }
                }
            }
        }
        CellState::Functional { .. } | CellState::Traditional { .. } => {
            for side in 0..2u8 {
                push(CellState::Single { side }, TIE_UNREPLICATE);
            }
        }
    }
}

/// The maximum-`(gain, tie)` candidate of `c` in the arena; earliest
/// wins on exact ties, matching [`best_candidate`].
fn best_of(cands: &[Candidate], range: &[(u32, u32)], c: CellId) -> Option<(i64, u8, usize)> {
    let (s, e) = range[c.index()];
    let mut best: Option<(i64, u8, usize)> = None;
    for (i, cd) in cands.iter().enumerate().take(e as usize).skip(s as usize) {
        if best.is_none_or(|(g, t, _)| (cd.gain, cd.tie) > (g, t)) {
            best = Some((cd.gain, cd.tie, i));
        }
    }
    best
}

struct PassOutcome {
    improvement: i64,
    any_balanced: bool,
    /// Selection telemetry: candidates popped for consideration,
    /// selection-structure scan work (bucket slots walked by the
    /// max-gain pointer, or stale heap pops skipped), stale-gain
    /// repairs, deferred cells retried after a drain, moves applied,
    /// and the balanced prefix kept after rollback.
    selects: u64,
    scans: u64,
    repairs: u64,
    retried: u64,
    applied: u64,
    kept: u64,
}

fn run_pass(
    engine: &mut EngineState<'_>,
    cfg: &BipartitionConfig,
    psi: &[u32],
    clock: &RunClock,
) -> PassOutcome {
    match cfg.selection {
        SelectionStrategy::GainBuckets => run_pass_buckets(engine, cfg, psi, clock),
        SelectionStrategy::LazyHeap => run_pass_heap(engine, cfg, psi, clock),
    }
}

/// One FM pass over the gain-bucket ladder with incremental updates.
///
/// Cells sit in [`GainBuckets`] keyed by their best candidate's
/// `(gain, tie)`. After each applied move, only the incident nets whose
/// endpoint counts actually changed are revisited, and each unlocked
/// endpoint's candidate gains are adjusted by the *difference* of that
/// net's contribution between the before/after count snapshots
/// ([`EngineState::net_contribution`]) — no candidate is recomputed
/// from scratch on the hot path.
///
/// When a cell's best candidate is area-illegal, the cell is re-keyed
/// by its best *legal* candidate (strictly lower, so this terminates)
/// instead of being set aside outright; cells with no legal candidate
/// go to `deferred` and re-enter when the areas change, with one final
/// retry should the ladder drain first.
fn run_pass_buckets(
    engine: &mut EngineState<'_>,
    cfg: &BipartitionConfig,
    psi: &[u32],
    clock: &RunClock,
) -> PassOutcome {
    let hg = engine.hypergraph();
    let total0 = hg.total_area();
    let n = hg.n_cells();
    // Own handle on the CSR arenas so net/neighbor slices stay
    // borrowable across the engine mutations below.
    let csr = engine.csr().clone();

    // Bucket-array gain bound: a move changes each distinct incident
    // net's cut contribution by at most 1. Pad-weighted gains can
    // exceed it; those ride the exact overflow list.
    let p_max = csr.max_cell_degree() as i64;

    let build_span = Span::enter(clock.recorder(), "fm", "buckets.build");
    let mut cands: Vec<Candidate> = Vec::new();
    let mut range: Vec<(u32, u32)> = Vec::with_capacity(n);
    for c in hg.cell_ids() {
        let s = cands.len() as u32;
        push_candidates(engine, cfg, psi, c, &mut cands);
        range.push((s, cands.len() as u32));
    }

    let mut buckets = GainBuckets::new(n, p_max);
    for c in hg.cell_ids() {
        if let Some((g, t, _)) = best_of(&cands, &range, c) {
            buckets.insert(c.0, g, t);
        }
    }
    drop(build_span);

    let mut locked = vec![false; n];
    let mut log: Vec<(CellId, CellState)> = Vec::new();
    let mut cum = 0i64;
    let mut best: Option<(i64, usize)> = cfg.balanced(engine.areas()).then_some((0, 0));
    let mut deferred: Vec<CellId> = Vec::new();
    let mut drained_retry = false;
    let mut selects = 0u64;
    let mut repairs = 0u64;
    let mut retried = 0u64;

    // Reused per-move scratch.
    let mut before: Vec<([u32; 2], [u32; 2])> = Vec::new();
    let mut in_touched = vec![false; n];
    let mut touched: Vec<u32> = Vec::new();

    loop {
        let Some((cell, gain, tie)) = buckets.pop() else {
            // The ladder drained. Deferred cells get one retry before
            // the pass ends — without it they would be silently dropped
            // whenever no further applied move re-enqueues them.
            if !deferred.is_empty() && !drained_retry {
                drained_retry = true;
                retried += deferred.len() as u64;
                for c in std::mem::take(&mut deferred) {
                    if let Some((g, t, _)) = best_of(&cands, &range, c) {
                        buckets.update(c.0, g, t);
                    }
                }
                continue;
            }
            break;
        };
        selects += 1;
        let c = CellId(cell);
        debug_assert!(!locked[c.index()], "locked cell left in the ladder");
        // Pick the best candidate still legal at the current areas. The
        // popped key is the cell's best candidate ignoring legality, or
        // a legal-best computed at some earlier areas; when the two
        // differ, re-key at the current legal-best and revisit. Between
        // applied moves legality is static, so re-keys only move a cell
        // down its candidate list and the loop terminates; an applied
        // move (which can raise legal bests) happens at most once per
        // cell.
        let (s, e) = range[c.index()];
        let mut pick: Option<(i64, u8, usize)> = None;
        for (i, cd) in cands.iter().enumerate().take(e as usize).skip(s as usize) {
            if pick.is_none_or(|(g, t, _)| (cd.gain, cd.tie) > (g, t))
                && legal(engine, cfg, total0, c, cd.state)
            {
                pick = Some((cd.gain, cd.tie, i));
            }
        }
        let Some((bg, bt, bi)) = pick else {
            // No legal candidate at the current areas; retry once they
            // change (or at the end-of-pass drain retry).
            deferred.push(c);
            continue;
        };
        if (bg, bt) != (gain, tie) {
            buckets.update(cell, bg, bt);
            continue;
        }
        let new = cands[bi].state;
        let prev = engine.cell_state(c);
        let nets = csr.nets_of(c);
        before.clear();
        before.extend(nets.iter().map(|&nt| engine.net_counts(nt)));
        if apply_exact(engine, c, new, bg).is_err() {
            // Stale cached gain (unreachable while the delta updates
            // stay exact): refresh this cell from scratch and reselect.
            repairs += 1;
            for cd in &mut cands[s as usize..e as usize] {
                cd.gain = engine.peek_gain(c, cd.state);
            }
            if let Some((g, t, _)) = best_of(&cands, &range, c) {
                buckets.update(cell, g, t);
            }
            continue;
        }
        locked[c.index()] = true;
        log.push((c, prev));
        cum += bg;
        if cfg.balanced(engine.areas()) && best.is_none_or(|(b, _)| cum > b) {
            best = Some((cum, log.len()));
        }
        // A tripped budget or injected fault abandons the rest of the
        // pass; the rollback below still restores the best balanced
        // prefix, so interruption only costs unexplored moves.
        if clock.tick_move().is_some() {
            break;
        }
        // Incremental gain maintenance: for each incident net whose
        // endpoint counts changed, adjust every unlocked endpoint's
        // candidates by the difference in that net's contribution. The
        // CSR `cells_of` slice is already deduplicated in first-seen
        // endpoint order, so the touch order matches the old per-move
        // `seen` scan move for move.
        touched.clear();
        for (i, &nt) in nets.iter().enumerate() {
            let after = engine.net_counts(nt);
            if after == before[i] {
                continue;
            }
            for &t in csr.cells_of(nt) {
                if t == c || locked[t.index()] {
                    continue;
                }
                let cur_t = engine.cell_state(t);
                let (ts, te) = range[t.index()];
                let pins = csr.pins_on(t, nt);
                for cd in &mut cands[ts as usize..te as usize] {
                    cd.gain += pins_contribution(hg, t, cur_t, cd.state, pins, after)
                        - pins_contribution(hg, t, cur_t, cd.state, pins, before[i]);
                }
                if !in_touched[t.index()] {
                    in_touched[t.index()] = true;
                    touched.push(t.0);
                }
            }
        }
        // The areas changed, so deferred cells get another look too.
        for d in deferred.drain(..) {
            if !locked[d.index()] && !in_touched[d.index()] {
                in_touched[d.index()] = true;
                touched.push(d.0);
            }
        }
        drained_retry = false;
        for &t in &touched {
            in_touched[t as usize] = false;
            if let Some((g, tt, _)) = best_of(&cands, &range, CellId(t)) {
                buckets.update(t, g, tt);
            }
        }
    }

    let keep = best.map_or(0, |(_, k)| k);
    let applied = log.len() as u64;
    for (c, prev) in log.drain(keep..).rev() {
        engine.set_state(c, prev);
    }
    PassOutcome {
        improvement: best.map_or(0, |(g, _)| g),
        any_balanced: best.is_some(),
        selects,
        scans: buckets.scans(),
        repairs,
        retried,
        applied,
        kept: keep as u64,
    }
}

/// One FM pass over a lazy max-heap: the differential baseline for
/// [`run_pass_buckets`].
///
/// Selection *policy* is identical to the bucket pass — same candidate
/// enumeration, same `(gain, tie)` keys, same LIFO / lowest-cell-id
/// ordering (see [`HeapEntry::ord`]), same re-key-to-legal-best rule at
/// selection time, same deferred-retry protocol — so for a fixed seed
/// both strategies elect the same move sequence and produce
/// certificate-identical solutions (enforced by `tests/differential.rs`).
///
/// The *mechanism* is deliberately different: priorities live in a lazy
/// `BinaryHeap` with stamp-invalidated entries, and every touched
/// neighbor's key is re-derived from scratch via
/// [`EngineState::peek_gain`] instead of the bucket pass's incremental
/// delta maintenance. Any inexactness in the incremental updates
/// surfaces as a certificate divergence between the two.
fn run_pass_heap(
    engine: &mut EngineState<'_>,
    cfg: &BipartitionConfig,
    psi: &[u32],
    clock: &RunClock,
) -> PassOutcome {
    let hg = engine.hypergraph();
    let total0 = hg.total_area();
    let n = hg.n_cells();
    let csr = engine.csr().clone();
    // Same in-range bound as the bucket ladder: inside it, equal keys
    // order LIFO by insertion sequence; outside, by lowest cell id.
    let p_max = csr.max_cell_degree() as i64;
    let ord_of = |gain: i64, cell: u32, seq: u64| -> u64 {
        if (-p_max..=p_max).contains(&gain) {
            seq
        } else {
            u64::from(!cell)
        }
    };

    let mut locked = vec![false; n];
    let mut stamps = vec![0u64; n];
    // Key of each cell's live entry; `present` gates the same-key no-op
    // (which preserves the LIFO position, exactly like the ladder's
    // `update` with an unchanged key).
    let mut key: Vec<(i64, u8)> = vec![(0, 0); n];
    let mut present = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;

    let mut push_entry = |heap: &mut BinaryHeap<HeapEntry>,
                          stamps: &mut [u64],
                          key: &mut [(i64, u8)],
                          present: &mut [bool],
                          c: CellId,
                          g: i64,
                          t: u8| {
        stamps[c.index()] += 1;
        seq += 1;
        key[c.index()] = (g, t);
        present[c.index()] = true;
        heap.push(HeapEntry {
            gain: g,
            tie: t,
            ord: ord_of(g, c.0, seq),
            cell: c.0,
            stamp: stamps[c.index()],
        });
    };
    // (Re)keys `c` by its best candidate ignoring legality — the
    // ladder's `update(best_of(..))` — keeping the live entry when the
    // key is unchanged.
    macro_rules! push_best {
        ($c:expr) => {{
            let c: CellId = $c;
            if let Some((g, t, _)) = best_candidate(engine, cfg, psi, c) {
                if !(present[c.index()] && key[c.index()] == (g, t)) {
                    push_entry(&mut heap, &mut stamps, &mut key, &mut present, c, g, t);
                }
            } else if present[c.index()] {
                present[c.index()] = false;
                stamps[c.index()] += 1;
            }
        }};
    }

    for c in hg.cell_ids() {
        push_best!(c);
    }

    let mut log: Vec<(CellId, CellState)> = Vec::new();
    let mut cum = 0i64;
    let mut best: Option<(i64, usize)> = cfg.balanced(engine.areas()).then_some((0, 0));
    let mut deferred: Vec<CellId> = Vec::new();
    let mut drained_retry = false;
    let mut selects = 0u64;
    let mut scans = 0u64;
    let mut repairs = 0u64;
    let mut retried = 0u64;

    // Reused per-move scratch, mirroring the bucket pass.
    let mut before: Vec<([u32; 2], [u32; 2])> = Vec::new();
    let mut in_touched = vec![false; n];
    let mut touched: Vec<u32> = Vec::new();

    loop {
        let Some(e) = heap.pop() else {
            // Drained: give deferred cells one retry (see the bucket
            // pass for rationale).
            if !deferred.is_empty() && !drained_retry {
                drained_retry = true;
                retried += deferred.len() as u64;
                for c in std::mem::take(&mut deferred) {
                    if !locked[c.index()] {
                        push_best!(c);
                    }
                }
                continue;
            }
            break;
        };
        let c = CellId(e.cell);
        if locked[c.index()] || e.stamp != stamps[c.index()] {
            // Superseded entry: the heap's analogue of a bucket-walk
            // scan.
            scans += 1;
            continue;
        }
        selects += 1;
        // Select the best candidate still legal at the current areas,
        // re-deriving every gain from scratch; re-key and revisit when
        // it differs from the popped key (the ladder's exact rule).
        let pick =
            best_candidate_where(engine, cfg, psi, c, |st| legal(engine, cfg, total0, c, st));
        let Some((bg, bt, new)) = pick else {
            // No legal candidate at the current areas; retry once they
            // change (or at the end-of-pass drain retry).
            present[c.index()] = false;
            stamps[c.index()] += 1;
            deferred.push(c);
            continue;
        };
        if (bg, bt) != (e.gain, e.tie) {
            push_entry(&mut heap, &mut stamps, &mut key, &mut present, c, bg, bt);
            continue;
        }
        let prev = engine.cell_state(c);
        let nets = csr.nets_of(c);
        before.clear();
        before.extend(nets.iter().map(|&nt| engine.net_counts(nt)));
        if apply_exact(engine, c, new, bg).is_err() {
            // Stale gain (unreachable while peek_gain is exact):
            // refresh the cell and reselect instead of applying the
            // move under a wrong priority.
            repairs += 1;
            if let Some((g, t, _)) = best_candidate(engine, cfg, psi, c) {
                push_entry(&mut heap, &mut stamps, &mut key, &mut present, c, g, t);
            } else {
                present[c.index()] = false;
                stamps[c.index()] += 1;
            }
            continue;
        }
        locked[c.index()] = true;
        log.push((c, prev));
        cum += bg;
        if cfg.balanced(engine.areas()) && best.is_none_or(|(b, _)| cum > b) {
            best = Some((cum, log.len()));
        }
        // A tripped budget or injected fault abandons the rest of the
        // pass; the rollback below still restores the best balanced
        // prefix, so interruption only costs unexplored moves.
        if clock.tick_move().is_some() {
            break;
        }
        // Re-key every unlocked cell on a net whose endpoint counts
        // changed, plus anything deferred on area limits — collected in
        // the same first-seen order as the bucket pass so both
        // strategies reposition equal-key cells identically.
        touched.clear();
        for (i, &nt) in nets.iter().enumerate() {
            if engine.net_counts(nt) == before[i] {
                continue;
            }
            for &t in csr.cells_of(nt) {
                if t == c || locked[t.index()] {
                    continue;
                }
                if !in_touched[t.index()] {
                    in_touched[t.index()] = true;
                    touched.push(t.0);
                }
            }
        }
        for d in deferred.drain(..) {
            if !locked[d.index()] && !in_touched[d.index()] {
                in_touched[d.index()] = true;
                touched.push(d.0);
            }
        }
        drained_retry = false;
        for &t in &touched {
            in_touched[t as usize] = false;
            push_best!(CellId(t));
        }
    }

    let keep = best.map_or(0, |(_, k)| k);
    let applied = log.len() as u64;
    for (c, prev) in log.drain(keep..).rev() {
        engine.set_state(c, prev);
    }
    PassOutcome {
        improvement: best.map_or(0, |(g, _)| g),
        any_balanced: best.is_some(),
        selects,
        scans,
        repairs,
        retried,
        applied,
        kept: keep as u64,
    }
}

/// A random initial assignment that fills side 0 up to the midpoint of
/// its area window (respecting side 1's upper bound), in shuffled order.
pub(crate) fn initial_sides(hg: &Hypergraph, cfg: &BipartitionConfig) -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut order: Vec<CellId> = hg.cell_ids().collect();
    rng.shuffle(&mut order);
    let total = hg.total_area();
    let mid0 = (cfg.min_area[0] + cfg.max_area[0]) / 2;
    let floor0 = total.saturating_sub(cfg.max_area[1]);
    let target0 = mid0.clamp(floor0.min(cfg.max_area[0]), cfg.max_area[0]);
    let mut sides = vec![1u8; hg.n_cells()];
    let mut a0 = 0u64;
    for c in order {
        let a = u64::from(hg.cell(c).area());
        if a0 + a <= target0 {
            sides[c.index()] = 0;
            a0 += a;
        }
    }
    sides
}

/// Runs FM (optionally with replication) from a random initial placement
/// until no pass improves the cut.
///
/// Passes move/replicate/unreplicate one cell at a time in gain order,
/// lock it, and finally roll back to the best *balanced* prefix; runs
/// stop after [`BipartitionConfig::max_passes`] or the first pass without
/// improvement.
pub fn bipartition(hg: &Hypergraph, cfg: &BipartitionConfig) -> BipartitionResult {
    let clock = RunClock::new(&cfg.budget, &cfg.fault);
    bipartition_with_clock(hg, cfg, &clock)
}

/// [`bipartition`] against an externally owned [`RunClock`], so that
/// multi-start, k-way and parallel-portfolio drivers can enforce one
/// budget across many bipartitions (or share a deadline and
/// [`CancelToken`](crate::CancelToken) across threads).
pub fn bipartition_with_clock(
    hg: &Hypergraph,
    cfg: &BipartitionConfig,
    clock: &RunClock,
) -> BipartitionResult {
    let sides = initial_sides(hg, cfg);
    bipartition_from_sides(hg, cfg, &sides, clock)
}

/// [`bipartition_with_clock`] from an explicit initial assignment
/// instead of the seeded random one — `sides[i]` is cell `i`'s starting
/// side (0 or 1). This is the multilevel refinement entry point: each
/// uncoarsening rung projects the coarse solution down and hands it
/// here, so the V-cycle reuses the flat pass loop (gain buckets,
/// replication phases, rollback, budgets) without duplicating any of
/// it.
///
/// # Panics
///
/// Panics if `sides` is shorter than the cell count or contains a
/// value other than 0 or 1.
pub fn bipartition_from_sides(
    hg: &Hypergraph,
    cfg: &BipartitionConfig,
    sides: &[u8],
    clock: &RunClock,
) -> BipartitionResult {
    let mut engine = EngineState::new_weighted(hg, sides, cfg.terminal_weight);
    let psi: Vec<u32> = hg
        .cells()
        .iter()
        .map(|c| c.replication_potential() as u32)
        .collect();
    let mut passes = 0;
    let mut balanced_ever = cfg.balanced(engine.areas());
    // Phase 1 always runs plain FM to convergence; phase 2 adds the
    // replication moves as a refinement. Replicating while the cut is
    // still near-random commits structure prematurely and degrades the
    // result — refining a converged min-cut is where replication pays
    // off (every pass rolls back to its best prefix, so phase 2 can only
    // improve on phase 1).
    let phases: &[ReplicationMode] = if cfg.replication.replicates() {
        &[ReplicationMode::None, cfg.replication]
    } else {
        &[ReplicationMode::None]
    };
    let recorder = clock.recorder();
    let moves0 = clock.moves(); // the clock may be shared across starts
    let mut stop = StopReason::Converged;
    let mut gain_repairs = 0usize;
    'phases: for &mode in phases {
        let phase_cfg = BipartitionConfig {
            replication: mode,
            ..cfg.clone()
        };
        let phase_name = match mode {
            ReplicationMode::None => "plain",
            ReplicationMode::Traditional => "traditional",
            ReplicationMode::Functional { .. } => "functional",
        };
        stop = StopReason::PassLimit; // overwritten on convergence/interruption
        for _ in 0..cfg.max_passes {
            let pass_span = Span::enter(recorder, "fm", "pass");
            let out = run_pass(&mut engine, &phase_cfg, &psi, clock);
            drop(pass_span);
            passes += 1;
            gain_repairs += out.repairs as usize;
            if recorder.enabled(Level::Trace) {
                recorder.record(
                    &Event::new("fm", "pass", Level::Trace)
                        .field("seed", cfg.seed)
                        .field("phase", phase_name)
                        .field("pass", passes)
                        .field("cut", engine.cut())
                        .field("gain", out.improvement)
                        .field("selects", out.selects)
                        .field("scans", out.scans)
                        .field("repairs", out.repairs)
                        .field("retried", out.retried)
                        .field("applied", out.applied)
                        .field("kept", out.kept)
                        .field("spanning", engine.spanning_nets())
                        .field("balanced", out.any_balanced),
                );
            }
            if let Some(r) = clock.tick_pass() {
                stop = r;
                break 'phases;
            }
            let progress = out.improvement > 0 || (!balanced_ever && out.any_balanced);
            balanced_ever |= out.any_balanced;
            if !progress {
                stop = StopReason::Converged;
                break;
            }
        }
    }
    let exportable = (0..hg.n_cells()).all(|i| {
        !matches!(
            engine.cell_state(CellId(i as u32)),
            CellState::Traditional { .. }
        )
    });
    let replicated_cells = engine.replicated_cells();
    if recorder.enabled(Level::Debug) {
        recorder.record(
            &Event::new("fm", "done", Level::Debug)
                .field("seed", cfg.seed)
                .field("cut", engine.cut())
                .field("passes", passes)
                .field("balanced", cfg.balanced(engine.areas()))
                .field("replicated", replicated_cells)
                .field("stop", format!("{stop:?}")),
        );
        recorder.record(&Event::counter("fm", "passes", passes as u64).at(Level::Debug));
        recorder.record(&Event::counter("fm", "moves", clock.moves() - moves0).at(Level::Debug));
        if replicated_cells > 0 {
            // Replication events binned by ψ: which replication
            // potentials the accepted replicas actually had (paper
            // eq. 5's d_X(ψ) restricted to the replicated set).
            let mut bins: Vec<u64> = Vec::new();
            for (i, &cell_psi) in psi.iter().enumerate().take(hg.n_cells()) {
                let c = CellId(i as u32);
                if !matches!(engine.cell_state(c), CellState::Single { .. }) {
                    let p = cell_psi as usize;
                    if bins.len() <= p {
                        bins.resize(p + 1, 0);
                    }
                    bins[p] += 1;
                }
            }
            recorder.record(&Event::hist("fm", "replicated_psi", bins).at(Level::Debug));
        }
    }
    BipartitionResult {
        cut: engine.cut(),
        areas: engine.areas(),
        replicated_cells,
        passes,
        balanced: cfg.balanced(engine.areas()),
        stop,
        placement: exportable.then(|| engine.to_placement()),
        gain_repairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::fault::FaultPlan;
    use netpart_hypergraph::{AdjacencyMatrix, CellKind, HypergraphBuilder};
    use netpart_netlist::{generate, GeneratorConfig};
    use netpart_techmap::{map, MapperConfig};

    fn mapped(gates: usize, dffs: usize, seed: u64) -> netpart_hypergraph::Hypergraph {
        let nl = generate(&GeneratorConfig::new(gates).with_dff(dffs).with_seed(seed));
        map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl)
    }

    /// A circuit where cell `D` has two input pins on the same net `na`
    /// — the case [`crate::gain::extract_vectors`] rejects, so every
    /// gain for `D` must come from the engine's per-net accounting.
    fn shared_net_circuit() -> (Hypergraph, CellId) {
        let mut b = HypergraphBuilder::new();
        let pa = b.add_cell("a", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let pb = b.add_cell("b", CellKind::input_pad(), 0, 1, AdjacencyMatrix::pad());
        let d = b.add_cell(
            "D",
            CellKind::logic(1),
            2,
            2,
            AdjacencyMatrix::from_rows(2, &[&[0, 1], &[0, 1]]),
        );
        let e = b.add_cell(
            "E",
            CellKind::logic(1),
            2,
            1,
            AdjacencyMatrix::from_rows(2, &[&[0, 1]]),
        );
        let na = b.add_net("na");
        let nb = b.add_net("nb");
        let nx = b.add_net("nx");
        let ny = b.add_net("ny");
        let nz = b.add_net("nz");
        b.connect_output(na, pa, 0).unwrap();
        b.connect_output(nb, pb, 0).unwrap();
        // Both inputs of D ride the same net.
        b.connect_input(na, d, 0).unwrap();
        b.connect_input(na, d, 1).unwrap();
        b.connect_output(nx, d, 0).unwrap();
        b.connect_output(ny, d, 1).unwrap();
        b.connect_input(nx, e, 0).unwrap();
        b.connect_input(nb, e, 1).unwrap();
        b.connect_output(nz, e, 0).unwrap();
        let py = b.add_cell("Y", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        let pz = b.add_cell("Z", CellKind::output_pad(), 1, 0, AdjacencyMatrix::pad());
        b.connect_input(ny, py, 0).unwrap();
        b.connect_input(nz, pz, 0).unwrap();
        (b.finish().unwrap(), d)
    }

    #[test]
    fn fm_improves_over_random() {
        let hg = mapped(300, 20, 1);
        let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(3);
        let initial = {
            let sides = initial_sides(&hg, &cfg);
            EngineState::new(&hg, &sides).cut()
        };
        let res = bipartition(&hg, &cfg);
        assert!(res.balanced, "result must satisfy the area window");
        assert!(
            res.cut < initial,
            "FM should improve the random cut ({initial} → {})",
            res.cut
        );
        let p = res.placement.expect("no replication → placement exists");
        assert_eq!(p.cut_size(&hg), res.cut);
    }

    #[test]
    fn functional_replication_cuts_less_or_equal() {
        let hg = mapped(400, 30, 2);
        let base = BipartitionConfig::equal(&hg, 0.1).with_seed(5);
        let plain = bipartition(&hg, &base);
        let repl = bipartition(
            &hg,
            &base
                .clone()
                .with_replication(ReplicationMode::functional(0)),
        );
        assert!(plain.balanced && repl.balanced);
        assert!(
            repl.cut <= plain.cut,
            "replication must not hurt: {} vs {}",
            repl.cut,
            plain.cut
        );
        let p = repl.placement.expect("functional placements export");
        p.validate(&hg).unwrap();
        assert_eq!(p.cut_size(&hg), repl.cut);
    }

    #[test]
    fn traditional_mode_runs_and_reports() {
        let hg = mapped(200, 10, 7);
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(1)
            .with_replication(ReplicationMode::Traditional);
        let res = bipartition(&hg, &cfg);
        assert!(res.balanced);
        if res.replicated_cells > 0 {
            assert!(res.placement.is_none());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let hg = mapped(250, 15, 9);
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(11)
            .with_replication(ReplicationMode::functional(1));
        let a = bipartition(&hg, &cfg);
        let b = bipartition(&hg, &cfg);
        assert_eq!(a.cut, b.cut);
        assert_eq!(a.areas, b.areas);
        assert_eq!(a.replicated_cells, b.replicated_cells);
    }

    #[test]
    fn shared_net_pins_partition_without_repairs() {
        // Regression for the old `debug_assert_eq!(realized, e.gain)`:
        // cells with two pins on one net fall outside the eq. 7 vector
        // model, so a selection structure that mispredicted their gains
        // would silently apply mis-prioritized moves in release builds.
        // With per-net exact accounting no repair may ever fire, in any
        // replication mode and under either selection strategy.
        let (hg, d) = shared_net_circuit();
        let e = crate::gain::extract_vectors(&EngineState::new(&hg, &[0; 6]), d);
        assert!(e.is_none(), "fixture must hit the extract_vectors reject");
        for selection in [SelectionStrategy::GainBuckets, SelectionStrategy::LazyHeap] {
            for mode in [
                ReplicationMode::None,
                ReplicationMode::Traditional,
                ReplicationMode::functional(0),
            ] {
                let cfg = BipartitionConfig::bounded([0, 0], [hg.total_area(), hg.total_area()])
                    .with_seed(3)
                    .with_replication(mode)
                    .with_selection(selection);
                let res = bipartition(&hg, &cfg);
                assert_eq!(
                    res.gain_repairs, 0,
                    "stale gain under {selection:?}/{mode:?}"
                );
                assert!(res.balanced);
                if let Some(p) = &res.placement {
                    p.validate(&hg).unwrap();
                    assert_eq!(p.cut_size(&hg), res.cut);
                }
            }
        }
    }

    #[test]
    fn apply_exact_rolls_back_on_divergence() {
        // The repair primitive itself: a wrong expected gain must leave
        // the engine byte-identical instead of applying the move under
        // a wrong priority (what release builds did before).
        let (hg, d) = shared_net_circuit();
        let sides = vec![0, 0, 0, 1, 1, 1];
        let mut engine = EngineState::new(&hg, &sides);
        let cut0 = engine.cut();
        let st0 = engine.cell_state(d);
        let mv = CellState::Single { side: 1 };
        let true_gain = engine.peek_gain(d, mv);
        assert_eq!(
            apply_exact(&mut engine, d, mv, true_gain + 1),
            Err(true_gain),
            "diverging prediction must be rejected with the realized gain"
        );
        assert_eq!(engine.cut(), cut0);
        assert_eq!(engine.cell_state(d), st0);
        assert!(engine.validate(), "rollback must restore every counter");
        assert_eq!(apply_exact(&mut engine, d, mv, true_gain), Ok(true_gain));
        assert_eq!(engine.cell_state(d), mv);
        assert!(engine.validate());
    }

    #[test]
    fn deferred_cells_get_a_drain_retry() {
        // Two logic cells in a cycle, both on side 0, with side 1 capped
        // at zero area: every candidate move is area-illegal, so both
        // cells land in `deferred` and the ladder drains without one
        // applied move — exactly the case where deferred cells used to
        // be silently dropped. The retry must re-examine each once and
        // leave the engine untouched.
        let mut b = HypergraphBuilder::new();
        let c0 = b.add_cell("c0", CellKind::logic(1), 1, 1, AdjacencyMatrix::full(1, 1));
        let c1 = b.add_cell("c1", CellKind::logic(1), 1, 1, AdjacencyMatrix::full(1, 1));
        let n0 = b.add_net("n0");
        let n1 = b.add_net("n1");
        b.connect_output(n0, c0, 0).unwrap();
        b.connect_input(n0, c1, 0).unwrap();
        b.connect_output(n1, c1, 0).unwrap();
        b.connect_input(n1, c0, 0).unwrap();
        let hg = b.finish().unwrap();
        for selection in [SelectionStrategy::GainBuckets, SelectionStrategy::LazyHeap] {
            // A tight `u_i·c_i` ceiling: side 1 admits no area at all.
            let cfg = BipartitionConfig::bounded([0, 0], [hg.total_area(), 0])
                .with_selection(selection);
            let mut engine = EngineState::new(&hg, &[0, 0]);
            let cut0 = engine.cut();
            let clock = RunClock::new(&Budget::none(), &FaultPlan::none());
            let out = run_pass(&mut engine, &cfg, &[0, 0], &clock);
            assert_eq!(out.retried, 2, "both deferred cells retried once");
            assert_eq!(out.applied, 0);
            assert_eq!(out.repairs, 0);
            assert_eq!(engine.cut(), cut0, "pass must not corrupt the state");
            assert!(engine.validate());
        }
    }

    #[test]
    fn strategies_agree_on_quality_and_never_repair() {
        // The heap baseline replicates the bucket ladder's selection
        // policy exactly (ordering, legality re-keying, deferral), so
        // both strategies must elect identical solutions — not merely
        // comparable ones — with zero stale-gain repairs across all
        // replication modes on a real mapped circuit. The full
        // certificate-level equivalence runs in tests/differential.rs.
        let hg = mapped(350, 25, 6);
        for mode in [
            ReplicationMode::None,
            ReplicationMode::Traditional,
            ReplicationMode::functional(1),
        ] {
            let base = BipartitionConfig::equal(&hg, 0.1)
                .with_seed(13)
                .with_replication(mode);
            let buckets = bipartition(&hg, &base);
            let heap = bipartition(
                &hg,
                &base.clone().with_selection(SelectionStrategy::LazyHeap),
            );
            for (label, r) in [("buckets", &buckets), ("heap", &heap)] {
                assert!(r.balanced, "{label} unbalanced under {mode:?}");
                assert_eq!(r.gain_repairs, 0, "{label} repaired under {mode:?}");
                if let Some(p) = &r.placement {
                    assert_eq!(p.cut_size(&hg), r.cut, "{label} cut mismatch");
                }
            }
            assert_eq!(buckets.cut, heap.cut, "strategies diverged under {mode:?}");
            assert_eq!(buckets.areas, heap.areas, "areas diverged under {mode:?}");
            assert_eq!(
                buckets.replicated_cells, heap.replicated_cells,
                "replication diverged under {mode:?}"
            );
            assert_eq!(
                buckets.placement, heap.placement,
                "placements diverged under {mode:?}"
            );
        }
    }

    #[test]
    fn respects_asymmetric_bounds() {
        let hg = mapped(300, 0, 4);
        let total = hg.total_area();
        let chunk = total / 4;
        let cfg = BipartitionConfig::bounded([0, 0], [chunk, total]).with_seed(2);
        let res = bipartition(&hg, &cfg);
        assert!(res.areas[0] <= chunk);
        assert!(res.balanced);
    }
}
