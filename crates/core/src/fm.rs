//! The Fiduccia–Mattheyses pass structure, extended with replication
//! moves (paper §III-D): gain-ordered move selection, lock-after-move,
//! rollback to the best balanced prefix, repeated passes to convergence.

use crate::budget::RunClock;
use crate::config::{BipartitionConfig, ReplicationMode};
use crate::error::StopReason;
use crate::state::{CellState, EngineState};
use netpart_hypergraph::{CellId, Hypergraph, Placement};
use netpart_obs::{Event, Level};
use netpart_rng::Rng;
use std::collections::BinaryHeap;

/// The outcome of one bipartitioning run.
#[derive(Clone, Debug)]
pub struct BipartitionResult {
    /// Final cut-set size (number of cut nets).
    pub cut: usize,
    /// Final per-side areas (replicas counted on both sides).
    pub areas: [u64; 2],
    /// Number of replicated cells in the final state.
    pub replicated_cells: usize,
    /// FM passes executed.
    pub passes: usize,
    /// Whether the final state satisfies both sides' area bounds.
    pub balanced: bool,
    /// Why the run ended. Anything but [`StopReason::Converged`] means
    /// further passes might still have improved the cut; the state
    /// returned is always the best found before stopping (interrupted
    /// passes roll back to their best balanced prefix as usual).
    pub stop: StopReason,
    /// The final placement; `None` only under
    /// [`ReplicationMode::Traditional`] with replicas present (traditional
    /// copies share output nets and have no [`Placement`] form).
    pub placement: Option<Placement>,
}

/// Move priority on gain ties: prefer shrinking work (unreplication),
/// then plain moves, then replication (which grows the design).
const TIE_UNREPLICATE: u8 = 3;
const TIE_MOVE: u8 = 2;
const TIE_REPLICATE: u8 = 1;

#[derive(PartialEq, Eq)]
struct HeapEntry {
    gain: i64,
    tie: u8,
    cell: u32,
    stamp: u64,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.gain, self.tie, std::cmp::Reverse(self.cell)).cmp(&(
            other.gain,
            other.tie,
            std::cmp::Reverse(other.cell),
        ))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The best move currently available for a cell, if any.
fn best_candidate(
    engine: &EngineState<'_>,
    cfg: &BipartitionConfig,
    psi: &[u32],
    c: CellId,
) -> Option<(i64, u8, CellState)> {
    let cur = engine.cell_state(c);
    let cell = engine.hypergraph().cell(c);
    let mut best: Option<(i64, u8, CellState)> = None;
    let consider = |gain: i64, tie: u8, st: CellState, best: &mut Option<(i64, u8, CellState)>| {
        if best.as_ref().is_none_or(|(g, t, _)| (gain, tie) > (*g, *t)) {
            *best = Some((gain, tie, st));
        }
    };
    match cur {
        CellState::Single { side } => {
            let mv = CellState::Single { side: 1 - side };
            consider(engine.peek_gain(c, mv), TIE_MOVE, mv, &mut best);
            if !cell.is_terminal() {
                match cfg.replication {
                    ReplicationMode::None => {}
                    ReplicationMode::Traditional => {
                        let st = CellState::Traditional { orig_side: side };
                        consider(engine.peek_gain(c, st), TIE_REPLICATE, st, &mut best);
                    }
                    ReplicationMode::Functional { threshold } => {
                        let m = cell.m_outputs();
                        if m >= 2 && psi[c.index()] >= threshold {
                            for o in 0..m {
                                let st = CellState::Functional {
                                    orig_side: side,
                                    replica_mask: 1 << o,
                                };
                                consider(engine.peek_gain(c, st), TIE_REPLICATE, st, &mut best);
                            }
                        }
                    }
                }
            }
        }
        CellState::Functional { .. } | CellState::Traditional { .. } => {
            for side in 0..2u8 {
                let st = CellState::Single { side };
                consider(engine.peek_gain(c, st), TIE_UNREPLICATE, st, &mut best);
            }
        }
    }
    best
}

/// Upper-bound legality of a state change against the area limits and
/// the replication growth budget.
fn legal(
    engine: &EngineState<'_>,
    cfg: &BipartitionConfig,
    total0: u64,
    c: CellId,
    new: CellState,
) -> bool {
    let d = engine.area_delta(c, new);
    let a = engine.areas();
    if !(0..2).all(|i| (a[i] as i64 + d[i]) as u64 <= cfg.max_area[i]) {
        return false;
    }
    match cfg.max_growth {
        None => true,
        Some(g) => (a[0] + a[1]) as i64 + d[0] + d[1] <= (total0 + g) as i64,
    }
}

struct PassOutcome {
    improvement: i64,
    any_balanced: bool,
    /// Gain-bucket (heap) statistics for telemetry: total pops, pops
    /// skipped as stale/locked, moves applied, and the balanced prefix
    /// kept after rollback.
    pops: u64,
    stale: u64,
    applied: u64,
    kept: u64,
}

fn run_pass(
    engine: &mut EngineState<'_>,
    cfg: &BipartitionConfig,
    psi: &[u32],
    clock: &RunClock,
) -> PassOutcome {
    let hg = engine.hypergraph();
    let total0 = hg.total_area();
    let n = hg.n_cells();
    let mut locked = vec![false; n];
    let mut stamps = vec![0u64; n];
    let mut proposed: Vec<Option<CellState>> = vec![None; n];
    let mut heap = BinaryHeap::new();

    let push = |engine: &EngineState<'_>,
                heap: &mut BinaryHeap<HeapEntry>,
                stamps: &mut [u64],
                proposed: &mut [Option<CellState>],
                c: CellId| {
        if let Some((gain, tie, st)) = best_candidate(engine, cfg, psi, c) {
            stamps[c.index()] += 1;
            proposed[c.index()] = Some(st);
            heap.push(HeapEntry {
                gain,
                tie,
                cell: c.0,
                stamp: stamps[c.index()],
            });
        }
    };

    for c in hg.cell_ids() {
        push(engine, &mut heap, &mut stamps, &mut proposed, c);
    }

    let mut log: Vec<(CellId, CellState)> = Vec::new();
    let mut cum = 0i64;
    let mut best: Option<(i64, usize)> = cfg.balanced(engine.areas()).then_some((0, 0));
    let mut deferred: Vec<CellId> = Vec::new();
    let mut pops = 0u64;
    let mut stale = 0u64;

    while let Some(e) = heap.pop() {
        pops += 1;
        let c = CellId(e.cell);
        if locked[c.index()] || e.stamp != stamps[c.index()] {
            stale += 1;
            continue;
        }
        let Some(new) = proposed[c.index()] else {
            stale += 1;
            continue;
        };
        if !legal(engine, cfg, total0, c, new) {
            // Area limits are global state; retry once they change.
            deferred.push(c);
            continue;
        }
        let prev = engine.cell_state(c);
        let realized = engine.set_state(c, new);
        debug_assert_eq!(realized, e.gain, "stale gain for {c:?}");
        locked[c.index()] = true;
        log.push((c, prev));
        cum += realized;
        if cfg.balanced(engine.areas()) && best.is_none_or(|(b, _)| cum > b) {
            best = Some((cum, log.len()));
        }
        // A tripped budget or injected fault abandons the rest of the
        // pass; the rollback below still restores the best balanced
        // prefix, so interruption only costs unexplored moves.
        if clock.tick_move().is_some() {
            break;
        }
        // Refresh every unlocked cell whose incident nets changed, plus
        // anything deferred on area limits.
        let mut touched: Vec<CellId> = Vec::new();
        for net in EngineState::incident_nets(hg, c) {
            for ep in hg.net(net).endpoints() {
                touched.push(ep.cell);
            }
        }
        touched.append(&mut deferred);
        touched.sort_unstable();
        touched.dedup();
        for t in touched {
            if !locked[t.index()] {
                push(engine, &mut heap, &mut stamps, &mut proposed, t);
            }
        }
    }

    let keep = best.map_or(0, |(_, k)| k);
    let applied = log.len() as u64;
    for (c, prev) in log.drain(keep..).rev() {
        engine.set_state(c, prev);
    }
    PassOutcome {
        improvement: best.map_or(0, |(g, _)| g),
        any_balanced: best.is_some(),
        pops,
        stale,
        applied,
        kept: keep as u64,
    }
}

/// A random initial assignment that fills side 0 up to the midpoint of
/// its area window (respecting side 1's upper bound), in shuffled order.
pub(crate) fn initial_sides(hg: &Hypergraph, cfg: &BipartitionConfig) -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut order: Vec<CellId> = hg.cell_ids().collect();
    rng.shuffle(&mut order);
    let total = hg.total_area();
    let mid0 = (cfg.min_area[0] + cfg.max_area[0]) / 2;
    let floor0 = total.saturating_sub(cfg.max_area[1]);
    let target0 = mid0.clamp(floor0.min(cfg.max_area[0]), cfg.max_area[0]);
    let mut sides = vec![1u8; hg.n_cells()];
    let mut a0 = 0u64;
    for c in order {
        let a = u64::from(hg.cell(c).area());
        if a0 + a <= target0 {
            sides[c.index()] = 0;
            a0 += a;
        }
    }
    sides
}

/// Runs FM (optionally with replication) from a random initial placement
/// until no pass improves the cut.
///
/// Passes move/replicate/unreplicate one cell at a time in gain order,
/// lock it, and finally roll back to the best *balanced* prefix; runs
/// stop after [`BipartitionConfig::max_passes`] or the first pass without
/// improvement.
pub fn bipartition(hg: &Hypergraph, cfg: &BipartitionConfig) -> BipartitionResult {
    let clock = RunClock::new(&cfg.budget, &cfg.fault);
    bipartition_with_clock(hg, cfg, &clock)
}

/// [`bipartition`] against an externally owned [`RunClock`], so that
/// multi-start, k-way and parallel-portfolio drivers can enforce one
/// budget across many bipartitions (or share a deadline and
/// [`CancelToken`](crate::CancelToken) across threads).
pub fn bipartition_with_clock(
    hg: &Hypergraph,
    cfg: &BipartitionConfig,
    clock: &RunClock,
) -> BipartitionResult {
    let sides = initial_sides(hg, cfg);
    let mut engine = EngineState::new_weighted(hg, &sides, cfg.terminal_weight);
    let psi: Vec<u32> = hg
        .cells()
        .iter()
        .map(|c| c.replication_potential() as u32)
        .collect();
    let mut passes = 0;
    let mut balanced_ever = cfg.balanced(engine.areas());
    // Phase 1 always runs plain FM to convergence; phase 2 adds the
    // replication moves as a refinement. Replicating while the cut is
    // still near-random commits structure prematurely and degrades the
    // result — refining a converged min-cut is where replication pays
    // off (every pass rolls back to its best prefix, so phase 2 can only
    // improve on phase 1).
    let phases: &[ReplicationMode] = if cfg.replication.replicates() {
        &[ReplicationMode::None, cfg.replication]
    } else {
        &[ReplicationMode::None]
    };
    let recorder = clock.recorder();
    let moves0 = clock.moves(); // the clock may be shared across starts
    let mut stop = StopReason::Converged;
    'phases: for &mode in phases {
        let phase_cfg = BipartitionConfig {
            replication: mode,
            ..cfg.clone()
        };
        let phase_name = match mode {
            ReplicationMode::None => "plain",
            ReplicationMode::Traditional => "traditional",
            ReplicationMode::Functional { .. } => "functional",
        };
        stop = StopReason::PassLimit; // overwritten on convergence/interruption
        for _ in 0..cfg.max_passes {
            let out = run_pass(&mut engine, &phase_cfg, &psi, clock);
            passes += 1;
            if recorder.enabled(Level::Trace) {
                recorder.record(
                    &Event::new("fm", "pass", Level::Trace)
                        .field("seed", cfg.seed)
                        .field("phase", phase_name)
                        .field("pass", passes)
                        .field("cut", engine.cut())
                        .field("gain", out.improvement)
                        .field("pops", out.pops)
                        .field("stale", out.stale)
                        .field("applied", out.applied)
                        .field("kept", out.kept)
                        .field("balanced", out.any_balanced),
                );
            }
            if let Some(r) = clock.tick_pass() {
                stop = r;
                break 'phases;
            }
            let progress = out.improvement > 0 || (!balanced_ever && out.any_balanced);
            balanced_ever |= out.any_balanced;
            if !progress {
                stop = StopReason::Converged;
                break;
            }
        }
    }
    let exportable = (0..hg.n_cells()).all(|i| {
        !matches!(
            engine.cell_state(CellId(i as u32)),
            CellState::Traditional { .. }
        )
    });
    let replicated_cells = engine.replicated_cells();
    if recorder.enabled(Level::Debug) {
        recorder.record(
            &Event::new("fm", "done", Level::Debug)
                .field("seed", cfg.seed)
                .field("cut", engine.cut())
                .field("passes", passes)
                .field("balanced", cfg.balanced(engine.areas()))
                .field("replicated", replicated_cells)
                .field("stop", format!("{stop:?}")),
        );
        recorder.record(&Event::counter("fm", "passes", passes as u64).at(Level::Debug));
        recorder.record(&Event::counter("fm", "moves", clock.moves() - moves0).at(Level::Debug));
        if replicated_cells > 0 {
            // Replication events binned by ψ: which replication
            // potentials the accepted replicas actually had (paper
            // eq. 5's d_X(ψ) restricted to the replicated set).
            let mut bins: Vec<u64> = Vec::new();
            for (i, &cell_psi) in psi.iter().enumerate().take(hg.n_cells()) {
                let c = CellId(i as u32);
                if !matches!(engine.cell_state(c), CellState::Single { .. }) {
                    let p = cell_psi as usize;
                    if bins.len() <= p {
                        bins.resize(p + 1, 0);
                    }
                    bins[p] += 1;
                }
            }
            recorder.record(&Event::hist("fm", "replicated_psi", bins).at(Level::Debug));
        }
    }
    BipartitionResult {
        cut: engine.cut(),
        areas: engine.areas(),
        replicated_cells,
        passes,
        balanced: cfg.balanced(engine.areas()),
        stop,
        placement: exportable.then(|| engine.to_placement()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_netlist::{generate, GeneratorConfig};
    use netpart_techmap::{map, MapperConfig};

    fn mapped(gates: usize, dffs: usize, seed: u64) -> netpart_hypergraph::Hypergraph {
        let nl = generate(&GeneratorConfig::new(gates).with_dff(dffs).with_seed(seed));
        map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl)
    }

    #[test]
    fn fm_improves_over_random() {
        let hg = mapped(300, 20, 1);
        let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(3);
        let initial = {
            let sides = initial_sides(&hg, &cfg);
            EngineState::new(&hg, &sides).cut()
        };
        let res = bipartition(&hg, &cfg);
        assert!(res.balanced, "result must satisfy the area window");
        assert!(
            res.cut < initial,
            "FM should improve the random cut ({initial} → {})",
            res.cut
        );
        let p = res.placement.expect("no replication → placement exists");
        assert_eq!(p.cut_size(&hg), res.cut);
    }

    #[test]
    fn functional_replication_cuts_less_or_equal() {
        let hg = mapped(400, 30, 2);
        let base = BipartitionConfig::equal(&hg, 0.1).with_seed(5);
        let plain = bipartition(&hg, &base);
        let repl = bipartition(
            &hg,
            &base
                .clone()
                .with_replication(ReplicationMode::functional(0)),
        );
        assert!(plain.balanced && repl.balanced);
        assert!(
            repl.cut <= plain.cut,
            "replication must not hurt: {} vs {}",
            repl.cut,
            plain.cut
        );
        let p = repl.placement.expect("functional placements export");
        p.validate(&hg).unwrap();
        assert_eq!(p.cut_size(&hg), repl.cut);
    }

    #[test]
    fn traditional_mode_runs_and_reports() {
        let hg = mapped(200, 10, 7);
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(1)
            .with_replication(ReplicationMode::Traditional);
        let res = bipartition(&hg, &cfg);
        assert!(res.balanced);
        if res.replicated_cells > 0 {
            assert!(res.placement.is_none());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let hg = mapped(250, 15, 9);
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(11)
            .with_replication(ReplicationMode::functional(1));
        let a = bipartition(&hg, &cfg);
        let b = bipartition(&hg, &cfg);
        assert_eq!(a.cut, b.cut);
        assert_eq!(a.areas, b.areas);
        assert_eq!(a.replicated_cells, b.replicated_cells);
    }

    #[test]
    fn respects_asymmetric_bounds() {
        let hg = mapped(300, 0, 4);
        let total = hg.total_area();
        let chunk = total / 4;
        let cfg = BipartitionConfig::bounded([0, 0], [chunk, total]).with_seed(2);
        let res = bipartition(&hg, &cfg);
        assert!(res.areas[0] <= chunk);
        assert!(res.balanced);
    }
}
