//! XC3000-style technology mapping.
//!
//! Maps a gate-level [`Netlist`](netpart_netlist::Netlist) into XC3000-like
//! configurable logic blocks (CLBs) and emits the partitioning hypergraph
//! the paper's algorithms consume:
//!
//! 1. [`cover`] — greedy K-feasible cone covering into 5-input,
//!    single-output lookup tables (Chortle-style);
//! 2. DFF absorption — a flip-flop fed exclusively by one LUT registers
//!    that LUT's output inside the CLB;
//! 3. packing — pairs of LUT/register units sharing inputs merge into
//!    2-output CLBs (≤ 5 distinct inputs, ≤ 2 FFs, ≤ 1 externally-fed
//!    register via the DIN pin);
//! 4. [`Mapped::to_hypergraph`] — emits cells (CLBs + I/O pads), nets and
//!    per-cell output→input adjacency matrices, from which the paper's
//!    replication potential `ψ` distribution (Fig. 3) falls out.
//!
//! # Examples
//!
//! ```
//! use netpart_netlist::{generate, GeneratorConfig};
//! use netpart_techmap::{map, MapperConfig};
//!
//! # fn main() -> Result<(), netpart_techmap::MapError> {
//! let nl = generate(&GeneratorConfig::new(300).with_seed(1).with_dff(16));
//! let mapped = map(&nl, &MapperConfig::xc3000())?;
//! let hg = mapped.to_hypergraph(&nl);
//! assert!(hg.stats().clbs > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cover;
mod decompose;
mod error;
mod mapped;
mod pack;

pub use cover::{cover, LutCone};
pub use decompose::decompose_wide_gates;
pub use error::MapError;
pub use mapped::{map, Clb, Mapped, MapperConfig, Unit};
