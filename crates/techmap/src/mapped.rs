//! The mapped design: units, CLBs and hypergraph emission.

use crate::cover::{consumer_counts, cover, LutCone};
use crate::error::MapError;
use crate::pack::pack_units;
use netpart_hypergraph::{AdjacencyMatrix, BitVec, CellKind, Hypergraph, HypergraphBuilder, NetId};
use netpart_netlist::{Driver, GateId, Netlist, SignalId};
use std::collections::HashMap;

/// Mapper parameters.
///
/// [`MapperConfig::xc3000`] models an XC3000 CLB: 5 distinct inputs, 2
/// outputs, 2 flip-flops, one DIN pin for an externally-fed register.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapperConfig {
    /// LUT/CLB input limit (distinct signals).
    pub max_inputs: usize,
    /// CLB output limit (1 disables packing).
    pub max_outputs: usize,
    /// CLB flip-flop limit.
    pub max_dffs: usize,
    /// Absorb flip-flops fed exclusively by one LUT into that LUT's CLB.
    pub absorb_dffs: bool,
    /// Pack pairs of units into multi-output CLBs.
    pub pack: bool,
    /// Probability that a unit is packed by input-sharing *affinity*;
    /// the rest pack *density-first* (any feasible partner), as era
    /// mappers like XACT did without knowledge of the future partition.
    /// Lower values leave more for functional replication to recover.
    pub pack_affinity: f64,
    /// Seed of the deterministic density-packing choices.
    pub pack_seed: u64,
    /// Neighbourhood (in unit creation order ≈ netlist locality) within
    /// which a density-driven partner is sought. Bounded range models a
    /// mapper that packs within a schematic page rather than chip-wide.
    pub pack_window: usize,
}

impl MapperConfig {
    /// The XC3000 CLB model used throughout the paper.
    pub fn xc3000() -> Self {
        MapperConfig {
            max_inputs: 5,
            max_outputs: 2,
            max_dffs: 2,
            absorb_dffs: true,
            pack: true,
            pack_affinity: 0.85,
            pack_seed: 1,
            pack_window: 128,
        }
    }

    /// Sets the density-packing neighbourhood size (minimum 2).
    pub fn with_pack_window(mut self, w: usize) -> Self {
        self.pack_window = w.max(2);
        self
    }

    /// Sets the affinity/density packing balance (clamped to `[0, 1]`).
    pub fn with_pack_affinity(mut self, affinity: f64) -> Self {
        self.pack_affinity = affinity.clamp(0.0, 1.0);
        self
    }

    /// A single-output LUT mapping (no packing): every cell has one output
    /// and therefore replication potential 0 — useful as an ablation.
    pub fn single_output() -> Self {
        MapperConfig {
            max_outputs: 1,
            pack: false,
            ..Self::xc3000()
        }
    }
}

impl Default for MapperConfig {
    fn default() -> Self {
        Self::xc3000()
    }
}

/// One functional unit inside a CLB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Unit {
    /// A LUT cone, optionally registering its output through an absorbed
    /// flip-flop (in which case the unit's output is the FF's Q signal).
    Lut {
        /// Index into [`Mapped::cones`].
        cone: usize,
        /// The absorbed flip-flop, if any.
        registered: Option<GateId>,
    },
    /// A flip-flop fed from outside the CLB through the DIN pin.
    ExtReg {
        /// The flip-flop gate.
        dff: GateId,
    },
}

/// One configurable logic block: one or two [`Unit`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clb {
    /// The units packed into this block.
    pub units: Vec<Unit>,
}

/// The result of technology mapping.
#[derive(Clone, Debug)]
pub struct Mapped {
    /// The LUT cones produced by covering.
    pub cones: Vec<LutCone>,
    /// The packed CLBs.
    pub clbs: Vec<Clb>,
    cfg: MapperConfig,
}

impl Mapped {
    /// The configuration the design was mapped with.
    pub fn config(&self) -> &MapperConfig {
        &self.cfg
    }

    /// Number of CLBs.
    pub fn n_clbs(&self) -> usize {
        self.clbs.len()
    }

    /// The output signal of a unit (Q for registered units).
    pub fn unit_output(&self, nl: &Netlist, unit: &Unit) -> SignalId {
        match unit {
            Unit::Lut { cone, registered } => match registered {
                Some(ff) => nl.gate(*ff).output,
                None => self.cones[*cone].output,
            },
            Unit::ExtReg { dff } => nl.gate(*dff).output,
        }
    }

    /// The support (external input signals) of a unit, sorted.
    pub fn unit_support(&self, nl: &Netlist, unit: &Unit) -> Vec<SignalId> {
        match unit {
            Unit::Lut { cone, .. } => self.cones[*cone].support.clone(),
            Unit::ExtReg { dff } => vec![nl.gate(*dff).inputs[0]],
        }
    }

    /// The number of flip-flops a unit uses.
    pub fn unit_dffs(&self, unit: &Unit) -> usize {
        match unit {
            Unit::Lut { registered, .. } => usize::from(registered.is_some()),
            Unit::ExtReg { .. } => 1,
        }
    }

    /// Emits the partitioning hypergraph: one interior cell per CLB (area
    /// 1), one terminal cell per primary input and per primary output, and
    /// one net per CLB-boundary signal. Per-cell adjacency matrices record
    /// which CLB inputs each output's function reads — the raw material of
    /// the paper's functional replication.
    ///
    /// # Panics
    ///
    /// Panics on internal inconsistency (a mapped design produced by
    /// [`map`] always emits successfully).
    pub fn to_hypergraph(&self, nl: &Netlist) -> Hypergraph {
        let mut b = HypergraphBuilder::with_capacity(
            self.clbs.len() + nl.primary_inputs().len() + nl.primary_outputs().len(),
            self.clbs.len() * 2,
        );

        // A net for every CLB-boundary signal: primary inputs and unit
        // outputs. Dangling CLB outputs still get (sink-less) nets.
        let mut net_of: HashMap<SignalId, NetId> = HashMap::new();
        let mut net_for = |b: &mut HypergraphBuilder, nl: &Netlist, s: SignalId| -> NetId {
            *net_of
                .entry(s)
                .or_insert_with(|| b.add_net(nl.signal_name(s).to_string()))
        };

        // CLB cells.
        let mut cells = Vec::with_capacity(self.clbs.len());
        for (ci, clb) in self.clbs.iter().enumerate() {
            let mut inputs: Vec<SignalId> = Vec::new();
            for u in &clb.units {
                inputs.extend(self.unit_support(nl, u));
            }
            inputs.sort_unstable();
            inputs.dedup();
            let outputs: Vec<SignalId> =
                clb.units.iter().map(|u| self.unit_output(nl, u)).collect();
            let rows: Vec<BitVec> = clb
                .units
                .iter()
                .map(|u| {
                    let sup = self.unit_support(nl, u);
                    let mut row = BitVec::zeros(inputs.len());
                    for s in sup {
                        let j = inputs.binary_search(&s).expect("support ⊆ inputs");
                        row.set(j, true);
                    }
                    row
                })
                .collect();
            let dffs: usize = clb.units.iter().map(|u| self.unit_dffs(u)).sum();
            let adj = AdjacencyMatrix::from_bitvec_rows(inputs.len(), rows);
            let cell = b.add_cell(
                format!("clb{ci}"),
                CellKind::Logic {
                    area: 1,
                    dff: dffs as u32,
                },
                inputs.len(),
                outputs.len(),
                adj,
            );
            cells.push((cell, inputs, outputs));
        }

        // Pads.
        let mut pi_pads = Vec::new();
        for &s in nl.primary_inputs() {
            let pad = b.add_cell(
                format!("pad_{}", nl.signal_name(s)),
                CellKind::input_pad(),
                0,
                1,
                AdjacencyMatrix::pad(),
            );
            pi_pads.push((pad, s));
        }
        let mut po_pads = Vec::new();
        for (i, &s) in nl.primary_outputs().iter().enumerate() {
            let pad = b.add_cell(
                format!("pad_po{i}_{}", nl.signal_name(s)),
                CellKind::output_pad(),
                1,
                0,
                AdjacencyMatrix::pad(),
            );
            po_pads.push((pad, s));
        }

        // Connect drivers.
        for (pad, s) in &pi_pads {
            let n = net_for(&mut b, nl, *s);
            b.connect_output(n, *pad, 0).expect("pad output fresh");
        }
        for (cell, _, outputs) in &cells {
            for (o, &s) in outputs.iter().enumerate() {
                let n = net_for(&mut b, nl, s);
                b.connect_output(n, *cell, o).expect("clb output fresh");
            }
        }
        // Connect sinks.
        for (cell, inputs, _) in &cells {
            for (j, &s) in inputs.iter().enumerate() {
                let n = net_for(&mut b, nl, s);
                b.connect_input(n, *cell, j).expect("clb input fresh");
            }
        }
        for (pad, s) in &po_pads {
            let n = net_for(&mut b, nl, *s);
            b.connect_input(n, *pad, 0).expect("pad input fresh");
        }

        b.finish()
            .expect("mapped design is structurally consistent")
    }
}

/// Technology-maps `nl` into CLBs according to `cfg`.
///
/// # Errors
///
/// Returns an error if the netlist fails validation or contains a
/// combinational gate wider than the LUT input limit (run
/// [`decompose_wide_gates`](crate::decompose_wide_gates) first).
pub fn map(nl: &Netlist, cfg: &MapperConfig) -> Result<Mapped, MapError> {
    nl.validate()?;
    let cones = cover(nl, cfg.max_inputs)?;

    // Index cones by output signal for DFF absorption.
    let mut cone_of_output: HashMap<SignalId, usize> = HashMap::new();
    for (i, c) in cones.iter().enumerate() {
        cone_of_output.insert(c.output, i);
    }

    let consumers = consumer_counts(nl);
    let is_po: std::collections::HashSet<SignalId> = nl.primary_outputs().iter().copied().collect();

    let mut registered_by: Vec<Option<GateId>> = vec![None; cones.len()];
    let mut ext_regs: Vec<GateId> = Vec::new();
    for g in nl.gate_ids() {
        if !nl.gate(g).kind.is_dff() {
            continue;
        }
        let d = nl.gate(g).inputs[0];
        let absorbable = cfg.absorb_dffs
            && consumers[d.index()] == 1
            && !is_po.contains(&d)
            && matches!(nl.driver(d), Driver::Gate(_));
        if absorbable {
            if let Some(&ci) = cone_of_output.get(&d) {
                if registered_by[ci].is_none() {
                    registered_by[ci] = Some(g);
                    continue;
                }
            }
        }
        ext_regs.push(g);
    }

    let mut units: Vec<Unit> = cones
        .iter()
        .enumerate()
        .map(|(i, _)| Unit::Lut {
            cone: i,
            registered: registered_by[i],
        })
        .collect();
    units.extend(ext_regs.into_iter().map(|dff| Unit::ExtReg { dff }));

    let mut mapped = Mapped {
        cones,
        clbs: Vec::new(),
        cfg: *cfg,
    };
    mapped.clbs = if cfg.pack && cfg.max_outputs >= 2 {
        pack_units(&mapped, nl, units)
    } else {
        units.into_iter().map(|u| Clb { units: vec![u] }).collect()
    };
    Ok(mapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_netlist::{generate, GateKind, GeneratorConfig};

    fn sample(gates: usize, dffs: usize, seed: u64) -> Netlist {
        generate(&GeneratorConfig::new(gates).with_dff(dffs).with_seed(seed))
    }

    #[test]
    fn map_produces_valid_hypergraph() {
        let nl = sample(500, 30, 3);
        let m = map(&nl, &MapperConfig::xc3000()).unwrap();
        let hg = m.to_hypergraph(&nl);
        let s = hg.stats();
        assert_eq!(s.clbs as usize, m.n_clbs());
        assert!(s.nets > 0 && s.pins > s.nets);
    }

    #[test]
    fn stats_match_netlist_interface() {
        let nl = sample(500, 30, 3);
        let m = map(&nl, &MapperConfig::xc3000()).unwrap();
        let hg = m.to_hypergraph(&nl);
        let s = hg.stats();
        assert_eq!(
            s.iobs as usize,
            nl.primary_inputs().len() + nl.primary_outputs().len()
        );
        assert_eq!(s.dffs as usize, nl.n_dffs());
    }

    #[test]
    fn packing_reduces_clb_count_and_creates_multi_output_cells() {
        let nl = sample(800, 40, 4);
        let packed = map(&nl, &MapperConfig::xc3000()).unwrap();
        let single = map(&nl, &MapperConfig::single_output()).unwrap();
        assert!(packed.n_clbs() < single.n_clbs());
        let hg = packed.to_hypergraph(&nl);
        let multi = hg
            .cells()
            .iter()
            .filter(|c| !c.is_terminal() && c.m_outputs() == 2)
            .count();
        assert!(multi * 3 > packed.n_clbs(), "expected many 2-output CLBs");
    }

    #[test]
    fn psi_distribution_nontrivial() {
        let nl = sample(800, 40, 4);
        let hg = map(&nl, &MapperConfig::xc3000())
            .unwrap()
            .to_hypergraph(&nl);
        let dist = hg.replication_potential_distribution();
        let with_potential: usize = dist.iter().skip(1).sum();
        assert!(
            with_potential > dist[0] / 4,
            "expected a sizeable fraction of cells with ψ ≥ 1: {dist:?}"
        );
    }

    #[test]
    fn clb_constraints_respected() {
        let nl = sample(700, 50, 9);
        let cfg = MapperConfig::xc3000();
        let m = map(&nl, &cfg).unwrap();
        for clb in &m.clbs {
            assert!(clb.units.len() <= cfg.max_outputs);
            let mut inputs: Vec<SignalId> = clb
                .units
                .iter()
                .flat_map(|u| m.unit_support(&nl, u))
                .collect();
            inputs.sort_unstable();
            inputs.dedup();
            assert!(inputs.len() <= cfg.max_inputs);
            let dffs: usize = clb.units.iter().map(|u| m.unit_dffs(u)).sum();
            assert!(dffs <= cfg.max_dffs);
            let ext = clb
                .units
                .iter()
                .filter(|u| matches!(u, Unit::ExtReg { .. }))
                .count();
            assert!(ext <= 1, "at most one DIN-fed register per CLB");
        }
    }

    #[test]
    fn every_dff_mapped_exactly_once() {
        let nl = sample(400, 60, 12);
        let m = map(&nl, &MapperConfig::xc3000()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for clb in &m.clbs {
            for u in &clb.units {
                match u {
                    Unit::Lut {
                        registered: Some(ff),
                        ..
                    } => assert!(seen.insert(*ff)),
                    Unit::ExtReg { dff } => assert!(seen.insert(*dff)),
                    _ => {}
                }
            }
        }
        assert_eq!(seen.len(), nl.n_dffs());
    }

    #[test]
    fn dff_fed_by_multi_use_signal_stays_external() {
        // w feeds both a PO and a DFF: the DFF cannot absorb it.
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a").unwrap();
        let b2 = nl.add_primary_input("b").unwrap();
        let w = nl.add_signal("w").unwrap();
        let q = nl.add_signal("q").unwrap();
        nl.add_gate("g", GateKind::And, vec![a, b2], w).unwrap();
        nl.add_gate("ff", GateKind::Dff, vec![w], q).unwrap();
        nl.add_primary_output(w).unwrap();
        nl.add_primary_output(q).unwrap();
        let m = map(&nl, &MapperConfig::xc3000()).unwrap();
        let ext = m
            .clbs
            .iter()
            .flat_map(|c| &c.units)
            .filter(|u| matches!(u, Unit::ExtReg { .. }))
            .count();
        assert_eq!(ext, 1);
    }

    #[test]
    fn exclusive_dff_absorbed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a").unwrap();
        let b2 = nl.add_primary_input("b").unwrap();
        let w = nl.add_signal("w").unwrap();
        let q = nl.add_signal("q").unwrap();
        nl.add_gate("g", GateKind::And, vec![a, b2], w).unwrap();
        nl.add_gate("ff", GateKind::Dff, vec![w], q).unwrap();
        nl.add_primary_output(q).unwrap();
        let m = map(&nl, &MapperConfig::xc3000()).unwrap();
        assert_eq!(m.n_clbs(), 1);
        assert!(matches!(
            m.clbs[0].units[0],
            Unit::Lut {
                registered: Some(_),
                ..
            }
        ));
        // The hypergraph exposes q, not w.
        let hg = m.to_hypergraph(&nl);
        assert!(hg.nets().iter().any(|n| n.name() == "q"));
        assert!(!hg.nets().iter().any(|n| n.name() == "w"));
    }
}
