//! Technology-mapping errors.

use netpart_netlist::GateId;
use std::error::Error;
use std::fmt;

/// An error raised while technology-mapping a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapError {
    /// A combinational gate has more inputs than a LUT can cover; run
    /// [`decompose_wide_gates`](crate::decompose_wide_gates) first.
    FaninTooLarge {
        /// The offending gate.
        gate: GateId,
        /// Its fan-in.
        fanin: usize,
        /// The LUT input limit.
        limit: usize,
    },
    /// The netlist failed validation before mapping.
    InvalidNetlist(netpart_netlist::NetlistError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::FaninTooLarge { gate, fanin, limit } => write!(
                f,
                "gate {gate:?} has fan-in {fanin} exceeding the {limit}-input LUT limit"
            ),
            MapError::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::InvalidNetlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<netpart_netlist::NetlistError> for MapError {
    fn from(e: netpart_netlist::NetlistError) -> Self {
        MapError::InvalidNetlist(e)
    }
}
