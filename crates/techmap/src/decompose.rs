//! Pre-mapping decomposition of wide gates into trees.

use netpart_netlist::{GateKind, Netlist, SignalId};

/// Rewrites every combinational gate with more than `k` inputs into a
/// balanced tree of at-most-`k`-input gates, returning the new netlist.
///
/// AND/OR decompose into trees of themselves; NAND/NOR decompose into an
/// AND/OR reduction tree with an inverting final stage. Gates already
/// within the limit (and all DFFs) are copied unchanged.
///
/// # Panics
///
/// Panics if a wide [`GateKind::Lut`] or a wide XOR/XNOR is encountered:
/// generic covers cannot be decomposed structurally. (`k < 2` is also
/// rejected.)
///
/// # Examples
///
/// ```
/// use netpart_netlist::{GateKind, Netlist};
/// use netpart_techmap::decompose_wide_gates;
///
/// # fn main() -> Result<(), netpart_netlist::NetlistError> {
/// let mut nl = Netlist::new("wide");
/// let ins: Vec<_> = (0..9)
///     .map(|i| nl.add_primary_input(format!("i{i}")))
///     .collect::<Result<_, _>>()?;
/// let y = nl.add_signal("y")?;
/// nl.add_gate("big", GateKind::And, ins, y)?;
/// nl.add_primary_output(y)?;
/// let narrow = decompose_wide_gates(&nl, 4);
/// assert!(narrow.gates().iter().all(|g| g.inputs.len() <= 4));
/// # Ok(())
/// # }
/// ```
pub fn decompose_wide_gates(nl: &Netlist, k: usize) -> Netlist {
    assert!(k >= 2, "gates cannot be narrower than 2 inputs");
    let mut out = Netlist::new(nl.name());
    // Recreate signals in order so ids line up one-to-one.
    let pi_set: std::collections::HashSet<SignalId> = nl.primary_inputs().iter().copied().collect();
    for s in nl.signal_ids() {
        let name = nl.signal_name(s);
        if pi_set.contains(&s) {
            out.add_primary_input(name).expect("names unique in source");
        } else {
            out.add_signal(name).expect("names unique in source");
        }
    }

    let mut fresh = 0usize;
    for (gi, g) in nl.gates().iter().enumerate() {
        if g.kind.is_dff() || g.inputs.len() <= k {
            out.add_gate(g.name.clone(), g.kind.clone(), g.inputs.clone(), g.output)
                .expect("copy of valid gate");
            continue;
        }
        let (reduce, finish) = match g.kind {
            GateKind::And => (GateKind::And, GateKind::And),
            GateKind::Or => (GateKind::Or, GateKind::Or),
            GateKind::Nand => (GateKind::And, GateKind::Nand),
            GateKind::Nor => (GateKind::Or, GateKind::Nor),
            ref other => panic!("cannot decompose wide {other} gate {gi}"),
        };
        // Balanced reduction: fold groups of k signals until ≤ k remain,
        // then apply the (possibly inverting) final stage.
        let mut level: Vec<SignalId> = g.inputs.clone();
        while level.len() > k {
            let mut next = Vec::with_capacity(level.len().div_ceil(k));
            for chunk in level.chunks(k) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                    continue;
                }
                let t = out
                    .add_signal(format!("_dec{fresh}"))
                    .expect("fresh internal name");
                fresh += 1;
                out.add_gate(format!("_dec_g{fresh}"), reduce.clone(), chunk.to_vec(), t)
                    .expect("tree stage is valid");
                next.push(t);
            }
            level = next;
        }
        out.add_gate(g.name.clone(), finish, level, g.output)
            .expect("final stage is valid");
    }
    for &s in nl.primary_outputs() {
        out.add_primary_output(s).expect("signal recreated");
    }
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_netlist::GateKind;

    fn wide(kind: GateKind, n: usize) -> Netlist {
        let mut nl = Netlist::new("w");
        let ins: Vec<_> = (0..n)
            .map(|i| nl.add_primary_input(format!("i{i}")).unwrap())
            .collect();
        let y = nl.add_signal("y").unwrap();
        nl.add_gate("big", kind, ins, y).unwrap();
        nl.add_primary_output(y).unwrap();
        nl
    }

    #[test]
    fn and_tree_has_narrow_gates() {
        let nl = decompose_wide_gates(&wide(GateKind::And, 17), 4);
        nl.validate().unwrap();
        assert!(nl.gates().iter().all(|g| g.inputs.len() <= 4));
        assert!(nl.gates().iter().all(|g| matches!(g.kind, GateKind::And)));
    }

    #[test]
    fn nand_tree_inverts_once() {
        let nl = decompose_wide_gates(&wide(GateKind::Nand, 10), 3);
        nl.validate().unwrap();
        let nands = nl
            .gates()
            .iter()
            .filter(|g| matches!(g.kind, GateKind::Nand))
            .count();
        assert_eq!(nands, 1, "exactly the final stage inverts");
        let y = nl.signal_by_name("y").unwrap();
        let final_gate = nl
            .gates()
            .iter()
            .find(|g| g.output == y)
            .expect("output driven");
        assert!(matches!(final_gate.kind, GateKind::Nand));
    }

    #[test]
    fn narrow_netlists_unchanged() {
        let src = wide(GateKind::Or, 3);
        let out = decompose_wide_gates(&src, 4);
        assert_eq!(out.n_gates(), 1);
        assert_eq!(out.gates()[0].inputs.len(), 3);
    }

    #[test]
    fn dffs_copied_verbatim() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a").unwrap();
        let q = nl.add_signal("q").unwrap();
        nl.add_gate("ff", GateKind::Dff, vec![a], q).unwrap();
        nl.add_primary_output(q).unwrap();
        let out = decompose_wide_gates(&nl, 2);
        assert_eq!(out.n_dffs(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot decompose")]
    fn wide_xor_panics() {
        // XOR arity is capped at 2 by the model, so fabricate a wide LUT.
        let mut nl = Netlist::new("t");
        let ins: Vec<_> = (0..6)
            .map(|i| nl.add_primary_input(format!("i{i}")).unwrap())
            .collect();
        let y = nl.add_signal("y").unwrap();
        nl.add_gate(
            "l",
            GateKind::Lut {
                cover: vec!["111111 1".into()],
            },
            ins,
            y,
        )
        .unwrap();
        nl.add_primary_output(y).unwrap();
        decompose_wide_gates(&nl, 4);
    }
}
