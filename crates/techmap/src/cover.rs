//! Greedy K-feasible cone covering (Chortle-style LUT mapping).

use crate::error::MapError;
use netpart_netlist::{topo_order, GateId, Netlist, SignalId};

/// A single-output LUT: a fan-out-free cone of combinational gates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LutCone {
    /// The root gate (whose output is the cone's output).
    pub root: GateId,
    /// The cone's output signal.
    pub output: SignalId,
    /// The cone's leaf signals (the LUT inputs), sorted.
    pub support: Vec<SignalId>,
    /// Every gate covered by the cone (root included).
    pub gates: Vec<GateId>,
}

/// How many consumers (gate readers plus primary-output uses) each signal
/// has.
pub(crate) fn consumer_counts(nl: &Netlist) -> Vec<usize> {
    let mut counts = vec![0usize; nl.n_signals()];
    for g in nl.gates() {
        for &s in &g.inputs {
            counts[s.index()] += 1;
        }
    }
    for &s in nl.primary_outputs() {
        counts[s.index()] += 1;
    }
    counts
}

/// Covers the combinational gates of `nl` with `k`-input LUT cones.
///
/// A gate is absorbed into its (sole) reader's cone when its output has
/// exactly one consumer and the merged leaf set stays within `k` signals;
/// otherwise it roots a cone of its own. DFFs are untouched — they are
/// handled by the packing stage.
///
/// # Errors
///
/// Returns [`MapError::FaninTooLarge`] if a combinational gate alone
/// exceeds `k` inputs (see
/// [`decompose_wide_gates`](crate::decompose_wide_gates)).
pub fn cover(nl: &Netlist, k: usize) -> Result<Vec<LutCone>, MapError> {
    for (i, g) in nl.gates().iter().enumerate() {
        if !g.kind.is_dff() && g.inputs.len() > k {
            return Err(MapError::FaninTooLarge {
                gate: GateId(i as u32),
                fanin: g.inputs.len(),
                limit: k,
            });
        }
    }
    let order = topo_order(nl)?;
    let consumers = consumer_counts(nl);
    let mut absorbed = vec![false; nl.n_gates()];
    let mut cones = Vec::new();

    // Reverse topological order: consumers are processed before producers,
    // so any unabsorbed gate we reach must root its own cone.
    for &g in order.iter().rev() {
        let gate = nl.gate(g);
        if gate.kind.is_dff() || absorbed[g.index()] {
            continue;
        }
        let mut leaves: Vec<SignalId> = gate.inputs.clone();
        leaves.sort_unstable();
        leaves.dedup();
        let mut gates = vec![g];
        // Greedily absorb single-consumer combinational drivers while the
        // leaf set stays k-feasible.
        loop {
            let mut progressed = false;
            for li in 0..leaves.len() {
                let s = leaves[li];
                let netpart_netlist::Driver::Gate(d) = nl.driver(s) else {
                    continue;
                };
                let dg = nl.gate(d);
                if dg.kind.is_dff() || absorbed[d.index()] || consumers[s.index()] != 1 {
                    continue;
                }
                let mut merged = leaves.clone();
                merged.remove(li);
                merged.extend(dg.inputs.iter().copied());
                merged.sort_unstable();
                merged.dedup();
                if merged.len() > k {
                    continue;
                }
                absorbed[d.index()] = true;
                gates.push(d);
                leaves = merged;
                progressed = true;
                break;
            }
            if !progressed {
                break;
            }
        }
        cones.push(LutCone {
            root: g,
            output: gate.output,
            support: leaves,
            gates,
        });
    }
    cones.reverse(); // roughly input-to-output order, deterministic
    Ok(cones)
}

/// Checks cone invariants: every combinational gate covered exactly once,
/// every support within `k`, every absorbed signal internal to its cone.
/// Intended for tests and debug assertions.
#[cfg(test)]
pub(crate) fn validate_cover(nl: &Netlist, cones: &[LutCone], k: usize) -> bool {
    let mut covered = vec![0usize; nl.n_gates()];
    for cone in cones {
        if cone.support.len() > k {
            return false;
        }
        for &g in &cone.gates {
            covered[g.index()] += 1;
        }
        if nl.gate(cone.root).output != cone.output {
            return false;
        }
    }
    nl.gate_ids().all(|g| {
        let want = usize::from(!nl.gate(g).kind.is_dff());
        covered[g.index()] == want
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpart_netlist::{generate, GateKind, GeneratorConfig, Netlist};

    fn sample(gates: usize, dffs: usize, seed: u64) -> Netlist {
        generate(&GeneratorConfig::new(gates).with_dff(dffs).with_seed(seed))
    }

    #[test]
    fn cover_is_a_partition_of_comb_gates() {
        let nl = sample(400, 24, 5);
        let cones = cover(&nl, 5).unwrap();
        assert!(validate_cover(&nl, &cones, 5));
    }

    #[test]
    fn cover_compresses() {
        let nl = sample(600, 0, 6);
        let cones = cover(&nl, 5).unwrap();
        assert!(
            cones.len() * 10 < nl.n_gates() * 9,
            "expected at least 10% compression: {} cones for {} gates",
            cones.len(),
            nl.n_gates()
        );
    }

    #[test]
    fn k1_covers_each_gate_alone_when_single_input() {
        // With k = 2 every 2-input gate is its own cone unless chained
        // through single-consumer wires of combined support ≤ 2.
        let nl = generate(&GeneratorConfig::new(100).with_seed(7).with_max_fanin(2));
        let cones = cover(&nl, 2).unwrap();
        assert!(validate_cover(&nl, &cones, 2));
    }

    #[test]
    fn wide_gate_rejected() {
        let mut nl = Netlist::new("w");
        let ins: Vec<_> = (0..6)
            .map(|i| nl.add_primary_input(format!("i{i}")).unwrap())
            .collect();
        let y = nl.add_signal("y").unwrap();
        nl.add_gate("big", netpart_netlist::GateKind::And, ins, y)
            .unwrap();
        nl.add_primary_output(y).unwrap();
        assert!(matches!(
            cover(&nl, 5),
            Err(MapError::FaninTooLarge { fanin: 6, .. })
        ));
    }

    #[test]
    fn multi_consumer_signals_stay_visible() {
        // a signal read twice must be a cone output, not absorbed.
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a").unwrap();
        let b = nl.add_primary_input("b").unwrap();
        let w = nl.add_signal("w").unwrap();
        let x = nl.add_signal("x").unwrap();
        let y = nl.add_signal("y").unwrap();
        nl.add_gate("g0", GateKind::And, vec![a, b], w).unwrap();
        nl.add_gate("g1", GateKind::Not, vec![w], x).unwrap();
        nl.add_gate("g2", GateKind::Not, vec![w], y).unwrap();
        nl.add_primary_output(x).unwrap();
        nl.add_primary_output(y).unwrap();
        let cones = cover(&nl, 5).unwrap();
        assert_eq!(cones.len(), 3);
        assert!(validate_cover(&nl, &cones, 5));
    }

    #[test]
    fn single_chain_collapses_into_one_cone() {
        let mut nl = Netlist::new("t");
        let a = nl.add_primary_input("a").unwrap();
        let b = nl.add_primary_input("b").unwrap();
        let w = nl.add_signal("w").unwrap();
        let x = nl.add_signal("x").unwrap();
        nl.add_gate("g0", GateKind::And, vec![a, b], w).unwrap();
        nl.add_gate("g1", GateKind::Not, vec![w], x).unwrap();
        nl.add_primary_output(x).unwrap();
        let cones = cover(&nl, 5).unwrap();
        assert_eq!(cones.len(), 1);
        assert_eq!(cones[0].support, vec![a, b]);
        assert_eq!(cones[0].gates.len(), 2);
    }
}
