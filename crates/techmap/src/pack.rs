//! Greedy packing of LUT/register units into multi-output CLBs.

use crate::mapped::{Clb, Mapped, Unit};
use netpart_netlist::{Netlist, SignalId};
use std::collections::HashMap;

/// SplitMix64: cheap deterministic per-unit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Pairs units into CLBs, preferring partners that share input signals
/// (maximising shared inputs minimises the CLB's distinct-input count and
/// produces the spread of replication potentials seen in the paper's
/// Fig. 3).
///
/// Constraints per CLB: at most `max_outputs` units, `max_inputs` distinct
/// input signals, `max_dffs` flip-flops and one externally-fed (DIN)
/// register.
pub(crate) fn pack_units(mapped: &Mapped, nl: &Netlist, units: Vec<Unit>) -> Vec<Clb> {
    let cfg = *mapped.config();
    let supports: Vec<Vec<SignalId>> = units.iter().map(|u| mapped.unit_support(nl, u)).collect();
    let dffs: Vec<usize> = units.iter().map(|u| mapped.unit_dffs(u)).collect();
    let ext: Vec<bool> = units
        .iter()
        .map(|u| matches!(u, Unit::ExtReg { .. }))
        .collect();

    // signal -> units reading it.
    let mut readers: HashMap<SignalId, Vec<usize>> = HashMap::new();
    for (i, sup) in supports.iter().enumerate() {
        for &s in sup {
            readers.entry(s).or_default().push(i);
        }
    }

    let merged_ok = |a: usize, b: usize| -> Option<usize> {
        if dffs[a] + dffs[b] > cfg.max_dffs {
            return None;
        }
        if ext[a] && ext[b] {
            return None; // only one DIN pin per CLB
        }
        let mut m = supports[a].clone();
        m.extend(supports[b].iter().copied());
        m.sort_unstable();
        m.dedup();
        (m.len() <= cfg.max_inputs).then_some(m.len())
    };

    let n = units.len();
    let mut partner: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        if partner[i].is_some() {
            continue;
        }
        // Candidates sharing a signal, scored by (shared inputs, -merged size).
        let mut best: Option<(usize, usize, usize)> = None; // (shared, neg?, j)
        let consider = |j: usize, best: &mut Option<(usize, usize, usize)>| {
            if j == i || partner[j].is_some() {
                return;
            }
            let Some(merged) = merged_ok(i, j) else {
                return;
            };
            let shared = supports[i].len() + supports[j].len() - merged;
            let key = (shared, cfg.max_inputs - merged, j);
            let better = match best {
                None => true,
                Some((s, f, bj)) => {
                    (shared, cfg.max_inputs - merged) > (*s, *f)
                        || ((shared, cfg.max_inputs - merged) == (*s, *f) && j < *bj)
                }
            };
            if better {
                *best = Some(key);
            }
        };
        // Density-driven vs affinity-driven pairing. Real era mappers
        // (XACT) packed for density, oblivious to any future partition;
        // `pack_affinity` is the probability a unit instead seeks a
        // partner sharing its inputs. The density-packed remainder is
        // precisely what functional replication un-packs across the cut.
        let h = splitmix64(cfg.pack_seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let density_driven = (h % 1_000_000) as f64 / 1_000_000.0 >= cfg.pack_affinity;
        if density_driven {
            // Scan a bounded neighbourhood starting at a pseudo-random
            // offset, ignoring input sharing.
            let w = cfg.pack_window.min(n.saturating_sub(1)).max(1);
            let lo = i.saturating_sub(w);
            let hi = (i + w).min(n - 1);
            let span = hi - lo + 1;
            let start = lo + (h >> 20) as usize % span;
            for off in 0..span {
                let j = lo + (start - lo + off) % span;
                if j != i && partner[j].is_none() && merged_ok(i, j).is_some() {
                    best = Some((0, 0, j));
                    break;
                }
            }
        } else {
            for &s in &supports[i] {
                if let Some(list) = readers.get(&s) {
                    for &j in list {
                        consider(j, &mut best);
                    }
                }
            }
        }
        if best.is_none() {
            // Fall back to a bounded forward scan so units without shared
            // signals still pair when their supports fit together.
            for j in (i + 1)..n.min(i + 64) {
                consider(j, &mut best);
                if best.is_some() {
                    break;
                }
            }
        }
        if let Some((_, _, j)) = best {
            partner[i] = Some(j);
            partner[j] = Some(i);
        }
    }

    let mut clbs = Vec::with_capacity(n.div_ceil(2));
    let mut placed = vec![false; n];
    let mut units: Vec<Option<Unit>> = units.into_iter().map(Some).collect();
    for i in 0..n {
        if placed[i] {
            continue;
        }
        placed[i] = true;
        let mut members = vec![units[i].take().expect("unit unplaced")];
        if let Some(j) = partner[i] {
            if !placed[j] {
                placed[j] = true;
                members.push(units[j].take().expect("partner unplaced"));
            }
        }
        clbs.push(Clb { units: members });
    }
    clbs
}

#[cfg(test)]
mod tests {
    use crate::mapped::{map, MapperConfig, Unit};
    use netpart_netlist::{generate, GeneratorConfig};

    #[test]
    fn most_units_get_paired() {
        let nl = generate(&GeneratorConfig::new(600).with_seed(21).with_dff(30));
        let m = map(&nl, &MapperConfig::xc3000()).unwrap();
        let paired = m.clbs.iter().filter(|c| c.units.len() == 2).count();
        assert!(
            paired * 2 > m.clbs.len(),
            "expected most CLBs to hold two units ({paired}/{})",
            m.clbs.len()
        );
    }

    #[test]
    fn din_constraint_enforced() {
        // A circuit dominated by external registers (DFFs chained off
        // multi-use signals) must still respect the single-DIN rule.
        let nl = generate(&GeneratorConfig::new(150).with_seed(8).with_dff(80));
        let m = map(&nl, &MapperConfig::xc3000()).unwrap();
        for clb in &m.clbs {
            let ext = clb
                .units
                .iter()
                .filter(|u| matches!(u, Unit::ExtReg { .. }))
                .count();
            assert!(ext <= 1);
        }
    }

    #[test]
    fn packing_is_deterministic() {
        let nl = generate(&GeneratorConfig::new(400).with_seed(5).with_dff(20));
        let a = map(&nl, &MapperConfig::xc3000()).unwrap();
        let b = map(&nl, &MapperConfig::xc3000()).unwrap();
        assert_eq!(a.clbs, b.clbs);
    }
}

#[cfg(test)]
mod affinity_tests {
    use crate::mapped::{map, MapperConfig};
    use netpart_netlist::{generate, GeneratorConfig};

    /// Density-driven packing pairs unrelated LUTs, which raises the mean
    /// replication potential ψ (more exclusive inputs per output) — the
    /// effect DESIGN.md §5.5 relies on.
    #[test]
    fn density_packing_raises_replication_potential() {
        let nl = generate(&GeneratorConfig::new(600).with_seed(31).with_dff(30));
        let mean_psi = |affinity: f64| -> f64 {
            let cfg = MapperConfig::xc3000().with_pack_affinity(affinity);
            let hg = map(&nl, &cfg).unwrap().to_hypergraph(&nl);
            let dist = hg.replication_potential_distribution();
            let total: usize = dist.iter().sum();
            dist.iter()
                .enumerate()
                .map(|(psi, &n)| psi as f64 * n as f64)
                .sum::<f64>()
                / total as f64
        };
        let affine = mean_psi(1.0);
        let dense = mean_psi(0.0);
        assert!(
            dense > affine,
            "density packing should raise mean ψ: {dense:.2} vs {affine:.2}"
        );
    }

    /// The affinity knob does not change what is computed — only how
    /// units pair — so CLB count changes little and DFF coverage is
    /// identical.
    #[test]
    fn affinity_preserves_coverage() {
        let nl = generate(&GeneratorConfig::new(400).with_seed(8).with_dff(25));
        for affinity in [0.0, 0.5, 1.0] {
            let cfg = MapperConfig::xc3000().with_pack_affinity(affinity);
            let m = map(&nl, &cfg).unwrap();
            let hg = m.to_hypergraph(&nl);
            assert_eq!(hg.stats().dffs as usize, nl.n_dffs());
            assert_eq!(
                hg.stats().iobs as usize,
                nl.primary_inputs().len() + nl.primary_outputs().len()
            );
        }
    }
}
