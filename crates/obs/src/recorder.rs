//! The [`Recorder`] trait and its composable implementations.
//!
//! Instrumentation sites hold a `&dyn Recorder` and follow the
//! guard-then-emit discipline:
//!
//! ```
//! use netpart_obs::{Event, Level, Recorder, NOOP};
//!
//! fn hot_path(recorder: &dyn Recorder, cut: usize) {
//!     // The guard is one virtual call returning a bool; with the
//!     // no-op recorder nothing below it ever allocates.
//!     if recorder.enabled(Level::Debug) {
//!         recorder.record(&Event::new("fm", "pass", Level::Debug).field("cut", cut));
//!     }
//! }
//! hot_path(&NOOP, 42);
//! ```

use crate::event::{Event, Level, Value};
use std::io::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// A telemetry sink. Implementations must be cheap to probe
/// ([`Recorder::enabled`]) and thread-safe to feed ([`Recorder::record`]
/// takes `&self`).
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether events at `level` are worth constructing at all.
    /// Instrumentation sites call this before building an [`Event`], so
    /// a `false` here is what makes disabled recording near-free.
    fn enabled(&self, level: Level) -> bool;

    /// Records one event. Implementations may still drop events whose
    /// level they do not record.
    fn record(&self, event: &Event);
}

/// The no-op recorder: records nothing, enables nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self, _level: Level) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// A borrowable no-op recorder, for default-parameter positions.
pub static NOOP: NoopRecorder = NoopRecorder;

/// Renders events as human-readable lines on stderr (`-v` / `-vv`).
///
/// The format is `scope.name key=value …`, with the timing fields
/// appended in square brackets so the deterministic and
/// scheduling-dependent parts stay visually separate.
#[derive(Clone, Copy, Debug)]
pub struct StderrRecorder {
    max: Level,
}

impl StderrRecorder {
    /// A stderr recorder showing events up to and including `max`.
    pub fn new(max: Level) -> Self {
        StderrRecorder { max }
    }

    /// Formats one event as a single human-readable line (no newline).
    pub fn format(event: &Event) -> String {
        use std::fmt::Write as _;
        let mut line = format!("{}.{}", event.scope, event.name);
        match &event.kind {
            crate::event::Kind::Point => {}
            crate::event::Kind::Counter(n) => {
                let _ = write!(line, " +{n}");
            }
            crate::event::Kind::Gauge(v) => {
                let _ = write!(line, " = {v}");
            }
            crate::event::Kind::Hist(bins) => {
                let _ = write!(line, " = {bins:?}");
            }
        }
        for (k, v) in &event.fields {
            let _ = write!(line, " {k}={}", display_value(v));
        }
        if !event.timing.is_empty() {
            line.push_str(" [");
            for (i, (k, v)) in event.timing.iter().enumerate() {
                if i > 0 {
                    line.push(' ');
                }
                let _ = write!(line, "{k}={}", display_value(v));
            }
            line.push(']');
        }
        line
    }
}

fn display_value(v: &crate::event::Value) -> String {
    use crate::event::Value;
    match v {
        Value::I64(x) => x.to_string(),
        Value::U64(x) => x.to_string(),
        Value::F64(x) => format!("{x:.4}"),
        Value::Bool(x) => x.to_string(),
        Value::Str(x) => x.clone(),
        Value::UList(x) => format!("{x:?}"),
    }
}

impl Recorder for StderrRecorder {
    fn enabled(&self, level: Level) -> bool {
        level <= self.max
    }

    fn record(&self, event: &Event) {
        if !self.enabled(event.level) {
            return;
        }
        let mut line = Self::format(event);
        line.push('\n');
        // A failed stderr write is not worth propagating from telemetry.
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }
}

/// Fans every event out to several sinks (trace file + stderr +
/// metrics aggregation, say). Enabled whenever any sink is.
#[derive(Clone, Debug, Default)]
pub struct Tee {
    sinks: Vec<std::sync::Arc<dyn Recorder>>,
}

impl Tee {
    /// An empty tee (equivalent to [`NoopRecorder`]).
    pub fn new() -> Self {
        Tee::default()
    }

    /// Adds a sink.
    #[must_use]
    pub fn with(mut self, sink: std::sync::Arc<dyn Recorder>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// The number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Recorder for Tee {
    fn enabled(&self, level: Level) -> bool {
        self.sinks.iter().any(|s| s.enabled(level))
    }

    fn record(&self, event: &Event) {
        for s in &self.sinks {
            if s.enabled(event.level) {
                s.record(event);
            }
        }
    }
}

/// Captures events in memory, in emission order.
///
/// This is the determinism workhorse: a parallel portfolio gives every
/// start its own buffer, then replays the buffers of *recorded* starts
/// into the real sink in fixed seed order after the join — so the trace
/// stream is independent of thread interleaving even though the work
/// was not.
#[derive(Debug, Default)]
pub struct BufferRecorder {
    max: Option<Level>,
    events: Mutex<Vec<Event>>,
}

impl BufferRecorder {
    /// A buffer capturing every level.
    pub fn new() -> Self {
        BufferRecorder {
            max: Some(Level::Trace),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A buffer that mirrors the enablement of `downstream`, so
    /// buffering adds no work the final sink would not do.
    pub fn mirroring(downstream: &dyn Recorder) -> Self {
        let max = [Level::Trace, Level::Debug, Level::Info]
            .into_iter()
            .find(|&l| downstream.enabled(l));
        BufferRecorder {
            max,
            events: Mutex::new(Vec::new()),
        }
    }

    /// Drains the captured events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(
            &mut self
                .events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// The number of captured events.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no events are captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for BufferRecorder {
    fn enabled(&self, level: Level) -> bool {
        self.max.is_some_and(|m| level <= m)
    }

    fn record(&self, event: &Event) {
        if !self.enabled(event.level) {
            return;
        }
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }
}

/// A hierarchical span: emits `span.enter` on creation and `span.exit`
/// (with the elapsed time in the timing sub-object, both in
/// milliseconds and — for the profiler's precision — microseconds)
/// when dropped. Nesting is expressed by emission order: an exit
/// always pairs with the nearest unmatched enter of the same
/// scope/label, and the whole stream is LIFO-balanced outside the
/// reserved [`TIMING_SCOPE`](crate::TIMING_SCOPE) (guards cannot
/// overlap; parallel emitters replay their buffers sequentially).
///
/// The enter/exit events themselves are deterministic — only the
/// elapsed measurements ride in the stripped `timing` sub-object — so
/// span-bearing traces keep the byte-identical-across-`--jobs`
/// contract. Spans whose *presence* depends on scheduling must use
/// [`TIMING_SCOPE`](crate::TIMING_SCOPE) as their scope like any other
/// timeline event.
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a dyn Recorder,
    scope: &'static str,
    label: &'static str,
    detail: Option<(&'static str, Value)>,
    t0: Instant,
}

impl<'a> Span<'a> {
    /// Enters a span (emits `span.enter` at [`Level::Debug`]).
    pub fn enter(recorder: &'a dyn Recorder, scope: &'static str, label: &'static str) -> Self {
        Self::build(recorder, scope, label, None)
    }

    /// Enters a span carrying one deterministic detail field (a
    /// multilevel rung number, a job id) that discriminates otherwise
    /// identically labelled spans; the field is echoed on both the
    /// enter and the exit event, and the profiler keys tree nodes by
    /// it (`scope/label#detail`).
    pub fn enter_with(
        recorder: &'a dyn Recorder,
        scope: &'static str,
        label: &'static str,
        key: &'static str,
        value: impl Into<Value>,
    ) -> Self {
        Self::build(recorder, scope, label, Some((key, value.into())))
    }

    fn build(
        recorder: &'a dyn Recorder,
        scope: &'static str,
        label: &'static str,
        detail: Option<(&'static str, Value)>,
    ) -> Self {
        if recorder.enabled(Level::Debug) {
            let mut e = Event::new(scope, "span.enter", Level::Debug).field("span", label);
            if let Some((k, v)) = &detail {
                e = e.field(k, v.clone());
            }
            recorder.record(&e);
        }
        Span {
            recorder,
            scope,
            label,
            detail,
            t0: Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.recorder.enabled(Level::Debug) {
            let elapsed = self.t0.elapsed();
            let mut e = Event::new(self.scope, "span.exit", Level::Debug).field("span", self.label);
            if let Some((k, v)) = &self.detail {
                e = e.field(k, v.clone());
            }
            self.recorder.record(
                &e.timing("elapsed_ms", elapsed.as_millis() as u64)
                    .timing("elapsed_us", elapsed.as_micros() as u64),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn noop_is_disabled_at_every_level() {
        assert!(!NOOP.enabled(Level::Info));
        assert!(!NOOP.enabled(Level::Trace));
        NOOP.record(&Event::new("x", "y", Level::Info)); // must not panic
    }

    #[test]
    fn buffer_captures_in_order_and_drains() {
        let b = BufferRecorder::new();
        assert!(b.is_empty());
        b.record(&Event::new("a", "first", Level::Info));
        b.record(&Event::new("a", "second", Level::Trace));
        assert_eq!(b.len(), 2);
        let evs = b.take();
        assert_eq!(evs[0].name, "first");
        assert_eq!(evs[1].name, "second");
        assert!(b.is_empty());
    }

    #[test]
    fn mirroring_buffer_respects_downstream_levels() {
        let shallow = StderrRecorder::new(Level::Info);
        let b = BufferRecorder::mirroring(&shallow);
        assert!(b.enabled(Level::Info));
        assert!(!b.enabled(Level::Debug));
        b.record(&Event::new("a", "dropped", Level::Debug));
        assert!(b.is_empty());
        let none = BufferRecorder::mirroring(&NOOP);
        assert!(!none.enabled(Level::Info));
    }

    #[test]
    fn tee_fans_out_by_level() {
        let b1 = Arc::new(BufferRecorder::new());
        let b2 = Arc::new(BufferRecorder::mirroring(&StderrRecorder::new(Level::Info)));
        let tee = Tee::new().with(b1.clone()).with(b2.clone());
        assert_eq!(tee.len(), 2);
        assert!(!tee.is_empty());
        assert!(tee.enabled(Level::Trace), "widest sink wins");
        tee.record(&Event::new("a", "deep", Level::Trace));
        tee.record(&Event::new("a", "headline", Level::Info));
        assert_eq!(b1.len(), 2);
        assert_eq!(b2.len(), 1, "shallow sink sees only the headline");
    }

    #[test]
    fn span_emits_enter_and_exit() {
        let b = BufferRecorder::new();
        {
            let _outer = Span::enter(&b, "engine", "portfolio");
            let _inner = Span::enter(&b, "engine", "phase_a");
        }
        let evs = b.take();
        let names: Vec<(&str, &str)> = evs
            .iter()
            .map(|e| {
                let label = match &e.fields[0].1 {
                    crate::event::Value::Str(s) => s.as_str(),
                    _ => "?",
                };
                (e.name, label)
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("span.enter", "portfolio"),
                ("span.enter", "phase_a"),
                ("span.exit", "phase_a"),
                ("span.exit", "portfolio"),
            ]
        );
        // Exit carries elapsed time in the timing sub-object only.
        assert!(evs[2].timing.iter().any(|(k, _)| *k == "elapsed_ms"));
        assert!(evs[2].timing.iter().any(|(k, _)| *k == "elapsed_us"));
        assert!(evs[2].fields.iter().all(|(k, _)| *k != "elapsed_ms"));
    }

    #[test]
    fn span_detail_rides_both_enter_and_exit() {
        let b = BufferRecorder::new();
        {
            let _s = Span::enter_with(&b, "ml", "level", "level", 3u64);
        }
        let evs = b.take();
        assert_eq!(evs.len(), 2);
        for e in &evs {
            assert_eq!(e.fields[0], ("span", crate::event::Value::Str("level".into())));
            assert_eq!(e.fields[1], ("level", crate::event::Value::U64(3)));
        }
        assert!(evs[0].timing.is_empty(), "enter carries no timing");
    }

    #[test]
    fn span_against_disabled_recorder_emits_nothing() {
        let _s = Span::enter(&NOOP, "engine", "run"); // must not panic
        let shallow = BufferRecorder::mirroring(&StderrRecorder::new(Level::Info));
        {
            let _s = Span::enter(&shallow, "engine", "run");
        }
        assert!(shallow.is_empty(), "Debug spans drop below an Info sink");
    }

    #[test]
    fn stderr_format_is_stable() {
        let e = Event::new("kway", "carve.no_fit", Level::Debug)
            .field("area", 12u64)
            .timing("worker", 3u64);
        assert_eq!(
            StderrRecorder::format(&e),
            "kway.carve.no_fit area=12 [worker=3]"
        );
        let g = Event::gauge("paper", "cost_k", 750.0);
        assert_eq!(StderrRecorder::format(&g), "paper.cost_k = 750");
    }
}
