//! Trace tooling: schema validation, summarization and determinism
//! diffs over JSONL trace documents.
//!
//! This is the library behind `netpart trace
//! <summarize|validate|diff>`. It carries its own minimal JSON reader
//! ([`parse_json`]) because the trace schema is *order-sensitive* — the
//! determinism contract pins the exact top-level key sequence (`scope`,
//! `event`, `level`, kind keys, `fields`, then `timing` **last**) — and
//! a conventional map-based parser would erase exactly the property we
//! must check.
//!
//! [`scan_trace`] walks a document once, producing both a
//! [`TraceSummary`] (per-event counts, counter totals, span time
//! aggregates) and every schema violation found:
//!
//! * malformed JSON, wrong key order, unknown or duplicate keys;
//! * bad `level`/`kind` values or kind payload types;
//! * non-flat `fields`/`timing` sub-objects;
//! * unbalanced spans — normal-scope spans must nest LIFO across the
//!   whole trace, [`TIMING_SCOPE`](crate::TIMING_SCOPE) spans (which
//!   interleave across workers) must count-balance per label and never
//!   exit before entering.
//!
//! [`diff_stripped`] applies [`strip_timing`](crate::strip_timing) to
//! two documents and reports the first divergence — the native
//! replacement for piping through `scripts/strip_timing.sh` and `diff`.

use std::collections::BTreeMap;

/// A parsed JSON value with object key order preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object lookup by key (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|()| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                self.eat_lit("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad surrogate pair"));
                                }
                                let cp = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad surrogate"))?
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("lone surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parses one JSON document, preserving object key order. Trailing
/// whitespace is allowed; trailing garbage is an error.
///
/// # Errors
///
/// A message naming the failure and its byte offset.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = JsonParser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Aggregated per-span statistics from `span.exit` timing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanAgg {
    /// Completed span instances.
    pub count: u64,
    /// Total inclusive time, microseconds (from `elapsed_us`, falling
    /// back to `elapsed_ms`).
    pub total_us: u64,
}

/// What a trace contains, as discovered by [`scan_trace`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Total event lines.
    pub lines: u64,
    /// `scope.event` → occurrence count.
    pub events: BTreeMap<String, u64>,
    /// Level name → count.
    pub levels: BTreeMap<String, u64>,
    /// `scope.event` → summed counter deltas.
    pub counters: BTreeMap<String, u64>,
    /// `scope/span` → completed-span aggregate.
    pub spans: BTreeMap<String, SpanAgg>,
}

/// The result of one validating walk over a trace document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceScan {
    /// Counts and aggregates (populated even when errors exist, from
    /// the lines that did parse).
    pub summary: TraceSummary,
    /// Every schema violation, formatted `line N: message`.
    pub errors: Vec<String>,
}

impl TraceScan {
    /// Whether the document is schema-clean.
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

const LEVELS: [&str; 3] = ["info", "debug", "trace"];

fn is_flat_value(v: &Json) -> bool {
    match v {
        Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => true,
        Json::Arr(items) => items.iter().all(|i| i.as_u64().is_some()),
        Json::Obj(_) => false,
    }
}

fn check_flat(pairs: &[(String, Json)], what: &str, errors: &mut Vec<String>, ln: usize) {
    let mut seen = std::collections::BTreeSet::new();
    for (k, v) in pairs {
        if !seen.insert(k.as_str()) {
            errors.push(format!("line {ln}: duplicate key {k:?} in {what}"));
        }
        if !is_flat_value(v) {
            errors.push(format!("line {ln}: {what} value for {k:?} is not flat"));
        }
    }
}

/// Validates and summarizes one event line (already parsed). Returns
/// `(scope, event, span_field)` when the line is structurally usable.
fn check_line(
    obj: &[(String, Json)],
    ln: usize,
    errors: &mut Vec<String>,
) -> Option<(String, String, Option<String>)> {
    let key = |i: usize| obj.get(i).map(|(k, _)| k.as_str());
    macro_rules! bad {
        ($($t:tt)*) => {
            errors.push(format!("line {}: {}", ln, format!($($t)*)))
        };
    }

    let mut idx = 0;
    let mut need = |name: &str| -> Option<Json> {
        let got = obj.get(idx);
        idx += 1;
        match got {
            Some((k, v)) if k == name => Some(v.clone()),
            _ => None,
        }
    };
    let Some(scope) = need("scope").and_then(|v| v.as_str().map(String::from)) else {
        bad!("key 1 must be a string `scope`");
        return None;
    };
    let Some(event) = need("event").and_then(|v| v.as_str().map(String::from)) else {
        bad!("key 2 must be a string `event`");
        return None;
    };
    let Some(level) = need("level").and_then(|v| v.as_str().map(String::from)) else {
        bad!("key 3 must be a string `level`");
        return None;
    };
    if scope.is_empty() || event.is_empty() {
        bad!("empty scope or event name");
    }
    if !LEVELS.contains(&level.as_str()) {
        bad!("unknown level {level:?}");
    }

    if key(idx) == Some("kind") {
        let kind = obj[idx].1.as_str().unwrap_or("").to_string();
        idx += 1;
        match kind.as_str() {
            "counter" => {
                if key(idx) == Some("value") && obj[idx].1.as_u64().is_some() {
                    idx += 1;
                } else {
                    bad!("counter needs a non-negative integer `value`");
                    return None;
                }
            }
            "gauge" => {
                if key(idx) == Some("value")
                    && matches!(obj[idx].1, Json::Num(_) | Json::Null)
                {
                    idx += 1;
                } else {
                    bad!("gauge needs a numeric (or null) `value`");
                    return None;
                }
            }
            "hist" => {
                if key(idx) == Some("bins")
                    && matches!(&obj[idx].1, Json::Arr(items)
                        if items.iter().all(|i| i.as_u64().is_some()))
                {
                    idx += 1;
                } else {
                    bad!("hist needs a `bins` array of non-negative integers");
                    return None;
                }
            }
            other => {
                bad!("unknown kind {other:?}");
                return None;
            }
        }
    }

    let mut span_field = None;
    for section in ["fields", "timing"] {
        if key(idx) == Some(section) {
            match &obj[idx].1 {
                Json::Obj(pairs) => {
                    check_flat(pairs, section, errors, ln);
                    if section == "fields" {
                        span_field = pairs
                            .iter()
                            .find(|(k, _)| k == "span")
                            .and_then(|(_, v)| v.as_str().map(String::from));
                    }
                }
                _ => errors.push(format!("line {ln}: `{section}` must be an object")),
            }
            idx += 1;
        }
    }
    if idx != obj.len() {
        let extra: Vec<&str> = obj[idx..].iter().map(|(k, _)| k.as_str()).collect();
        bad!("unexpected or out-of-order trailing keys {extra:?} (timing must come last)");
    }
    Some((scope, event, span_field))
}

fn timing_us(obj: &Json) -> u64 {
    let t = obj.get("timing");
    let us = t.and_then(|t| t.get("elapsed_us")).and_then(Json::as_u64);
    us.unwrap_or_else(|| {
        t.and_then(|t| t.get("elapsed_ms"))
            .and_then(Json::as_u64)
            .map_or(0, |ms| ms * 1000)
    })
}

/// Walks a JSONL trace document once, validating every line against the
/// documented schema and aggregating a [`TraceSummary`]. Blank lines
/// are ignored. See the module docs for the rules enforced.
pub fn scan_trace(text: &str) -> TraceScan {
    let mut scan = TraceScan::default();
    // Normal-scope spans nest LIFO globally; timing-scope spans only
    // count-balance per label (they interleave across workers).
    let mut stack: Vec<(String, String)> = Vec::new();
    let mut timing_open: BTreeMap<String, i64> = BTreeMap::new();

    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        scan.summary.lines += 1;
        let obj = match parse_json(line) {
            Ok(Json::Obj(pairs)) => pairs,
            Ok(_) => {
                scan.errors.push(format!("line {ln}: not a JSON object"));
                continue;
            }
            Err(e) => {
                scan.errors.push(format!("line {ln}: {e}"));
                continue;
            }
        };
        let Some((scope, event, span_field)) = check_line(&obj, ln, &mut scan.errors) else {
            continue;
        };
        let obj = Json::Obj(obj);

        let id = format!("{scope}.{event}");
        *scan.summary.events.entry(id.clone()).or_insert(0) += 1;
        if let Some(level) = obj.get("level").and_then(Json::as_str) {
            *scan.summary.levels.entry(level.to_string()).or_insert(0) += 1;
        }
        if obj.get("kind").and_then(Json::as_str) == Some("counter") {
            if let Some(v) = obj.get("value").and_then(Json::as_u64) {
                *scan.summary.counters.entry(id).or_insert(0) += v;
            }
        }

        if event != "span.enter" && event != "span.exit" {
            continue;
        }
        let Some(label) = span_field else {
            scan.errors
                .push(format!("line {ln}: {event} without a string `span` field"));
            continue;
        };
        let span_id = format!("{scope}/{label}");
        let timing_scoped = scope == crate::event::TIMING_SCOPE;
        match (event.as_str(), timing_scoped) {
            ("span.enter", true) => *timing_open.entry(span_id).or_insert(0) += 1,
            ("span.exit", true) => {
                let open = timing_open.entry(span_id.clone()).or_insert(0);
                *open -= 1;
                if *open < 0 {
                    scan.errors
                        .push(format!("line {ln}: span.exit for {span_id} before its enter"));
                }
                let agg = scan.summary.spans.entry(span_id).or_default();
                agg.count += 1;
                agg.total_us += timing_us(&obj);
            }
            ("span.enter", false) => stack.push((span_id, label)),
            ("span.exit", false) => match stack.pop() {
                Some((top_id, _)) if top_id == span_id => {
                    let agg = scan.summary.spans.entry(span_id).or_default();
                    agg.count += 1;
                    agg.total_us += timing_us(&obj);
                }
                Some((top_id, _)) => {
                    scan.errors.push(format!(
                        "line {ln}: span.exit for {span_id} but innermost open span is {top_id}"
                    ));
                }
                None => {
                    scan.errors
                        .push(format!("line {ln}: span.exit for {span_id} with no open span"));
                }
            },
            _ => unreachable!("event name was matched above"),
        }
    }
    for (id, _) in stack {
        scan.errors.push(format!("end of trace: span {id} never exited"));
    }
    for (id, open) in timing_open {
        if open > 0 {
            scan.errors
                .push(format!("end of trace: {open} {id} span(s) never exited"));
        }
    }
    scan
}

/// The first divergence between two stripped traces.
#[derive(Clone, Debug, PartialEq)]
pub struct StripDiff {
    /// 1-based line number (in the stripped documents) of the first
    /// difference.
    pub line: usize,
    /// The left document's line (`None` past its end).
    pub left: Option<String>,
    /// The right document's line (`None` past its end).
    pub right: Option<String>,
}

/// Applies the determinism strip ([`strip_timing`](crate::strip_timing))
/// to both documents and returns the first differing line, or `None`
/// when they are byte-identical after stripping — the check CI runs
/// across `--jobs` levels.
pub fn diff_stripped(a: &str, b: &str) -> Option<StripDiff> {
    let (a, b) = (crate::jsonl::strip_timing(a), crate::jsonl::strip_timing(b));
    if a == b {
        return None;
    }
    let mut left = a.lines();
    let mut right = b.lines();
    let mut line = 0;
    loop {
        line += 1;
        match (left.next(), right.next()) {
            (Some(l), Some(r)) if l == r => continue,
            (None, None) => {
                // Same lines, different document (e.g. trailing bytes).
                return Some(StripDiff {
                    line,
                    left: None,
                    right: None,
                });
            }
            (l, r) => {
                return Some(StripDiff {
                    line,
                    left: l.map(String::from),
                    right: r.map(String::from),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Level, TIMING_SCOPE};
    use crate::jsonl::to_jsonl;
    use crate::recorder::{BufferRecorder, Span};

    #[test]
    fn parser_roundtrips_real_lines() {
        let j = parse_json(
            r#"{"scope":"fm","event":"pass","level":"debug","fields":{"pass":1,"s":"a\"b\\c\nd\u0001"},"timing":{"wall_ms":7}}"#,
        )
        .expect("parse");
        assert_eq!(j.get("scope").and_then(Json::as_str), Some("fm"));
        assert_eq!(
            j.get("fields").and_then(|f| f.get("s")).and_then(Json::as_str),
            Some("a\"b\\c\nd\u{1}")
        );
        assert_eq!(
            j.get("timing").and_then(|t| t.get("wall_ms")).and_then(Json::as_u64),
            Some(7)
        );
        // Numbers, escapes, nesting.
        let j = parse_json(r#"[1, -2.5, 1e3, "🦀", [0], {"a":null}]"#).expect("parse");
        match j {
            Json::Arr(items) => {
                assert_eq!(items[1], Json::Num(-2.5));
                assert_eq!(items[2], Json::Num(1000.0));
                assert_eq!(items[3].as_str(), Some("🦀"));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(parse_json(r#"{"a":1} junk"#).is_err());
        assert!(parse_json(r#"{"a":}"#).is_err());
        assert!(parse_json(r#""unterminated"#).is_err());
    }

    #[test]
    fn clean_trace_scans_valid_with_summary() {
        let buf = BufferRecorder::new();
        {
            let _outer = Span::enter(&buf, "engine", "bipartition");
            let _inner = Span::enter(&buf, "ml", "level");
        }
        let events = [
            Event::new("fm", "pass", Level::Trace).field("pass", 1u64),
            Event::counter("fm", "moves", 12),
            Event::counter("fm", "moves", 3),
        ];
        let mut text = to_jsonl(&buf.take());
        text.push_str(&to_jsonl(&events));
        let scan = scan_trace(&text);
        assert!(scan.is_valid(), "errors: {:?}", scan.errors);
        assert_eq!(scan.summary.lines, 7);
        assert_eq!(scan.summary.events["fm.pass"], 1);
        assert_eq!(scan.summary.counters["fm.moves"], 15);
        assert_eq!(scan.summary.spans["engine/bipartition"].count, 1);
        assert_eq!(scan.summary.levels["debug"], 4);
    }

    #[test]
    fn schema_violations_are_reported() {
        let cases = [
            (r#"{"event":"x","scope":"a","level":"info"}"#, "key 1"),
            (r#"{"scope":"a","event":"x","level":"loud"}"#, "unknown level"),
            (
                r#"{"scope":"a","event":"x","level":"info","kind":"counter","value":-1}"#,
                "non-negative",
            ),
            (
                r#"{"scope":"a","event":"x","level":"info","kind":"tally","value":1}"#,
                "unknown kind",
            ),
            (
                r#"{"scope":"a","event":"x","level":"info","timing":{"t":1},"fields":{"a":1}}"#,
                "timing must come last",
            ),
            (
                r#"{"scope":"a","event":"x","level":"info","fields":{"a":{"nested":1}}}"#,
                "not flat",
            ),
            (
                r#"{"scope":"a","event":"x","level":"info","fields":{"a":1,"a":2}}"#,
                "duplicate key",
            ),
            (r#"{"scope":"a","event":"x","level":"info","extra":1}"#, "trailing keys"),
            (r#"[1,2]"#, "not a JSON object"),
            (r#"{"scope":"a","event":"span.exit","level":"debug"}"#, "`span` field"),
            (
                r#"{"scope":"a","event":"span.exit","level":"debug","fields":{"span":"x"}}"#,
                "no open span",
            ),
            (
                r#"{"scope":"a","event":"span.enter","level":"debug","fields":{"nope":1}}"#,
                "`span` field",
            ),
        ];
        for (line, expect) in cases {
            let scan = scan_trace(line);
            assert!(
                scan.errors.iter().any(|e| e.contains(expect)),
                "{line} should report {expect:?}, got {:?}",
                scan.errors
            );
        }
    }

    #[test]
    fn span_nesting_is_enforced() {
        let a = Event::new("a", "span.enter", Level::Debug).field("span", "outer");
        let b = Event::new("b", "span.enter", Level::Debug).field("span", "inner");
        let a_exit = Event::new("a", "span.exit", Level::Debug).field("span", "outer");
        let b_exit = Event::new("b", "span.exit", Level::Debug).field("span", "inner");
        // Crossed exits.
        let scan = scan_trace(&to_jsonl(&[a.clone(), b.clone(), a_exit.clone(), b_exit.clone()]));
        assert!(scan.errors.iter().any(|e| e.contains("innermost open span")));
        // Never closed.
        let scan = scan_trace(&to_jsonl(&[a.clone(), b.clone(), b_exit.clone()]));
        assert!(scan.errors.iter().any(|e| e.contains("never exited")));
        // Properly nested.
        let scan = scan_trace(&to_jsonl(&[a, b, b_exit, a_exit]));
        assert!(scan.is_valid(), "errors: {:?}", scan.errors);
    }

    #[test]
    fn timing_scope_spans_balance_by_count_not_order() {
        let enter = |_w: u64| Event::new(TIMING_SCOPE, "span.enter", Level::Debug).field("span", "worker");
        let exit = |_w: u64| {
            Event::new(TIMING_SCOPE, "span.exit", Level::Debug)
                .field("span", "worker")
                .timing("elapsed_us", 500u64)
        };
        // Interleaved enters/exits from two workers: fine.
        let scan = scan_trace(&to_jsonl(&[enter(0), enter(1), exit(0), exit(1)]));
        assert!(scan.is_valid(), "errors: {:?}", scan.errors);
        assert_eq!(scan.summary.spans["timing/worker"], SpanAgg { count: 2, total_us: 1000 });
        // Exit before any enter: error.
        let scan = scan_trace(&to_jsonl(&[exit(0)]));
        assert!(scan.errors.iter().any(|e| e.contains("before its enter")));
        // Enter never exited: error at end of trace.
        let scan = scan_trace(&to_jsonl(&[enter(0)]));
        assert!(scan.errors.iter().any(|e| e.contains("never exited")));
    }

    #[test]
    fn diff_stripped_ignores_timing_and_finds_real_divergence() {
        let base = [
            Event::new("fm", "pass", Level::Debug).field("cut", 10u64).timing("wall_ms", 5u64),
            Event::new("fm", "done", Level::Info).field("cut", 8u64),
        ];
        let mut noisy = base.to_vec();
        noisy[0].timing = vec![("wall_ms", crate::event::Value::U64(900))];
        noisy.insert(1, Event::new(TIMING_SCOPE, "claim", Level::Debug).field("worker", 3u64));
        assert_eq!(diff_stripped(&to_jsonl(&base), &to_jsonl(&noisy)), None);

        let mut diverged = base.to_vec();
        diverged[1] = Event::new("fm", "done", Level::Info).field("cut", 9u64);
        let d = diff_stripped(&to_jsonl(&base), &to_jsonl(&diverged)).expect("differs");
        assert_eq!(d.line, 2);
        assert!(d.left.expect("left line").contains("\"cut\":8"));
        assert!(d.right.expect("right line").contains("\"cut\":9"));

        let d = diff_stripped(&to_jsonl(&base), &to_jsonl(&base[..1])).expect("length diff");
        assert_eq!(d.line, 2);
        assert_eq!(d.right, None);
    }
}
