//! Service metrics: a live registry with Prometheus text exposition.
//!
//! [`MetricsRegistry`] is the *operational* counterpart of the
//! end-of-run [`MetricsRecorder`](crate::MetricsRecorder): counters,
//! gauges and log-bucketed latency histograms that a long-running
//! server snapshots to disk after every scheduler round. It is itself a
//! [`Recorder`], fed by teeing it next to the trace sink:
//!
//! * counter/gauge events fold in generically;
//! * point events count as `<scope>_<name>_total` (span events are
//!   skipped — they are the profiler's domain);
//! * an `open`/`pending` field becomes the `queue_depth` gauge;
//! * a `serve.cache` event's `outcome` field becomes
//!   `cache_{hit,miss,evict}_total`, from which the hit ratio derives;
//! * a `latency_ms` timing field (claim-to-done) feeds the
//!   `latency_ms` histogram, with p50/p90/p99 derived from the
//!   log₂ buckets.
//!
//! An optional scope filter keeps engine-internal event floods (per
//! -pass FM counters) out of the service surface. Every mutation bumps
//! a version counter so the exposition writer can skip rounds where
//! nothing changed.
//!
//! The exposition format is the Prometheus text format (`# TYPE` lines,
//! cumulative `_bucket{le="..."}` series, `_sum`/`_count`), rendered
//! deterministically (sorted metric names) by
//! [`MetricsRegistry::to_prometheus`] and parsed back by
//! [`parse_prometheus`] for `netpart serve-status`.

use crate::event::{Event, Kind, Level, Value};
use crate::recorder::Recorder;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Upper bounds (milliseconds) of the finite latency buckets: powers of
/// two from 1ms to ~32s; observations beyond ride the +Inf bucket.
const LATENCY_BUCKET_COUNT: usize = 16;

/// A log₂-bucketed latency histogram. `buckets[i]` counts observations
/// with `value <= 2^i` milliseconds that fell in no earlier bucket;
/// `overflow` is the +Inf bucket.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencyHist {
    buckets: [u64; LATENCY_BUCKET_COUNT],
    overflow: u64,
    count: u64,
    sum_ms: u64,
}

impl LatencyHist {
    /// Records one observation in milliseconds.
    pub fn observe(&mut self, ms: u64) {
        self.count += 1;
        self.sum_ms += ms;
        for (i, b) in self.buckets.iter_mut().enumerate() {
            if ms <= 1u64 << i {
                *b += 1;
                return;
            }
        }
        self.overflow += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, milliseconds.
    pub fn sum_ms(&self) -> u64 {
        self.sum_ms
    }

    /// The cumulative `(upper_bound_ms, count)` series, +Inf last
    /// (represented as `None`).
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut out = Vec::with_capacity(LATENCY_BUCKET_COUNT + 1);
        let mut acc = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b;
            out.push((Some(1u64 << i), acc));
        }
        out.push((None, acc + self.overflow));
        out
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket in
    /// which it falls — a conservative estimate, exact to within the
    /// log₂ bucket resolution. Returns `None` for an empty histogram;
    /// quantiles landing in the +Inf bucket report
    /// [`QuantileBound::Overflow`].
    pub fn quantile(&self, q: f64) -> Option<QuantileBound> {
        quantile_of(&self.cumulative(), q)
    }
}

/// A histogram quantile estimate: the upper bound of the bucket the
/// quantile falls in. A quantile landing in the +Inf bucket has *no*
/// finite upper bound — it is `Overflow`, rendered `+Inf` per the
/// Prometheus convention. (Earlier versions reported such quantiles as
/// twice the largest finite bound, a finite number with no relation to
/// the actual latencies in the bucket — a dashboard reading it as a
/// real p99 would underestimate arbitrarily badly.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantileBound {
    /// The quantile falls in a finite bucket with this upper bound
    /// (milliseconds for latency histograms).
    Finite(u64),
    /// The quantile falls in the +Inf overflow bucket.
    Overflow,
}

impl std::fmt::Display for QuantileBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantileBound::Finite(b) => write!(f, "{b}"),
            QuantileBound::Overflow => write!(f, "+Inf"),
        }
    }
}

/// Derives a quantile from a cumulative `(upper_bound, count)` series
/// (+Inf bound as `None`, as produced by [`LatencyHist::cumulative`] or
/// parsed back from exposition text).
pub fn quantile_of(cumulative: &[(Option<u64>, u64)], q: f64) -> Option<QuantileBound> {
    let total = cumulative.last().map(|&(_, c)| c)?;
    if total == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let target = (q * total as f64).ceil().max(1.0) as u64;
    for &(bound, cum) in cumulative {
        if let Some(b) = bound {
            if cum >= target {
                return Some(QuantileBound::Finite(b));
            }
        }
    }
    Some(QuantileBound::Overflow)
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LatencyHist>,
    version: u64,
}

/// A live, thread-safe metrics registry with Prometheus exposition.
/// See the module docs for the event-feeding rules.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
    scope: Option<&'static str>,
}

impl MetricsRegistry {
    /// An empty registry folding events from every scope.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// An empty registry folding only events whose scope is `scope`
    /// (e.g. `"serve"` for the service surface); direct mutators
    /// ([`MetricsRegistry::inc`] and friends) are unaffected.
    pub fn for_scope(scope: &'static str) -> Self {
        MetricsRegistry {
            inner: Mutex::default(),
            scope: Some(scope),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds to a counter.
    pub fn inc(&self, name: &str, delta: u64) {
        let mut g = self.lock();
        *g.counters.entry(sanitize(name)).or_insert(0) += delta;
        g.version += 1;
    }

    /// Sets a gauge (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut g = self.lock();
        g.gauges.insert(sanitize(name), value);
        g.version += 1;
    }

    /// Records one latency observation in milliseconds.
    pub fn observe_latency(&self, name: &str, ms: u64) {
        let mut g = self.lock();
        g.hists.entry(sanitize(name)).or_default().observe(ms);
        g.version += 1;
    }

    /// A counter's current value (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(&sanitize(name)).copied().unwrap_or(0)
    }

    /// A gauge's current value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(&sanitize(name)).copied()
    }

    /// A histogram's `q`-quantile (see [`LatencyHist::quantile`]).
    pub fn quantile(&self, name: &str, q: f64) -> Option<QuantileBound> {
        self.lock().hists.get(&sanitize(name)).and_then(|h| h.quantile(q))
    }

    /// A monotonic change counter: bumped by every mutation, so writers
    /// can skip exposition rounds where nothing changed.
    pub fn version(&self) -> u64 {
        self.lock().version
    }

    /// Renders the registry in the Prometheus text exposition format,
    /// deterministically (sorted names; `# TYPE` headers; histograms as
    /// cumulative `_bucket{le}` series plus `_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let g = self.lock();
        let mut out = String::new();
        for (name, v) in &g.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &g.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            if v.is_finite() {
                let _ = writeln!(out, "{name} {v}");
            } else {
                let _ = writeln!(out, "{name} NaN");
            }
        }
        for (name, h) in &g.hists {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, cum) in h.cumulative() {
                match bound {
                    Some(b) => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cum}");
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum_ms(), h.count());
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else
/// (dots in `scope.name` keys) becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn field_u64(event: &Event, key: &str) -> Option<u64> {
    event.fields.iter().find_map(|(k, v)| match (k, v) {
        (k, Value::U64(x)) if *k == key => Some(*x),
        (k, Value::I64(x)) if *k == key && *x >= 0 => Some(*x as u64),
        _ => None,
    })
}

fn field_str<'e>(event: &'e Event, key: &str) -> Option<&'e str> {
    event.fields.iter().find_map(|(k, v)| match (k, v) {
        (k, Value::Str(s)) if *k == key => Some(s.as_str()),
        _ => None,
    })
}

impl Recorder for MetricsRegistry {
    fn enabled(&self, _level: Level) -> bool {
        true
    }

    fn record(&self, event: &Event) {
        if self.scope.is_some_and(|s| s != event.scope) {
            return;
        }
        let prefix = format!("netpart_{}", sanitize(event.scope));
        match &event.kind {
            Kind::Counter(delta) => {
                self.inc(&format!("{prefix}_{}_total", sanitize(event.name)), *delta);
            }
            Kind::Gauge(v) => {
                self.set_gauge(&format!("{prefix}_{}", sanitize(event.name)), *v);
            }
            // Bin-indexed histogram events (ψ distributions) have no
            // latency semantics; their observation count still counts.
            Kind::Hist(bins) => {
                self.inc(
                    &format!("{prefix}_{}_observations_total", sanitize(event.name)),
                    bins.iter().sum(),
                );
            }
            Kind::Point => {
                if !event.name.starts_with("span.") {
                    self.inc(&format!("{prefix}_{}_total", sanitize(event.name)), 1);
                }
            }
        }
        if let Some(open) = field_u64(event, "open").or_else(|| field_u64(event, "pending")) {
            self.set_gauge(&format!("{prefix}_queue_depth"), open as f64);
        }
        if event.name == "cache" {
            if let Some(outcome) = field_str(event, "outcome") {
                self.inc(&format!("{prefix}_cache_{}_total", sanitize(outcome)), 1);
            }
        }
        for (k, v) in &event.timing {
            if *k == "latency_ms" {
                if let Value::U64(ms) = v {
                    self.observe_latency(&format!("{prefix}_latency_ms"), *ms);
                }
            }
        }
    }
}

/// One sample parsed back from Prometheus exposition text.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric name (for histogram series, including the `_bucket` /
    /// `_sum` / `_count` suffix).
    pub name: String,
    /// The `le` label of a `_bucket` sample (`None` elsewhere; the
    /// +Inf bucket parses as `Some(u64::MAX)`).
    pub le: Option<u64>,
    /// Sample value.
    pub value: f64,
}

/// A parsed exposition document: samples in file order plus the
/// declared metric types.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PromText {
    /// Samples in file order.
    pub samples: Vec<PromSample>,
    /// `name → type` from the `# TYPE` headers.
    pub types: BTreeMap<String, String>,
}

impl PromText {
    /// The value of a non-histogram sample.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.le.is_none())
            .map(|s| s.value)
    }

    /// Reconstructs a histogram's cumulative series (in the
    /// [`quantile_of`] shape) from its `_bucket` samples.
    pub fn cumulative(&self, name: &str) -> Vec<(Option<u64>, u64)> {
        let bucket = format!("{name}_bucket");
        self.samples
            .iter()
            .filter(|s| s.name == bucket)
            .map(|s| {
                let bound = s.le.filter(|&b| b != u64::MAX);
                (bound, s.value as u64)
            })
            .collect()
    }

    /// Base names of the histograms in the document.
    pub fn histograms(&self) -> Vec<String> {
        self.types
            .iter()
            .filter(|(_, t)| t.as_str() == "histogram")
            .map(|(n, _)| n.clone())
            .collect()
    }
}

/// Parses Prometheus text exposition (the subset
/// [`MetricsRegistry::to_prometheus`] emits: `# TYPE` headers, bare
/// samples, `_bucket{le="..."}` series).
///
/// # Errors
///
/// A human-readable message naming the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<PromText, String> {
    let mut out = PromText::default();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |what: &str| format!("line {}: {what}: {raw:?}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(ty)) = (parts.next(), parts.next()) else {
                    return Err(err("malformed TYPE header"));
                };
                out.types.insert(name.to_string(), ty.to_string());
            }
            continue; // other comments are legal and ignored
        }
        // name[{labels}] value
        let (ident, value) = line
            .rsplit_once(char::is_whitespace)
            .ok_or_else(|| err("expected `name value`"))?;
        let value: f64 = match value {
            "NaN" => f64::NAN,
            v => v.parse().map_err(|_| err("bad sample value"))?,
        };
        let (name, le) = match ident.split_once('{') {
            None => (ident.to_string(), None),
            Some((name, labels)) => {
                let labels = labels.strip_suffix('}').ok_or_else(|| err("unclosed labels"))?;
                let le = labels.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"'));
                let le = match le {
                    Some("+Inf") => Some(u64::MAX),
                    Some(v) => Some(v.parse().map_err(|_| err("bad le bound"))?),
                    None => None,
                };
                (name.to_string(), le)
            }
        };
        out.samples.push(PromSample {
            name,
            le,
            value,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_and_quantiles() {
        let mut h = LatencyHist::default();
        for ms in [1, 1, 2, 3, 8, 100, 100_000] {
            h.observe(ms);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum_ms(), 100_115);
        // 100000ms exceeds the largest finite bound (32768): overflow.
        let cum = h.cumulative();
        assert_eq!(cum.last(), Some(&(None, 7)));
        assert_eq!(h.quantile(0.5), Some(QuantileBound::Finite(4)), "4 of 7 within <=4ms");
        assert_eq!(h.quantile(0.7), Some(QuantileBound::Finite(8)), "5 of 7 within <=8ms");
        // p90 of 7 observations is the 7th (the overflow one): the
        // +Inf bucket has no finite upper bound, so the quantile is
        // Overflow — never a made-up finite number.
        assert_eq!(h.quantile(0.9), Some(QuantileBound::Overflow));
        assert_eq!(h.quantile(0.99), Some(QuantileBound::Overflow));
        assert_eq!(format!("{}", QuantileBound::Overflow), "+Inf");
        assert_eq!(LatencyHist::default().quantile(0.5), None);
    }

    #[test]
    fn registry_feeds_from_serve_events() {
        let r = MetricsRegistry::for_scope("serve");
        r.record(
            &Event::new("serve", "submit", Level::Info)
                .field("job", "j1")
                .field("open", 3u64),
        );
        r.record(
            &Event::new("serve", "cache", Level::Info)
                .field("job", "j1")
                .field("outcome", "hit"),
        );
        r.record(
            &Event::new("serve", "done", Level::Info)
                .field("job", "j1")
                .timing("latency_ms", 12u64),
        );
        r.record(&Event::counter("serve", "retries", 2));
        // Out-of-scope and span events are ignored.
        r.record(&Event::counter("fm", "moves", 999));
        r.record(&Event::new("serve", "span.enter", Level::Debug).field("span", "execute"));
        assert_eq!(r.counter("netpart_serve_submit_total"), 1);
        assert_eq!(r.counter("netpart_serve_cache_hit_total"), 1);
        assert_eq!(r.counter("netpart_serve_retries_total"), 2);
        assert_eq!(r.gauge("netpart_serve_queue_depth"), Some(3.0));
        assert_eq!(
            r.quantile("netpart_serve_latency_ms", 1.0),
            Some(QuantileBound::Finite(16))
        );
        assert_eq!(r.counter("netpart_fm_moves_total"), 0);
        assert_eq!(r.counter("netpart_serve_span_enter_total"), 0);
    }

    #[test]
    fn version_counts_mutations_only() {
        let r = MetricsRegistry::new();
        assert_eq!(r.version(), 0);
        r.inc("a", 1);
        let v1 = r.version();
        assert!(v1 > 0);
        let _ = r.to_prometheus(); // reads do not bump
        assert_eq!(r.version(), v1);
        r.record(&Event::new("serve", "span.exit", Level::Debug).field("span", "x"));
        assert_eq!(r.version(), v1, "skipped events do not bump");
    }

    #[test]
    fn prometheus_roundtrip() {
        let r = MetricsRegistry::new();
        r.inc("netpart_serve_done_total", 3);
        r.set_gauge("netpart_serve_queue_depth", 2.0);
        r.observe_latency("netpart_serve_latency_ms", 5);
        r.observe_latency("netpart_serve_latency_ms", 900);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE netpart_serve_done_total counter"));
        assert!(text.contains("netpart_serve_latency_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("netpart_serve_latency_ms_sum 905"));
        // Deterministic rendering.
        assert_eq!(text, r.to_prometheus());

        let parsed = parse_prometheus(&text).expect("parse back");
        assert_eq!(parsed.value("netpart_serve_done_total"), Some(3.0));
        assert_eq!(parsed.value("netpart_serve_queue_depth"), Some(2.0));
        assert_eq!(parsed.types["netpart_serve_latency_ms"], "histogram");
        let cum = parsed.cumulative("netpart_serve_latency_ms");
        assert_eq!(quantile_of(&cum, 0.5), Some(QuantileBound::Finite(8)));
        assert_eq!(quantile_of(&cum, 0.99), Some(QuantileBound::Finite(1024)));
    }

    #[test]
    fn empty_registry_renders_empty_exposition() {
        let r = MetricsRegistry::new();
        assert_eq!(r.to_prometheus(), "");
        let parsed = parse_prometheus("").expect("empty parses");
        assert!(parsed.samples.is_empty());
        assert!(parsed.types.is_empty());
        assert_eq!(parsed.value("anything"), None);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_prometheus("just_a_name_no_value").is_err());
        assert!(parse_prometheus("x{le=\"oops\"} 3").is_err());
        assert!(parse_prometheus("x{le=\"1\" 3").is_err());
        // Non-le labels and arbitrary comments are tolerated.
        let ok = parse_prometheus("# a comment\nx{job=\"netpart\"} 3").expect("tolerated");
        assert_eq!(ok.value("x"), Some(3.0));
    }

    #[test]
    fn sanitization_maps_dots_to_underscores() {
        let r = MetricsRegistry::new();
        r.inc("serve.done", 1);
        assert_eq!(r.counter("serve_done"), 1);
        assert!(r.to_prometheus().contains("serve_done 1"));
    }
}
