//! Span-profile aggregation: fold a trace's `span.enter`/`span.exit`
//! pairs into an inclusive/exclusive self-time tree.
//!
//! [`ProfileRecorder`] is a [`Recorder`] that captures span events as
//! they stream past (it sits in the same [`Tee`](crate::Tee) as the
//! trace file, so it sees the identical serialized stream) and folds
//! them into a [`Profile`] on demand; [`Profile::from_events`] performs
//! the same fold over an already-collected event slice, so traces can
//! be profiled after the fact.
//!
//! The fold relies on the span stream's structure (see
//! [`Span`](crate::Span)): outside the reserved
//! [`TIMING_SCOPE`](crate::TIMING_SCOPE) the enter/exit events are
//! LIFO-balanced, so a simple stack recovers the nesting. Timing-scoped
//! spans (worker lifecycles) interleave arbitrarily across threads;
//! their exits are self-describing (the elapsed time rides on the exit
//! event), so they aggregate into flat root nodes without a stack.
//!
//! Node keys are `scope/label`, or `scope/label#detail` when the span
//! carried a discriminating detail field
//! ([`Span::enter_with`](crate::Span::enter_with)) — this is what keeps
//! the per-rung multilevel spans apart in the tree.

use crate::event::{Event, Level, Value};
use crate::recorder::Recorder;
use std::sync::Mutex;
use std::time::Instant;

/// One node of the self-time tree: a span aggregate at a fixed position
/// in the nesting (the same span entered from two different parents
/// becomes two nodes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// `scope/label` (or `scope/label#detail`) of the span.
    pub name: String,
    /// How many enter/exit pairs folded into this node.
    pub count: u64,
    /// Total inclusive time, microseconds (children included).
    pub incl_us: u64,
    /// Child spans, in first-seen order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(name: String) -> ProfileNode {
        ProfileNode {
            name,
            ..ProfileNode::default()
        }
    }

    /// Exclusive self time: inclusive time minus the children's
    /// inclusive time (clamped at zero — timer granularity can make a
    /// child measure marginally longer than its parent).
    pub fn excl_us(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.incl_us).sum();
        self.incl_us.saturating_sub(children)
    }

    fn to_json_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        use std::fmt::Write as _;
        let _ = write!(out, "{pad}{{\n{pad}  \"name\": ");
        crate::jsonl::push_json_str(out, &self.name);
        let _ = write!(
            out,
            ",\n{pad}  \"count\": {},\n{pad}  \"incl_us\": {},\n{pad}  \"excl_us\": {},\n{pad}  \"children\": [",
            self.count,
            self.incl_us,
            self.excl_us()
        );
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            c.to_json_into(out, indent + 2);
        }
        if !self.children.is_empty() {
            let _ = write!(out, "\n{pad}  ");
        }
        let _ = write!(out, "]\n{pad}}}");
    }
}

/// A folded span profile: the self-time tree plus the wall-clock window
/// it was measured against.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// The wall-clock window the profile covers, microseconds (for
    /// [`ProfileRecorder`]: recorder creation to snapshot).
    pub total_wall_us: u64,
    /// Top-level spans, in first-seen order. Timing-scoped spans
    /// aggregate flat at the top level regardless of where on the
    /// scheduling timeline they fired.
    pub roots: Vec<ProfileNode>,
}

impl Profile {
    /// The inclusive time attributed to non-timing-scoped root spans,
    /// microseconds. When the instrumentation covers a run end to end,
    /// this approaches [`Profile::total_wall_us`]; timing-scoped worker
    /// spans are excluded because they run concurrently and would
    /// double-count the wall window.
    pub fn covered_us(&self) -> u64 {
        let timing_prefix = format!("{}/", crate::event::TIMING_SCOPE);
        self.roots
            .iter()
            .filter(|r| !r.name.starts_with(&timing_prefix))
            .map(|r| r.incl_us)
            .sum()
    }

    /// Folds span events (in stream order) into a profile.
    /// `total_wall_us` is the wall window the caller measured around
    /// the stream. Non-span events are ignored, so the full trace event
    /// slice can be passed as-is.
    pub fn from_events<'a>(
        events: impl IntoIterator<Item = &'a Event>,
        total_wall_us: u64,
    ) -> Profile {
        let mut profile = Profile {
            total_wall_us,
            roots: Vec::new(),
        };
        // The stack holds child-index paths into `roots`; an empty path
        // marker is represented by the path to the node itself.
        let mut stack: Vec<Vec<usize>> = Vec::new();
        for event in events {
            let Some(name) = span_key(event) else {
                continue;
            };
            let timing_scoped = event.is_timing_scoped();
            match event.name {
                "span.enter" if !timing_scoped => {
                    let path = profile.descend(stack.last(), &name);
                    stack.push(path);
                }
                "span.exit" if !timing_scoped => {
                    let elapsed = elapsed_us(event);
                    // Pair with the nearest unmatched enter of the same
                    // name; a mismatch (truncated trace) unwinds to it.
                    while let Some(path) = stack.pop() {
                        let node = profile.node_mut(&path);
                        if node.name == name {
                            node.count += 1;
                            node.incl_us += elapsed;
                            break;
                        }
                    }
                }
                "span.exit" => {
                    // Timing-scoped: flat aggregation from the
                    // self-describing exit, no stack involvement.
                    let path = profile.descend(None, &name);
                    let node = profile.node_mut(&path);
                    node.count += 1;
                    node.incl_us += elapsed_us(event);
                }
                _ => {}
            }
        }
        profile
    }

    /// Resolves a child-index path to its node.
    fn node_mut(&mut self, path: &[usize]) -> &mut ProfileNode {
        let (first, rest) = path.split_first().expect("paths are never empty");
        let mut node = &mut self.roots[*first];
        for &i in rest {
            node = &mut node.children[i];
        }
        node
    }

    /// Finds or creates the child `name` under `parent` (a root when
    /// `parent` is `None`), returning its path.
    fn descend(&mut self, parent: Option<&Vec<usize>>, name: &str) -> Vec<usize> {
        match parent {
            None => {
                let i = match self.roots.iter().position(|r| r.name == name) {
                    Some(i) => i,
                    None => {
                        self.roots.push(ProfileNode::new(name.to_string()));
                        self.roots.len() - 1
                    }
                };
                vec![i]
            }
            Some(path) => {
                let node = self.node_mut(path);
                let i = match node.children.iter().position(|c| c.name == name) {
                    Some(i) => i,
                    None => {
                        node.children.push(ProfileNode::new(name.to_string()));
                        node.children.len() - 1
                    }
                };
                let mut p = path.clone();
                p.push(i);
                p
            }
        }
    }

    /// Renders the profile as pretty JSON (2-space indent,
    /// deterministic: node order is first-seen stream order).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"total_wall_us\": {},\n  \"covered_us\": {},\n  \"roots\": [",
            self.total_wall_us,
            self.covered_us()
        );
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            r.to_json_into(&mut out, 2);
        }
        if !self.roots.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// The profile key of a span event: `scope/label`, plus `#detail` when
/// the span carried a discriminating field. Returns `None` for non-span
/// events and malformed span events (no `span` field).
pub fn span_key(event: &Event) -> Option<String> {
    if event.name != "span.enter" && event.name != "span.exit" {
        return None;
    }
    let label = event.fields.iter().find_map(|(k, v)| match (k, v) {
        (&"span", Value::Str(s)) => Some(s.as_str()),
        _ => None,
    })?;
    let mut key = format!("{}/{label}", event.scope);
    if let Some((_, v)) = event.fields.iter().find(|(k, _)| *k != "span") {
        use std::fmt::Write as _;
        match v {
            Value::I64(x) => {
                let _ = write!(key, "#{x}");
            }
            Value::U64(x) => {
                let _ = write!(key, "#{x}");
            }
            Value::F64(x) => {
                let _ = write!(key, "#{x}");
            }
            Value::Bool(x) => {
                let _ = write!(key, "#{x}");
            }
            Value::Str(x) => {
                let _ = write!(key, "#{x}");
            }
            Value::UList(_) => {}
        }
    }
    Some(key)
}

/// The elapsed time of a `span.exit` event in microseconds, preferring
/// the `elapsed_us` timing field and falling back to `elapsed_ms`.
fn elapsed_us(event: &Event) -> u64 {
    for (k, v) in &event.timing {
        if *k == "elapsed_us" {
            if let Value::U64(us) = v {
                return *us;
            }
        }
    }
    for (k, v) in &event.timing {
        if *k == "elapsed_ms" {
            if let Value::U64(ms) = v {
                return ms.saturating_mul(1000);
            }
        }
    }
    0
}

/// A [`Recorder`] that captures span enter/exit events for profiling.
///
/// It records at every level (a disabled trace sink must not blind the
/// profiler) and ignores everything but span events, so the retained
/// memory is proportional to the span count, not the event count.
#[derive(Debug)]
pub struct ProfileRecorder {
    t0: Instant,
    spans: Mutex<Vec<Event>>,
}

impl Default for ProfileRecorder {
    fn default() -> Self {
        ProfileRecorder::new()
    }
}

impl ProfileRecorder {
    /// An empty profiler; the wall window starts now.
    pub fn new() -> Self {
        ProfileRecorder {
            t0: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Folds the captured spans into a [`Profile`]. The wall window is
    /// recorder creation to this call.
    pub fn profile(&self) -> Profile {
        let spans = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Profile::from_events(spans.iter(), self.t0.elapsed().as_micros() as u64)
    }
}

impl Recorder for ProfileRecorder {
    fn enabled(&self, _level: Level) -> bool {
        true
    }

    fn record(&self, event: &Event) {
        if event.name != "span.enter" && event.name != "span.exit" {
            return;
        }
        self.spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TIMING_SCOPE;
    use crate::recorder::Span;

    fn enter(scope: &'static str, label: &str) -> Event {
        Event::new(scope, "span.enter", Level::Debug).field("span", label.to_string())
    }

    fn exit(scope: &'static str, label: &str, us: u64) -> Event {
        Event::new(scope, "span.exit", Level::Debug)
            .field("span", label.to_string())
            .timing("elapsed_ms", us / 1000)
            .timing("elapsed_us", us)
    }

    #[test]
    fn nesting_and_self_time() {
        let events = vec![
            enter("engine", "run"),
            enter("ml", "coarsen"),
            exit("ml", "coarsen", 300),
            enter("ml", "level"),
            exit("ml", "level", 500),
            exit("engine", "run", 1000),
        ];
        let p = Profile::from_events(&events, 1100);
        assert_eq!(p.roots.len(), 1);
        let root = &p.roots[0];
        assert_eq!(root.name, "engine/run");
        assert_eq!(root.incl_us, 1000);
        assert_eq!(root.excl_us(), 200);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "ml/coarsen");
        assert_eq!(root.children[1].incl_us, 500);
        assert_eq!(p.covered_us(), 1000);
    }

    #[test]
    fn repeated_spans_aggregate_into_one_node() {
        let mut events = Vec::new();
        for _ in 0..3 {
            events.push(enter("fm", "pass"));
            events.push(exit("fm", "pass", 10));
        }
        let p = Profile::from_events(&events, 40);
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].count, 3);
        assert_eq!(p.roots[0].incl_us, 30);
    }

    #[test]
    fn detail_field_discriminates_nodes() {
        let events = vec![
            Event::new("ml", "span.enter", Level::Debug)
                .field("span", "level")
                .field("level", 2u64),
            Event::new("ml", "span.exit", Level::Debug)
                .field("span", "level")
                .field("level", 2u64)
                .timing("elapsed_us", 7u64),
            Event::new("ml", "span.enter", Level::Debug)
                .field("span", "level")
                .field("level", 1u64),
            Event::new("ml", "span.exit", Level::Debug)
                .field("span", "level")
                .field("level", 1u64)
                .timing("elapsed_us", 9u64),
        ];
        let p = Profile::from_events(&events, 16);
        let names: Vec<&str> = p.roots.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["ml/level#2", "ml/level#1"]);
        assert_eq!(p.roots[1].incl_us, 9);
    }

    #[test]
    fn timing_scoped_spans_aggregate_flat_without_a_stack() {
        // Two workers' spans, interleaved the way live threads emit
        // them (non-LIFO). Only exits matter.
        let events = vec![
            enter(TIMING_SCOPE, "worker"),
            enter(TIMING_SCOPE, "worker"),
            enter("engine", "run"),
            exit(TIMING_SCOPE, "worker", 40),
            exit(TIMING_SCOPE, "worker", 60),
            exit("engine", "run", 100),
        ];
        let p = Profile::from_events(&events, 100);
        assert_eq!(p.roots.len(), 2);
        let w = p.roots.iter().find(|r| r.name == "timing/worker").expect("worker node");
        assert_eq!(w.count, 2);
        assert_eq!(w.incl_us, 100);
        // Concurrent worker time does not count toward coverage.
        assert_eq!(p.covered_us(), 100);
    }

    #[test]
    fn unmatched_exit_and_truncated_enter_do_not_panic() {
        let events = vec![
            exit("a", "orphan", 5),
            enter("a", "open"),
            // stream ends with "open" never exited
        ];
        let p = Profile::from_events(&events, 10);
        // The orphan exit unwound an empty stack; the dangling enter
        // contributes a node with no time.
        let open = p.roots.iter().find(|r| r.name == "a/open").expect("node");
        assert_eq!(open.count, 0);
        assert_eq!(open.incl_us, 0);
    }

    #[test]
    fn exit_falls_back_to_milliseconds() {
        let events = vec![
            enter("a", "x"),
            Event::new("a", "span.exit", Level::Debug)
                .field("span", "x")
                .timing("elapsed_ms", 3u64),
        ];
        let p = Profile::from_events(&events, 4000);
        assert_eq!(p.roots[0].incl_us, 3000);
    }

    #[test]
    fn json_shape_is_deterministic() {
        let events = vec![
            enter("engine", "run"),
            enter("fm", "pass"),
            exit("fm", "pass", 10),
            exit("engine", "run", 30),
        ];
        let p = Profile::from_events(&events, 50);
        let json = p.to_json();
        assert_eq!(
            json,
            "{\n  \"total_wall_us\": 50,\n  \"covered_us\": 30,\n  \"roots\": [\n    {\n      \"name\": \"engine/run\",\n      \"count\": 1,\n      \"incl_us\": 30,\n      \"excl_us\": 20,\n      \"children\": [\n        {\n          \"name\": \"fm/pass\",\n          \"count\": 1,\n          \"incl_us\": 10,\n          \"excl_us\": 10,\n          \"children\": []\n        }\n      ]\n    }\n  ]\n}\n"
        );
        assert_eq!(json, p.to_json());
    }

    #[test]
    fn recorder_captures_real_spans_and_ignores_the_rest() {
        let pr = ProfileRecorder::new();
        {
            let _outer = Span::enter(&pr, "engine", "run");
            pr.record(&Event::new("fm", "pass", Level::Trace).field("cut", 3u64));
            let _inner = Span::enter_with(&pr, "ml", "level", "level", 0u64);
        }
        let p = pr.profile();
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].name, "engine/run");
        assert_eq!(p.roots[0].children[0].name, "ml/level#0");
        assert!(p.total_wall_us >= p.roots[0].incl_us);
    }
}
