//! The event model: levelled, typed, allocation-light telemetry records.
//!
//! An [`Event`] is one observation: a point event, a counter increment,
//! a gauge sample or a histogram, identified by `scope.name` and carrying
//! two field lists:
//!
//! * `fields` — the *deterministic* payload: for a fixed seed these
//!   values are identical on every run at every thread count;
//! * `timing` — wall-clock, duration and scheduling-dependent data
//!   (worker ids, claim order, milliseconds). Sinks keep it segregated
//!   (the JSONL sink renders it as a trailing `"timing"` sub-object) so
//!   traces can be compared across `--jobs` levels after stripping it.
//!
//! Events whose very *presence or order* depends on thread scheduling
//! (worker claims, live incumbent races, drain notifications) must use
//! the reserved scope [`TIMING_SCOPE`]; determinism checks drop those
//! lines entirely.

use std::fmt;

/// The reserved scope for events that exist only on the scheduling
/// timeline. Lines with this scope are dropped (not just trimmed) when
/// comparing traces across `--jobs` levels.
pub const TIMING_SCOPE: &str = "timing";

/// Event verbosity, ordered from most to least important.
///
/// A [`Recorder`](crate::Recorder) configured at level `L` records
/// every event with `level <= L`; [`Level::Info`] is the headline
/// stream, [`Level::Debug`] adds per-pass/per-stage detail and
/// [`Level::Trace`] adds per-attempt minutiae.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Level {
    /// Headline events: run summaries, incumbent improvements,
    /// escalations, paper-metric gauges.
    #[default]
    Info,
    /// Per-pass / per-stage diagnostics.
    Debug,
    /// Per-attempt minutiae (dead-ended carves, unbalanced splits).
    Trace,
}

impl Level {
    /// The lowercase name used in serialized traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point. Non-finite values serialize as `null`.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// A list of unsigned integers (histogram bins, area pairs).
    UList(Vec<u64>),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u64>> for Value {
    fn from(v: Vec<u64>) -> Self {
        Value::UList(v)
    }
}

/// What kind of observation an [`Event`] is.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Kind {
    /// A point event (the default).
    #[default]
    Point,
    /// A monotonic counter increment; aggregated by summation.
    Counter(u64),
    /// A gauge sample; aggregated by last-write-wins.
    Gauge(f64),
    /// A histogram (bin counts, implicit `0..n` bin labels); aggregated
    /// by element-wise summation.
    Hist(Vec<u64>),
}

/// One telemetry record. Build with [`Event::new`] (or the
/// [`Event::counter`] / [`Event::gauge`] / [`Event::hist`] metric
/// constructors) and the [`Event::field`] / [`Event::timing`] builders,
/// then hand it to a [`Recorder`](crate::Recorder).
///
/// Field keys are `&'static str` by design: instrumentation sites name
/// their fields statically, which keeps event construction free of key
/// allocations and the serialized key order deterministic (insertion
/// order).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Event {
    /// Subsystem that emitted the event (`"fm"`, `"kway"`,
    /// `"portfolio"`, `"engine"`, `"paper"`, `"verify"`, or
    /// [`TIMING_SCOPE`]).
    pub scope: &'static str,
    /// Event name within the scope (dotted lowercase, e.g.
    /// `"carve.no_fit"`).
    pub name: &'static str,
    /// Verbosity level.
    pub level: Level,
    /// Observation kind (point / counter / gauge / histogram).
    pub kind: Kind,
    /// Deterministic payload, in insertion order.
    pub fields: Vec<(&'static str, Value)>,
    /// Scheduling/wall-clock payload, in insertion order. Serialized
    /// last, as a clearly marked sub-object, so determinism checks can
    /// strip it.
    pub timing: Vec<(&'static str, Value)>,
}

impl Event {
    /// A point event.
    pub fn new(scope: &'static str, name: &'static str, level: Level) -> Self {
        Event {
            scope,
            name,
            level,
            ..Event::default()
        }
    }

    /// A counter increment of `delta` (level [`Level::Info`]).
    pub fn counter(scope: &'static str, name: &'static str, delta: u64) -> Self {
        Event {
            scope,
            name,
            kind: Kind::Counter(delta),
            ..Event::default()
        }
    }

    /// A gauge sample (level [`Level::Info`]).
    pub fn gauge(scope: &'static str, name: &'static str, value: f64) -> Self {
        Event {
            scope,
            name,
            kind: Kind::Gauge(value),
            ..Event::default()
        }
    }

    /// A histogram observation (level [`Level::Info`]).
    pub fn hist(scope: &'static str, name: &'static str, bins: Vec<u64>) -> Self {
        Event {
            scope,
            name,
            kind: Kind::Hist(bins),
            ..Event::default()
        }
    }

    /// Overrides the level (metric constructors default to
    /// [`Level::Info`]).
    #[must_use]
    pub fn at(mut self, level: Level) -> Self {
        self.level = level;
        self
    }

    /// Appends a deterministic field.
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Appends a scheduling/wall-clock field.
    #[must_use]
    pub fn timing(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.timing.push((key, value.into()));
        self
    }

    /// Whether this event lives entirely on the scheduling timeline
    /// (reserved scope [`TIMING_SCOPE`]): determinism checks drop it.
    pub fn is_timing_scoped(&self) -> bool {
        self.scope == TIMING_SCOPE
    }

    /// Strips every scheduling-dependent part, leaving the
    /// deterministic skeleton (used by determinism tests; returns
    /// `None` for timing-scoped events, which have no skeleton).
    pub fn deterministic_skeleton(&self) -> Option<Event> {
        if self.is_timing_scoped() {
            return None;
        }
        let mut e = self.clone();
        e.timing.clear();
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::Debug.to_string(), "debug");
    }

    #[test]
    fn builder_preserves_insertion_order() {
        let e = Event::new("fm", "pass", Level::Debug)
            .field("b", 1u64)
            .field("a", 2u64)
            .timing("wall_ms", 3u64);
        assert_eq!(e.fields[0].0, "b");
        assert_eq!(e.fields[1].0, "a");
        assert_eq!(e.timing.len(), 1);
    }

    #[test]
    fn skeleton_drops_timing_and_timing_scope() {
        let e = Event::new("fm", "pass", Level::Info).timing("wall_ms", 9u64);
        let s = e.deterministic_skeleton().expect("fm is deterministic");
        assert!(s.timing.is_empty());
        assert_eq!(s.fields, e.fields);
        let t = Event::new(TIMING_SCOPE, "claim", Level::Debug);
        assert!(t.is_timing_scoped());
        assert!(t.deterministic_skeleton().is_none());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(vec![1u64, 2]), Value::UList(vec![1, 2]));
    }
}
