//! The JSONL trace sink and its determinism contract.
//!
//! Every event becomes exactly one JSON object on its own line:
//!
//! ```json
//! {"scope":"fm","event":"pass","level":"debug","fields":{"pass":1,"cut":42}}
//! {"scope":"portfolio","event":"start","level":"info","fields":{"index":0,"cut":40},"timing":{"worker":2,"wall_ms":7}}
//! {"scope":"timing","event":"worker.claim","level":"debug","fields":{"worker":1,"start":3}}
//! ```
//!
//! Key order is fixed (`scope`, `event`, `level`, then kind-specific
//! keys, then `fields`, then `timing` **last**), and field order inside
//! the sub-objects is the deterministic insertion order of the emitting
//! site. The determinism contract: after [`strip_timing`] — drop lines
//! whose scope is [`TIMING_SCOPE`](crate::TIMING_SCOPE), remove the
//! trailing `"timing"` sub-object from the rest — a fixed-seed trace is
//! byte-identical at every `--jobs` level (`scripts/strip_timing.sh` is
//! the shell mirror used by CI).

use crate::event::{Event, Kind, Level, Value};
use crate::recorder::Recorder;
use std::io::Write;
use std::sync::Mutex;

/// Appends a JSON string literal (quoted, escaped) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON rendering of `v` to `out`. Non-finite floats become
/// `null` (JSON has no NaN/Inf); finite floats use Rust's
/// shortest-roundtrip `Display`, which is deterministic for a given
/// value.
fn push_json_value(out: &mut String, v: &Value) {
    use std::fmt::Write as _;
    match v {
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Str(x) => push_json_str(out, x),
        Value::UList(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{x}");
            }
            out.push(']');
        }
    }
}

fn push_pairs(out: &mut String, pairs: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_json_value(out, v);
    }
    out.push('}');
}

/// Renders one event as its JSONL line (no trailing newline).
pub fn to_json_line(event: &Event) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"scope\":");
    push_json_str(&mut out, event.scope);
    out.push_str(",\"event\":");
    push_json_str(&mut out, event.name);
    out.push_str(",\"level\":");
    push_json_str(&mut out, event.level.as_str());
    match &event.kind {
        Kind::Point => {}
        Kind::Counter(n) => {
            use std::fmt::Write as _;
            let _ = write!(out, ",\"kind\":\"counter\",\"value\":{n}");
        }
        Kind::Gauge(v) => {
            out.push_str(",\"kind\":\"gauge\",\"value\":");
            push_json_value(&mut out, &Value::F64(*v));
        }
        Kind::Hist(bins) => {
            out.push_str(",\"kind\":\"hist\",\"bins\":");
            push_json_value(&mut out, &Value::UList(bins.clone()));
        }
    }
    if !event.fields.is_empty() {
        out.push_str(",\"fields\":");
        push_pairs(&mut out, &event.fields);
    }
    // The timing sub-object is always last so determinism tooling can
    // strip it with a tail match.
    if !event.timing.is_empty() {
        out.push_str(",\"timing\":");
        push_pairs(&mut out, &event.timing);
    }
    out.push('}');
    out
}

/// Renders a slice of events as a JSONL document (one line each).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&to_json_line(e));
        out.push('\n');
    }
    out
}

/// Applies the determinism strip to a JSONL trace document: drops
/// timing-scoped lines and removes the trailing `"timing"` sub-object
/// from the rest. Two fixed-seed traces taken at different `--jobs`
/// levels must be byte-identical after this (the contract CI enforces
/// via `scripts/strip_timing.sh`, which performs the same rewrite).
pub fn strip_timing(trace: &str) -> String {
    let mut out = String::with_capacity(trace.len());
    for line in trace.lines() {
        if line.contains("\"scope\":\"timing\"") {
            continue;
        }
        match line.rfind(",\"timing\":{") {
            Some(i) if line.ends_with("}}") => {
                out.push_str(&line[..i]);
                out.push('}');
            }
            _ => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// A [`Recorder`] writing JSONL to any `Write` sink (typically a
/// buffered trace file opened by [`JsonlRecorder::create`]). Records
/// every level by default.
pub struct JsonlRecorder {
    max: Level,
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder")
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl JsonlRecorder {
    /// Wraps an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlRecorder {
            max: Level::Trace,
            out: Mutex::new(out),
        }
    }

    /// Creates (truncating) a trace file at `path`, buffered.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`std::io::Error`] if the file cannot
    /// be created.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(f))))
    }

    /// Caps the recorded level (default: everything).
    #[must_use]
    pub fn with_max_level(mut self, max: Level) -> Self {
        self.max = max;
        self
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`std::io::Error`].
    pub fn flush(&self) -> std::io::Result<()> {
        self.out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush()
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl Recorder for JsonlRecorder {
    fn enabled(&self, level: Level) -> bool {
        level <= self.max
    }

    fn record(&self, event: &Event) {
        if !self.enabled(event.level) {
            return;
        }
        let mut line = to_json_line(event);
        line.push('\n');
        // Telemetry never propagates I/O errors into the run.
        let _ = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape_and_key_order() {
        let e = Event::new("fm", "pass", Level::Debug)
            .field("pass", 1u64)
            .field("cut", 42u64)
            .timing("wall_ms", 7u64);
        assert_eq!(
            to_json_line(&e),
            r#"{"scope":"fm","event":"pass","level":"debug","fields":{"pass":1,"cut":42},"timing":{"wall_ms":7}}"#
        );
    }

    #[test]
    fn metric_kinds_serialize() {
        assert_eq!(
            to_json_line(&Event::counter("portfolio", "starts", 5)),
            r#"{"scope":"portfolio","event":"starts","level":"info","kind":"counter","value":5}"#
        );
        assert_eq!(
            to_json_line(&Event::gauge("paper", "kbar", 0.25)),
            r#"{"scope":"paper","event":"kbar","level":"info","kind":"gauge","value":0.25}"#
        );
        assert_eq!(
            to_json_line(&Event::hist("paper", "devices", vec![1, 0, 2])),
            r#"{"scope":"paper","event":"devices","level":"info","kind":"hist","bins":[1,0,2]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::new("x", "y", Level::Info).field("s", "a\"b\\c\nd\u{1}");
        let line = to_json_line(&e);
        assert!(line.contains(r#""s":"a\"b\\c\nd\u0001""#), "line: {line}");
        assert_eq!(
            to_json_line(&Event::new("x", "nan", Level::Info).field("v", f64::NAN)),
            r#"{"scope":"x","event":"nan","level":"info","fields":{"v":null}}"#
        );
    }

    #[test]
    fn strip_removes_timing_and_timing_scope() {
        let events = vec![
            Event::new("fm", "pass", Level::Debug).field("cut", 3u64),
            Event::new("timing", "worker.claim", Level::Debug).field("worker", 1u64),
            Event::new("portfolio", "start", Level::Info)
                .field("index", 0u64)
                .timing("worker", 1u64)
                .timing("wall_ms", 9u64),
        ];
        let stripped = strip_timing(&to_jsonl(&events));
        assert_eq!(
            stripped,
            "{\"scope\":\"fm\",\"event\":\"pass\",\"level\":\"debug\",\"fields\":{\"cut\":3}}\n\
             {\"scope\":\"portfolio\",\"event\":\"start\",\"level\":\"info\",\"fields\":{\"index\":0}}\n"
        );
    }

    #[test]
    fn strip_agrees_with_skeleton() {
        // The string-level strip and the event-level skeleton are the
        // same contract expressed twice; keep them in lockstep.
        let events = vec![
            Event::new("kway", "done", Level::Info)
                .field("cost", 750u64)
                .timing("wall_ms", 3u64),
            Event::new("timing", "drain", Level::Debug),
        ];
        let via_strings = strip_timing(&to_jsonl(&events));
        let via_skeleton: Vec<Event> = events
            .iter()
            .filter_map(Event::deterministic_skeleton)
            .collect();
        assert_eq!(via_strings, to_jsonl(&via_skeleton));
    }

    #[test]
    fn recorder_writes_lines_and_respects_max_level() {
        let buf: std::sync::Arc<Mutex<Vec<u8>>> = std::sync::Arc::default();
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let r = JsonlRecorder::new(Box::new(Shared(buf.clone()))).with_max_level(Level::Debug);
        assert!(r.enabled(Level::Debug));
        assert!(!r.enabled(Level::Trace));
        r.record(&Event::new("a", "kept", Level::Info));
        r.record(&Event::new("a", "dropped", Level::Trace));
        r.flush().expect("in-memory flush");
        let text = String::from_utf8(
            buf.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone(),
        )
        .expect("utf8");
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"kept\""));
    }
}
