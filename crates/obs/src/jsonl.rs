//! The JSONL trace sink and its determinism contract.
//!
//! Every event becomes exactly one JSON object on its own line:
//!
//! ```json
//! {"scope":"fm","event":"pass","level":"debug","fields":{"pass":1,"cut":42}}
//! {"scope":"portfolio","event":"start","level":"info","fields":{"index":0,"cut":40},"timing":{"worker":2,"wall_ms":7}}
//! {"scope":"timing","event":"worker.claim","level":"debug","fields":{"worker":1,"start":3}}
//! ```
//!
//! Key order is fixed (`scope`, `event`, `level`, then kind-specific
//! keys, then `fields`, then `timing` **last**), and field order inside
//! the sub-objects is the deterministic insertion order of the emitting
//! site. The determinism contract: after [`strip_timing`] — drop lines
//! whose scope is [`TIMING_SCOPE`](crate::TIMING_SCOPE), remove the
//! trailing `"timing"` sub-object from the rest — a fixed-seed trace is
//! byte-identical at every `--jobs` level (`scripts/strip_timing.sh` is
//! the shell mirror used by CI).

use crate::event::{Event, Kind, Level, Value};
use crate::recorder::Recorder;
use std::io::Write;
use std::sync::Mutex;

/// Appends a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON rendering of `v` to `out`. Non-finite floats become
/// `null` (JSON has no NaN/Inf); finite floats use Rust's
/// shortest-roundtrip `Display`, which is deterministic for a given
/// value.
fn push_json_value(out: &mut String, v: &Value) {
    use std::fmt::Write as _;
    match v {
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Str(x) => push_json_str(out, x),
        Value::UList(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{x}");
            }
            out.push(']');
        }
    }
}

fn push_pairs(out: &mut String, pairs: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_json_value(out, v);
    }
    out.push('}');
}

/// Renders one event as its JSONL line (no trailing newline).
pub fn to_json_line(event: &Event) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"scope\":");
    push_json_str(&mut out, event.scope);
    out.push_str(",\"event\":");
    push_json_str(&mut out, event.name);
    out.push_str(",\"level\":");
    push_json_str(&mut out, event.level.as_str());
    match &event.kind {
        Kind::Point => {}
        Kind::Counter(n) => {
            use std::fmt::Write as _;
            let _ = write!(out, ",\"kind\":\"counter\",\"value\":{n}");
        }
        Kind::Gauge(v) => {
            out.push_str(",\"kind\":\"gauge\",\"value\":");
            push_json_value(&mut out, &Value::F64(*v));
        }
        Kind::Hist(bins) => {
            out.push_str(",\"kind\":\"hist\",\"bins\":");
            push_json_value(&mut out, &Value::UList(bins.clone()));
        }
    }
    if !event.fields.is_empty() {
        out.push_str(",\"fields\":");
        push_pairs(&mut out, &event.fields);
    }
    // The timing sub-object is always last so determinism tooling can
    // strip it with a tail match.
    if !event.timing.is_empty() {
        out.push_str(",\"timing\":");
        push_pairs(&mut out, &event.timing);
    }
    out.push('}');
    out
}

/// Renders a slice of events as a JSONL document (one line each).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&to_json_line(e));
        out.push('\n');
    }
    out
}

/// Applies the determinism strip to a JSONL trace document: drops
/// timing-scoped lines and removes the trailing `"timing"` sub-object
/// from the rest. Two fixed-seed traces taken at different `--jobs`
/// levels must be byte-identical after this (the contract CI enforces
/// via `scripts/strip_timing.sh`, which performs the same rewrite).
pub fn strip_timing(trace: &str) -> String {
    let mut out = String::with_capacity(trace.len());
    for line in trace.lines() {
        if line.contains("\"scope\":\"timing\"") {
            continue;
        }
        match line.rfind(",\"timing\":{") {
            Some(i) if line.ends_with("}}") => {
                out.push_str(&line[..i]);
                out.push('}');
            }
            _ => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// A [`Recorder`] writing JSONL to any `Write` sink (typically a
/// buffered trace file opened by [`JsonlRecorder::create_atomic`]).
/// Records every level by default.
pub struct JsonlRecorder {
    max: Level,
    out: Mutex<Box<dyn Write + Send>>,
    /// `(temp path, final path)` when opened by
    /// [`JsonlRecorder::create_atomic`]: events stream into the temp
    /// file and only [`JsonlRecorder::commit`] publishes it.
    atomic: Option<(std::path::PathBuf, std::path::PathBuf)>,
    committed: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder")
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl JsonlRecorder {
    /// Wraps an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlRecorder {
            max: Level::Trace,
            out: Mutex::new(out),
            atomic: None,
            committed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Creates (truncating) a trace file at `path`, buffered.
    ///
    /// The file appears at `path` immediately and grows as events
    /// stream in, so an interrupted run leaves a readable prefix.
    /// Artifact consumers that must never observe a truncated trace
    /// should use [`JsonlRecorder::create_atomic`] instead.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`std::io::Error`] if the file cannot
    /// be created.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(f))))
    }

    /// Creates a trace that streams into `<path>.tmp` and only appears
    /// at `path` when [`JsonlRecorder::commit`] renames it into place.
    ///
    /// A run killed mid-write therefore never leaves a truncated
    /// artifact at `path` — at worst a stale `<path>.tmp` remains,
    /// which no consumer treats as a trace. Dropping the recorder
    /// without committing removes the temp file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`std::io::Error`] if the temp file
    /// cannot be created.
    pub fn create_atomic(path: &str) -> std::io::Result<Self> {
        let final_path = std::path::PathBuf::from(path);
        let tmp = std::path::PathBuf::from(format!("{path}.tmp"));
        let f = std::fs::File::create(&tmp)?;
        let mut r = Self::new(Box::new(std::io::BufWriter::new(f)));
        r.atomic = Some((tmp, final_path));
        Ok(r)
    }

    /// Flushes, syncs and atomically publishes an
    /// [atomic](JsonlRecorder::create_atomic) trace at its final path;
    /// a no-op for plain writers and on a second call. Events recorded
    /// after a commit are discarded.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`std::io::Error`] of the flush, sync
    /// or rename.
    pub fn commit(&self) -> std::io::Result<()> {
        self.flush()?;
        let Some((tmp, final_path)) = &self.atomic else {
            return Ok(());
        };
        if self.committed.swap(true, std::sync::atomic::Ordering::SeqCst) {
            return Ok(());
        }
        // Route post-commit records into the void rather than a file
        // that has been renamed away.
        *self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Box::new(std::io::sink());
        std::fs::File::open(tmp)?.sync_all()?;
        std::fs::rename(tmp, final_path)
    }

    /// Caps the recorded level (default: everything).
    #[must_use]
    pub fn with_max_level(mut self, max: Level) -> Self {
        self.max = max;
        self
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`std::io::Error`].
    pub fn flush(&self) -> std::io::Result<()> {
        self.out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush()
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self.flush();
        // An uncommitted atomic trace is an unwanted partial artifact.
        if let Some((tmp, _)) = &self.atomic {
            if !self.committed.load(std::sync::atomic::Ordering::SeqCst) {
                let _ = std::fs::remove_file(tmp);
            }
        }
    }
}

impl Recorder for JsonlRecorder {
    fn enabled(&self, level: Level) -> bool {
        level <= self.max
    }

    fn record(&self, event: &Event) {
        if !self.enabled(event.level) {
            return;
        }
        let mut line = to_json_line(event);
        line.push('\n');
        // Telemetry never propagates I/O errors into the run.
        let _ = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape_and_key_order() {
        let e = Event::new("fm", "pass", Level::Debug)
            .field("pass", 1u64)
            .field("cut", 42u64)
            .timing("wall_ms", 7u64);
        assert_eq!(
            to_json_line(&e),
            r#"{"scope":"fm","event":"pass","level":"debug","fields":{"pass":1,"cut":42},"timing":{"wall_ms":7}}"#
        );
    }

    #[test]
    fn metric_kinds_serialize() {
        assert_eq!(
            to_json_line(&Event::counter("portfolio", "starts", 5)),
            r#"{"scope":"portfolio","event":"starts","level":"info","kind":"counter","value":5}"#
        );
        assert_eq!(
            to_json_line(&Event::gauge("paper", "kbar", 0.25)),
            r#"{"scope":"paper","event":"kbar","level":"info","kind":"gauge","value":0.25}"#
        );
        assert_eq!(
            to_json_line(&Event::hist("paper", "devices", vec![1, 0, 2])),
            r#"{"scope":"paper","event":"devices","level":"info","kind":"hist","bins":[1,0,2]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::new("x", "y", Level::Info).field("s", "a\"b\\c\nd\u{1}");
        let line = to_json_line(&e);
        assert!(line.contains(r#""s":"a\"b\\c\nd\u0001""#), "line: {line}");
        assert_eq!(
            to_json_line(&Event::new("x", "nan", Level::Info).field("v", f64::NAN)),
            r#"{"scope":"x","event":"nan","level":"info","fields":{"v":null}}"#
        );
    }

    #[test]
    fn strip_removes_timing_and_timing_scope() {
        let events = vec![
            Event::new("fm", "pass", Level::Debug).field("cut", 3u64),
            Event::new("timing", "worker.claim", Level::Debug).field("worker", 1u64),
            Event::new("portfolio", "start", Level::Info)
                .field("index", 0u64)
                .timing("worker", 1u64)
                .timing("wall_ms", 9u64),
        ];
        let stripped = strip_timing(&to_jsonl(&events));
        assert_eq!(
            stripped,
            "{\"scope\":\"fm\",\"event\":\"pass\",\"level\":\"debug\",\"fields\":{\"cut\":3}}\n\
             {\"scope\":\"portfolio\",\"event\":\"start\",\"level\":\"info\",\"fields\":{\"index\":0}}\n"
        );
    }

    #[test]
    fn strip_agrees_with_skeleton() {
        // The string-level strip and the event-level skeleton are the
        // same contract expressed twice; keep them in lockstep.
        let events = vec![
            Event::new("kway", "done", Level::Info)
                .field("cost", 750u64)
                .timing("wall_ms", 3u64),
            Event::new("timing", "drain", Level::Debug),
        ];
        let via_strings = strip_timing(&to_jsonl(&events));
        let via_skeleton: Vec<Event> = events
            .iter()
            .filter_map(Event::deterministic_skeleton)
            .collect();
        assert_eq!(via_strings, to_jsonl(&via_skeleton));
    }

    #[test]
    fn atomic_recorder_publishes_only_on_commit() {
        let dir = std::env::temp_dir().join(format!("netpart-obs-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let path_s = path.to_str().expect("utf8 path");
        {
            let r = JsonlRecorder::create_atomic(path_s).expect("create");
            r.record(&Event::new("a", "b", Level::Info));
            r.flush().expect("flush");
            assert!(!path.exists(), "final path must not exist before commit");
            assert!(path.with_extension("jsonl.tmp").exists());
            r.commit().expect("commit");
            r.commit().expect("second commit is a no-op");
            assert!(path.exists());
            assert!(!path.with_extension("jsonl.tmp").exists());
        }
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 1);

        // Dropping without commit removes the temp file and never
        // touches the final path.
        let path2 = dir.join("dropped.jsonl");
        {
            let r = JsonlRecorder::create_atomic(path2.to_str().expect("utf8")).expect("create");
            r.record(&Event::new("a", "b", Level::Info));
        }
        assert!(!path2.exists());
        assert!(!path2.with_extension("jsonl.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorder_writes_lines_and_respects_max_level() {
        let buf: std::sync::Arc<Mutex<Vec<u8>>> = std::sync::Arc::default();
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let r = JsonlRecorder::new(Box::new(Shared(buf.clone()))).with_max_level(Level::Debug);
        assert!(r.enabled(Level::Debug));
        assert!(!r.enabled(Level::Trace));
        r.record(&Event::new("a", "kept", Level::Info));
        r.record(&Event::new("a", "dropped", Level::Trace));
        r.flush().expect("in-memory flush");
        let text = String::from_utf8(
            buf.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone(),
        )
        .expect("utf8");
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"kept\""));
    }
}
