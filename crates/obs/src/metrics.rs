//! End-of-run metric aggregation.
//!
//! [`MetricsRecorder`] is a [`Recorder`] that ignores point events and
//! folds the metric kinds into a [`MetricsSnapshot`]: counters sum,
//! gauges keep the last write, histograms sum element-wise. The
//! snapshot serializes to pretty JSON with sorted keys — suitable both
//! for `--metrics-out` and as a `BENCH_*.json` record.

use crate::event::{Event, Kind, Level, Value};
use crate::recorder::Recorder;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// An end-of-run aggregate of every metric event, keyed by
/// `scope.name`. All maps are ordered so [`MetricsSnapshot::to_json`]
/// is deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Free-form run identification (command, input, seed, jobs…).
    pub meta: BTreeMap<String, String>,
    /// Summed counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Element-wise-summed histograms.
    pub hists: BTreeMap<String, Vec<u64>>,
    /// Wall-clock measurements (kept apart from `gauges` so the
    /// deterministic part of two snapshots can be diffed directly).
    pub timing: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Sets a meta entry (run identification).
    pub fn set_meta(&mut self, key: &str, value: impl Into<String>) {
        self.meta.insert(key.to_string(), value.into());
    }

    /// Adds to a counter.
    pub fn add_counter(&mut self, key: &str, delta: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
    }

    /// Sets a gauge (last write wins).
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// Merges a histogram observation (element-wise sum; the stored
    /// histogram grows to the longer length).
    pub fn merge_hist(&mut self, key: &str, bins: &[u64]) {
        let slot = self.hists.entry(key.to_string()).or_default();
        if slot.len() < bins.len() {
            slot.resize(bins.len(), 0);
        }
        for (s, b) in slot.iter_mut().zip(bins) {
            *s += b;
        }
    }

    /// Sets a wall-clock measurement in milliseconds.
    pub fn set_timing(&mut self, key: &str, millis: u64) {
        self.timing.insert(key.to_string(), millis);
    }

    /// Renders the snapshot as pretty JSON with sorted keys. The
    /// `timing` section is last, mirroring the trace-line layout.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn section<V, F: Fn(&mut String, &V)>(
            out: &mut String,
            name: &str,
            map: &BTreeMap<String, V>,
            render: F,
            last: bool,
        ) {
            let _ = write!(out, "  \"{name}\": {{");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    ");
                push_str_json(out, k);
                out.push_str(": ");
                render(out, v);
            }
            if !map.is_empty() {
                out.push_str("\n  ");
            }
            out.push('}');
            if !last {
                out.push(',');
            }
            out.push('\n');
        }
        let mut out = String::from("{\n");
        section(
            &mut out,
            "meta",
            &self.meta,
            |o, v: &String| push_str_json(o, v),
            false,
        );
        section(
            &mut out,
            "counters",
            &self.counters,
            |o, v: &u64| {
                let _ = write!(o, "{v}");
            },
            false,
        );
        section(
            &mut out,
            "gauges",
            &self.gauges,
            |o, v: &f64| {
                if v.is_finite() {
                    let _ = write!(o, "{v}");
                } else {
                    o.push_str("null");
                }
            },
            false,
        );
        section(
            &mut out,
            "hists",
            &self.hists,
            |o, v: &Vec<u64>| {
                o.push('[');
                for (i, b) in v.iter().enumerate() {
                    if i > 0 {
                        o.push(',');
                    }
                    let _ = write!(o, "{b}");
                }
                o.push(']');
            },
            false,
        );
        section(
            &mut out,
            "timing",
            &self.timing,
            |o, v: &u64| {
                let _ = write!(o, "{v}");
            },
            true,
        );
        out.push('}');
        out.push('\n');
        out
    }
}

fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A [`Recorder`] that aggregates metric events into a
/// [`MetricsSnapshot`].
///
/// Point events are ignored except for their timing fields: a
/// `wall_ms`/`elapsed_ms` timing value on any recorded event is folded
/// into the snapshot's `timing` section under `scope.name`, so run
/// durations surface in `--metrics-out` without dedicated metric
/// events.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRecorder {
    /// An empty aggregator.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// Clones the current aggregate.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self, _level: Level) -> bool {
        // Metrics aggregation wants every level: a Trace-level counter
        // still counts.
        true
    }

    fn record(&self, event: &Event) {
        let key = format!("{}.{}", event.scope, event.name);
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &event.kind {
            Kind::Point => {}
            Kind::Counter(delta) => inner.add_counter(&key, *delta),
            Kind::Gauge(v) => inner.set_gauge(&key, *v),
            Kind::Hist(bins) => inner.merge_hist(&key, bins),
        }
        for (k, v) in &event.timing {
            if *k == "wall_ms" || *k == "elapsed_ms" {
                if let Value::U64(ms) = v {
                    inner.set_timing(&key, *ms);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_gauges_overwrite_hists_merge() {
        let m = MetricsRecorder::new();
        m.record(&Event::counter("fm", "moves", 10));
        m.record(&Event::counter("fm", "moves", 5));
        m.record(&Event::gauge("paper", "cost_k", 900.0));
        m.record(&Event::gauge("paper", "cost_k", 750.0));
        m.record(&Event::hist("paper", "devices", vec![1, 0]));
        m.record(&Event::hist("paper", "devices", vec![0, 2, 1]));
        let s = m.snapshot();
        assert_eq!(s.counters["fm.moves"], 15);
        assert_eq!(s.gauges["paper.cost_k"], 750.0);
        assert_eq!(s.hists["paper.devices"], vec![1, 2, 1]);
    }

    #[test]
    fn hist_merge_handles_mismatched_bin_counts() {
        let mut s = MetricsSnapshot::new();
        // Longer observation grows the stored histogram...
        s.merge_hist("h", &[1, 1]);
        s.merge_hist("h", &[0, 0, 0, 5]);
        assert_eq!(s.hists["h"], vec![1, 1, 0, 5]);
        // ...and a shorter one sums into the prefix without truncating.
        s.merge_hist("h", &[7]);
        assert_eq!(s.hists["h"], vec![8, 1, 0, 5]);
        // Empty observations still create (or keep) the entry.
        s.merge_hist("h", &[]);
        s.merge_hist("empty", &[]);
        assert_eq!(s.hists["h"], vec![8, 1, 0, 5]);
        assert_eq!(s.hists["empty"], Vec::<u64>::new());
    }

    #[test]
    fn gauge_last_write_wins_under_tee_and_buffer_replay() {
        use crate::recorder::{BufferRecorder, Tee};
        use std::sync::Arc;
        // A gauge teed to two sinks keeps the same final value in both.
        let a = Arc::new(MetricsRecorder::new());
        let b = Arc::new(MetricsRecorder::new());
        let tee = Tee::new().with(a.clone()).with(b.clone());
        tee.record(&Event::gauge("paper", "kbar", 0.5));
        tee.record(&Event::gauge("paper", "kbar", 0.25));
        assert_eq!(a.snapshot().gauges["paper.kbar"], 0.25);
        assert_eq!(b.snapshot().gauges["paper.kbar"], 0.25);
        // Buffered capture + ordered replay (the parallel-emitter
        // discipline) preserves write order, so last-write-wins gives
        // the same answer as direct recording.
        let buf = BufferRecorder::new();
        buf.record(&Event::gauge("paper", "kbar", 0.5));
        buf.record(&Event::gauge("paper", "kbar", 0.125));
        let replayed = MetricsRecorder::new();
        for e in buf.take() {
            replayed.record(&e);
        }
        assert_eq!(replayed.snapshot().gauges["paper.kbar"], 0.125);
    }

    #[test]
    fn timing_fields_fold_into_timing_section() {
        let m = MetricsRecorder::new();
        m.record(
            &Event::new("portfolio", "summary", Level::Info)
                .field("starts", 8u64)
                .timing("wall_ms", 42u64),
        );
        let s = m.snapshot();
        assert_eq!(s.timing["portfolio.summary"], 42);
        assert!(s.counters.is_empty(), "point events add no counters");
    }

    #[test]
    fn json_is_deterministic_and_sectioned() {
        let mut s = MetricsSnapshot::new();
        s.set_meta("cmd", "kway");
        s.set_meta("seed", "7");
        s.add_counter("fm.moves", 15);
        s.set_gauge("paper.kbar", 0.25);
        s.merge_hist("paper.devices", &[1, 2]);
        s.set_timing("run.wall_ms", 42);
        let json = s.to_json();
        assert_eq!(
            json,
            "{\n  \"meta\": {\n    \"cmd\": \"kway\",\n    \"seed\": \"7\"\n  },\n  \"counters\": {\n    \"fm.moves\": 15\n  },\n  \"gauges\": {\n    \"paper.kbar\": 0.25\n  },\n  \"hists\": {\n    \"paper.devices\": [1,2]\n  },\n  \"timing\": {\n    \"run.wall_ms\": 42\n  }\n}\n"
        );
        // Re-rendering is byte-stable.
        assert_eq!(json, s.to_json());
    }

    #[test]
    fn empty_snapshot_renders_empty_sections() {
        let json = MetricsSnapshot::new().to_json();
        assert_eq!(
            json,
            "{\n  \"meta\": {},\n  \"counters\": {},\n  \"gauges\": {},\n  \"hists\": {},\n  \"timing\": {}\n}\n"
        );
    }
}
