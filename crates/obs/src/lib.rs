//! # netpart-obs — std-only structured observability
//!
//! A zero-registry-dependency telemetry layer for the netlist
//! partitioner: levelled [`Event`]s (points, counters, gauges,
//! histograms) flow through the [`Recorder`] trait into composable
//! sinks — [`JsonlRecorder`] (deterministic `--trace-out` run traces),
//! [`StderrRecorder`] (`-v`/`-vv` human-readable lines),
//! [`MetricsRecorder`] (end-of-run `--metrics-out` snapshots),
//! [`BufferRecorder`] (in-memory capture for deterministic replay of
//! parallel work), and [`Tee`] (fan-out). [`NOOP`] makes the disabled
//! path near-free: one virtual bool probe per instrumentation site.
//!
//! On top of the event stream sit three operational layers:
//!
//! * [`Span`] guards plus the [`Profile`] aggregator and
//!   [`ProfileRecorder`] fold paired `span.enter`/`span.exit` events
//!   into an inclusive/exclusive self-time tree (`--profile-out`);
//! * [`MetricsRegistry`] keeps live service counters, gauges and
//!   log-bucketed latency histograms with Prometheus text exposition
//!   (`<spool>/metrics.prom`, `netpart serve-status`);
//! * [`trace`] validates, summarizes and diff-checks trace documents
//!   (`netpart trace <summarize|validate|diff>`).
//!
//! ## Determinism contract
//!
//! For a fixed seed, the trace stream is byte-identical at every
//! `--jobs` level once scheduling data is stripped:
//!
//! 1. wall-clock/duration/worker fields live in an event's `timing`
//!    list, serialized last on each JSONL line as a `"timing"`
//!    sub-object ([`jsonl::strip_timing`] removes it);
//! 2. events whose *presence or order* is scheduling-dependent use the
//!    reserved scope [`TIMING_SCOPE`] and are dropped whole-line;
//! 3. parallel emitters buffer per-unit events in a [`BufferRecorder`]
//!    and replay them into the real sink in a fixed order after
//!    joining.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use event::{Event, Kind, Level, Value, TIMING_SCOPE};
pub use jsonl::{strip_timing, to_json_line, to_jsonl, JsonlRecorder};
pub use metrics::{MetricsRecorder, MetricsSnapshot};
pub use profile::{Profile, ProfileNode, ProfileRecorder};
pub use recorder::{BufferRecorder, NoopRecorder, Recorder, Span, StderrRecorder, Tee, NOOP};
pub use registry::{
    parse_prometheus, quantile_of, LatencyHist, MetricsRegistry, PromText, QuantileBound,
};
pub use trace::{diff_stripped, parse_json, scan_trace, StripDiff, TraceScan, TraceSummary};
