//! The deterministic parallel portfolio: multi-start FM and k-way
//! carving fanned across `std::thread` workers.
//!
//! # Determinism model
//!
//! Every unit of work (a *start*: one seeded bipartition, or one k-way
//! carving *task*) is atomic — it either runs to completion and is
//! recorded, or it is excluded entirely. Workers claim starts from an
//! ascending atomic counter, so start `i` always begins no later than
//! any start `j > i` is claimed; results land in index-addressed slots
//! and the winner is reduced in **fixed seed order** (lowest `(cost,
//! index)` wins), never in arrival order. Three consequences:
//!
//! * **Fault-free, unbudgeted runs** record all `n` starts and are
//!   byte-identical for every `--jobs` level: the recorded set and the
//!   reduction are both independent of thread interleaving.
//! * **Zero-wall-budget runs** record exactly the guaranteed first
//!   start (whose clock carries no deadline) at every `--jobs` level —
//!   degraded, and still byte-identical.
//! * **Mid-flight wall trips** are inherently timing-dependent: which
//!   starts finished before the deadline varies. The engine still
//!   guarantees that every *recorded* start is bitwise-deterministic
//!   (per-start clocks, no shared move pool) and that the reduction
//!   over the recorded set follows fixed seed order — the strongest
//!   guarantee a physical clock allows.
//!
//! The shared [`Incumbent`] prunes only on *perfect* (zero-cost)
//! incumbents: the claim counter is ascending, so when start `j`
//! publishes cost 0 every unclaimed index exceeds `j` and can at best
//! tie — and ties break toward the lower index. Recorded results above
//! the perfect index are discarded after the join, making even the
//! early-exit set identical across `--jobs` levels.

use crate::hash::{ContentHash, Fnv1a};
use crate::incumbent::Incumbent;
use netpart_core::{
    kway_partition_with_clock, run_start, BipartitionConfig, BipartitionResult, Budget,
    CancelToken, Degradation, KWayConfig, KWayResult, PartitionError, RunClock, StopReason,
};
use netpart_hypergraph::Hypergraph;
use netpart_multilevel::{ml_kway_partition_with_clock, ml_run_start, MultilevelConfig};
use netpart_obs::{BufferRecorder, Event, Level, NoopRecorder, Recorder, Span, TIMING_SCOPE};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shareable no-op recorder for the untraced entry points.
fn noop_recorder() -> Arc<dyn Recorder> {
    Arc::new(NoopRecorder)
}

/// Emits the scheduling-timeline claim event for one worker picking up
/// one unit of work. Reserved-scope: stripped whole-line by determinism
/// checks.
fn record_claim(recorder: &dyn Recorder, worker: usize, unit: usize) {
    if recorder.enabled(Level::Debug) {
        recorder.record(
            &Event::new(TIMING_SCOPE, "claim", Level::Debug)
                .field("worker", worker)
                .field("unit", unit),
        );
    }
}

/// Emits the scheduling-timeline per-worker summary. Reserved-scope.
fn record_worker(recorder: &dyn Recorder, stats: &WorkerStats) {
    if recorder.enabled(Level::Debug) {
        recorder.record(
            &Event::new(TIMING_SCOPE, "worker", Level::Debug)
                .field("worker", stats.worker)
                .field("starts", stats.starts)
                .field("passes", stats.passes)
                .field("moves", stats.moves)
                .field("cutoff_hits", stats.cutoff_hits)
                .field("wall_ms", stats.wall_ms),
        );
    }
}

/// Work observed by one portfolio worker thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Starts (or k-way tasks) this worker ran to completion or
    /// truncation.
    pub starts: usize,
    /// FM passes executed across those starts.
    pub passes: u64,
    /// FM moves applied across those starts.
    pub moves: u64,
    /// Wall time spent inside starts, in milliseconds.
    pub wall_ms: u64,
    /// Times this worker stopped early — a shared-deadline or
    /// cancellation skip, an incumbent cutoff, or an injected worker
    /// fault.
    pub cutoff_hits: u64,
}

/// One recorded start of a bipartition portfolio.
#[derive(Clone, Debug)]
pub struct StartResult {
    /// The start index (seed offset from the base configuration).
    pub index: usize,
    /// The completed bipartition.
    pub result: BipartitionResult,
}

/// The outcome of [`portfolio_bipartition`].
#[derive(Clone, Debug)]
pub struct PortfolioResult {
    /// Recorded starts in ascending index order. Truncated (cancelled
    /// or deadline-tripped) starts other than the guaranteed first are
    /// excluded — see the module docs for the determinism model.
    pub results: Vec<StartResult>,
    /// Position in [`results`](Self::results) of the winning start.
    pub best_pos: usize,
    /// How the portfolio degraded from the request, if at all.
    pub degradation: Degradation,
    /// Per-worker statistics, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Total portfolio wall time.
    pub wall: Duration,
}

impl PortfolioResult {
    /// The winning run.
    pub fn best(&self) -> &BipartitionResult {
        &self.results[self.best_pos].result
    }

    /// The winning start's index (its seed offset).
    pub fn best_start(&self) -> usize {
        self.results[self.best_pos].index
    }

    /// The smallest cut over recorded balanced runs.
    pub fn best_cut(&self) -> usize {
        self.best().cut
    }

    /// Serializes the incumbent (winning start) as an independently
    /// checkable certificate, stamped with the winning start's derived
    /// seed. `None` when the winner exported no placement.
    pub fn certificate(
        &self,
        hg: &Hypergraph,
        cfg: &BipartitionConfig,
    ) -> Option<netpart_verify::SolutionCertificate> {
        self.best()
            .certificate(hg, cfg.seed.wrapping_add(self.best_start() as u64))
    }

    /// The mean cut over recorded balanced runs.
    pub fn avg_cut(&self) -> f64 {
        let balanced: Vec<_> = self.results.iter().filter(|s| s.result.balanced).collect();
        if balanced.is_empty() {
            return f64::NAN;
        }
        balanced.iter().map(|s| s.result.cut as f64).sum::<f64>() / balanced.len() as f64
    }

    /// The mean number of replicated cells over recorded balanced runs.
    pub fn avg_replicated(&self) -> f64 {
        let balanced: Vec<_> = self.results.iter().filter(|s| s.result.balanced).collect();
        if balanced.is_empty() {
            return f64::NAN;
        }
        balanced
            .iter()
            .map(|s| s.result.replicated_cells as f64)
            .sum::<f64>()
            / balanced.len() as f64
    }

    /// A stable digest of the complete recorded outcome — every start's
    /// cut, areas, replication count, stop reason and full placement,
    /// plus the winner. Two portfolio runs are byte-identical exactly
    /// when their fingerprints agree, which is what the `--jobs`
    /// determinism tests pin.
    pub fn fingerprint(&self, hg: &Hypergraph) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.best_pos);
        h.write_usize(self.results.len());
        for s in &self.results {
            h.write_usize(s.index);
            let r = &s.result;
            h.write_usize(r.cut);
            h.write_u64(r.areas[0]);
            h.write_u64(r.areas[1]);
            h.write_usize(r.replicated_cells);
            h.write_usize(r.passes);
            h.write_u8(u8::from(r.balanced));
            h.write_u8(match r.stop {
                StopReason::Converged => 0,
                StopReason::PassLimit => 1,
                StopReason::BudgetExhausted => 2,
                StopReason::FaultInjected => 3,
                StopReason::Cancelled => 4,
            });
            match &r.placement {
                None => h.write_u8(0),
                Some(p) => {
                    h.write_u8(1);
                    for c in hg.cell_ids() {
                        let copies = p.copies(c);
                        h.write_usize(copies.len());
                        for copy in copies {
                            h.write_u64(u64::from(copy.part.0));
                            h.write_u32(copy.outputs);
                        }
                    }
                }
            }
        }
        h.finish()
    }
}

/// What one worker decided about one claimed start.
enum StartOutcome {
    /// Ran to completion (or deterministic per-start truncation):
    /// recorded.
    Recorded(BipartitionResult),
    /// Truncated by the shared deadline or a cancellation: excluded.
    Truncated,
}

/// Caps the packable start index (the [`Incumbent`] packs indices into
/// 32 bits).
const MAX_STARTS: usize = u32::MAX as usize >> 1;

fn shared_deadline(budget: &Budget) -> Option<Instant> {
    budget
        .wall_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms))
}

/// Runs `n` seeded bipartition starts (seeds `base.seed + 0..n`) across
/// `jobs` worker threads and reduces the winner in fixed seed order.
///
/// `base.budget.wall_ms` bounds the *whole portfolio* via a deadline
/// shared by every worker; `base.budget.max_moves` and `base.fault`
/// apply to each start individually (a shared move pool would make the
/// recorded set depend on thread interleaving). The first start runs
/// without the wall deadline, so a usable solution exists whenever one
/// is reachable at all — the same guarantee
/// [`run_many`](netpart_core::run_many) makes.
///
/// # Errors
///
/// * [`PartitionError::InvalidInput`] if `n == 0`, `n` exceeds the
///   2³¹-start cap, or the hypergraph has no cells.
/// * [`PartitionError::BudgetExhausted`] if the budget (or a worker
///   fault) tripped before any recorded run achieved balance.
/// * [`PartitionError::InfeasibleLibrary`] if every recorded run
///   completed but none satisfied the area bounds.
pub fn portfolio_bipartition(
    hg: &Hypergraph,
    base: &BipartitionConfig,
    n: usize,
    jobs: usize,
) -> Result<PortfolioResult, PartitionError> {
    portfolio_bipartition_traced(hg, base, n, jobs, &noop_recorder())
}

/// [`portfolio_bipartition`] with telemetry: per-start events (FM pass
/// trajectories, run summaries) are buffered on each worker and
/// **replayed into `recorder` in ascending start order after the
/// join**, so the deterministic part of the trace is identical at every
/// `jobs` level. Live scheduling events (claims, worker summaries) go
/// straight to the recorder under the reserved
/// [`TIMING_SCOPE`] and are dropped by determinism checks.
pub fn portfolio_bipartition_traced(
    hg: &Hypergraph,
    base: &BipartitionConfig,
    n: usize,
    jobs: usize,
    recorder: &Arc<dyn Recorder>,
) -> Result<PortfolioResult, PartitionError> {
    portfolio_bipartition_ml_traced(hg, base, n, jobs, None, recorder)
}

/// [`portfolio_bipartition_traced`] with an optional multilevel
/// V-cycle wrapped around every start: each start coarsens, partitions
/// the coarsest graph with its derived seed, and refines up —
/// [`ml_run_start`] derives seeds exactly like the flat
/// [`run_start`], so the claim/record/reduce machinery (and with it
/// jobs-invariance) is untouched. `ml = None` (or an `ml` whose chain
/// comes up empty for this circuit) is the flat portfolio verbatim.
pub fn portfolio_bipartition_ml_traced(
    hg: &Hypergraph,
    base: &BipartitionConfig,
    n: usize,
    jobs: usize,
    ml: Option<&MultilevelConfig>,
    recorder: &Arc<dyn Recorder>,
) -> Result<PortfolioResult, PartitionError> {
    if n == 0 {
        return Err(PartitionError::invalid_input(
            "portfolio needs at least one start",
        ));
    }
    if n > MAX_STARTS {
        return Err(PartitionError::invalid_input(format!(
            "portfolio start count {n} exceeds the {MAX_STARTS} cap"
        )));
    }
    if hg.n_cells() == 0 {
        return Err(PartitionError::invalid_input(
            "cannot partition an empty hypergraph",
        ));
    }
    let t0 = Instant::now();
    let jobs = jobs.clamp(1, n);
    let deadline = shared_deadline(&base.budget);
    // Per-start budgets carry the move limit but not the wall limit
    // (the wall limit became the shared deadline above).
    let per_start = Budget {
        wall_ms: None,
        max_moves: base.budget.max_moves,
    };
    let cancel = CancelToken::new();
    let incumbent = Incumbent::new();
    let next = AtomicUsize::new(0);
    let budget_seen = AtomicBool::new(false);
    let fault_seen = AtomicBool::new(false);
    type BipartitionSlot = Option<(StartOutcome, Vec<Event>)>;
    let slots: Vec<Mutex<BipartitionSlot>> = (0..n).map(|_| Mutex::new(None)).collect();

    let workers: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let cancel = cancel.clone();
                let (incumbent, next, slots) = (&incumbent, &next, &slots);
                let (budget_seen, fault_seen) = (&budget_seen, &fault_seen);
                let per_start = &per_start;
                let recorder = &recorder;
                scope.spawn(move || {
                    // Worker lifecycle span: presence and interleaving
                    // depend on scheduling, so it rides the reserved
                    // timing scope and is stripped whole-line.
                    let _worker_span =
                        Span::enter_with(recorder.as_ref(), TIMING_SCOPE, "worker", "worker", w);
                    let mut stats = WorkerStats {
                        worker: w,
                        ..WorkerStats::default()
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        record_claim(recorder.as_ref(), w, i);
                        if i > 0 {
                            // A perfect incumbent makes every unclaimed
                            // (higher) index provably useless.
                            if incumbent.is_perfect() {
                                stats.cutoff_hits += 1;
                                break;
                            }
                            if cancel.is_cancelled() {
                                stats.cutoff_hits += 1;
                                break;
                            }
                            if deadline.is_some_and(|d| Instant::now() >= d) {
                                budget_seen.store(true, Ordering::Release);
                                cancel.cancel();
                                stats.cutoff_hits += 1;
                                break;
                            }
                        }
                        if base.fault.kill_start == Some(i as u64) {
                            // The worker "dies" before running the start;
                            // the start is lost, siblings carry on.
                            fault_seen.store(true, Ordering::Release);
                            stats.cutoff_hits += 1;
                            break;
                        }
                        let buffer: Arc<BufferRecorder> =
                            Arc::new(BufferRecorder::mirroring(recorder.as_ref()));
                        let clock = if i == 0 {
                            RunClock::with_shared(per_start, &base.fault, None, None)
                        } else {
                            RunClock::with_shared(
                                per_start,
                                &base.fault,
                                deadline,
                                Some(cancel.clone()),
                            )
                        }
                        .with_recorder(buffer.clone());
                        let run_t0 = Instant::now();
                        let panic_here = base.fault.panic_in_worker == Some(i as u64);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            assert!(!panic_here, "injected worker panic at start {i}");
                            match ml {
                                Some(m) => ml_run_start(hg, base, m, i as u64, &clock),
                                None => run_start(hg, base, i as u64, &clock),
                            }
                        }));
                        stats.moves += clock.moves();
                        stats.wall_ms += run_t0.elapsed().as_millis() as u64;
                        let res = match outcome {
                            Ok(res) => res,
                            Err(_) => {
                                // A panicking worker thread is dead; the
                                // portfolio records the loss and joins
                                // cleanly.
                                fault_seen.store(true, Ordering::Release);
                                stats.cutoff_hits += 1;
                                break;
                            }
                        };
                        stats.passes += res.passes as u64;
                        stats.starts += 1;
                        // A BudgetExhausted stop can come from the shared
                        // wall deadline (interleaving-dependent) or the
                        // per-start move limit (deterministic); tell them
                        // apart by whether the move limit was reached —
                        // `tick_move` checks the move limit first, so a
                        // move-limit trip always shows the full count.
                        let wall_trip = res.stop == StopReason::BudgetExhausted
                            && deadline.is_some()
                            && i > 0
                            && per_start.max_moves.is_none_or(|m| clock.moves() < m);
                        let outcome = match res.stop {
                            // Shared-deadline or cancellation truncation
                            // is interleaving-dependent: exclude (except
                            // the guaranteed first start, which carries
                            // neither).
                            StopReason::BudgetExhausted if wall_trip => {
                                budget_seen.store(true, Ordering::Release);
                                cancel.cancel();
                                stats.cutoff_hits += 1;
                                StartOutcome::Truncated
                            }
                            StopReason::Cancelled => {
                                stats.cutoff_hits += 1;
                                StartOutcome::Truncated
                            }
                            stop => {
                                // Per-start move budgets and fault plans
                                // trip at deterministic points: recorded.
                                if stop == StopReason::BudgetExhausted {
                                    budget_seen.store(true, Ordering::Release);
                                }
                                if stop == StopReason::FaultInjected {
                                    fault_seen.store(true, Ordering::Release);
                                }
                                if res.balanced {
                                    incumbent.offer(res.cut as u64, i);
                                }
                                StartOutcome::Recorded(res)
                            }
                        };
                        if let Ok(mut slot) = slots[i].lock() {
                            *slot = Some((outcome, buffer.take()));
                        }
                    }
                    record_worker(recorder.as_ref(), &stats);
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    // Deterministic reduction in fixed seed order.
    let mut recorded: Vec<(StartResult, Vec<Event>)> = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let outcome = slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((StartOutcome::Recorded(result), events)) = outcome {
            recorded.push((StartResult { index: i, result }, events));
        }
    }
    // Discard anything past a perfect winner, so the early-exit set is
    // jobs-invariant (starts past the winner were provably useless).
    let perfect_cutoff = recorded
        .iter()
        .find(|(s, _)| s.result.balanced && s.result.cut == 0)
        .map(|(s, _)| s.index);
    let requested = match perfect_cutoff {
        Some(j) => {
            recorded.retain(|(s, _)| s.index <= j);
            recorded.len()
        }
        None => n,
    };

    // Deterministic trace replay: now that the recorded set is final
    // and jobs-invariant, emit each start's header, its buffered
    // events, and the incumbent trajectory in ascending index order —
    // exactly the sequence a jobs=1 run produces.
    if recorder.enabled(Level::Info) {
        recorder.record(
            &Event::new("portfolio", "begin", Level::Info)
                .field("kind", "bipartition")
                .field("starts", n)
                .timing("jobs", jobs),
        );
    }
    let mut incumbent_cut: Option<usize> = None;
    let mut results: Vec<StartResult> = Vec::with_capacity(recorded.len());
    for (s, events) in recorded {
        if recorder.enabled(Level::Info) {
            recorder.record(
                &Event::new("portfolio", "start", Level::Info)
                    .field("index", s.index)
                    .field("cut", s.result.cut)
                    .field("balanced", s.result.balanced)
                    .field("replicated", s.result.replicated_cells)
                    .field("passes", s.result.passes)
                    .field("stop", format!("{:?}", s.result.stop)),
            );
        }
        for e in &events {
            recorder.record(e);
        }
        if s.result.balanced && incumbent_cut.is_none_or(|c| s.result.cut < c) {
            incumbent_cut = Some(s.result.cut);
            if recorder.enabled(Level::Info) {
                recorder.record(
                    &Event::new("portfolio", "incumbent", Level::Info)
                        .field("index", s.index)
                        .field("cut", s.result.cut),
                );
                recorder.record(&Event::gauge("portfolio", "best_cut", s.result.cut as f64));
            }
        }
        results.push(s);
    }

    let degradation = Degradation {
        requested,
        completed: results.len(),
        budget_exhausted: budget_seen.load(Ordering::Acquire),
        fault_injected: fault_seen.load(Ordering::Acquire),
        relaxations: Vec::new(),
    };
    let best_pos = results
        .iter()
        .enumerate()
        .filter(|(_, s)| s.result.balanced)
        .min_by_key(|(_, s)| (s.result.cut, s.index))
        .map(|(pos, _)| pos);
    if recorder.enabled(Level::Info) {
        let mut e = Event::new("portfolio", "summary", Level::Info)
            .field("recorded", results.len())
            .field("requested", requested)
            .field("budget_exhausted", degradation.budget_exhausted)
            .field("fault_injected", degradation.fault_injected);
        if let Some(bp) = best_pos {
            e = e
                .field("best_index", results[bp].index)
                .field("best_cut", results[bp].result.cut);
        }
        recorder.record(
            &e.timing("wall_ms", t0.elapsed().as_millis() as u64)
                .timing("jobs", jobs),
        );
    }
    match best_pos {
        Some(best_pos) => Ok(PortfolioResult {
            results,
            best_pos,
            degradation,
            workers,
            wall: t0.elapsed(),
        }),
        None if degradation.budget_exhausted || degradation.fault_injected => {
            Err(PartitionError::BudgetExhausted {
                budget: if degradation.fault_injected {
                    "injected fault".into()
                } else {
                    base.budget.describe()
                },
                completed: degradation.completed,
            })
        }
        None => Err(PartitionError::InfeasibleLibrary {
            reason: format!(
                "no run satisfied the area bounds [{:?}..{:?}]",
                base.min_area, base.max_area
            ),
            attempts: degradation.completed,
        }),
    }
}

/// The outcome of [`portfolio_kway`].
#[derive(Clone, Debug)]
pub struct KWayPortfolioResult {
    /// The winning task's result (reduced by `(total cost, average IOB
    /// utilization, task index)`).
    pub result: KWayResult,
    /// The winning task's index.
    pub winner: usize,
    /// Tasks requested.
    pub tasks: usize,
    /// Tasks that produced a feasible result.
    pub feasible_tasks: usize,
    /// Whether the escalation rescue phase (see below) produced the
    /// winner.
    pub rescued: bool,
    /// Per-worker statistics, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Total portfolio wall time.
    pub wall: Duration,
}

impl KWayPortfolioResult {
    /// Serializes the winning task's result as an independently
    /// checkable certificate. `cfg` is the base configuration handed to
    /// [`portfolio_kway`]; the certificate is stamped with the winning
    /// task's derived seed and embeds the library the winner was
    /// actually judged against (floor-relaxed if escalation relaxed it).
    pub fn certificate(
        &self,
        hg: &Hypergraph,
        cfg: &KWayConfig,
    ) -> netpart_verify::SolutionCertificate {
        self.result.certificate(
            hg,
            &cfg.library,
            cfg.seed.wrapping_add(self.winner as u64),
        )
    }
}

/// The task-local configuration of k-way portfolio task `t` of `tasks`:
/// a derived seed and a proportional share of the candidate/attempt
/// pools. Depends only on `(cfg, t, tasks)` — never on `jobs` — so the
/// task set is identical at every thread count.
fn kway_task_config(cfg: &KWayConfig, t: usize, tasks: usize, escalate: bool) -> KWayConfig {
    let mut task = cfg.clone();
    task.seed = cfg.seed.wrapping_add(t as u64);
    task.candidates = cfg.candidates.div_ceil(tasks).max(1);
    task.max_attempts = cfg.max_attempts.div_ceil(tasks).max(1);
    task.escalate = escalate;
    task
}

struct KWayPhaseOutcome {
    results: Vec<(usize, KWayResult)>,
    errors: Vec<(usize, PartitionError)>,
    /// Buffered per-task telemetry, `(task, events)`, for every task
    /// whose slot was filled — replayed by the caller in task order.
    events: Vec<(usize, Vec<Event>)>,
    workers: Vec<WorkerStats>,
    budget_seen: bool,
    fault_seen: bool,
}

/// Runs every task of one phase across `jobs` workers. Task 0 runs
/// without the shared wall deadline (the first-start guarantee); the
/// rest drain through it and the cancel token.
#[allow(clippy::too_many_arguments)]
fn kway_phase(
    hg: &Hypergraph,
    cfg: &KWayConfig,
    tasks: usize,
    jobs: usize,
    escalate: bool,
    ml: Option<&MultilevelConfig>,
    deadline: Option<Instant>,
    recorder: &Arc<dyn Recorder>,
) -> KWayPhaseOutcome {
    let per_task = Budget {
        wall_ms: None,
        max_moves: cfg.budget.max_moves,
    };
    let cancel = CancelToken::new();
    let next = AtomicUsize::new(0);
    let budget_seen = AtomicBool::new(false);
    let fault_seen = AtomicBool::new(false);
    type KWaySlot = Option<(Result<KWayResult, PartitionError>, Vec<Event>)>;
    let slots: Vec<Mutex<KWaySlot>> = (0..tasks).map(|_| Mutex::new(None)).collect();

    let workers: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs.clamp(1, tasks))
            .map(|w| {
                let cancel = cancel.clone();
                let (next, slots) = (&next, &slots);
                let (budget_seen, fault_seen) = (&budget_seen, &fault_seen);
                let per_task = &per_task;
                let recorder = &recorder;
                scope.spawn(move || {
                    // Worker lifecycle span: presence and interleaving
                    // depend on scheduling, so it rides the reserved
                    // timing scope and is stripped whole-line.
                    let _worker_span =
                        Span::enter_with(recorder.as_ref(), TIMING_SCOPE, "worker", "worker", w);
                    let mut stats = WorkerStats {
                        worker: w,
                        ..WorkerStats::default()
                    };
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tasks {
                            break;
                        }
                        record_claim(recorder.as_ref(), w, t);
                        if t > 0 {
                            if cancel.is_cancelled() {
                                stats.cutoff_hits += 1;
                                break;
                            }
                            if deadline.is_some_and(|d| Instant::now() >= d) {
                                budget_seen.store(true, Ordering::Release);
                                cancel.cancel();
                                stats.cutoff_hits += 1;
                                break;
                            }
                        }
                        if cfg.fault.kill_start == Some(t as u64) {
                            fault_seen.store(true, Ordering::Release);
                            stats.cutoff_hits += 1;
                            break;
                        }
                        let task_cfg = kway_task_config(cfg, t, tasks, escalate);
                        let buffer: Arc<BufferRecorder> =
                            Arc::new(BufferRecorder::mirroring(recorder.as_ref()));
                        let clock = if t == 0 {
                            RunClock::with_shared(per_task, &cfg.fault, None, None)
                        } else {
                            RunClock::with_shared(
                                per_task,
                                &cfg.fault,
                                deadline,
                                Some(cancel.clone()),
                            )
                        }
                        .with_recorder(buffer.clone());
                        let run_t0 = Instant::now();
                        let panic_here = cfg.fault.panic_in_worker == Some(t as u64);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            assert!(!panic_here, "injected worker panic at task {t}");
                            match ml {
                                Some(m) => ml_kway_partition_with_clock(hg, &task_cfg, m, &clock),
                                None => kway_partition_with_clock(hg, &task_cfg, &clock),
                            }
                        }));
                        stats.moves += clock.moves();
                        stats.wall_ms += run_t0.elapsed().as_millis() as u64;
                        let res = match outcome {
                            Ok(res) => res,
                            Err(_) => {
                                fault_seen.store(true, Ordering::Release);
                                stats.cutoff_hits += 1;
                                break;
                            }
                        };
                        stats.starts += 1;
                        // Like the bipartition phase: a per-task move
                        // limit trips at a deterministic point, so
                        // sibling tasks (which carry their own limits)
                        // must still run for jobs-level invariance —
                        // only the interleaving-dependent shared wall
                        // deadline cancels them. `tick_move` checks the
                        // move limit first, so a move-limit trip always
                        // shows the full count.
                        let wall_trip = deadline.is_some()
                            && t > 0
                            && per_task.max_moves.is_none_or(|m| clock.moves() < m);
                        match &res {
                            Ok(r) => {
                                if r.degradation.budget_exhausted {
                                    budget_seen.store(true, Ordering::Release);
                                    if wall_trip {
                                        cancel.cancel();
                                    }
                                }
                                if r.degradation.fault_injected {
                                    fault_seen.store(true, Ordering::Release);
                                }
                            }
                            Err(PartitionError::BudgetExhausted { budget, .. }) => {
                                stats.cutoff_hits += 1;
                                if budget == "injected fault" {
                                    fault_seen.store(true, Ordering::Release);
                                } else {
                                    budget_seen.store(true, Ordering::Release);
                                    if wall_trip {
                                        cancel.cancel();
                                    }
                                }
                            }
                            Err(_) => {}
                        }
                        if let Ok(mut slot) = slots[t].lock() {
                            *slot = Some((res, buffer.take()));
                        }
                    }
                    record_worker(recorder.as_ref(), &stats);
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    let mut results = Vec::new();
    let mut errors = Vec::new();
    let mut events = Vec::new();
    for (t, slot) in slots.into_iter().enumerate() {
        match slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            Some((Ok(r), evs)) => {
                results.push((t, r));
                events.push((t, evs));
            }
            Some((Err(e), evs)) => {
                errors.push((t, e));
                events.push((t, evs));
            }
            None => {}
        }
    }
    KWayPhaseOutcome {
        results,
        errors,
        events,
        workers,
        budget_seen: budget_seen.load(Ordering::Acquire),
        fault_seen: fault_seen.load(Ordering::Acquire),
    }
}

fn merge_worker_stats(into: &mut Vec<WorkerStats>, from: Vec<WorkerStats>) {
    for f in from {
        match into.iter_mut().find(|s| s.worker == f.worker) {
            Some(s) => {
                s.starts += f.starts;
                s.passes += f.passes;
                s.moves += f.moves;
                s.wall_ms += f.wall_ms;
                s.cutoff_hits += f.cutoff_hits;
            }
            None => into.push(f),
        }
    }
}

/// Runs `tasks` independent k-way carving tasks (derived seeds, split
/// candidate pools) across `jobs` workers and reduces the cheapest
/// feasible result in fixed task order.
///
/// Escalation is two-phase: every task first runs with the ladder
/// *disabled* — a sibling's feasible result (the shared incumbent of
/// this portfolio) makes climbing unnecessary, and racy ladder climbs
/// would be interleaving-dependent. Only when *no* task finds anything
/// feasible (and no budget tripped) does a rescue phase re-run the
/// tasks with the full ladder enabled. The task set depends only on
/// `(cfg, tasks)`, so for a fixed `tasks` the reduction is identical at
/// every `jobs` level.
///
/// # Errors
///
/// Mirrors [`kway_partition`](netpart_core::kway_partition): invalid
/// input, budget exhaustion before any feasible result, or
/// infeasibility after the rescue phase.
pub fn portfolio_kway(
    hg: &Hypergraph,
    cfg: &KWayConfig,
    tasks: usize,
    jobs: usize,
) -> Result<KWayPortfolioResult, PartitionError> {
    portfolio_kway_traced(hg, cfg, tasks, jobs, &noop_recorder())
}

/// A short deterministic label for a task's typed error, for trace
/// headers.
fn error_label(e: &PartitionError) -> &'static str {
    match e {
        PartitionError::InvalidInput { .. } => "invalid_input",
        PartitionError::InfeasibleLibrary { .. } => "infeasible",
        PartitionError::BudgetExhausted { .. } => "budget_exhausted",
        PartitionError::InternalInvariant { .. } => "internal",
    }
}

/// Replays one k-way phase's buffered telemetry in ascending task
/// order: a `portfolio.task` header, the task's buffered events, and
/// the incumbent trajectory (with the paper-metric gauges) whenever the
/// running best improves. Returns with `incumbent` updated.
fn replay_kway_phase(
    recorder: &dyn Recorder,
    phase: &KWayPhaseOutcome,
    phase_name: &'static str,
    lib: &netpart_fpga::DeviceLibrary,
    incumbent: &mut Option<(u64, f64)>,
) {
    for (t, events) in &phase.events {
        if recorder.enabled(Level::Info) {
            let mut e = Event::new("portfolio", "task", Level::Info)
                .field("task", *t)
                .field("phase", phase_name);
            if let Some((_, r)) = phase.results.iter().find(|(rt, _)| rt == t) {
                e = e
                    .field("status", "ok")
                    .field("cost", r.evaluation.total_cost)
                    .field("kbar", r.evaluation.avg_iob_util)
                    .field("k", r.evaluation.k())
                    .field("attempts", r.attempts)
                    .field("feasible", r.feasible_found);
            } else if let Some((_, err)) = phase.errors.iter().find(|(et, _)| et == t) {
                e = e.field("status", error_label(err));
            }
            recorder.record(&e);
        }
        for ev in events {
            recorder.record(ev);
        }
        if let Some((_, r)) = phase.results.iter().find(|(rt, _)| rt == t) {
            let key = (r.evaluation.total_cost, r.evaluation.avg_iob_util);
            if incumbent.is_none_or(|best| key < best) {
                *incumbent = Some(key);
                if recorder.enabled(Level::Info) {
                    recorder.record(
                        &Event::new("portfolio", "incumbent", Level::Info)
                            .field("task", *t)
                            .field("cost", r.evaluation.total_cost)
                            .field("kbar", r.evaluation.avg_iob_util)
                            .field("k", r.evaluation.k()),
                    );
                    netpart_core::record_paper_gauges(recorder, &r.evaluation, lib);
                }
            }
        }
    }
}

/// [`portfolio_kway`] with telemetry, under the same replay contract as
/// [`portfolio_bipartition_traced`]: per-task events are buffered on
/// the workers and replayed in ascending task order after each phase
/// joins, so fixed-seed traces are identical at every `jobs` level
/// (wall-budgeted runs excepted — which tasks survive a mid-flight
/// deadline is inherently timing-dependent, exactly as for results).
pub fn portfolio_kway_traced(
    hg: &Hypergraph,
    cfg: &KWayConfig,
    tasks: usize,
    jobs: usize,
    recorder: &Arc<dyn Recorder>,
) -> Result<KWayPortfolioResult, PartitionError> {
    portfolio_kway_ml_traced(hg, cfg, tasks, jobs, None, recorder)
}

/// [`portfolio_kway_traced`] with an optional multilevel V-cycle
/// wrapped around every carving task (see
/// [`portfolio_bipartition_ml_traced`]). `ml = None` is the flat
/// portfolio verbatim; task seeding, phases and the reduction are
/// identical either way.
pub fn portfolio_kway_ml_traced(
    hg: &Hypergraph,
    cfg: &KWayConfig,
    tasks: usize,
    jobs: usize,
    ml: Option<&MultilevelConfig>,
    recorder: &Arc<dyn Recorder>,
) -> Result<KWayPortfolioResult, PartitionError> {
    if tasks == 0 {
        return Err(PartitionError::invalid_input(
            "portfolio needs at least one task",
        ));
    }
    if tasks > MAX_STARTS {
        return Err(PartitionError::invalid_input(format!(
            "portfolio task count {tasks} exceeds the {MAX_STARTS} cap"
        )));
    }
    let t0 = Instant::now();
    let deadline = shared_deadline(&cfg.budget);
    let mut workers = Vec::new();

    if recorder.enabled(Level::Info) {
        recorder.record(
            &Event::new("portfolio", "begin", Level::Info)
                .field("kind", "kway")
                .field("tasks", tasks)
                .field("candidates", cfg.candidates)
                .timing("jobs", jobs),
        );
    }
    let mut incumbent: Option<(u64, f64)> = None;
    let phase_a = kway_phase(hg, cfg, tasks, jobs, false, ml, deadline, recorder);
    replay_kway_phase(
        recorder.as_ref(),
        &phase_a,
        "base",
        &cfg.library,
        &mut incumbent,
    );
    let mut budget_seen = phase_a.budget_seen;
    let mut fault_seen = phase_a.fault_seen;
    let mut errors = phase_a.errors;
    let mut picked = phase_a.results;
    let mut rescued = false;
    merge_worker_stats(&mut workers, phase_a.workers);

    if picked.is_empty() && !budget_seen && !fault_seen && cfg.escalate {
        // Rescue phase: nothing feasible anywhere — climb the ladder.
        rescued = true;
        if recorder.enabled(Level::Info) {
            recorder.record(&Event::new("portfolio", "rescue", Level::Info).field("tasks", tasks));
        }
        let phase_b = kway_phase(hg, cfg, tasks, jobs, true, ml, deadline, recorder);
        replay_kway_phase(
            recorder.as_ref(),
            &phase_b,
            "rescue",
            &cfg.library,
            &mut incumbent,
        );
        budget_seen |= phase_b.budget_seen;
        fault_seen |= phase_b.fault_seen;
        errors = phase_b.errors;
        picked = phase_b.results;
        merge_worker_stats(&mut workers, phase_b.workers);
    }

    let feasible_tasks = picked.len();
    let winner = picked.into_iter().min_by(|(ta, a), (tb, b)| {
        (a.evaluation.total_cost, a.evaluation.avg_iob_util, *ta)
            .partial_cmp(&(b.evaluation.total_cost, b.evaluation.avg_iob_util, *tb))
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    if recorder.enabled(Level::Info) {
        let mut e = Event::new("portfolio", "summary", Level::Info)
            .field("tasks", tasks)
            .field("feasible_tasks", feasible_tasks)
            .field("rescued", rescued);
        if let Some((t, r)) = &winner {
            e = e
                .field("winner", *t)
                .field("cost", r.evaluation.total_cost)
                .field("kbar", r.evaluation.avg_iob_util)
                .field("k", r.evaluation.k());
        }
        recorder.record(
            &e.timing("wall_ms", t0.elapsed().as_millis() as u64)
                .timing("jobs", jobs),
        );
    }

    match winner {
        Some((t, mut result)) => {
            result.degradation.budget_exhausted |= budget_seen;
            result.degradation.fault_injected |= fault_seen;
            Ok(KWayPortfolioResult {
                result,
                winner: t,
                tasks,
                feasible_tasks,
                rescued,
                workers,
                wall: t0.elapsed(),
            })
        }
        None if budget_seen || fault_seen => Err(PartitionError::BudgetExhausted {
            budget: if fault_seen {
                "injected fault".into()
            } else {
                cfg.budget.describe()
            },
            completed: errors.len(),
        }),
        None => {
            // Propagate the lowest-index typed error (typically the
            // shared InfeasibleLibrary verdict), or synthesize one.
            let attempts: usize = errors
                .iter()
                .map(|(_, e)| match e {
                    PartitionError::InfeasibleLibrary { attempts, .. } => *attempts,
                    _ => 0,
                })
                .sum();
            match errors.into_iter().next() {
                Some((_, PartitionError::InfeasibleLibrary { reason, .. })) => {
                    Err(PartitionError::InfeasibleLibrary { reason, attempts })
                }
                Some((_, e)) => Err(e),
                None => Err(PartitionError::InfeasibleLibrary {
                    reason: "every portfolio task was lost before completing".into(),
                    attempts: 0,
                }),
            }
        }
    }
}

/// The composite cache key of a bipartition portfolio request.
pub fn bipartition_key(hg: &Hypergraph, base: &BipartitionConfig, n: usize) -> u64 {
    crate::hash::combine(&[hg.content_hash(), base.content_hash(), n as u64])
}

/// The composite cache key of a k-way portfolio request.
pub fn kway_key(hg: &Hypergraph, cfg: &KWayConfig, tasks: usize) -> u64 {
    crate::hash::combine(&[hg.content_hash(), cfg.content_hash(), tasks as u64])
}

/// Extends a flat request key with an optional multilevel
/// configuration. A `None` key is the flat key unchanged, so enabling
/// the cache never invalidates pre-multilevel entries; a `Some` key
/// folds in every V-cycle knob, so flat and multilevel requests (and
/// multilevel requests with different knobs) never collide.
pub fn with_multilevel_key(flat: u64, ml: Option<&MultilevelConfig>) -> u64 {
    match ml {
        None => flat,
        Some(m) => crate::hash::combine(&[flat, m.content_hash()]),
    }
}
