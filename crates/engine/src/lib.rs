//! Parallel portfolio search engine: deterministic multi-threaded
//! multi-start partitioning with a shared incumbent and result cache.
//!
//! The paper's quality numbers come from *portfolios* — many randomized
//! FM starts (Table III runs 20 per circuit) and many k-way carve
//! attempts (50 feasible candidates per run) — and portfolios are
//! embarrassingly parallel *if* the reduction is kept deterministic.
//! This crate fans those units of work across `std::thread` workers
//! while guaranteeing that `--jobs N` reduces to the identical best
//! solution as `--jobs 1` for a fixed seed:
//!
//! * work is claimed from an ascending counter and reduced in **fixed
//!   seed order** (lowest `(cost, index)`), never arrival order — see
//!   [`portfolio_bipartition`] / [`portfolio_kway`];
//! * a shared [`Incumbent`] (one atomic `fetch_min`, interleaving
//!   -independent by construction) lets workers skip provably useless
//!   work and gates the k-way escalation ladder behind a rescue phase;
//! * the shared wall deadline and [`CancelToken`](netpart_core::CancelToken)
//!   integrate with the core's `RunClock`/`Degradation` machinery, so a
//!   tripped budget drains every worker and still returns best-so-far;
//! * an in-memory [`ResultCache`] keyed by stable [`ContentHash`]
//!   digests answers repeated requests in O(1) — the [`Engine`] facade
//!   wires it all together.
//!
//! Everything here is std-only: no registry dependencies, per the
//! workspace's hermetic-build policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod hash;
mod incumbent;
mod portfolio;

pub use cache::{CacheStats, ResultCache};
pub use engine::Engine;
pub use hash::{combine, ContentHash, Fnv1a};
pub use incumbent::Incumbent;
pub use portfolio::{
    bipartition_key, kway_key, portfolio_bipartition, portfolio_bipartition_ml_traced,
    portfolio_bipartition_traced, portfolio_kway, portfolio_kway_ml_traced, portfolio_kway_traced,
    with_multilevel_key, KWayPortfolioResult, PortfolioResult, StartResult, WorkerStats,
};
