//! Stable content hashing — the result-cache key foundation.
//!
//! [`ContentHash`] produces a 64-bit FNV-1a digest over a *canonical
//! byte encoding* of a value: every field is serialized in declaration
//! order, variable-length collections are length-prefixed, and all
//! integers are written little-endian. The encoding (and therefore the
//! digest) is independent of pointer addresses, allocation order, hash
//!-map iteration order, platform endianness and process ASLR — the same
//! logical value hashes identically across runs, threads and machines
//! of the same word width.
//!
//! This is deliberately *not* [`std::hash::Hash`]: the standard trait
//! promises nothing about stability across runs (and `RandomState`
//! actively randomizes it), while a result cache keyed by content must
//! never observe two digests for one value. FNV-1a is tiny, allocation
//! -free and std-only; it is **not** cryptographic — the cache tolerates
//! an astronomically unlikely collision by returning a wrong-but-valid
//! result, which is acceptable for a best-effort cache and keeps the
//! hermetic-build policy intact.

use netpart_core::{BipartitionConfig, Budget, FaultPlan, KWayConfig, ReplicationMode};
use netpart_fpga::{Device, DeviceLibrary};
use netpart_hypergraph::Hypergraph;
use netpart_multilevel::MultilevelConfig;
use netpart_netlist::Netlist;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher over canonical bytes.
#[derive(Clone, Debug)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to 64 bits, so 32- and 64-bit hosts
    /// agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` by its IEEE-754 bit pattern (`-0.0` and `0.0`
    /// therefore hash differently; configuration values never rely on
    /// that distinction).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` and
    /// `("a","bc")` cannot collide structurally.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Absorbs an `Option<u64>` with a presence tag.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u8(0),
            Some(x) => {
                self.write_u8(1);
                self.write_u64(x);
            }
        }
    }

    /// Absorbs an `Option<&str>` with a presence tag.
    pub fn write_opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.write_u8(0),
            Some(s) => {
                self.write_u8(1);
                self.write_str(s);
            }
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A value with a stable, canonical 64-bit content digest.
///
/// Implementations must feed *every semantically significant field* to
/// the hasher in a fixed order with length prefixes on collections;
/// two values that compare equal must produce equal digests on every
/// run and platform.
pub trait ContentHash {
    /// Feeds the canonical encoding of `self` into `h`.
    fn hash_into(&self, h: &mut Fnv1a);

    /// The stable FNV-1a digest of `self`.
    fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.hash_into(&mut h);
        h.finish()
    }
}

/// Combines several digests into one (used for composite cache keys
/// such as `(hypergraph, config, n_runs)`).
pub fn combine(parts: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_usize(parts.len());
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

impl ContentHash for Netlist {
    fn hash_into(&self, h: &mut Fnv1a) {
        h.write_str(self.name());
        // Signals in id order; the id → name mapping pins the topology
        // encoding below.
        h.write_usize(self.n_signals());
        for s in self.signal_ids() {
            h.write_str(self.signal_name(s));
        }
        h.write_usize(self.n_gates());
        for g in self.gates() {
            h.write_str(&g.name);
            h.write_str(g.kind.mnemonic());
            if let netpart_netlist::GateKind::Lut { cover } = &g.kind {
                h.write_usize(cover.len());
                for row in cover {
                    h.write_str(row);
                }
            }
            h.write_usize(g.inputs.len());
            for s in &g.inputs {
                h.write_u32(s.0);
            }
            h.write_u32(g.output.0);
        }
        h.write_usize(self.primary_inputs().len());
        for s in self.primary_inputs() {
            h.write_u32(s.0);
        }
        h.write_usize(self.primary_outputs().len());
        for s in self.primary_outputs() {
            h.write_u32(s.0);
        }
    }
}

impl ContentHash for Device {
    fn hash_into(&self, h: &mut Fnv1a) {
        h.write_str(self.name());
        h.write_u32(self.clbs());
        h.write_u32(self.iobs());
        h.write_u64(self.price());
        h.write_f64(self.min_util());
        h.write_f64(self.max_util());
    }
}

impl ContentHash for DeviceLibrary {
    fn hash_into(&self, h: &mut Fnv1a) {
        // The library sorts its devices on construction, so iteration
        // order is already canonical.
        h.write_usize(self.len());
        for d in self.iter() {
            d.hash_into(h);
        }
    }
}

impl ContentHash for Hypergraph {
    fn hash_into(&self, h: &mut Fnv1a) {
        h.write_usize(self.n_cells());
        for c in self.cells() {
            h.write_str(c.name());
            let kind = c.kind();
            h.write_u8(if kind.is_terminal() { 1 } else { 0 });
            h.write_u32(kind.area());
            h.write_u32(kind.dff());
            h.write_usize(c.n_inputs());
            for n in c.input_nets() {
                h.write_u32(n.0);
            }
            h.write_usize(c.m_outputs());
            for n in c.output_nets() {
                h.write_u32(n.0);
            }
        }
        h.write_usize(self.n_nets());
        for n in self.nets() {
            h.write_str(n.name());
            h.write_usize(n.degree());
            for e in n.endpoints() {
                h.write_u32(e.cell.0);
            }
        }
    }
}

impl ContentHash for ReplicationMode {
    fn hash_into(&self, h: &mut Fnv1a) {
        match self {
            ReplicationMode::None => h.write_u8(0),
            ReplicationMode::Traditional => h.write_u8(1),
            ReplicationMode::Functional { threshold } => {
                h.write_u8(2);
                h.write_u32(*threshold);
            }
        }
    }
}

impl ContentHash for Budget {
    fn hash_into(&self, h: &mut Fnv1a) {
        h.write_opt_u64(self.wall_ms);
        h.write_opt_u64(self.max_moves);
    }
}

impl ContentHash for FaultPlan {
    fn hash_into(&self, h: &mut Fnv1a) {
        h.write_opt_u64(self.kill_after_moves);
        h.write_opt_u64(self.kill_after_passes);
        h.write_opt_u64(self.kill_after_attempts);
        h.write_opt_u64(self.kill_start);
        h.write_opt_u64(self.panic_in_worker);
        h.write_opt_str(self.crash_after.as_deref());
        h.write_opt_u64(self.torn_write);
        h.write_opt_u64(self.disk_full);
    }
}

impl ContentHash for BipartitionConfig {
    fn hash_into(&self, h: &mut Fnv1a) {
        for s in 0..2 {
            h.write_u64(self.min_area[s]);
            h.write_u64(self.max_area[s]);
        }
        self.replication.hash_into(h);
        h.write_usize(self.max_passes);
        h.write_u64(self.seed);
        for s in 0..2 {
            h.write_i64(self.terminal_weight[s]);
        }
        h.write_opt_u64(self.max_growth);
        self.budget.hash_into(h);
        self.fault.hash_into(h);
    }
}

impl ContentHash for KWayConfig {
    fn hash_into(&self, h: &mut Fnv1a) {
        self.library.hash_into(h);
        self.replication.hash_into(h);
        h.write_usize(self.candidates);
        h.write_usize(self.max_attempts);
        h.write_u64(self.seed);
        h.write_usize(self.max_passes);
        h.write_u8(u8::from(self.refine));
        h.write_u8(u8::from(self.escalate));
        self.budget.hash_into(h);
        self.fault.hash_into(h);
    }
}

impl ContentHash for MultilevelConfig {
    fn hash_into(&self, h: &mut Fnv1a) {
        h.write_usize(self.max_levels);
        h.write_f64(self.coarsen_ratio);
        h.write_usize(self.min_cells);
        h.write_f64(self.max_cluster_area);
        h.write_usize(self.refine_passes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors (64-bit).
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325, "offset basis");
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_separates_field_boundaries() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn library_hash_is_stable_and_content_sensitive() {
        let lib = DeviceLibrary::xc3000();
        assert_eq!(lib.content_hash(), DeviceLibrary::xc3000().content_hash());
        // Construction order does not matter (the library sorts).
        let mut reversed: Vec<Device> = DeviceLibrary::xc3000().iter().cloned().collect();
        reversed.reverse();
        let shuffled = DeviceLibrary::new(reversed);
        assert_eq!(lib.content_hash(), shuffled.content_hash());
        // Any field change does.
        let tweaked = DeviceLibrary::new(vec![
            Device::new("XC3020", 64, 64, 101, 0.0, 0.95),
            Device::new("XC3030", 100, 80, 135, 0.58, 0.95),
            Device::new("XC3042", 144, 96, 186, 0.63, 0.95),
            Device::new("XC3064", 224, 110, 272, 0.58, 0.95),
            Device::new("XC3090", 320, 144, 370, 0.63, 0.95),
        ]);
        assert_ne!(lib.content_hash(), tweaked.content_hash());
    }

    #[test]
    fn config_hash_distinguishes_every_knob() {
        let hg_cfg = BipartitionConfig::bounded([10, 10], [20, 20]).with_seed(7);
        let base = hg_cfg.content_hash();
        assert_eq!(base, hg_cfg.clone().content_hash());
        assert_ne!(base, hg_cfg.clone().with_seed(8).content_hash());
        assert_ne!(
            base,
            hg_cfg
                .clone()
                .with_replication(ReplicationMode::functional(0))
                .content_hash()
        );
        assert_ne!(
            base,
            hg_cfg
                .clone()
                .with_budget(Budget::wall_ms(5))
                .content_hash()
        );
        assert_ne!(
            base,
            hg_cfg
                .clone()
                .with_fault(FaultPlan::none().kill_after_moves(1))
                .content_hash()
        );

        let k = KWayConfig::new(DeviceLibrary::xc3000()).with_seed(3);
        let kbase = k.content_hash();
        assert_eq!(kbase, k.clone().content_hash());
        assert_ne!(kbase, k.clone().with_candidates(7).content_hash());
        assert_ne!(kbase, k.clone().with_escalation(false).content_hash());
        assert_ne!(kbase, k.clone().with_refine(true).content_hash());
    }

    #[test]
    fn multilevel_hash_distinguishes_every_knob() {
        let ml = MultilevelConfig::new();
        let base = ml.content_hash();
        assert_eq!(base, ml.clone().content_hash());
        assert_ne!(base, ml.clone().with_max_levels(3).content_hash());
        assert_ne!(base, ml.clone().with_coarsen_ratio(0.5).content_hash());
        assert_ne!(base, ml.clone().with_min_cells(100).content_hash());
        assert_ne!(base, ml.clone().with_max_cluster_area(0.1).content_hash());
        assert_ne!(base, ml.clone().with_refine_passes(5).content_hash());
    }

    /// Pins the digests of fixed values so any accidental change to the
    /// canonical encoding (field order, widths, prefixes) fails loudly
    /// instead of silently invalidating persisted expectations. The
    /// constants were computed once from the encoding and must never
    /// change while it is unchanged — hash stability across runs,
    /// threads and processes is the whole point of [`ContentHash`].
    #[test]
    fn pinned_digests_are_stable_across_runs() {
        const PINNED_XC3000: u64 = 7_708_666_789_472_266_005;
        assert_eq!(DeviceLibrary::xc3000().content_hash(), PINNED_XC3000);

        const PINNED_NETLIST: u64 = 10_953_375_322_622_017_509;
        let nl = netpart_netlist::generate(
            &netpart_netlist::GeneratorConfig::new(60)
                .with_dff(5)
                .with_seed(42),
        );
        assert_eq!(nl.content_hash(), PINNED_NETLIST);
        assert_eq!(nl.content_hash(), nl.clone().content_hash());
    }
}
