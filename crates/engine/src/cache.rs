//! The in-memory result cache of the portfolio engine.
//!
//! Keys are [`ContentHash`](crate::ContentHash) digests of the request
//! — `(netlist/hypergraph, device library, configuration, run count)` —
//! so a repeated request (the serving scenario: many users submitting
//! the same circuit) returns the previously computed solution in O(1)
//! instead of re-running the portfolio. Values are stored behind [`Arc`]
//! so a hit is a pointer bump, never a deep clone of a placement.
//!
//! The cache is deliberately simple: a `Mutex<HashMap>` with atomic
//! hit/miss counters. Lookups happen once per *request* (not per move
//! or per start), so lock contention is irrelevant next to the seconds
//! of FM work a miss triggers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss counters of a [`ResultCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A keyed store of computed results, shared across requests (and
/// threads) of one engine instance.
#[derive(Debug)]
pub struct ResultCache<T> {
    map: Mutex<HashMap<u64, Arc<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Default for ResultCache<T> {
    fn default() -> Self {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<T> ResultCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Looks `key` up, counting a hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<T>> {
        let found = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores `value` under `key` (first insert wins on a race, so
    /// every reader of a key observes one consistent value) and returns
    /// the stored handle.
    pub fn insert(&self, key: u64, value: T) -> Arc<T> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(key)
            .or_insert_with(|| Arc::new(value))
            .clone()
    }

    /// Returns the cached value for `key`, or computes it with `f`.
    ///
    /// The second return value is `true` on a hit. The computation runs
    /// *outside* the lock (an FM portfolio can take seconds; holding
    /// the map that long would serialize unrelated requests), so two
    /// racing misses may both compute — the first insert wins and both
    /// callers get that one value. Errors are not cached: a failed
    /// computation is retried by the next identical request.
    pub fn try_get_or_compute<E>(
        &self,
        key: u64,
        f: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, bool), E> {
        if let Some(hit) = self.get(key) {
            return Ok((hit, true));
        }
        let value = f()?;
        Ok((self.insert(key, value), false))
    }

    /// Hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .map
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len(),
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let cache: ResultCache<u32> = ResultCache::new();
        assert_eq!(cache.get(1), None);
        cache.insert(1, 42);
        assert_eq!(cache.get(1).as_deref(), Some(&42));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
        assert_eq!(cache.stats().lookups(), 2);
    }

    #[test]
    fn compute_once_then_serve() {
        let cache: ResultCache<String> = ResultCache::new();
        let mut computed = 0;
        let mut hits = Vec::new();
        for _ in 0..3 {
            let (v, hit) = cache
                .try_get_or_compute(7, || {
                    computed += 1;
                    Ok::<_, ()>("answer".to_string())
                })
                .unwrap();
            assert_eq!(*v, "answer");
            hits.push(hit);
        }
        assert_eq!(computed, 1, "the value is computed exactly once");
        assert_eq!(hits, vec![false, true, true]);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: ResultCache<u32> = ResultCache::new();
        assert_eq!(
            cache.try_get_or_compute(3, || Err::<u32, _>("boom")),
            Err("boom")
        );
        let (v, hit) = cache.try_get_or_compute(3, || Ok::<_, &str>(9)).unwrap();
        assert_eq!((*v, hit), (9, false));
    }

    #[test]
    fn first_insert_wins_on_a_race() {
        let cache: ResultCache<u32> = ResultCache::new();
        let a = cache.insert(5, 1);
        let b = cache.insert(5, 2);
        assert_eq!((*a, *b), (1, 1));
    }

    #[test]
    fn clear_keeps_counters() {
        let cache: ResultCache<u32> = ResultCache::new();
        cache.insert(1, 1);
        let _ = cache.get(1);
        cache.clear();
        assert_eq!(cache.get(1), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 0));
    }
}
