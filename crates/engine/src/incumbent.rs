//! The shared best-incumbent bound of a parallel portfolio.
//!
//! Workers publish `(cost, start index)` pairs as they finish; the
//! incumbent keeps the lexicographic minimum in a single `AtomicU64`
//! (cost in the high 32 bits, index in the low 32), so one `fetch_min`
//! both publishes and reads back the bound with no lock. Because
//! `fetch_min` over a fixed set of offers is order-independent, the
//! final incumbent is identical for every thread interleaving — the
//! deterministic-reduction argument of the portfolio engine rests on
//! exactly this property.

use std::sync::atomic::{AtomicU64, Ordering};

/// Costs at or above this value cannot be packed and are clamped; the
/// portfolio only prunes on *perfect* (zero-cost) incumbents, so the
/// clamp never affects correctness, only the advisory bound.
const COST_CLAMP: u64 = (u32::MAX as u64) - 1;

/// A lock-free, interleaving-independent `(cost, index)` minimum.
#[derive(Debug)]
pub struct Incumbent {
    packed: AtomicU64,
}

impl Default for Incumbent {
    fn default() -> Self {
        Incumbent {
            packed: AtomicU64::new(u64::MAX),
        }
    }
}

impl Incumbent {
    /// An empty incumbent (no offers yet).
    pub fn new() -> Self {
        Incumbent::default()
    }

    /// Offers a `(cost, index)` candidate; returns `true` if it became
    /// (or tied) the current best. Indices must fit in 32 bits — the
    /// portfolio caps start counts far below that.
    pub fn offer(&self, cost: u64, index: usize) -> bool {
        let packed = (cost.min(COST_CLAMP) << 32) | (index as u32 as u64);
        self.packed.fetch_min(packed, Ordering::AcqRel) >= packed
    }

    /// The best `(cost, index)` offered so far, if any.
    pub fn best(&self) -> Option<(u64, usize)> {
        let v = self.packed.load(Ordering::Acquire);
        if v == u64::MAX {
            return None;
        }
        Some((v >> 32, (v & u64::from(u32::MAX)) as usize))
    }

    /// The current cost bound (advisory: clamped costs read back as the
    /// clamp).
    pub fn cost_bound(&self) -> Option<u64> {
        self.best().map(|(c, _)| c)
    }

    /// Whether a zero-cost (unbeatable) incumbent exists — the only
    /// bound the portfolio prunes on, because no later start can do
    /// better and ties break toward the lower index, which the work
    /// queue hands out in ascending order.
    pub fn is_perfect(&self) -> bool {
        self.cost_bound() == Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_then_min_semantics() {
        let inc = Incumbent::new();
        assert_eq!(inc.best(), None);
        assert!(!inc.is_perfect());
        assert!(inc.offer(10, 4));
        assert_eq!(inc.best(), Some((10, 4)));
        // Worse cost loses; equal cost with higher index loses.
        assert!(!inc.offer(11, 0));
        assert!(!inc.offer(10, 5));
        // Equal cost with lower index wins (lexicographic minimum).
        assert!(inc.offer(10, 2));
        assert_eq!(inc.best(), Some((10, 2)));
        assert!(inc.offer(0, 7));
        assert!(inc.is_perfect());
    }

    #[test]
    fn order_independent_reduction() {
        let offers = [(9u64, 3usize), (2, 8), (2, 1), (40, 0), (3, 2)];
        let forward = Incumbent::new();
        for &(c, i) in &offers {
            forward.offer(c, i);
        }
        let backward = Incumbent::new();
        for &(c, i) in offers.iter().rev() {
            backward.offer(c, i);
        }
        assert_eq!(forward.best(), backward.best());
        assert_eq!(forward.best(), Some((2, 1)));
    }

    #[test]
    fn huge_costs_clamp_without_wrapping_into_the_index() {
        let inc = Incumbent::new();
        assert!(inc.offer(u64::MAX, 1));
        assert_eq!(inc.best(), Some((COST_CLAMP, 1)));
        assert!(inc.offer(5, 2));
        assert_eq!(inc.best(), Some((5, 2)));
    }

    #[test]
    fn concurrent_offers_agree_with_sequential() {
        use std::sync::Arc;
        let inc = Arc::new(Incumbent::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let inc = Arc::clone(&inc);
                s.spawn(move || {
                    for i in 0..1000usize {
                        let cost = ((i * 7 + t * 13) % 50 + 1) as u64;
                        inc.offer(cost, i);
                    }
                });
            }
        });
        // The sequential minimum over the same offer set.
        let seq = Incumbent::new();
        for t in 0..4usize {
            for i in 0..1000usize {
                seq.offer(((i * 7 + t * 13) % 50 + 1) as u64, i);
            }
        }
        assert_eq!(inc.best(), seq.best());
    }
}
