//! The [`Engine`] facade: a configured portfolio runner with an
//! optional request-level result cache.

use crate::cache::{CacheStats, ResultCache};
use crate::portfolio::{
    bipartition_key, kway_key, portfolio_bipartition_ml_traced, portfolio_kway_ml_traced,
    with_multilevel_key, KWayPortfolioResult, PortfolioResult,
};
use netpart_core::{
    par_refine_sides, BipartitionConfig, BipartitionResult, EngineState, KWayConfig,
    ParRefineOutcome, PartitionError,
};
use netpart_hypergraph::Hypergraph;
use netpart_multilevel::MultilevelConfig;
use netpart_obs::{Event, Level, NoopRecorder, Recorder, Span};
use std::sync::Arc;

/// Refinement round cap for [`Engine::par_refine`]: each round makes
/// monotone progress, so this is a safety bound, not a tuning knob.
const PAR_REFINE_MAX_ROUNDS: usize = 64;

/// A portfolio engine instance: thread count plus (optionally) a
/// request cache that lives as long as the engine.
///
/// Caching is keyed by the content hash of `(hypergraph, configuration,
/// start count)` — see [`ContentHash`](crate::ContentHash) — and is
/// therefore *jobs-invariant*: a request computed at `--jobs 1` serves
/// an identical later request at `--jobs 8` and vice versa, which is
/// only sound because the portfolio reduction itself is deterministic
/// across thread counts. Only successful results are cached; errors are
/// recomputed. Budgeted requests are cached like any other (the budget
/// is part of the key): a cache hit then simply replays the degraded
/// solution the budget originally allowed, which keeps repeated
/// requests consistent with each other.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache_enabled: bool,
    multilevel: Option<MultilevelConfig>,
    recorder: Arc<dyn Recorder>,
    bipartitions: ResultCache<PortfolioResult>,
    kways: ResultCache<KWayPortfolioResult>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            jobs: 1,
            cache_enabled: false,
            multilevel: None,
            recorder: Arc::new(NoopRecorder),
            bipartitions: ResultCache::default(),
            kways: ResultCache::default(),
        }
    }
}

impl Engine {
    /// An engine fanning work across `jobs` worker threads (clamped to
    /// at least 1), with the cache disabled.
    pub fn new(jobs: usize) -> Self {
        Engine {
            jobs: jobs.max(1),
            ..Engine::default()
        }
    }

    /// Enables or disables the result cache.
    pub fn with_cache(mut self, on: bool) -> Self {
        self.cache_enabled = on;
        self
    }

    /// Enables (`Some`) or disables (`None`) the multilevel V-cycle:
    /// every portfolio start/task coarsens the circuit, partitions the
    /// coarsest graph and refines back up (see
    /// [`netpart_multilevel`]). Cache keys fold in the configuration,
    /// so flat and multilevel requests never serve each other; seed
    /// derivation and reduction order are unchanged, so `--jobs`
    /// invariance holds exactly as in the flat engine.
    #[must_use]
    pub fn with_multilevel(mut self, ml: Option<MultilevelConfig>) -> Self {
        self.multilevel = ml;
        self
    }

    /// Attaches a telemetry recorder: portfolio runs launched through
    /// this engine emit their deterministic trace into it (see
    /// [`portfolio_bipartition_traced`](crate::portfolio_bipartition_traced)),
    /// and cache lookups emit
    /// `engine.cache` hit/miss events.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether the result cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// The multilevel configuration, when the V-cycle is enabled.
    pub fn multilevel(&self) -> Option<&MultilevelConfig> {
        self.multilevel.as_ref()
    }

    fn record_cache(&self, kind: &'static str, hit: bool) {
        if self.recorder.enabled(Level::Debug) {
            self.recorder.record(
                &Event::new("engine", "cache", Level::Debug)
                    .field("kind", kind)
                    .field("hit", hit),
            );
            let name = if hit { "cache_hits" } else { "cache_misses" };
            self.recorder
                .record(&Event::counter("engine", name, 1).at(Level::Debug));
        }
    }

    /// Runs (or serves from cache) a multi-start bipartition portfolio;
    /// see [`portfolio_bipartition`](crate::portfolio_bipartition) for
    /// semantics and errors. The second return value is `true` on a
    /// cache hit.
    pub fn bipartition_many(
        &self,
        hg: &Hypergraph,
        base: &BipartitionConfig,
        n: usize,
    ) -> Result<(Arc<PortfolioResult>, bool), PartitionError> {
        let ml = self.multilevel.as_ref();
        let _span = Span::enter(self.recorder.as_ref(), "engine", "bipartition");
        if !self.cache_enabled {
            return portfolio_bipartition_ml_traced(hg, base, n, self.jobs, ml, &self.recorder)
                .map(|r| (Arc::new(r), false));
        }
        let key = with_multilevel_key(bipartition_key(hg, base, n), ml);
        let out = self.bipartitions.try_get_or_compute(key, || {
            portfolio_bipartition_ml_traced(hg, base, n, self.jobs, ml, &self.recorder)
        });
        if let Ok((_, hit)) = &out {
            self.record_cache("bipartition", *hit);
        }
        out
    }

    /// Runs (or serves from cache) a k-way carving portfolio; see
    /// [`portfolio_kway`](crate::portfolio_kway) for semantics and
    /// errors. The second return value is `true` on a cache hit.
    pub fn kway(
        &self,
        hg: &Hypergraph,
        cfg: &KWayConfig,
        tasks: usize,
    ) -> Result<(Arc<KWayPortfolioResult>, bool), PartitionError> {
        let ml = self.multilevel.as_ref();
        let _span = Span::enter(self.recorder.as_ref(), "engine", "kway");
        if !self.cache_enabled {
            return portfolio_kway_ml_traced(hg, cfg, tasks, self.jobs, ml, &self.recorder)
                .map(|r| (Arc::new(r), false));
        }
        let key = with_multilevel_key(kway_key(hg, cfg, tasks), ml);
        let out = self.kways.try_get_or_compute(key, || {
            portfolio_kway_ml_traced(hg, cfg, tasks, self.jobs, ml, &self.recorder)
        });
        if let Ok((_, hit)) = &out {
            self.record_cache("kway", *hit);
        }
        out
    }

    /// Polishes a replication-free bipartition in place with the
    /// deterministic intra-run parallel refiner
    /// ([`par_refine_sides`](netpart_core::par_refine_sides)),
    /// fanning proposal evaluation across this engine's worker threads.
    ///
    /// Returns `None` — leaving `result` untouched — when the result
    /// carries replicas or exports no placement: the refiner operates
    /// on plain side vectors only. On `Some`, `result`'s cut, areas,
    /// balance flag and placement reflect the refined solution, and
    /// are byte-identical for every `jobs` value (the refiner's commit
    /// order is fixed independently of scheduling).
    pub fn par_refine(
        &self,
        hg: &Hypergraph,
        cfg: &BipartitionConfig,
        result: &mut BipartitionResult,
    ) -> Option<ParRefineOutcome> {
        if result.replicated_cells > 0 {
            return None;
        }
        let placement = result.placement.as_ref()?;
        let mut sides: Vec<u8> = hg
            .cell_ids()
            .map(|c| placement.part_of(c).map(|p| p.0 as u8))
            .collect::<Option<_>>()?;
        let out = par_refine_sides(
            hg,
            cfg,
            &mut sides,
            self.jobs,
            PAR_REFINE_MAX_ROUNDS,
            self.recorder.as_ref(),
        );
        let refined = EngineState::new_weighted(hg, &sides, cfg.terminal_weight);
        result.cut = refined.cut();
        result.areas = refined.areas();
        result.balanced = cfg.balanced(refined.areas());
        result.placement = Some(refined.to_placement());
        Some(out)
    }

    /// Combined hit/miss/size counters over both caches.
    pub fn cache_stats(&self) -> CacheStats {
        let b = self.bipartitions.stats();
        let k = self.kways.stats();
        CacheStats {
            hits: b.hits + k.hits,
            misses: b.misses + k.misses,
            entries: b.entries + k.entries,
        }
    }

    /// Drops every cached result (counters are kept).
    pub fn clear_cache(&self) {
        self.bipartitions.clear();
        self.kways.clear();
    }
}
