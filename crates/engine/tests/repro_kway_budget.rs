//! Review repro: k-way portfolio under a per-task move budget across jobs levels.

use netpart_core::{Budget, KWayConfig};
use netpart_engine::portfolio_kway;
use netpart_fpga::DeviceLibrary;
use netpart_netlist::{generate, GeneratorConfig};
use netpart_techmap::{map, MapperConfig};

#[test]
fn kway_move_budget_across_jobs() {
    let nl = generate(&GeneratorConfig::new(800).with_dff(40).with_seed(11));
    let hg = map(&nl, &MapperConfig::xc3000())
        .expect("maps")
        .to_hypergraph(&nl);
    let describe =
        |r: &Result<netpart_engine::KWayPortfolioResult, netpart_core::PartitionError>| match r {
            Ok(r) => format!(
                "Ok(winner={}, feasible={}, cost={}, rescued={}, budget_exhausted={})",
                r.winner,
                r.feasible_tasks,
                r.result.evaluation.total_cost,
                r.rescued,
                r.result.degradation.budget_exhausted
            ),
            Err(e) => format!("Err({e})"),
        };
    let mut diverged = Vec::new();
    for moves in [500u64, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000] {
        let cfg = KWayConfig::new(DeviceLibrary::xc3000())
            .with_candidates(4)
            .with_seed(1)
            .with_max_passes(8)
            .with_budget(Budget::none().with_max_moves(moves));
        let a = portfolio_kway(&hg, &cfg, 3, 1);
        let b = portfolio_kway(&hg, &cfg, 3, 8);
        let (da, db) = (describe(&a), describe(&b));
        eprintln!("moves={moves}: jobs=1 {da} | jobs=8 {db}");
        if da != db {
            diverged.push(moves);
        }
    }
    assert!(diverged.is_empty(), "diverged at move budgets {diverged:?}");
}
