//! Worker-thread fault injection: kill points *inside* the portfolio's
//! worker loop. The contract under test is the engine's join-safety
//! guarantee — a lost or panicking worker must never hang the portfolio
//! or abort the process; the engine joins every worker and returns
//! either a typed error or a degraded best-so-far solution with
//! `fault_injected` set.

use netpart_core::{BipartitionConfig, FaultPlan, KWayConfig, PartitionError};
use netpart_engine::{portfolio_bipartition, portfolio_kway};
use netpart_fpga::DeviceLibrary;
use netpart_hypergraph::Hypergraph;
use netpart_netlist::{generate, GeneratorConfig};
use netpart_techmap::{map, MapperConfig};

fn mapped(gates: usize, seed: u64) -> Hypergraph {
    let nl = generate(&GeneratorConfig::new(gates).with_dff(10).with_seed(seed));
    map(&nl, &MapperConfig::xc3000())
        .expect("generator output maps cleanly")
        .to_hypergraph(&nl)
}

/// Every outcome a fault sweep may legally produce: a degraded solution
/// that admits the fault, or a typed error. Anything else (a panic, a
/// hang, a clean result that hides the fault) fails the test.
fn assert_admits_fault<T>(
    outcome: &Result<T, PartitionError>,
    degraded: impl Fn(&T) -> bool,
    label: &str,
) {
    match outcome {
        Ok(r) => assert!(degraded(r), "{label}: solution must report the fault"),
        Err(PartitionError::BudgetExhausted { budget, .. }) => {
            assert_eq!(budget, "injected fault", "{label}: typed fault error");
        }
        Err(e) => panic!("{label}: unexpected error kind {e:?}"),
    }
}

#[test]
fn bipartition_survives_a_killed_worker_at_every_start() {
    let hg = mapped(200, 1);
    let n = 6;
    for kill in 0..n {
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(4)
            .with_fault(FaultPlan::none().kill_start(kill as u64));
        let outcome = portfolio_bipartition(&hg, &cfg, n, 4);
        assert_admits_fault(
            &outcome,
            |r| r.degradation.fault_injected,
            &format!("kill_start({kill})"),
        );
        if let Ok(r) = &outcome {
            assert!(
                r.results.iter().all(|s| s.index != kill),
                "the killed start must not be recorded"
            );
            assert!(r.degradation.completed < n, "a start was lost");
        }
    }
}

#[test]
fn bipartition_survives_a_panicking_worker_at_every_start() {
    let hg = mapped(200, 2);
    let n = 6;
    for target in 0..n {
        let cfg = BipartitionConfig::equal(&hg, 0.1)
            .with_seed(4)
            .with_fault(FaultPlan::none().panic_in_worker(target as u64));
        let outcome = portfolio_bipartition(&hg, &cfg, n, 4);
        assert_admits_fault(
            &outcome,
            |r| r.degradation.fault_injected,
            &format!("panic_in_worker({target})"),
        );
        if let Ok(r) = &outcome {
            assert!(
                r.results.iter().all(|s| s.index != target),
                "the panicked start must not be recorded"
            );
        }
    }
}

#[test]
fn a_lone_worker_killed_at_the_first_start_is_a_typed_error() {
    let hg = mapped(120, 3);
    let cfg = BipartitionConfig::equal(&hg, 0.1).with_fault(FaultPlan::none().kill_start(0));
    // jobs=1: the only worker dies before running anything.
    match portfolio_bipartition(&hg, &cfg, 4, 1) {
        Err(PartitionError::BudgetExhausted { budget, completed }) => {
            assert_eq!(budget, "injected fault");
            assert_eq!(completed, 0);
        }
        other => panic!("expected a typed fault error, got {other:?}"),
    }
}

#[test]
fn per_start_fault_plans_stay_jobs_invariant() {
    // kill_after_moves trips *inside* each start at a deterministic
    // point, so unlike worker-death faults the outcome must be
    // byte-identical across thread counts.
    let hg = mapped(200, 5);
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(6)
        .with_fault(FaultPlan::none().kill_after_moves(25));
    let reference = portfolio_bipartition(&hg, &cfg, 4, 1);
    for jobs in [2, 4, 8] {
        let r = portfolio_bipartition(&hg, &cfg, 4, jobs);
        match (&reference, &r) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.fingerprint(&hg), b.fingerprint(&hg));
                assert_eq!(a.degradation, b.degradation);
                assert!(b.degradation.fault_injected);
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            other => panic!("jobs={jobs} diverged: {other:?}"),
        }
    }
}

#[test]
fn kway_survives_killed_and_panicking_workers() {
    let hg = mapped(400, 7);
    let base = KWayConfig::new(DeviceLibrary::xc3000())
        .with_candidates(3)
        .with_seed(1)
        .with_max_passes(6);
    let tasks = 3;
    for target in 0..tasks {
        for plan in [
            FaultPlan::none().kill_start(target as u64),
            FaultPlan::none().panic_in_worker(target as u64),
        ] {
            let cfg = base.clone().with_fault(plan.clone());
            let outcome = portfolio_kway(&hg, &cfg, tasks, 4);
            assert_admits_fault(
                &outcome,
                |r| r.result.degradation.fault_injected,
                &format!("kway task {target} under {plan:?}"),
            );
            if let Ok(r) = &outcome {
                assert_ne!(r.winner, target, "a lost task cannot win");
                assert!(r.feasible_tasks < tasks);
            }
        }
    }
}
