//! The portfolio engine's central contract: for a fixed seed, `--jobs N`
//! produces the byte-identical result as `--jobs 1` — including under a
//! tripped budget, where the degraded result must be deterministic in
//! the fixed-seed-order reduction.
//!
//! CI runs this suite twice, once with the default test-thread count
//! and once with `--test-threads=1`, as a loom-free cross-check that no
//! test depends on incidental scheduling.

use netpart_core::{run_many, BipartitionConfig, Budget, KWayConfig, ReplicationMode};
use netpart_engine::{portfolio_bipartition, portfolio_kway, Engine};
use netpart_fpga::DeviceLibrary;
use netpart_hypergraph::Hypergraph;
use netpart_netlist::{generate, GeneratorConfig};
use netpart_techmap::{map, MapperConfig};

fn mapped(gates: usize, dffs: usize, seed: u64) -> Hypergraph {
    let nl = generate(&GeneratorConfig::new(gates).with_dff(dffs).with_seed(seed));
    map(&nl, &MapperConfig::xc3000())
        .expect("generator output maps cleanly")
        .to_hypergraph(&nl)
}

const JOBS_LEVELS: [usize; 3] = [1, 2, 8];

#[test]
fn bipartition_portfolio_is_jobs_invariant() {
    let hg = mapped(300, 20, 2);
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(10)
        .with_replication(ReplicationMode::functional(0));
    let reference = portfolio_bipartition(&hg, &cfg, 6, 1).expect("jobs=1 baseline");
    let ref_print = reference.fingerprint(&hg);
    assert_eq!(reference.results.len(), 6, "all starts recorded");
    for jobs in JOBS_LEVELS {
        let r = portfolio_bipartition(&hg, &cfg, 6, jobs).expect("portfolio runs");
        assert_eq!(
            r.fingerprint(&hg),
            ref_print,
            "jobs={jobs} must be byte-identical to jobs=1"
        );
        assert_eq!(r.best_cut(), reference.best_cut());
        assert_eq!(r.best_start(), reference.best_start());
        assert_eq!(r.degradation, reference.degradation);
    }
}

#[test]
fn unbudgeted_portfolio_matches_the_sequential_harness() {
    let hg = mapped(300, 20, 5);
    let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(3);
    let seq = run_many(&hg, &cfg, 5).expect("sequential harness");
    let par = portfolio_bipartition(&hg, &cfg, 5, 4).expect("portfolio");
    assert_eq!(par.results.len(), seq.results.len());
    assert_eq!(par.best_cut(), seq.best_cut());
    assert_eq!(par.best_start(), seq.best_index);
    for (s, p) in seq.results.iter().zip(par.results.iter()) {
        assert_eq!(s.cut, p.result.cut);
        assert_eq!(s.areas, p.result.areas);
        assert_eq!(s.replicated_cells, p.result.replicated_cells);
    }
}

#[test]
fn zero_wall_budget_is_degraded_and_still_jobs_invariant() {
    let hg = mapped(200, 10, 3);
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(7)
        .with_budget(Budget::wall_ms(0));
    let reference = portfolio_bipartition(&hg, &cfg, 20, 1).expect("guaranteed first start");
    let ref_print = reference.fingerprint(&hg);
    assert_eq!(
        reference.results.len(),
        1,
        "exactly the guaranteed first start"
    );
    assert!(reference.degradation.budget_exhausted);
    assert!(reference.degradation.is_degraded());
    for jobs in JOBS_LEVELS {
        let r = portfolio_bipartition(&hg, &cfg, 20, jobs).expect("portfolio runs");
        assert_eq!(
            r.fingerprint(&hg),
            ref_print,
            "tripped-budget result must be byte-identical at jobs={jobs}"
        );
        assert_eq!(r.degradation, reference.degradation);
    }
}

#[test]
fn per_start_move_budget_is_jobs_invariant() {
    let hg = mapped(250, 10, 9);
    // A move allowance below one full pass: every start truncates at
    // the same deterministic point.
    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(1)
        .with_budget(Budget::none().with_max_moves(40));
    let reference = portfolio_bipartition(&hg, &cfg, 4, 1);
    let ref_print = reference.as_ref().ok().map(|r| r.fingerprint(&hg));
    for jobs in JOBS_LEVELS {
        let r = portfolio_bipartition(&hg, &cfg, 4, jobs);
        match (&reference, &r) {
            (Ok(a), Ok(b)) => {
                assert_eq!(Some(b.fingerprint(&hg)), ref_print);
                assert_eq!(a.degradation, b.degradation);
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            other => panic!("jobs={jobs} diverged from jobs=1: {other:?}"),
        }
    }
}

#[test]
fn kway_portfolio_is_jobs_invariant_for_fixed_tasks() {
    let hg = mapped(800, 40, 11);
    let cfg = KWayConfig::new(DeviceLibrary::xc3000())
        .with_candidates(4)
        .with_seed(1)
        .with_max_passes(8);
    let reference = portfolio_kway(&hg, &cfg, 3, 1).expect("jobs=1 baseline");
    for jobs in JOBS_LEVELS {
        let r = portfolio_kway(&hg, &cfg, 3, jobs).expect("portfolio runs");
        assert_eq!(r.winner, reference.winner, "winner task at jobs={jobs}");
        assert_eq!(
            r.result.evaluation.total_cost,
            reference.result.evaluation.total_cost
        );
        assert_eq!(r.result.devices, reference.result.devices);
        assert_eq!(r.feasible_tasks, reference.feasible_tasks);
        assert_eq!(r.rescued, reference.rescued);
        for c in hg.cell_ids() {
            assert_eq!(
                r.result.placement.copies(c),
                reference.result.placement.copies(c),
                "placement of cell {c:?} at jobs={jobs}"
            );
        }
    }
}

#[test]
fn cache_replays_identical_results() {
    let hg = mapped(200, 10, 4);
    let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(2);
    let engine = Engine::new(2).with_cache(true);
    let (first, hit1) = engine
        .bipartition_many(&hg, &cfg, 4)
        .expect("first request");
    let (second, hit2) = engine
        .bipartition_many(&hg, &cfg, 4)
        .expect("second request");
    assert!(!hit1 && hit2, "second identical request must hit");
    assert!(
        std::sync::Arc::ptr_eq(&first, &second),
        "a hit serves the stored value, not a recomputation"
    );
    // A different request (another seed) misses.
    let (_, hit3) = engine
        .bipartition_many(&hg, &cfg.clone().with_seed(3), 4)
        .expect("third request");
    assert!(!hit3);
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
}

#[test]
fn engine_facade_is_jobs_invariant_too() {
    let hg = mapped(200, 10, 6);
    let cfg = BipartitionConfig::equal(&hg, 0.1).with_seed(5);
    let a = Engine::new(1)
        .bipartition_many(&hg, &cfg, 4)
        .expect("jobs=1")
        .0
        .fingerprint(&hg);
    let b = Engine::new(8)
        .bipartition_many(&hg, &cfg, 4)
        .expect("jobs=8")
        .0
        .fingerprint(&hg);
    assert_eq!(a, b);
}

#[test]
fn trace_skeleton_is_jobs_invariant() {
    // The observability contract at the library level: capture every
    // event in a BufferRecorder at each jobs level, reduce each event
    // to its deterministic skeleton (drop reserved-scope events, drop
    // timing fields), and demand identical JSONL.
    use netpart_engine::{portfolio_bipartition_traced, portfolio_kway_traced};
    use netpart_obs::{to_jsonl, BufferRecorder, Recorder};
    use std::sync::Arc;

    let hg = mapped(400, 20, 3);
    let skeleton = |buffer: &BufferRecorder| -> String {
        let events: Vec<_> = buffer
            .take()
            .iter()
            .filter_map(netpart_obs::Event::deterministic_skeleton)
            .collect();
        assert!(!events.is_empty(), "expected a non-empty trace");
        to_jsonl(&events)
    };

    let cfg = BipartitionConfig::equal(&hg, 0.1)
        .with_seed(10)
        .with_replication(ReplicationMode::functional(0));
    let trace_bipartition = |jobs: usize| -> String {
        let buffer = Arc::new(BufferRecorder::new());
        let recorder: Arc<dyn Recorder> = Arc::clone(&buffer) as Arc<dyn Recorder>;
        portfolio_bipartition_traced(&hg, &cfg, 6, jobs, &recorder).expect("portfolio runs");
        skeleton(&buffer)
    };
    let reference = trace_bipartition(1);
    for jobs in JOBS_LEVELS {
        assert_eq!(
            trace_bipartition(jobs),
            reference,
            "bipartition trace skeleton diverged at jobs={jobs}"
        );
    }

    let kcfg = KWayConfig::new(DeviceLibrary::xc3000())
        .with_candidates(3)
        .with_seed(4);
    let trace_kway = |jobs: usize| -> String {
        let buffer = Arc::new(BufferRecorder::new());
        let recorder: Arc<dyn Recorder> = Arc::clone(&buffer) as Arc<dyn Recorder>;
        portfolio_kway_traced(&hg, &kcfg, 3, jobs, &recorder).expect("kway portfolio runs");
        skeleton(&buffer)
    };
    let kreference = trace_kway(1);
    for jobs in JOBS_LEVELS {
        assert_eq!(
            trace_kway(jobs),
            kreference,
            "kway trace skeleton diverged at jobs={jobs}"
        );
    }
}
