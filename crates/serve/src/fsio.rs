//! Durable writes with fault injection.
//!
//! Every byte the service persists flows through two primitives:
//! [`atomic_write`] (temp file + fsync + rename, so the final path
//! either holds the complete old content or the complete new content)
//! and the journal append in [`Wal`](crate::Wal). Both consult the
//! shared [`Injector`], which realizes the serve-level faults of a
//! [`FaultPlan`]: crash-after-transition, torn writes and disk-full
//! errors — all deterministic (counter-based, never wall-clock).

use crate::ServeError;
use netpart_core::FaultPlan;
use std::cell::Cell;
use std::io::Write as _;
use std::path::Path;

/// What an injected crash point does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CrashMode {
    /// `std::process::abort()` — true `kill -9` semantics (no
    /// destructors, no flushes). The `netpart serve` binary uses this.
    #[default]
    Abort,
    /// Return [`ServeError::CrashInjected`] so an in-process test can
    /// observe the interruption and immediately reopen the spool. The
    /// server guarantees no cleanup I/O happens after the error is
    /// raised, making it WAL-equivalent to an abort.
    Return,
}

/// The deterministic fault realizer shared by every durable write of
/// one server instance.
#[derive(Debug)]
pub struct Injector {
    plan: FaultPlan,
    mode: CrashMode,
    writes: Cell<u64>,
}

/// A fault selected for one durable write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// Persist only a prefix, then crash.
    Torn,
    /// Fail with a disk-full error; nothing is written.
    DiskFull,
}

impl Injector {
    /// An injector realizing `plan` with crash behaviour `mode`.
    pub fn new(plan: FaultPlan, mode: CrashMode) -> Self {
        Injector {
            plan,
            mode,
            writes: Cell::new(0),
        }
    }

    /// An injector that never fires.
    pub fn none() -> Self {
        Injector::new(FaultPlan::none(), CrashMode::Return)
    }

    /// Fires the crash point `label` if the plan arms it: aborts the
    /// process ([`CrashMode::Abort`]) or returns the typed error
    /// ([`CrashMode::Return`]). A no-op otherwise.
    pub fn crash_point(&self, label: &str) -> Result<(), ServeError> {
        if self.plan.crash_after.as_deref() != Some(label) {
            return Ok(());
        }
        match self.mode {
            CrashMode::Abort => std::process::abort(),
            CrashMode::Return => Err(ServeError::CrashInjected {
                label: label.to_string(),
            }),
        }
    }

    /// Counts one durable write and returns the fault armed for it, if
    /// any (1-based: `torn_write: Some(1)` tears the first write).
    pub fn next_write_fault(&self) -> Option<WriteFault> {
        let n = self.writes.get() + 1;
        self.writes.set(n);
        if self.plan.torn_write == Some(n) {
            return Some(WriteFault::Torn);
        }
        if self.plan.disk_full == Some(n) {
            return Some(WriteFault::DiskFull);
        }
        None
    }

    /// The crash realization mode.
    pub fn mode(&self) -> CrashMode {
        self.mode
    }

    /// Raises the post-torn-write crash: the write persisted a prefix,
    /// now the process dies.
    pub(crate) fn torn_crash(&self, what: &str) -> ServeError {
        match self.mode {
            CrashMode::Abort => std::process::abort(),
            CrashMode::Return => ServeError::CrashInjected {
                label: format!("torn-write:{what}"),
            },
        }
    }

    /// The injected disk-full error for `what`.
    pub(crate) fn disk_full_error(&self, what: &str) -> std::io::Error {
        std::io::Error::other(format!("disk full (injected) writing {what}"))
    }
}

/// Writes `bytes` to `path` atomically: the content streams into
/// `<path>.tmp`, is fsynced, and is renamed over `path` in one step.
/// An interruption at any point leaves either the previous content or
/// no file at `path` — never a truncated artifact (at worst a stray
/// `.tmp` remains, which nothing trusts).
///
/// # Errors
///
/// Propagates I/O failures (including an injected disk-full fault) as
/// [`ServeError::Io`]; an injected torn write persists a prefix of the
/// temp file and then crashes per the injector's [`CrashMode`].
pub fn atomic_write(path: &Path, bytes: &[u8], inj: &Injector) -> Result<(), ServeError> {
    let what = path.display().to_string();
    let fault = inj.next_write_fault();
    if fault == Some(WriteFault::DiskFull) {
        return Err(ServeError::io(inj.disk_full_error(&what).to_string()));
    }
    let tmp = tmp_path(path);
    let mut f = std::fs::File::create(&tmp)
        .map_err(|e| ServeError::io(format!("create {}: {e}", tmp.display())))?;
    if fault == Some(WriteFault::Torn) {
        let half = &bytes[..bytes.len() / 2];
        let _ = f.write_all(half);
        let _ = f.sync_all();
        return Err(inj.torn_crash(&what));
    }
    f.write_all(bytes)
        .map_err(|e| ServeError::io(format!("write {}: {e}", tmp.display())))?;
    f.sync_all()
        .map_err(|e| ServeError::io(format!("sync {}: {e}", tmp.display())))?;
    drop(f);
    std::fs::rename(&tmp, path)
        .map_err(|e| ServeError::io(format!("rename {} -> {what}: {e}", tmp.display())))?;
    Ok(())
}

/// The sibling temp path `<path>.tmp` used by [`atomic_write`].
pub(crate) fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".tmp");
    std::path::PathBuf::from(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("netpart-fsio-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("temp dir");
        d
    }

    #[test]
    fn atomic_write_replaces_content_completely() {
        let d = tdir("atomic");
        let p = d.join("a.txt");
        let inj = Injector::none();
        atomic_write(&p, b"first", &inj).expect("write");
        assert_eq!(std::fs::read(&p).expect("read"), b"first");
        atomic_write(&p, b"second, longer", &inj).expect("rewrite");
        assert_eq!(std::fs::read(&p).expect("read"), b"second, longer");
        assert!(!tmp_path(&p).exists(), "temp file cleaned by rename");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_write_leaves_final_path_untouched() {
        let d = tdir("torn");
        let p = d.join("a.txt");
        let inj = Injector::new(FaultPlan::none().torn_write(2), CrashMode::Return);
        atomic_write(&p, b"intact", &inj).expect("first write unharmed");
        let err = atomic_write(&p, b"replacement-bytes", &inj).expect_err("second write torn");
        assert!(matches!(err, ServeError::CrashInjected { .. }), "{err}");
        assert_eq!(
            std::fs::read(&p).expect("read"),
            b"intact",
            "a torn write never reaches the final path"
        );
        let tmp = std::fs::read(tmp_path(&p)).expect("prefix persisted to tmp");
        assert_eq!(tmp, b"replacem", "exactly half the bytes landed");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn disk_full_write_persists_nothing() {
        let d = tdir("full");
        let p = d.join("a.txt");
        let inj = Injector::new(FaultPlan::none().disk_full(1), CrashMode::Return);
        let err = atomic_write(&p, b"data", &inj).expect_err("disk full");
        assert!(err.to_string().contains("disk full"), "{err}");
        assert!(!p.exists());
        assert!(!tmp_path(&p).exists());
        // The counter advanced, so the next write succeeds.
        atomic_write(&p, b"data", &inj).expect("later write fine");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_point_fires_only_on_its_label() {
        let inj = Injector::new(FaultPlan::none().crash_after("done"), CrashMode::Return);
        inj.crash_point("claim").expect("other labels pass");
        let err = inj.crash_point("done").expect_err("armed label fires");
        assert_eq!(
            err,
            ServeError::CrashInjected {
                label: "done".into()
            }
        );
    }
}
