//! `netpart-serve` — the durable partitioning service.
//!
//! The paper's flow is one-shot; this crate turns it into a
//! crash-safe, restartable service. A *spool directory* is the entire
//! service state:
//!
//! ```text
//! spool/
//!   journal.wal           append-only write-ahead journal (checksummed)
//!   jobs/<id>.job         job specifications (+ their copied netlists)
//!   results/<id>.result   result summaries   (atomic temp + rename)
//!   results/<id>.cert     solution certificates (atomic temp + rename)
//!   cache/<key>.entry     content-hash result cache, certificate-carrying
//!   quarantine/<id>.err   poison jobs with their PartitionError attached
//!   drain                 sentinel: graceful-drain shutdown request
//! ```
//!
//! Every queue transition (`submit → claim → start → done | fail →
//! retry | quarantine`) is one [`WalRecord`] appended to the journal
//! with a per-record FNV-1a checksum before the transition takes
//! effect anywhere else. A `kill -9` at *any* point therefore recovers
//! on restart by replaying the journal: a torn tail record is detected
//! by its checksum and truncated, interrupted jobs are re-run,
//! completed jobs keep their results, and identical resubmissions are
//! replayed from the disk-persisted [`DiskCache`] — whose entries carry
//! their `netpart-verify` certificate and are re-verified on every
//! read, so a corrupt entry is evicted, never trusted.
//!
//! Failure handling is deterministic by construction: retry backoff is
//! computed from `(seed, job id, attempt)` in scheduler *rounds* — no
//! wall-clock value ever enters a decision — and a job that keeps
//! failing (or keeps crashing the server) is quarantined after its
//! bounded retry allowance with the typed
//! [`PartitionError`](netpart_core::PartitionError) attached.
//!
//! The crash/torn-write/disk-full injection points of
//! [`FaultPlan`](netpart_core::FaultPlan) are honoured by the
//! [`Injector`], which the recovery test matrix drives across every
//! journal transition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod fsio;
mod job;
mod queue;
mod server;
mod wal;

pub use cache::{CacheEntry, CacheLookup, DiskCache};
pub use fsio::{atomic_write, CrashMode, Injector};
pub use job::{file_fnv, valid_job_id, JobCmd, JobSpec};
pub use queue::{backoff_rounds, JobEntry, JobState, QueueState};
pub use server::{submit_job, ServeConfig, ServeReport, Server, SubmitOutcome};
pub use wal::{Recovery, Wal, WalRecord};

use std::error::Error;
use std::fmt;

/// A service-layer failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// An I/O operation on the spool failed (includes injected
    /// disk-full faults on paths where no retry is safe).
    Io {
        /// What failed, with the underlying error text.
        what: String,
    },
    /// A spool artifact was corrupt in a way recovery must not repair
    /// silently (reserved for conditions with no safe fallback; torn
    /// journal tails and corrupt cache entries are handled in-line).
    Corrupt {
        /// What was corrupt.
        what: String,
    },
    /// An injected crash point fired while the server runs in
    /// [`CrashMode::Return`] (the in-process test harness); the binary
    /// aborts the process instead.
    CrashInjected {
        /// The journal transition label that fired.
        label: String,
    },
    /// A partitioning failure escaped job-level handling (invalid
    /// serve configuration and similar).
    Partition(netpart_core::PartitionError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { what } => write!(f, "spool I/O failure: {what}"),
            ServeError::Corrupt { what } => write!(f, "corrupt spool artifact: {what}"),
            ServeError::CrashInjected { label } => {
                write!(f, "injected crash at journal transition {label:?}")
            }
            ServeError::Partition(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io {
            what: e.to_string(),
        }
    }
}

impl From<netpart_core::PartitionError> for ServeError {
    fn from(e: netpart_core::PartitionError) -> Self {
        ServeError::Partition(e)
    }
}

impl ServeError {
    /// Shorthand for an [`ServeError::Io`] with context.
    pub fn io(what: impl Into<String>) -> Self {
        ServeError::Io { what: what.into() }
    }
}

/// Parses the value of a `#fnv=` checksum marker *strictly*: exactly 16
/// lowercase hex digits, nothing else. The checksum line cannot cover
/// itself, so a lenient parse (`from_str_radix` accepts uppercase)
/// would let single-bit case flips inside the digits go undetected —
/// strictness restores the "any flipped bit is rejected" property for
/// every persisted format.
pub(crate) fn parse_fnv_hex(hex: &str) -> Result<u64, String> {
    if hex.len() != 16
        || !hex
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return Err(format!("bad checksum hex {hex:?}"));
    }
    u64::from_str_radix(hex, 16).map_err(|e| format!("bad checksum hex: {e}"))
}
