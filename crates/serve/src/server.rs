//! The serve loop: admission, scheduling, execution, recovery.
//!
//! One [`Server`] owns a spool directory exclusively (single-writer
//! journal). Its life is a sequence of *rounds*; each round admits
//! newly dropped job files, then executes every eligible pending job in
//! job-id order. All parallelism lives inside the engine (`jobs`
//! worker threads per partitioning request), which keeps the service
//! layer deterministic: for a fixed spool content and seed, the journal
//! the server writes is identical run after run.
//!
//! Crash safety is a strict write ordering, applied everywhere:
//!
//! 1. artifacts first (atomic temp + rename),
//! 2. then the journal record that makes them authoritative,
//!
//! so a crash between the two re-runs the job — which, by engine
//! determinism, overwrites the artifacts with identical bytes rather
//! than double-completing. The recovery matrix in
//! `crates/serve/tests/recovery_matrix.rs` drives an injected crash
//! after every journal transition and checks exactly this invariant.
//!
//! Shutdown is cooperative: dropping a `drain` sentinel file into the
//! spool makes the server finish the job in flight, journal nothing
//! more, and return. (A std-only binary cannot trap signals; `kill -9`
//! is *also* a supported shutdown path — that is the entire point of
//! the journal.)

use crate::cache::{CacheEntry, CacheLookup, DiskCache};
use crate::fsio::{atomic_write, CrashMode, Injector};
use crate::job::{file_fnv, valid_job_id, JobCmd, JobSpec};
use crate::queue::{backoff_rounds, JobState, QueueState};
use crate::wal::{Recovery, Wal, WalRecord};
use crate::ServeError;
use netpart_core::PartitionError;
use netpart_engine::{bipartition_key, kway_key, Engine, Fnv1a};
use netpart_fpga::DeviceLibrary;
use netpart_hypergraph::Hypergraph;
use netpart_netlist::parse_blif;
use netpart_obs::{Event, Level, MetricsRegistry, NoopRecorder, Recorder, Span, Tee, TIMING_SCOPE};
use netpart_techmap::{decompose_wide_gates, map, MapperConfig};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Serve-loop configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Engine worker threads per partitioning request.
    pub jobs: usize,
    /// Queue capacity: submissions beyond this many open jobs are
    /// refused (backpressure).
    pub max_queue: usize,
    /// Attempts a job may consume before quarantine (specs may lower
    /// or raise their own allowance with `max-retries`).
    pub max_retries: u32,
    /// Base retry backoff in scheduler rounds (0 disables backoff).
    pub backoff_base: u64,
    /// Idle-round sleep in milliseconds (watch mode only).
    pub poll_ms: u64,
    /// Batch mode: return once no pending work remains instead of
    /// watching for new job files.
    pub drain: bool,
    /// Seed for backoff jitter.
    pub seed: u64,
    /// Default wall budget applied to specs that request none
    /// (`None` = unlimited).
    pub default_budget_ms: Option<u64>,
    /// Fault-injection plan (crash points, torn writes, disk-full).
    pub fault: netpart_core::FaultPlan,
    /// How injected crashes are realized.
    pub crash_mode: CrashMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            jobs: 1,
            max_queue: 64,
            max_retries: 3,
            backoff_base: 2,
            poll_ms: 50,
            drain: false,
            seed: 1,
            default_budget_ms: None,
            fault: netpart_core::FaultPlan::none(),
            crash_mode: CrashMode::Abort,
        }
    }
}

/// What one `run()` accomplished.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Attempts executed (engine runs + cache replays).
    pub executed: u64,
    /// Jobs completed over the server's lifetime (includes completions
    /// recovered from the journal).
    pub done: usize,
    /// Completions served from the disk cache by this process.
    pub cache_hits: u64,
    /// Cache entries evicted as corrupt by this process.
    pub cache_evictions: u64,
    /// Failed attempts journaled by this process.
    pub failed: u64,
    /// Jobs in quarantine (lifetime, like `done`).
    pub quarantined: usize,
    /// Pending jobs found mid-attempt at startup (crash evidence).
    pub recovered_interrupted: usize,
    /// Whether recovery truncated a torn journal tail.
    pub recovered_torn_tail: bool,
    /// Whether a drain sentinel stopped the loop.
    pub drained: bool,
}

/// Outcome of a submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job file is durable in the spool; the server will admit it.
    Submitted {
        /// The job id.
        job: String,
    },
    /// The queue is at capacity; nothing was written. Resubmit later.
    QueueFull {
        /// Open (pending or not-yet-admitted) jobs counted.
        open: usize,
        /// The capacity that was exceeded.
        max: usize,
    },
}

/// Drops a job into `spool` for the server to pick up: copies the
/// netlist to `jobs/<id>.blif`, then writes the checksummed spec to
/// `jobs/<id>.job` (both atomically; the spec lands last because its
/// appearance is what triggers admission). Refuses duplicates and —
/// counting open journal jobs plus job files awaiting admission —
/// submissions beyond `max_queue`.
///
/// This function never touches the journal: the server is its single
/// writer, which is what makes concurrent submitters safe.
///
/// # Errors
///
/// Invalid ids, duplicate ids and spool I/O failures.
pub fn submit_job(
    spool: &Path,
    id: &str,
    blif: &str,
    spec: &JobSpec,
    max_queue: usize,
) -> Result<SubmitOutcome, ServeError> {
    if !valid_job_id(id) {
        return Err(ServeError::io(format!(
            "invalid job id {id:?} (want [A-Za-z0-9._-], no leading dot)"
        )));
    }
    let jobs_dir = spool.join("jobs");
    std::fs::create_dir_all(&jobs_dir)
        .map_err(|e| ServeError::io(format!("create {}: {e}", jobs_dir.display())))?;
    let spec_path = jobs_dir.join(format!("{id}.job"));
    let replay = Wal::replay_readonly(&spool.join("journal.wal"))?;
    let queue = QueueState::replay(replay.records.iter().map(|(_, r)| r));
    if spec_path.exists() || queue.is_known(id) {
        return Err(ServeError::io(format!("job id {id:?} already exists")));
    }
    let unadmitted = list_job_files(&jobs_dir)?
        .iter()
        .filter(|j| !queue.is_known(j))
        .count();
    let open = queue.open_count() + unadmitted;
    if open >= max_queue {
        return Ok(SubmitOutcome::QueueFull { open, max: max_queue });
    }
    let inj = Injector::none();
    let mut spec = spec.clone();
    spec.netlist = format!("jobs/{id}.blif");
    atomic_write(&jobs_dir.join(format!("{id}.blif")), blif.as_bytes(), &inj)?;
    atomic_write(&spec_path, spec.to_text().as_bytes(), &inj)?;
    Ok(SubmitOutcome::Submitted { job: id.to_string() })
}

/// The `.job` file stems under `dir`, sorted (the admission order).
fn list_job_files(dir: &Path) -> Result<Vec<String>, ServeError> {
    let mut out = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(ServeError::io(format!("scan {}: {e}", dir.display()))),
    };
    for entry in rd {
        let entry = entry.map_err(|e| ServeError::io(format!("scan {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "job") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if valid_job_id(stem) {
                    out.push(stem.to_string());
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// How a failed attempt is treated.
enum FailKind {
    /// Retrying cannot help (bad input, infeasible library): quarantine
    /// immediately.
    Permanent,
    /// Worth retrying up to the allowance (budget, I/O, internal).
    Retryable,
}

/// A failed attempt, normalized for the journal.
struct Failure {
    code: i32,
    msg: String,
    kind: FailKind,
}

impl Failure {
    fn of(err: &ServeError) -> Failure {
        match err {
            ServeError::Partition(e) => Failure {
                code: e.exit_code(),
                msg: e.to_string(),
                kind: match e {
                    PartitionError::InvalidInput { .. }
                    | PartitionError::InfeasibleLibrary { .. } => FailKind::Permanent,
                    PartitionError::BudgetExhausted { .. }
                    | PartitionError::InternalInvariant { .. } => FailKind::Retryable,
                },
            },
            ServeError::Corrupt { .. } => Failure {
                code: 2,
                msg: err.to_string(),
                kind: FailKind::Permanent,
            },
            // Spool I/O (including injected disk-full): transient.
            ServeError::Io { .. } => Failure {
                code: 1,
                msg: err.to_string(),
                kind: FailKind::Retryable,
            },
            // Never normalized — crashes propagate (see execute_one).
            ServeError::CrashInjected { label } => Failure {
                code: 1,
                msg: format!("crash injected at {label}"),
                kind: FailKind::Retryable,
            },
        }
    }
}

/// A prepared request: everything derived from the spec + netlist.
struct Prepared {
    spec: JobSpec,
    hg: Hypergraph,
    key: u64,
}

/// The durable partitioning server. See the module docs for the
/// lifecycle; construct with [`Server::open`], drive with
/// [`Server::run`].
#[derive(Debug)]
pub struct Server {
    spool: PathBuf,
    cfg: ServeConfig,
    wal: Wal,
    queue: QueueState,
    cache: DiskCache,
    inj: Injector,
    recorder: Arc<dyn Recorder>,
    registry: Arc<MetricsRegistry>,
    /// Claim instants of in-flight jobs, for claim-to-done latency.
    claimed_at: HashMap<String, Instant>,
    /// Registry version last written to `metrics.prom` (skip idle rounds).
    metrics_version: u64,
    last_queue_depth: Option<usize>,
    report: ServeReport,
    round: u64,
}

impl Server {
    /// Opens the spool at `spool` (creating its layout if absent),
    /// replays the journal, truncates any torn tail, and quarantines
    /// pending jobs that already exhausted their retry allowance
    /// *before* the crash. Pass a recorder to receive `serve.*` events
    /// (or `None` for silence).
    ///
    /// # Errors
    ///
    /// Spool I/O failures and an unrecoverably corrupt journal header.
    pub fn open(
        spool: &Path,
        cfg: ServeConfig,
        recorder: Option<Arc<dyn Recorder>>,
    ) -> Result<Server, ServeError> {
        for sub in ["jobs", "results", "cache", "quarantine"] {
            let d = spool.join(sub);
            std::fs::create_dir_all(&d)
                .map_err(|e| ServeError::io(format!("create {}: {e}", d.display())))?;
        }
        let (wal, recovery) = Wal::open(&spool.join("journal.wal"))?;
        let queue = QueueState::replay(recovery.records.iter().map(|(_, r)| r));
        let cache = DiskCache::open(&spool.join("cache"))?;
        let recorder = recorder.unwrap_or_else(|| Arc::new(NoopRecorder));
        // The metrics registry rides in a tee next to the caller's
        // recorder: every serve.* event feeds the operational surface
        // exposed at `<spool>/metrics.prom` and `netpart serve-status`.
        let registry = Arc::new(MetricsRegistry::for_scope("serve"));
        let recorder: Arc<dyn Recorder> = Arc::new(
            Tee::new()
                .with(recorder)
                .with(registry.clone() as Arc<dyn Recorder>),
        );
        let inj = Injector::new(cfg.fault.clone(), cfg.crash_mode);
        let interrupted = queue.jobs().filter(|e| e.interrupted).count();
        let (done, quarantined) = queue.terminal_counts();
        let server = Server {
            spool: spool.to_path_buf(),
            cfg,
            wal,
            queue,
            cache,
            inj,
            recorder,
            registry,
            claimed_at: HashMap::new(),
            metrics_version: u64::MAX,
            last_queue_depth: None,
            report: ServeReport {
                done,
                quarantined,
                recovered_interrupted: interrupted,
                recovered_torn_tail: recovery.torn_tail,
                ..ServeReport::default()
            },
            round: 0,
        };
        server.emit_recover(&recovery, interrupted);
        Ok(server)
    }

    fn emit_recover(&self, recovery: &Recovery, interrupted: usize) {
        self.recorder.record(
            &Event::new("serve", "recover", Level::Info)
                .field("records", recovery.records.len())
                .field("torn_tail", recovery.torn_tail)
                .field("truncated_bytes", recovery.truncated_bytes)
                .field("pending", self.queue.open_count())
                .field("done", self.report.done)
                .field("quarantined", self.report.quarantined)
                .field("interrupted", interrupted),
        );
    }

    /// The folded queue state (for status displays).
    pub fn queue(&self) -> &QueueState {
        &self.queue
    }

    /// Progress counters so far.
    pub fn report(&self) -> &ServeReport {
        &self.report
    }

    /// The live service metrics registry (snapshotted to
    /// `<spool>/metrics.prom` after every scheduler round).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Runs the serve loop. In drain mode ([`ServeConfig::drain`] or a
    /// `drain` sentinel file) the loop returns once no pending work
    /// remains; otherwise it watches `jobs/` forever (sleeping
    /// [`ServeConfig::poll_ms`] on idle rounds).
    ///
    /// # Errors
    ///
    /// Journal-append failures are fatal (the loop must not continue
    /// past an unjournaled transition); [`ServeError::CrashInjected`]
    /// propagates in [`CrashMode::Return`] with the spool exactly as a
    /// real crash would leave it.
    pub fn run(&mut self) -> Result<ServeReport, ServeError> {
        loop {
            self.round += 1;
            self.report.rounds = self.round;
            self.admit_new_jobs()?;
            let eligible: Vec<String> = self
                .queue
                .jobs()
                .filter(|e| e.state == JobState::Pending && e.eligible_round <= self.round)
                .map(|e| e.job.clone())
                .collect();
            let mut drained = false;
            if eligible.is_empty() {
                let pending = self.queue.open_count();
                if self.drain_requested() {
                    drained = true;
                } else if pending == 0 && self.cfg.drain {
                    break;
                } else if pending == 0 || !self.cfg.drain {
                    // Watch mode, or backoff still counting down in
                    // watch mode: yield before the next round.
                    if !self.cfg.drain && self.cfg.poll_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(self.cfg.poll_ms));
                    }
                }
            } else {
                // Round spans live on the scheduling timeline (their
                // count depends on backoff/watch pacing): reserved
                // scope, stripped whole-line by determinism checks.
                let recorder = Arc::clone(&self.recorder);
                let round_span =
                    Span::enter_with(recorder.as_ref(), TIMING_SCOPE, "round", "round", self.round);
                for job in eligible {
                    if self.drain_requested() {
                        drained = true;
                        break;
                    }
                    self.execute_one(&job)?;
                }
                drop(round_span);
            }
            self.expose_metrics();
            if drained {
                self.report.drained = true;
                self.recorder.record(
                    &Event::new("serve", "drain", Level::Info)
                        .field("round", self.round)
                        .field("pending", self.queue.open_count()),
                );
                self.expose_metrics();
                break;
            }
        }
        Ok(self.report.clone())
    }

    fn drain_requested(&self) -> bool {
        self.spool.join("drain").exists()
    }

    /// Snapshots the registry to `<spool>/metrics.prom` (Prometheus
    /// text format, atomic rename). Skipped when nothing changed since
    /// the last write; best-effort — an unwritable metrics file must
    /// never fail the serve loop. Deliberately bypasses the fault
    /// injector: exposition is not part of the durability contract, and
    /// routing it through `inj` would shift the injection indices the
    /// recovery matrix pins.
    fn expose_metrics(&mut self) {
        let depth = self.queue.open_count();
        if self.last_queue_depth != Some(depth) {
            self.last_queue_depth = Some(depth);
            self.registry
                .set_gauge("netpart_serve_queue_depth", depth as f64);
        }
        let version = self.registry.version();
        if version == self.metrics_version {
            return;
        }
        self.metrics_version = version;
        let _ = atomic_write(
            &self.spool.join("metrics.prom"),
            self.registry.to_prometheus().as_bytes(),
            &Injector::none(),
        );
    }

    /// Journals `submit` for every job file the journal has not seen
    /// yet, in sorted order. Over-capacity files stay unadmitted (they
    /// are re-scanned every round, so capacity freed by completions is
    /// reused).
    fn admit_new_jobs(&mut self) -> Result<(), ServeError> {
        for job in list_job_files(&self.spool.join("jobs"))? {
            if self.queue.is_known(&job) {
                continue;
            }
            if self.queue.open_count() >= self.cfg.max_queue {
                break;
            }
            let path = self.spool.join("jobs").join(format!("{job}.job"));
            let bytes = std::fs::read(&path)
                .map_err(|e| ServeError::io(format!("read {}: {e}", path.display())))?;
            let rec = WalRecord::Submit {
                job: job.clone(),
                spec_fnv: file_fnv(&bytes),
            };
            self.append(&rec)?;
            self.recorder.record(
                &Event::new("serve", "submit", Level::Info)
                    .field("job", job.clone())
                    .field("open", self.queue.open_count()),
            );
            self.inj.crash_point("submit")?;
        }
        Ok(())
    }

    /// Appends to the journal and folds the record into the live queue
    /// state in one step, so memory never diverges from disk.
    fn append(&mut self, rec: &WalRecord) -> Result<(), ServeError> {
        self.wal.append(rec, &self.inj)?;
        self.queue.apply(rec);
        Ok(())
    }

    /// The retry allowance for `job`: the spec's `max-retries` override
    /// when its spec parses, the server default otherwise.
    fn retry_allowance(&self, job: &str) -> u32 {
        let path = self.spool.join("jobs").join(format!("{job}.job"));
        std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| JobSpec::parse(&t).ok())
            .and_then(|s| s.max_retries)
            .unwrap_or(self.cfg.max_retries)
            .max(1)
    }

    /// Runs one attempt of `job` end to end. Only journal-append
    /// failures and injected crashes escape; every other failure is
    /// journaled as `fail` and routed to retry or quarantine.
    fn execute_one(&mut self, job: &str) -> Result<(), ServeError> {
        let entry = self
            .queue
            .get(job)
            .ok_or_else(|| ServeError::io(format!("job {job} vanished from queue state")))?;
        let prior = entry.attempts;
        let allowance = self.retry_allowance(job);
        if prior >= allowance {
            // The allowance was exhausted before a crash (interrupted
            // attempts count): quarantine without consuming another.
            let msg = entry
                .last_error
                .clone()
                .map(|(_, m)| m)
                .unwrap_or_else(|| "crash-interrupted attempts exhausted allowance".into());
            return self.quarantine(job, prior, &msg);
        }
        let attempt = prior + 1;
        self.append(&WalRecord::Claim {
            job: job.to_string(),
            attempt,
        })?;
        self.recorder.record(
            &Event::new("serve", "claim", Level::Info)
                .field("job", job.to_string())
                .field("attempt", attempt),
        );
        self.claimed_at.insert(job.to_string(), Instant::now());
        self.inj.crash_point("claim")?;
        self.report.executed += 1;

        let recorder = Arc::clone(&self.recorder);
        let span =
            Span::enter_with(recorder.as_ref(), "serve", "execute", "job", job.to_string());
        let outcome = self
            .prepare(job)
            .and_then(|prep| self.attempt(job, attempt, &prep));
        drop(span);
        match outcome {
            Ok(()) => Ok(()),
            Err(err @ ServeError::CrashInjected { .. }) => Err(err),
            Err(err) => self.handle_failure(job, attempt, allowance, &err),
        }
    }

    /// Parses the spec, loads + maps its netlist, derives the request
    /// content key. Pure preparation — no journal writes.
    fn prepare(&self, job: &str) -> Result<Prepared, ServeError> {
        let path = self.spool.join("jobs").join(format!("{job}.job"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ServeError::io(format!("read {}: {e}", path.display())))?;
        let mut spec = JobSpec::parse(&text)?;
        if spec.budget_ms == 0 {
            if let Some(ms) = self.cfg.default_budget_ms {
                spec.budget_ms = ms;
            }
        }
        let nl_path = self.spool.join(&spec.netlist);
        let blif = std::fs::read_to_string(&nl_path)
            .map_err(|e| ServeError::io(format!("read {}: {e}", nl_path.display())))?;
        let invalid = |what: String| ServeError::Partition(PartitionError::invalid_input(what));
        let nl = parse_blif(&blif).map_err(|e| invalid(format!("{}: {e}", spec.netlist)))?;
        nl.validate()
            .map_err(|e| invalid(format!("{}: {e}", spec.netlist)))?;
        let nl = decompose_wide_gates(&nl, 5);
        let hg = map(&nl, &MapperConfig::xc3000())
            .map_err(|e| invalid(format!("{}: {e}", spec.netlist)))?
            .to_hypergraph(&nl);
        let key = match spec.cmd {
            JobCmd::Bipartition => {
                bipartition_key(&hg, &spec.bipartition_config(&hg), spec.runs)
            }
            JobCmd::Kway => kway_key(
                &hg,
                &spec.kway_config(DeviceLibrary::xc3000()),
                spec.tasks,
            ),
        };
        Ok(Prepared { spec, hg, key })
    }

    /// Serves the attempt: from the verified disk cache when possible,
    /// by running the engine otherwise. Artifacts are always written
    /// *before* the `done` record that blesses them.
    fn attempt(&mut self, job: &str, attempt: u32, prep: &Prepared) -> Result<(), ServeError> {
        let cached = match self.cache.load(prep.key, &prep.hg) {
            CacheLookup::Hit(entry) => {
                self.recorder.record(
                    &Event::new("serve", "cache", Level::Info)
                        .field("job", job.to_string())
                        .field("outcome", "hit")
                        .field("key", format!("{:016x}", prep.key)),
                );
                self.write_artifacts(job, attempt, prep, true, &entry.summary, Some(&entry.cert))?;
                self.report.cache_hits += 1;
                true
            }
            lookup => {
                if let CacheLookup::Evicted { reason } = &lookup {
                    self.report.cache_evictions += 1;
                    self.recorder.record(
                        &Event::new("serve", "cache", Level::Info)
                            .field("job", job.to_string())
                            .field("outcome", "evict")
                            .field("key", format!("{:016x}", prep.key))
                            .field("reason", reason.clone()),
                    );
                } else {
                    self.recorder.record(
                        &Event::new("serve", "cache", Level::Debug)
                            .field("job", job.to_string())
                            .field("outcome", "miss")
                            .field("key", format!("{:016x}", prep.key)),
                    );
                }
                self.append(&WalRecord::Start {
                    job: job.to_string(),
                    attempt,
                })?;
                self.inj.crash_point("start")?;
                let (summary, cert) = self.run_engine(prep)?;
                self.write_artifacts(job, attempt, prep, false, &summary, cert.as_deref())?;
                if let Some(cert) = &cert {
                    self.cache.store(
                        &CacheEntry {
                            key: prep.key,
                            summary: summary.clone(),
                            cert: cert.clone(),
                        },
                        &self.inj,
                    )?;
                    self.inj.crash_point("cache")?;
                }
                false
            }
        };
        self.append(&WalRecord::Done {
            job: job.to_string(),
            attempt,
            cached,
            key: prep.key,
        })?;
        self.report.done += 1;
        let mut done = Event::new("serve", "done", Level::Info)
            .field("job", job.to_string())
            .field("attempt", attempt)
            .field("cached", cached)
            .field("key", format!("{:016x}", prep.key));
        if let Some(t0) = self.claimed_at.remove(job) {
            // Claim-to-done latency: scheduling data, so it rides the
            // stripped timing sub-object (and feeds the registry's
            // latency histogram).
            done = done.timing("latency_ms", t0.elapsed().as_millis() as u64);
        }
        self.recorder.record(&done);
        self.inj.crash_point("done")?;
        Ok(())
    }

    /// Runs the portfolio engine, returning the human-readable summary
    /// and the certificate text (when the winner exported a placement).
    fn run_engine(&self, prep: &Prepared) -> Result<(String, Option<String>), ServeError> {
        let engine = Engine::new(self.cfg.jobs).with_recorder(Arc::clone(&self.recorder));
        let source = self.spool.join(&prep.spec.netlist).display().to_string();
        match prep.spec.cmd {
            JobCmd::Bipartition => {
                let cfg = prep.spec.bipartition_config(&prep.hg);
                let (stats, _hit) = engine.bipartition_many(&prep.hg, &cfg, prep.spec.runs)?;
                let mut s = String::new();
                if stats.degradation.is_degraded() {
                    let _ = writeln!(s, "note: {}", stats.degradation);
                }
                let _ = writeln!(
                    s,
                    "{} runs: best cut {}, avg cut {:.1}, avg replicated cells {:.1}",
                    stats.results.len(),
                    stats.best_cut(),
                    stats.avg_cut(),
                    stats.avg_replicated()
                );
                let best = stats.best();
                let _ = writeln!(
                    s,
                    "best run: areas {:?}, {} passes, balanced: {}, stop: {}",
                    best.areas, best.passes, best.balanced, best.stop
                );
                let cert = stats
                    .certificate(&prep.hg, &cfg)
                    .map(|c| c.with_source(&source).to_text());
                Ok((s, cert))
            }
            JobCmd::Kway => {
                let lib = DeviceLibrary::xc3000();
                let cfg = prep.spec.kway_config(lib.clone());
                let (pres, _hit) = engine.kway(&prep.hg, &cfg, prep.spec.tasks)?;
                let res = &pres.result;
                let mut s = String::new();
                if res.degradation.is_degraded() {
                    let _ = writeln!(s, "note: {}", res.degradation);
                }
                let _ = writeln!(
                    s,
                    "k = {}, total cost = {}, avg CLB util {:.0}%, avg IOB util {:.0}%",
                    res.devices.len(),
                    res.evaluation.total_cost,
                    100.0 * res.evaluation.avg_clb_util,
                    100.0 * res.evaluation.avg_iob_util
                );
                for part in &res.evaluation.parts {
                    let _ = writeln!(
                        s,
                        "  part {}: {:8} {:5} CLBs ({:3.0}%), {:4} IOBs ({:3.0}%)",
                        part.part,
                        lib.device(part.device).name(),
                        part.clbs,
                        100.0 * part.clb_util,
                        part.terminals,
                        100.0 * part.iob_util
                    );
                }
                let cert = pres.certificate(&prep.hg, &cfg).with_source(&source).to_text();
                Ok((s, Some(cert)))
            }
        }
    }

    /// Writes `results/<job>.result` (and the certificate when there is
    /// one), atomically, then fires the `artifact` crash point.
    fn write_artifacts(
        &self,
        job: &str,
        attempt: u32,
        prep: &Prepared,
        cached: bool,
        summary: &str,
        cert: Option<&str>,
    ) -> Result<(), ServeError> {
        let results = self.spool.join("results");
        let mut text = format!(
            "netpart-result v1\njob {job}\ncmd {}\nkey {:016x}\nattempt {attempt}\ncached {}\n\n{summary}",
            prep.spec.cmd.as_str(),
            prep.key,
            u8::from(cached),
        );
        let mut h = Fnv1a::new();
        h.write(text.as_bytes());
        let _ = writeln!(text, "#fnv={:016x}", h.finish());
        atomic_write(
            &results.join(format!("{job}.result")),
            text.as_bytes(),
            &self.inj,
        )?;
        if let Some(cert) = cert {
            atomic_write(
                &results.join(format!("{job}.cert")),
                cert.as_bytes(),
                &self.inj,
            )?;
        }
        self.inj.crash_point("artifact")?;
        Ok(())
    }

    /// Journals the failure and routes it: permanent errors and
    /// exhausted allowances quarantine, the rest schedule a retry with
    /// deterministic backoff.
    fn handle_failure(
        &mut self,
        job: &str,
        attempt: u32,
        allowance: u32,
        err: &ServeError,
    ) -> Result<(), ServeError> {
        let failure = Failure::of(err);
        self.append(&WalRecord::Fail {
            job: job.to_string(),
            attempt,
            code: failure.code,
            msg: failure.msg.clone(),
        })?;
        self.report.failed += 1;
        self.recorder.record(
            &Event::new("serve", "fail", Level::Info)
                .field("job", job.to_string())
                .field("attempt", attempt)
                .field("code", i64::from(failure.code))
                .field("msg", failure.msg.clone()),
        );
        self.inj.crash_point("fail")?;
        let permanent = matches!(failure.kind, FailKind::Permanent);
        if permanent || attempt >= allowance {
            return self.quarantine(job, attempt, &failure.msg);
        }
        let mut h = Fnv1a::new();
        h.write(job.as_bytes());
        let delay = backoff_rounds(self.cfg.backoff_base, attempt, self.cfg.seed, h.finish());
        if let Some(e) = self.queue.get_mut(job) {
            e.eligible_round = self.round.saturating_add(delay);
        }
        self.append(&WalRecord::Retry {
            job: job.to_string(),
            attempt,
            delay,
        })?;
        self.recorder.record(
            &Event::new("serve", "retry", Level::Info)
                .field("job", job.to_string())
                .field("attempt", attempt)
                .field("delay_rounds", delay),
        );
        self.inj.crash_point("retry")?;
        Ok(())
    }

    /// Declares `job` poison: writes `quarantine/<job>.err` (artifact
    /// first), then journals the `quarantine` record.
    fn quarantine(&mut self, job: &str, attempts: u32, msg: &str) -> Result<(), ServeError> {
        let text = format!("netpart-quarantine v1\njob {job}\nattempts {attempts}\n\n{msg}\n");
        atomic_write(
            &self.spool.join("quarantine").join(format!("{job}.err")),
            text.as_bytes(),
            &self.inj,
        )?;
        self.append(&WalRecord::Quarantine {
            job: job.to_string(),
            attempts,
            msg: msg.to_string(),
        })?;
        self.report.quarantined += 1;
        self.recorder.record(
            &Event::new("serve", "quarantine", Level::Info)
                .field("job", job.to_string())
                .field("attempts", attempts)
                .field("msg", msg.to_string()),
        );
        self.inj.crash_point("quarantine")?;
        Ok(())
    }
}
